#include "dnn/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace corp::dnn {

bool Dataset::consistent() const {
  if (inputs.size() != targets.size()) return false;
  if (inputs.empty()) return true;
  const std::size_t in_w = inputs.front().size();
  const std::size_t out_w = targets.front().size();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].size() != in_w || targets[i].size() != out_w) return false;
  }
  return true;
}

std::pair<Dataset, Dataset> Dataset::split_validation(double fraction) const {
  Dataset train, val;
  const double f = std::clamp(fraction, 0.0, 0.9);
  const auto val_count =
      static_cast<std::size_t>(static_cast<double>(size()) * f);
  const std::size_t train_count = size() - val_count;
  train.inputs.assign(inputs.begin(), inputs.begin() + train_count);
  train.targets.assign(targets.begin(), targets.begin() + train_count);
  val.inputs.assign(inputs.begin() + train_count, inputs.end());
  val.targets.assign(targets.begin() + train_count, targets.end());
  return {std::move(train), std::move(val)};
}

Trainer::Trainer(TrainerConfig config, util::Rng& rng)
    : config_(config), rng_(rng) {}

double Trainer::evaluate(Network& network, const Dataset& data) {
  if (data.size() == 0) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Vector pred = network.predict(data.inputs[i]);
    total += mse(pred, data.targets[i]);
  }
  return total / static_cast<double>(data.size());
}

void Trainer::pretrain(Network& network, const Dataset& data) {
  if (config_.pretrain_epochs == 0 || data.size() == 0) return;
  // Greedy layerwise: feed each sample through the already-pretrained
  // prefix, then train (layer, transient decoder) to reconstruct the
  // prefix output.
  const std::size_t hidden = network.layer_count() - 1;  // skip output head
  for (std::size_t li = 0; li < hidden; ++li) {
    DenseLayer& enc = network.layer(li);
    DenseLayer dec(enc.outputs(), enc.inputs(), Activation::kIdentity, rng_);
    SgdOptimizer opt(config_.pretrain_learning_rate);
    opt.bind({&enc, &dec});
    for (std::size_t epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
      for (std::size_t s = 0; s < data.size(); ++s) {
        // Propagate through the frozen prefix.
        Vector x(data.inputs[s]);
        for (std::size_t p = 0; p < li; ++p) {
          x = network.layer(p).forward(x);
        }
        enc.zero_grad();
        dec.zero_grad();
        const Vector& code = enc.forward(x);
        const Vector recon = dec.forward(code);
        Vector grad(recon.size());
        mse_gradient(recon, x, grad);
        const Vector code_grad = dec.backward(grad);
        enc.backward(code_grad);
        opt.step();
      }
    }
  }
}

TrainReport Trainer::fit(Network& network, Optimizer& optimizer,
                         const Dataset& data) {
  const obs::ScopedTimer fit_timer("dnn.fit");
  if (!data.consistent()) {
    throw std::invalid_argument("Trainer::fit: inconsistent dataset");
  }
  TrainReport report;
  if (data.size() == 0) return report;

  auto [train, val] = data.split_validation(config_.validation_fraction);
  if (train.size() == 0) {
    train = data;  // too little data to hold out; validate on train
    val = data;
  }
  pretrain(network, train);
  optimizer.bind(network.layer_pointers());

  // Hoisted metric handles: one registry lookup per fit, not per epoch.
  obs::MetricRegistry& reg = obs::registry();
  const bool metrics = reg.enabled();
  obs::Histogram* epoch_ms = metrics ? &reg.histogram("dnn.epoch_ms") : nullptr;
  obs::Counter* sgd_steps = metrics ? &reg.counter("dnn.sgd_steps") : nullptr;
  obs::Counter* epochs_run = metrics ? &reg.counter("dnn.epochs") : nullptr;

  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;
  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    const auto epoch_start = std::chrono::steady_clock::now();
    std::vector<std::size_t> order;
    if (config_.shuffle) {
      order = rng_.permutation(train.size());
    } else {
      order.resize(train.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    }
    double train_loss = 0.0;
    for (std::size_t idx : order) {
      network.zero_grad();
      train_loss += network.train_sample(train.inputs[idx], train.targets[idx]);
      optimizer.step();
    }
    report.final_train_loss = train_loss / static_cast<double>(train.size());
    const double val_loss =
        val.size() > 0 ? evaluate(network, val) : report.final_train_loss;
    report.validation_curve.push_back(val_loss);
    report.epochs_run = epoch + 1;

    if (metrics) {
      const std::chrono::duration<double, std::milli> wall =
          std::chrono::steady_clock::now() - epoch_start;
      epoch_ms->observe(wall.count());
      sgd_steps->add(order.size());
      epochs_run->add(1);
      reg.gauge("dnn.epoch_train_loss").set(report.final_train_loss);
      reg.gauge("dnn.epoch_validation_loss").set(val_loss);
    }

    if (val_loss < best_val - config_.min_delta) {
      best_val = val_loss;
      since_best = 0;
    } else if (++since_best >= config_.patience) {
      report.converged = true;
      break;
    }
  }
  report.best_validation_loss = best_val;
  if (metrics) {
    reg.counter("dnn.fits").add(1);
    if (report.converged) reg.counter("dnn.fits_converged").add(1);
    reg.gauge("dnn.best_validation_loss").set(report.best_validation_loss);
  }
  return report;
}

Dataset make_windowed_dataset(std::span<const double> series,
                              std::size_t history, std::size_t horizon) {
  Dataset data;
  if (history == 0 || horizon == 0) {
    throw std::invalid_argument("make_windowed_dataset: history and horizon must be > 0");
  }
  if (series.size() < history + horizon) return data;
  const std::size_t count = series.size() - history - horizon + 1;
  data.inputs.reserve(count);
  data.targets.reserve(count);
  for (std::size_t start = 0; start < count; ++start) {
    Vector input(series.begin() + start, series.begin() + start + history);
    data.inputs.push_back(std::move(input));
    double window_mean = 0.0;
    for (std::size_t h = 0; h < horizon; ++h) {
      window_mean += series[start + history + h];
    }
    window_mean /= static_cast<double>(horizon);
    data.targets.push_back({window_mean});
  }
  return data;
}

}  // namespace corp::dnn
