// Dense row-major matrix for the feed-forward network.
//
// The paper's DNN is tiny (Table II: 4 layers x 50 units), so clarity wins
// over blocking/vectorization tricks; the only hot kernel, gemv, is written
// to be auto-vectorizer friendly (contiguous row walks, no aliasing).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace corp::dnn {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return std::span<double>(data_.data() + r * cols_, cols_);
  }
  std::span<const double> row(std::size_t r) const {
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  void fill(double value);

  /// y = A x  (x.size() == cols, result.size() == rows).
  Vector multiply(std::span<const double> x) const;

  /// Y = X A^T for a batch X of N row-major inputs (N x cols), producing
  /// N x rows outputs — one gemv per input row, blocked over the batch so a
  /// weight row streamed from cache serves a whole tile of inputs. The
  /// per-element accumulation order is identical to multiply() (ascending
  /// column index within each output element), so multiply_batch(X).row(n)
  /// is bit-identical to multiply(X.row(n)) for every n.
  Matrix multiply_batch(const Matrix& inputs) const;

  /// y = A^T x (x.size() == rows, result.size() == cols). Used by
  /// back-propagation (Eq. 7) without materializing the transpose.
  Vector multiply_transposed(std::span<const double> x) const;

  /// this += scale * (a outer b), a.size()==rows, b.size()==cols. The
  /// weight-update kernel of Eq. 8.
  void add_outer(std::span<const double> a, std::span<const double> b,
                 double scale);

  /// this += scale * other (same shape).
  void add_scaled(const Matrix& other, double scale);

  /// Xavier/Glorot uniform init: U(-limit, limit), limit = sqrt(6/(in+out)).
  static Matrix xavier(std::size_t rows, std::size_t cols, util::Rng& rng);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Element-wise helpers used throughout training.
void axpy(double a, std::span<const double> x, std::span<double> y);
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace corp::dnn
