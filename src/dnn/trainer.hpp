// Training loop: per-sample SGD epochs with a held-out validation set and
// convergence-based stopping, exactly the procedure of Sec. III-A1a
// ("training continues for multiple training epochs ... until the
// validation set error converges to a low value"), plus the autoencoder
// pretraining step the testing description alludes to ("the algorithm
// autoencodes the input and generates the output").
#pragma once

#include <cstddef>
#include <vector>

#include "dnn/network.hpp"
#include "dnn/optimizer.hpp"
#include "util/rng.hpp"

namespace corp::dnn {

/// Supervised dataset of fixed-width rows.
struct Dataset {
  std::vector<Vector> inputs;
  std::vector<Vector> targets;

  std::size_t size() const { return inputs.size(); }
  bool consistent() const;

  /// Splits off the last `fraction` of samples as validation (chronological
  /// split — time-series data must not leak future into past).
  std::pair<Dataset, Dataset> split_validation(double fraction) const;
};

struct TrainerConfig {
  std::size_t max_epochs = 60;
  /// Stop when validation loss has not improved by more than min_delta for
  /// `patience` consecutive epochs.
  std::size_t patience = 5;
  double min_delta = 1e-6;
  double validation_fraction = 0.2;
  /// Shuffle training order each epoch.
  bool shuffle = true;
  /// Epochs of layerwise autoencoder pretraining before supervised
  /// training (0 disables).
  std::size_t pretrain_epochs = 3;
  double pretrain_learning_rate = 0.05;
};

struct TrainReport {
  std::size_t epochs_run = 0;
  double final_train_loss = 0.0;
  double best_validation_loss = 0.0;
  bool converged = false;  // stopped via patience rather than max_epochs
  std::vector<double> validation_curve;
};

class Trainer {
 public:
  Trainer(TrainerConfig config, util::Rng& rng);

  /// Trains the network in place using the given optimizer. The optimizer
  /// is bound to the network's layers internally.
  TrainReport fit(Network& network, Optimizer& optimizer,
                  const Dataset& data);

  /// Mean loss of the network over a dataset without updating weights.
  static double evaluate(Network& network, const Dataset& data);

 private:
  /// Greedy layerwise denoising-free autoencoder pretraining: each hidden
  /// layer is trained to reconstruct its input through a transient decoder
  /// before the supervised pass.
  void pretrain(Network& network, const Dataset& data);

  TrainerConfig config_;
  util::Rng& rng_;
};

/// Builds a sliding-window dataset from a chronological series: input =
/// `history` consecutive samples, target = the *mean* of the next
/// `horizon` samples. The standard shape for the unused-resource
/// predictor (input: last Delta slots; target: unused amount over the
/// next window (t, t+L] — the window-level quantity Sec. III-A predicts;
/// a single far slot would be dominated by irreducible per-slot noise).
Dataset make_windowed_dataset(std::span<const double> series,
                              std::size_t history, std::size_t horizon);

}  // namespace corp::dnn
