// Data-parallel training — the paper's stated future work ("we will
// further consider designing a distributed deep learning training system
// to reduce the computation overhead caused by DNN", Sec. VI).
//
// Synchronous data parallelism over a ThreadPool: each worker owns a
// replica of the network, processes a shard of every mini-batch, and the
// coordinator averages the accumulated gradients before one optimizer
// step on the master replica, whose parameters are then broadcast back.
// Equivalent in expectation to large-batch SGD; wall-clock scales with
// workers until the per-batch synchronization dominates (measured by the
// micro_kernels bench).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "dnn/network.hpp"
#include "dnn/optimizer.hpp"
#include "dnn/trainer.hpp"
#include "util/thread_pool.hpp"

namespace corp::dnn {

struct ParallelTrainerConfig {
  /// Worker replicas (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Samples per synchronous mini-batch (split across workers).
  std::size_t batch_size = 32;
  std::size_t max_epochs = 40;
  std::size_t patience = 5;
  double min_delta = 1e-7;
  double validation_fraction = 0.2;
  bool shuffle = true;
};

class ParallelTrainer {
 public:
  ParallelTrainer(ParallelTrainerConfig config, util::Rng& rng);

  /// Trains `network` in place. The optimizer must already match the
  /// network's architecture family (it is bound internally).
  TrainReport fit(Network& network, Optimizer& optimizer,
                  const Dataset& data);

  std::size_t workers() const { return pool_.size(); }

 private:
  /// Copies master parameters into every replica.
  static void broadcast(const Network& master,
                        std::vector<Network>& replicas);

  /// Adds each replica's accumulated gradients into the master's gradient
  /// buffers, scaled by 1/batch so the step equals the batch average.
  static void reduce_gradients(Network& master,
                               std::vector<Network>& replicas,
                               double scale);

  ParallelTrainerConfig config_;
  util::Rng rng_;
  util::ThreadPool pool_;
};

}  // namespace corp::dnn
