#include "dnn/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace corp::dnn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(double value) {
  for (double& x : data_) x = value;
}

Vector Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

namespace {

/// Batch-row tile staged column-major per GEMM call; kBlock accumulators
/// per weight row live in registers across a full column sweep. The 4-row
/// by 8-element shape saturates the FP ports on the deployment hosts:
/// each staged column load is reused by four weight rows, so the kernel
/// is arithmetic-bound rather than load-bound.
constexpr std::size_t kTile = 128;
constexpr std::size_t kBlock = 8;

// target_clones emits an ifunc whose resolver runs during relocation,
// before the TSan runtime has initialized — the binary then segfaults at
// load under -fsanitize=thread. The clones are a pure dispatch
// optimization (both emit the same FP op sequence, see below), so TSan
// builds simply take the single portable compilation of each kernel.
#if defined(__SANITIZE_THREAD__)
#define CORP_TARGET_CLONES
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CORP_TARGET_CLONES
#else
#define CORP_TARGET_CLONES [[gnu::target_clones("default", "avx2")]]
#endif
#else
#define CORP_TARGET_CLONES [[gnu::target_clones("default", "avx2")]]
#endif

/// Hot micro-kernel of multiply_batch: kBlock output elements of one
/// weight row, their accumulators register-resident for the entire
/// ascending-column sweep (the fixed trip count is what lets the compiler
/// keep them out of memory). target_clones compiles the same source once
/// for generic x86-64 and once for AVX2, picked at load time; neither
/// variant enables FMA, so no mul+add can fuse and every lane performs
/// the exact scalar op sequence — the dispatch changes throughput, never
/// bits.
CORP_TARGET_CLONES
void gemm_block(const double* weight_row, std::size_t cols,
                const double* staged, double* out_block) {
  double acc[kBlock] = {};
  for (std::size_t c = 0; c < cols; ++c) {
    const double w = weight_row[c];
    const double* col = staged + c * kTile;
    for (std::size_t i = 0; i < kBlock; ++i) acc[i] += w * col[i];
  }
  for (std::size_t i = 0; i < kBlock; ++i) out_block[i] = acc[i];
}

/// Four-weight-row variant: reuses each staged column load for four output
/// rows, quartering load traffic per FLOP. Per-element recurrences are the
/// same as gemm_block's.
CORP_TARGET_CLONES
void gemm_block4(const double* row0, const double* row1, const double* row2,
                 const double* row3, std::size_t cols, const double* staged,
                 double* out4) {
  double acc0[kBlock] = {};
  double acc1[kBlock] = {};
  double acc2[kBlock] = {};
  double acc3[kBlock] = {};
  for (std::size_t c = 0; c < cols; ++c) {
    const double w0 = row0[c];
    const double w1 = row1[c];
    const double w2 = row2[c];
    const double w3 = row3[c];
    const double* col = staged + c * kTile;
    for (std::size_t i = 0; i < kBlock; ++i) {
      acc0[i] += w0 * col[i];
      acc1[i] += w1 * col[i];
      acc2[i] += w2 * col[i];
      acc3[i] += w3 * col[i];
    }
  }
  for (std::size_t i = 0; i < kBlock; ++i) {
    out4[i] = acc0[i];
    out4[kBlock + i] = acc1[i];
    out4[2 * kBlock + i] = acc2[i];
    out4[3 * kBlock + i] = acc3[i];
  }
}

/// Remainder variant for the tail block (fewer than kBlock rows): same
/// recurrence, runtime trip count.
CORP_TARGET_CLONES
void gemm_block_tail(const double* weight_row, std::size_t cols,
                     const double* staged, double* out_block,
                     std::size_t rows) {
  double acc[kBlock] = {};
  for (std::size_t c = 0; c < cols; ++c) {
    const double w = weight_row[c];
    const double* col = staged + c * kTile;
    for (std::size_t i = 0; i < rows; ++i) acc[i] += w * col[i];
  }
  for (std::size_t i = 0; i < rows; ++i) out_block[i] = acc[i];
}

}  // namespace

Matrix Matrix::multiply_batch(const Matrix& inputs) const {
  if (inputs.cols_ != cols_) {
    throw std::invalid_argument("Matrix::multiply_batch: dimension mismatch");
  }
  Matrix out(inputs.rows_, rows_);
  // Tiny batches would pay more for staging than the tiled kernel saves;
  // the per-row loop is bit-identical (it *is* multiply() per row).
  if (inputs.rows_ < 8) {
    for (std::size_t n = 0; n < inputs.rows_; ++n) {
      for (std::size_t r = 0; r < rows_; ++r) {
        const double* row_ptr = data_.data() + r * cols_;
        const double* x = inputs.data_.data() + n * cols_;
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
        out.data_[n * rows_ + r] = acc;
      }
    }
    return out;
  }
  // Each output element keeps multiply()'s exact recurrence — one
  // accumulator walking the columns in ascending order — but the kernel
  // runs that recurrence for kBlock batch rows at once with the
  // accumulators held in registers. Staging the tile column-major makes
  // the block loads unit-stride, so the micro-kernel vectorizes and
  // pipelines where the scalar dot product is a latency-bound add chain.
  // That independence across rows, not any reassociation within a row, is
  // where the batched speedup comes from; the per-element FP op sequence
  // is unchanged, so multiply_batch(X).row(n) stays bit-identical to
  // multiply(X.row(n)).
  // Reused scratch: every element read below [0, tile) is written first,
  // so stale contents from a previous call are never observed. thread_local
  // keeps concurrent pool shards on disjoint buffers.
  thread_local std::vector<double> staged;
  thread_local std::vector<double> out_block;
  if (staged.size() < cols_ * kTile) staged.resize(cols_ * kTile);
  if (out_block.size() < 4 * kBlock) out_block.resize(4 * kBlock);
  for (std::size_t n0 = 0; n0 < inputs.rows_; n0 += kTile) {
    const std::size_t tile = std::min(inputs.rows_ - n0, kTile);
    for (std::size_t c = 0; c < cols_; ++c) {
      double* col = staged.data() + c * kTile;
      for (std::size_t n = 0; n < tile; ++n) {
        col[n] = inputs.data_[(n0 + n) * cols_ + c];
      }
    }
    // Block loop outside the row loop: one kBlock slice of the staged
    // tile (cols_ cache lines) stays L1-resident across every weight row.
    for (std::size_t b0 = 0; b0 < tile; b0 += kBlock) {
      const std::size_t block = std::min(tile - b0, kBlock);
      const double* slice = staged.data() + b0;
      std::size_t r = 0;
      if (block == kBlock) {
        for (; r + 4 <= rows_; r += 4) {
          gemm_block4(data_.data() + r * cols_, data_.data() + (r + 1) * cols_,
                      data_.data() + (r + 2) * cols_,
                      data_.data() + (r + 3) * cols_, cols_, slice,
                      out_block.data());
          for (std::size_t q = 0; q < 4; ++q) {
            for (std::size_t n = 0; n < kBlock; ++n) {
              out.data_[(n0 + b0 + n) * rows_ + r + q] =
                  out_block[q * kBlock + n];
            }
          }
        }
        for (; r < rows_; ++r) {
          gemm_block(data_.data() + r * cols_, cols_, slice,
                     out_block.data());
          for (std::size_t n = 0; n < kBlock; ++n) {
            out.data_[(n0 + b0 + n) * rows_ + r] = out_block[n];
          }
        }
      } else {
        for (; r < rows_; ++r) {
          gemm_block_tail(data_.data() + r * cols_, cols_, slice,
                          out_block.data(), block);
          for (std::size_t n = 0; n < block; ++n) {
            out.data_[(n0 + b0 + n) * rows_ + r] = out_block[n];
          }
        }
      }
    }
  }
  return out;
}

Vector Matrix::multiply_transposed(std::span<const double> x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument(
        "Matrix::multiply_transposed: dimension mismatch");
  }
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += xr * row_ptr[c];
  }
  return y;
}

void Matrix::add_outer(std::span<const double> a, std::span<const double> b,
                       double scale) {
  if (a.size() != rows_ || b.size() != cols_) {
    throw std::invalid_argument("Matrix::add_outer: dimension mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const double ar = scale * a[r];
    if (ar == 0.0) continue;
    double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) row_ptr[c] += ar * b[c];
  }
}

void Matrix::add_scaled(const Matrix& other, double scale) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("Matrix::add_scaled: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& x : m.data_) x = rng.uniform(-limit, limit);
  return m;
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace corp::dnn
