#include "dnn/matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace corp::dnn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(double value) {
  for (double& x : data_) x = value;
}

Vector Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::multiply_transposed(std::span<const double> x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument(
        "Matrix::multiply_transposed: dimension mismatch");
  }
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += xr * row_ptr[c];
  }
  return y;
}

void Matrix::add_outer(std::span<const double> a, std::span<const double> b,
                       double scale) {
  if (a.size() != rows_ || b.size() != cols_) {
    throw std::invalid_argument("Matrix::add_outer: dimension mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const double ar = scale * a[r];
    if (ar == 0.0) continue;
    double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) row_ptr[c] += ar * b[c];
  }
}

void Matrix::add_scaled(const Matrix& other, double scale) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("Matrix::add_scaled: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& x : m.data_) x = rng.uniform(-limit, limit);
  return m;
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace corp::dnn
