// Regression losses. Training minimizes MSE; the gradient definition keeps
// the sign convention of Eq. 6: E_i = (t_i - g_i) * F'(g_i), i.e. the error
// term is the *negative* of dLoss/dOutput for 0.5*(t-g)^2.
#pragma once

#include <span>

namespace corp::dnn {

/// 0.5 * mean squared error over a batch of scalar comparisons.
double mse(std::span<const double> prediction, std::span<const double> target);

/// d(0.5*(t-g)^2)/dg = (g - t), written per-component into `grad`.
void mse_gradient(std::span<const double> prediction,
                  std::span<const double> target, std::span<double> grad);

/// Mean absolute error (reporting only).
double mae_loss(std::span<const double> prediction,
                std::span<const double> target);

}  // namespace corp::dnn
