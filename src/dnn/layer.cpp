#include "dnn/layer.hpp"

#include <cmath>
#include <stdexcept>

namespace corp::dnn {

DenseLayer::DenseLayer(std::size_t inputs, std::size_t outputs,
                       Activation activation, util::Rng& rng)
    : weights_(Matrix::xavier(outputs, inputs, rng)),
      bias_(outputs, 0.0),
      grad_weights_(outputs, inputs, 0.0),
      grad_bias_(outputs, 0.0),
      activation_(activation) {
  if (inputs == 0 || outputs == 0) {
    throw std::invalid_argument("DenseLayer: zero-sized layer");
  }
}

const Vector& DenseLayer::forward(std::span<const double> input) {
  if (input.size() != inputs()) {
    throw std::invalid_argument("DenseLayer::forward: input size mismatch");
  }
  last_input_.assign(input.begin(), input.end());
  last_output_ = weights_.multiply(input);
  for (std::size_t i = 0; i < last_output_.size(); ++i) {
    last_output_[i] = activate(activation_, last_output_[i] + bias_[i]);
  }
  return last_output_;
}

Matrix DenseLayer::forward_batch(const Matrix& batch) const {
  if (batch.cols() != inputs()) {
    throw std::invalid_argument(
        "DenseLayer::forward_batch: input size mismatch");
  }
  Matrix out = weights_.multiply_batch(batch);
  // Hoist the activation dispatch out of the element loop; the inlined
  // branches evaluate the exact activate() expression, so results stay
  // bit-identical to the scalar path (which dispatches per element).
  switch (activation_) {
    case Activation::kSigmoid:
      for (std::size_t n = 0; n < out.rows(); ++n) {
        for (std::size_t i = 0; i < out.cols(); ++i) {
          out(n, i) = 1.0 / (1.0 + std::exp(-(out(n, i) + bias_[i])));
        }
      }
      break;
    case Activation::kIdentity:
      for (std::size_t n = 0; n < out.rows(); ++n) {
        for (std::size_t i = 0; i < out.cols(); ++i) {
          out(n, i) += bias_[i];
        }
      }
      break;
    default:
      for (std::size_t n = 0; n < out.rows(); ++n) {
        for (std::size_t i = 0; i < out.cols(); ++i) {
          out(n, i) = activate(activation_, out(n, i) + bias_[i]);
        }
      }
      break;
  }
  return out;
}

Vector DenseLayer::backward(std::span<const double> output_grad) {
  if (output_grad.size() != outputs()) {
    throw std::invalid_argument("DenseLayer::backward: grad size mismatch");
  }
  if (last_input_.size() != inputs()) {
    throw std::logic_error("DenseLayer::backward without forward");
  }
  // delta_i = dLoss/dOut_i * F'(g_i), Eq. 6/7 applied at this layer.
  Vector delta(outputs());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = output_grad[i] *
               activate_derivative_from_output(activation_, last_output_[i]);
  }
  // Accumulate gradients (Eq. 8: dW_ij = delta_i * g_j(d-1)).
  grad_weights_.add_outer(delta, last_input_, 1.0);
  for (std::size_t i = 0; i < delta.size(); ++i) grad_bias_[i] += delta[i];
  // Propagate to the previous layer: dLoss/dIn = W^T delta.
  return weights_.multiply_transposed(delta);
}

void DenseLayer::zero_grad() {
  grad_weights_.fill(0.0);
  for (double& g : grad_bias_) g = 0.0;
}

std::size_t DenseLayer::parameter_count() const {
  return weights_.size() + bias_.size();
}

}  // namespace corp::dnn
