// Fully connected layer with cached forward state for back-propagation.
//
// Forward (Eq. 5):  g_i(d) = F(sum_j w_ij * g_j(d-1) + e_i)
// Backward (Eq. 6/7): error terms flow through W^T scaled by F'(g).
// Gradients accumulate into grad_weights/grad_bias; an Optimizer applies
// them (Eq. 8).
#pragma once

#include <span>

#include "dnn/activation.hpp"
#include "dnn/matrix.hpp"

namespace corp::dnn {

class DenseLayer {
 public:
  DenseLayer(std::size_t inputs, std::size_t outputs, Activation activation,
             util::Rng& rng);

  std::size_t inputs() const { return weights_.cols(); }
  std::size_t outputs() const { return weights_.rows(); }
  Activation activation() const { return activation_; }

  Matrix& weights() { return weights_; }
  const Matrix& weights() const { return weights_; }
  Vector& bias() { return bias_; }
  const Vector& bias() const { return bias_; }
  Matrix& grad_weights() { return grad_weights_; }
  const Matrix& grad_weights() const { return grad_weights_; }
  Vector& grad_bias() { return grad_bias_; }
  const Vector& grad_bias() const { return grad_bias_; }

  /// Computes activations for one sample, caching input and output for a
  /// subsequent backward() call.
  const Vector& forward(std::span<const double> input);

  /// Pure batched forward: activations for N samples (N x inputs) without
  /// touching the cached training state, so concurrent calls are safe and
  /// each output row is bit-identical to forward() on the same input row.
  Matrix forward_batch(const Matrix& batch) const;

  /// Given dLoss/dOutput of this layer, accumulates weight/bias gradients
  /// and returns dLoss/dInput. Must follow a forward() on the same sample.
  Vector backward(std::span<const double> output_grad);

  /// Zeroes accumulated gradients (start of each batch).
  void zero_grad();

  /// Number of trainable parameters.
  std::size_t parameter_count() const;

 private:
  Matrix weights_;        // outputs x inputs
  Vector bias_;           // outputs
  Matrix grad_weights_;   // same shape as weights_
  Vector grad_bias_;      // same shape as bias_
  Activation activation_;

  // Cached forward state (single-sample training as in the paper, which
  // updates weights per input).
  Vector last_input_;
  Vector last_output_;
};

}  // namespace corp::dnn
