#include "dnn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace corp::dnn {

SgdOptimizer::SgdOptimizer(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {
  if (learning_rate <= 0.0) {
    throw std::invalid_argument("SgdOptimizer: learning_rate must be > 0");
  }
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("SgdOptimizer: momentum must be in [0, 1)");
  }
}

void SgdOptimizer::bind(std::vector<DenseLayer*> layers) {
  layers_ = std::move(layers);
  velocity_w_.clear();
  velocity_b_.clear();
  for (const DenseLayer* layer : layers_) {
    velocity_w_.emplace_back(layer->outputs(), layer->inputs(), 0.0);
    velocity_b_.emplace_back(layer->outputs(), 0.0);
  }
}

void SgdOptimizer::step() {
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    DenseLayer& layer = *layers_[li];
    if (momentum_ > 0.0) {
      Matrix& vw = velocity_w_[li];
      Vector& vb = velocity_b_[li];
      for (std::size_t i = 0; i < vw.size(); ++i) {
        vw.flat()[i] = momentum_ * vw.flat()[i] -
                       learning_rate_ * layer.grad_weights().flat()[i];
      }
      layer.weights().add_scaled(vw, 1.0);
      for (std::size_t i = 0; i < vb.size(); ++i) {
        vb[i] = momentum_ * vb[i] - learning_rate_ * layer.grad_bias()[i];
        layer.bias()[i] += vb[i];
      }
    } else {
      layer.weights().add_scaled(layer.grad_weights(), -learning_rate_);
      for (std::size_t i = 0; i < layer.bias().size(); ++i) {
        layer.bias()[i] -= learning_rate_ * layer.grad_bias()[i];
      }
    }
  }
}

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1, double beta2,
                             double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  if (learning_rate <= 0.0) {
    throw std::invalid_argument("AdamOptimizer: learning_rate must be > 0");
  }
}

void AdamOptimizer::bind(std::vector<DenseLayer*> layers) {
  layers_ = std::move(layers);
  t_ = 0;
  m_w_.clear();
  v_w_.clear();
  m_b_.clear();
  v_b_.clear();
  for (const DenseLayer* layer : layers_) {
    m_w_.emplace_back(layer->outputs(), layer->inputs(), 0.0);
    v_w_.emplace_back(layer->outputs(), layer->inputs(), 0.0);
    m_b_.emplace_back(layer->outputs(), 0.0);
    v_b_.emplace_back(layer->outputs(), 0.0);
  }
}

void AdamOptimizer::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    DenseLayer& layer = *layers_[li];
    auto gw = layer.grad_weights().flat();
    auto w = layer.weights().flat();
    auto mw = m_w_[li].flat();
    auto vw = v_w_[li].flat();
    for (std::size_t i = 0; i < gw.size(); ++i) {
      mw[i] = beta1_ * mw[i] + (1.0 - beta1_) * gw[i];
      vw[i] = beta2_ * vw[i] + (1.0 - beta2_) * gw[i] * gw[i];
      const double mhat = mw[i] / bc1;
      const double vhat = vw[i] / bc2;
      w[i] -= learning_rate_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
    for (std::size_t i = 0; i < layer.bias().size(); ++i) {
      const double g = layer.grad_bias()[i];
      m_b_[li][i] = beta1_ * m_b_[li][i] + (1.0 - beta1_) * g;
      v_b_[li][i] = beta2_ * v_b_[li][i] + (1.0 - beta2_) * g * g;
      const double mhat = m_b_[li][i] / bc1;
      const double vhat = v_b_[li][i] / bc2;
      layer.bias()[i] -= learning_rate_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
  }
}

}  // namespace corp::dnn
