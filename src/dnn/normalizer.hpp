// Min-max feature scaling. Sigmoid hidden units need inputs in a bounded
// range; the normalizer maps raw utilization histories into [0, 1] and maps
// predictions back to resource units.
#pragma once

#include <span>
#include <vector>

namespace corp::dnn {

class MinMaxNormalizer {
 public:
  MinMaxNormalizer() = default;

  /// Learns the min/max of the data. Degenerate (constant) data maps to
  /// 0.5 in transform(). Throws std::invalid_argument on empty input.
  void fit(std::span<const double> data);

  bool fitted() const { return fitted_; }
  double min() const { return min_; }
  double max() const { return max_; }

  double transform(double x) const;
  double inverse(double y) const;

  std::vector<double> transform(std::span<const double> xs) const;
  std::vector<double> inverse(std::span<const double> ys) const;

 private:
  double min_ = 0.0;
  double max_ = 1.0;
  bool fitted_ = false;
};

}  // namespace corp::dnn
