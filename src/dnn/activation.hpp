// Neuron activation functions F and their derivatives F' (Eq. 5-7).
// The paper uses the sigmoid ("Equ. (5) is a sigmoid function"); the other
// kinds exist for the ablation benches and for the linear output layer a
// regression head needs.
#pragma once

#include <span>
#include <string_view>

namespace corp::dnn {

enum class Activation { kSigmoid, kTanh, kRelu, kIdentity };

std::string_view activation_name(Activation a);
Activation activation_from_name(std::string_view name);

/// F(x).
double activate(Activation a, double x);

/// F'(x) expressed in terms of the *activation value* y = F(x), matching
/// how back-propagation evaluates it (Eq. 6 applies F' to g_i, the cached
/// output): sigmoid' = y(1-y), tanh' = 1-y^2, relu' = [y > 0], id' = 1.
double activate_derivative_from_output(Activation a, double y);

/// Applies F in place over a span.
void activate_inplace(Activation a, std::span<double> xs);

}  // namespace corp::dnn
