#include "dnn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace corp::dnn {

double mse(std::span<const double> prediction, std::span<const double> target) {
  if (prediction.size() != target.size() || prediction.empty()) {
    throw std::invalid_argument("mse: size mismatch or empty");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    const double d = prediction[i] - target[i];
    s += d * d;
  }
  return 0.5 * s / static_cast<double>(prediction.size());
}

void mse_gradient(std::span<const double> prediction,
                  std::span<const double> target, std::span<double> grad) {
  if (prediction.size() != target.size() || prediction.size() != grad.size()) {
    throw std::invalid_argument("mse_gradient: size mismatch");
  }
  const double inv_n = 1.0 / static_cast<double>(prediction.size());
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    grad[i] = (prediction[i] - target[i]) * inv_n;
  }
}

double mae_loss(std::span<const double> prediction,
                std::span<const double> target) {
  if (prediction.size() != target.size() || prediction.empty()) {
    throw std::invalid_argument("mae_loss: size mismatch or empty");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    s += std::abs(prediction[i] - target[i]);
  }
  return s / static_cast<double>(prediction.size());
}

}  // namespace corp::dnn
