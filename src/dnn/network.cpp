#include "dnn/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace corp::dnn {

Network::Network(const NetworkConfig& config, util::Rng& rng)
    : config_(config) {
  if (config.input_size == 0 || config.output_size == 0) {
    throw std::invalid_argument("NetworkConfig: zero input/output size");
  }
  if (config.hidden_layers == 0) {
    throw std::invalid_argument("NetworkConfig: needs >= 1 hidden layer");
  }
  std::size_t prev = config.input_size;
  for (std::size_t i = 0; i < config.hidden_layers; ++i) {
    layers_.emplace_back(prev, config.hidden_units, config.hidden_activation,
                         rng);
    prev = config.hidden_units;
  }
  layers_.emplace_back(prev, config.output_size, config.output_activation,
                       rng);
}

std::vector<DenseLayer*> Network::layer_pointers() {
  std::vector<DenseLayer*> ptrs;
  ptrs.reserve(layers_.size());
  for (auto& layer : layers_) ptrs.push_back(&layer);
  return ptrs;
}

Vector Network::forward(std::span<const double> input) {
  Vector current(input.begin(), input.end());
  for (auto& layer : layers_) {
    current = layer.forward(current);
  }
  return current;
}

namespace {

/// Serial layer sweep shared by the unsharded path and each shard.
Matrix forward_batch_serial(const std::vector<DenseLayer>& layers,
                            Matrix batch) {
  for (const DenseLayer& layer : layers) {
    batch = layer.forward_batch(batch);
  }
  return batch;
}

}  // namespace

Matrix Network::forward_batch(const Matrix& batch,
                              util::ThreadPool* pool) const {
  if (batch.cols() != config_.input_size) {
    throw std::invalid_argument("Network::forward_batch: input size mismatch");
  }
  const std::size_t rows = batch.rows();
  if (pool == nullptr || pool->size() <= 1 ||
      rows < kForwardBatchShardMinRows) {
    return forward_batch_serial(layers_, batch);
  }
  // Deterministic sharding: chunk boundaries depend only on (rows, chunks),
  // every row's arithmetic is independent of its neighbors, and each chunk
  // writes a disjoint row range of the output.
  Matrix out(rows, config_.output_size);
  const std::size_t chunks = std::min(pool->size(), rows);
  pool->parallel_for(chunks, [&](std::size_t k) {
    const std::size_t begin = rows * k / chunks;
    const std::size_t end = rows * (k + 1) / chunks;
    if (begin == end) return;
    Matrix chunk(end - begin, batch.cols());
    for (std::size_t n = begin; n < end; ++n) {
      const std::span<const double> src = batch.row(n);
      std::copy(src.begin(), src.end(), chunk.row(n - begin).begin());
    }
    const Matrix result = forward_batch_serial(layers_, std::move(chunk));
    for (std::size_t n = begin; n < end; ++n) {
      const std::span<const double> src = result.row(n - begin);
      std::copy(src.begin(), src.end(), out.row(n).begin());
    }
  });
  return out;
}

void Network::backward(std::span<const double> output_grad) {
  Vector grad(output_grad.begin(), output_grad.end());
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = it->backward(grad);
  }
}

void Network::zero_grad() {
  for (auto& layer : layers_) layer.zero_grad();
}

double Network::train_sample(std::span<const double> input,
                             std::span<const double> target) {
  const Vector prediction = forward(input);
  if (prediction.size() != target.size()) {
    throw std::invalid_argument("train_sample: target size mismatch");
  }
  const double loss = mse(prediction, target);
  Vector grad(prediction.size());
  mse_gradient(prediction, target, grad);
  backward(grad);
  return loss;
}

std::size_t Network::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.parameter_count();
  return n;
}

}  // namespace corp::dnn
