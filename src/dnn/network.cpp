#include "dnn/network.hpp"

#include <stdexcept>

namespace corp::dnn {

Network::Network(const NetworkConfig& config, util::Rng& rng)
    : config_(config) {
  if (config.input_size == 0 || config.output_size == 0) {
    throw std::invalid_argument("NetworkConfig: zero input/output size");
  }
  if (config.hidden_layers == 0) {
    throw std::invalid_argument("NetworkConfig: needs >= 1 hidden layer");
  }
  std::size_t prev = config.input_size;
  for (std::size_t i = 0; i < config.hidden_layers; ++i) {
    layers_.emplace_back(prev, config.hidden_units, config.hidden_activation,
                         rng);
    prev = config.hidden_units;
  }
  layers_.emplace_back(prev, config.output_size, config.output_activation,
                       rng);
}

std::vector<DenseLayer*> Network::layer_pointers() {
  std::vector<DenseLayer*> ptrs;
  ptrs.reserve(layers_.size());
  for (auto& layer : layers_) ptrs.push_back(&layer);
  return ptrs;
}

Vector Network::forward(std::span<const double> input) {
  Vector current(input.begin(), input.end());
  for (auto& layer : layers_) {
    current = layer.forward(current);
  }
  return current;
}

void Network::backward(std::span<const double> output_grad) {
  Vector grad(output_grad.begin(), output_grad.end());
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = it->backward(grad);
  }
}

void Network::zero_grad() {
  for (auto& layer : layers_) layer.zero_grad();
}

double Network::train_sample(std::span<const double> input,
                             std::span<const double> target) {
  const Vector prediction = forward(input);
  if (prediction.size() != target.size()) {
    throw std::invalid_argument("train_sample: target size mismatch");
  }
  const double loss = mse(prediction, target);
  Vector grad(prediction.size());
  mse_gradient(prediction, target, grad);
  backward(grad);
  return loss;
}

std::size_t Network::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.parameter_count();
  return n;
}

}  // namespace corp::dnn
