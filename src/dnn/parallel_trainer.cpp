#include "dnn/parallel_trainer.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace corp::dnn {

ParallelTrainer::ParallelTrainer(ParallelTrainerConfig config,
                                 util::Rng& rng)
    : config_(config), rng_(rng.fork()), pool_(config.workers) {
  if (config_.batch_size == 0) {
    throw std::invalid_argument("ParallelTrainer: batch_size must be > 0");
  }
}

void ParallelTrainer::broadcast(const Network& master,
                                std::vector<Network>& replicas) {
  for (Network& replica : replicas) {
    for (std::size_t li = 0; li < master.layer_count(); ++li) {
      replica.layer(li).weights() = master.layer(li).weights();
      replica.layer(li).bias() = master.layer(li).bias();
    }
  }
}

void ParallelTrainer::reduce_gradients(Network& master,
                                       std::vector<Network>& replicas,
                                       double scale) {
  for (std::size_t li = 0; li < master.layer_count(); ++li) {
    DenseLayer& target = master.layer(li);
    for (Network& replica : replicas) {
      target.grad_weights().add_scaled(replica.layer(li).grad_weights(),
                                       scale);
      const auto& rb = replica.layer(li).grad_bias();
      for (std::size_t i = 0; i < rb.size(); ++i) {
        target.grad_bias()[i] += scale * rb[i];
      }
    }
  }
}

TrainReport ParallelTrainer::fit(Network& network, Optimizer& optimizer,
                                 const Dataset& data) {
  const obs::ScopedTimer fit_timer("dnn.parallel_fit");
  if (!data.consistent()) {
    throw std::invalid_argument("ParallelTrainer::fit: inconsistent dataset");
  }
  TrainReport report;
  if (data.size() == 0) return report;

  auto [train, val] = data.split_validation(config_.validation_fraction);
  if (train.size() == 0) {
    train = data;
    val = data;
  }
  optimizer.bind(network.layer_pointers());

  // Worker replicas (same architecture, parameters synced per batch).
  std::vector<Network> replicas;
  replicas.reserve(pool_.size());
  for (std::size_t w = 0; w < pool_.size(); ++w) {
    util::Rng replica_rng = rng_.fork();
    replicas.emplace_back(network.config(), replica_rng);
  }

  obs::MetricRegistry& reg = obs::registry();
  const bool metrics = reg.enabled();
  obs::Histogram* epoch_ms = metrics ? &reg.histogram("dnn.epoch_ms") : nullptr;
  obs::Counter* sgd_steps = metrics ? &reg.counter("dnn.sgd_steps") : nullptr;
  obs::Counter* epochs_run = metrics ? &reg.counter("dnn.epochs") : nullptr;

  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;
  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    const auto epoch_start = std::chrono::steady_clock::now();
    std::vector<std::size_t> order;
    if (config_.shuffle) {
      order = rng_.permutation(train.size());
    } else {
      order.resize(train.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    }

    double epoch_loss = 0.0;
    for (std::size_t begin = 0; begin < order.size();
         begin += config_.batch_size) {
      const std::size_t end =
          std::min(begin + config_.batch_size, order.size());
      const std::size_t batch = end - begin;

      broadcast(network, replicas);
      std::vector<double> worker_loss(replicas.size(), 0.0);
      pool_.parallel_for(replicas.size(), [&](std::size_t w) {
        Network& replica = replicas[w];
        replica.zero_grad();
        // Contiguous shard of the batch for worker w.
        const std::size_t shard =
            (batch + replicas.size() - 1) / replicas.size();
        const std::size_t lo = begin + w * shard;
        const std::size_t hi = std::min(lo + shard, end);
        for (std::size_t s = lo; s < hi; ++s) {
          worker_loss[w] += replica.train_sample(train.inputs[order[s]],
                                                 train.targets[order[s]]);
        }
      });

      network.zero_grad();
      reduce_gradients(network, replicas,
                       1.0 / static_cast<double>(batch));
      optimizer.step();
      for (double l : worker_loss) epoch_loss += l;
    }

    report.final_train_loss =
        epoch_loss / static_cast<double>(train.size());
    const double val_loss =
        val.size() > 0 ? Trainer::evaluate(network, val)
                       : report.final_train_loss;
    report.validation_curve.push_back(val_loss);
    report.epochs_run = epoch + 1;

    if (metrics) {
      const std::chrono::duration<double, std::milli> wall =
          std::chrono::steady_clock::now() - epoch_start;
      epoch_ms->observe(wall.count());
      // One synchronized optimizer step per batch; every sample costs a
      // forward/backward pass on some worker.
      sgd_steps->add(order.size());
      epochs_run->add(1);
      reg.gauge("dnn.epoch_train_loss").set(report.final_train_loss);
      reg.gauge("dnn.epoch_validation_loss").set(val_loss);
    }

    if (val_loss < best_val - config_.min_delta) {
      best_val = val_loss;
      since_best = 0;
    } else if (++since_best >= config_.patience) {
      report.converged = true;
      break;
    }
  }
  report.best_validation_loss = best_val;
  if (metrics) {
    reg.counter("dnn.parallel_fits").add(1);
    reg.gauge("dnn.best_validation_loss").set(report.best_validation_loss);
  }
  return report;
}

}  // namespace corp::dnn
