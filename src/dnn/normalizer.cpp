#include "dnn/normalizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace corp::dnn {

void MinMaxNormalizer::fit(std::span<const double> data) {
  if (data.empty()) {
    throw std::invalid_argument("MinMaxNormalizer::fit: empty data");
  }
  min_ = *std::min_element(data.begin(), data.end());
  max_ = *std::max_element(data.begin(), data.end());
  fitted_ = true;
}

double MinMaxNormalizer::transform(double x) const {
  if (!fitted_) throw std::logic_error("MinMaxNormalizer: not fitted");
  const double range = max_ - min_;
  if (range <= 0.0) return 0.5;
  return (x - min_) / range;
}

double MinMaxNormalizer::inverse(double y) const {
  if (!fitted_) throw std::logic_error("MinMaxNormalizer: not fitted");
  const double range = max_ - min_;
  if (range <= 0.0) return min_;
  return min_ + y * range;
}

std::vector<double> MinMaxNormalizer::transform(
    std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(transform(x));
  return out;
}

std::vector<double> MinMaxNormalizer::inverse(
    std::span<const double> ys) const {
  std::vector<double> out;
  out.reserve(ys.size());
  for (double y : ys) out.push_back(inverse(y));
  return out;
}

}  // namespace corp::dnn
