#include "dnn/activation.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace corp::dnn {

std::string_view activation_name(Activation a) {
  switch (a) {
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
    case Activation::kRelu: return "relu";
    case Activation::kIdentity: return "identity";
  }
  return "?";
}

Activation activation_from_name(std::string_view name) {
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  if (name == "relu") return Activation::kRelu;
  if (name == "identity") return Activation::kIdentity;
  throw std::invalid_argument("unknown activation: " + std::string(name));
}

double activate(Activation a, double x) {
  switch (a) {
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::kTanh: return std::tanh(x);
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kIdentity: return x;
  }
  return x;
}

double activate_derivative_from_output(Activation a, double y) {
  switch (a) {
    case Activation::kSigmoid: return y * (1.0 - y);
    case Activation::kTanh: return 1.0 - y * y;
    case Activation::kRelu: return y > 0.0 ? 1.0 : 0.0;
    case Activation::kIdentity: return 1.0;
  }
  return 1.0;
}

void activate_inplace(Activation a, std::span<double> xs) {
  for (double& x : xs) x = activate(a, x);
}

}  // namespace corp::dnn
