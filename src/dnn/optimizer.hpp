// Gradient-descent optimizers applying Eq. 8 (Delta w = mu * E * g) and the
// modern variants used by the ablation benches.
#pragma once

#include <memory>
#include <vector>

#include "dnn/layer.hpp"

namespace corp::dnn {

/// Applies accumulated layer gradients to layer parameters. step() is
/// called once per (mini-)batch after backward passes populated the grads.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers the layers whose parameters this optimizer owns updating.
  /// Must be called once before step(); re-binding resets internal state.
  virtual void bind(std::vector<DenseLayer*> layers) = 0;

  virtual void step() = 0;
};

/// Plain SGD with optional classical momentum. momentum = 0 reproduces the
/// paper's weight update rule exactly.
class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0);

  void bind(std::vector<DenseLayer*> layers) override;
  void step() override;

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 private:
  double learning_rate_;
  double momentum_;
  std::vector<DenseLayer*> layers_;
  std::vector<Matrix> velocity_w_;
  std::vector<Vector> velocity_b_;
};

/// Adam (Kingma & Ba) — used to show the prediction stack is robust to the
/// optimizer choice in the ablation bench.
class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double learning_rate = 1e-3, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8);

  void bind(std::vector<DenseLayer*> layers) override;
  void step() override;

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::size_t t_ = 0;
  std::vector<DenseLayer*> layers_;
  std::vector<Matrix> m_w_, v_w_;
  std::vector<Vector> m_b_, v_b_;
};

}  // namespace corp::dnn
