// Feed-forward network: the paper's DNN (Fig. 2, Table II: h = 4 hidden
// layers of N_n = 50 units, sigmoid activations) with a linear regression
// head for predicting the amount of unused resource.
#pragma once

#include <vector>

#include "dnn/layer.hpp"
#include "dnn/loss.hpp"

namespace corp::util {
class ThreadPool;
}  // namespace corp::util

namespace corp::dnn {

/// Batches below this many rows always run serially: sharding tiny batches
/// costs more in task dispatch than the GEMM saves, and the same constant
/// lets callers avoid spinning up a pool they can never use.
inline constexpr std::size_t kForwardBatchShardMinRows = 64;

struct NetworkConfig {
  std::size_t input_size = 12;            // Delta history slots
  std::size_t output_size = 1;            // predicted unused amount
  std::size_t hidden_layers = 4;          // Table II: h = 4
  std::size_t hidden_units = 50;          // Table II: N_n = 50
  Activation hidden_activation = Activation::kSigmoid;
  Activation output_activation = Activation::kIdentity;
};

class Network {
 public:
  Network(const NetworkConfig& config, util::Rng& rng);

  const NetworkConfig& config() const { return config_; }
  std::size_t layer_count() const { return layers_.size(); }
  DenseLayer& layer(std::size_t i) { return layers_[i]; }
  const DenseLayer& layer(std::size_t i) const { return layers_[i]; }

  /// Non-owning pointers to all layers, for Optimizer::bind.
  std::vector<DenseLayer*> layer_pointers();

  /// Feed-forward evaluation caching per-layer state for backward().
  Vector forward(std::span<const double> input);

  /// Inference without keeping gradient state correct for training (same
  /// computation; named for call-site clarity).
  Vector predict(std::span<const double> input) { return forward(input); }

  /// Pure batched inference over N samples (N x input_size -> N x
  /// output_size). Each output row is bit-identical to predict() on the
  /// corresponding input row. When a pool is supplied and the batch has at
  /// least kForwardBatchShardMinRows rows, contiguous row chunks are
  /// evaluated concurrently; chunk boundaries depend only on (rows, pool
  /// size) and every row's arithmetic is independent, so the sharded result
  /// is bit-identical to the serial one.
  Matrix forward_batch(const Matrix& batch,
                       util::ThreadPool* pool = nullptr) const;

  /// Runs backward over all layers given dLoss/dPrediction, accumulating
  /// gradients. Must follow a forward() on the same sample.
  void backward(std::span<const double> output_grad);

  void zero_grad();

  /// One full training sample: forward, MSE loss, backward. Returns the
  /// sample loss. Gradients accumulate (caller steps the optimizer).
  double train_sample(std::span<const double> input,
                      std::span<const double> target);

  std::size_t parameter_count() const;

 private:
  NetworkConfig config_;
  std::vector<DenseLayer> layers_;
};

}  // namespace corp::dnn
