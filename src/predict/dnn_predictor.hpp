// DNN forecast of the temporarily-unused amount (Sec. III-A1a).
//
// Input: the last Delta slots of the unused-resource series, min-max
// normalized. Output: the unused amount at t + L. Architecture per Table
// II: 4 hidden layers x 50 sigmoid units with a linear regression head,
// trained by per-sample SGD with validation-convergence stopping and
// autoencoder pretraining.
#pragma once

#include <memory>

#include "dnn/network.hpp"
#include "dnn/normalizer.hpp"
#include "dnn/optimizer.hpp"
#include "dnn/trainer.hpp"
#include "predict/predictor.hpp"
#include "util/rng.hpp"

namespace corp::predict {

struct DnnPredictorConfig {
  /// History slots fed to the network (Delta).
  std::size_t history_slots = 12;
  /// Forecast horizon in slots (L = 6, one minute).
  std::size_t horizon_slots = 6;
  std::size_t hidden_layers = 4;   // Table II
  std::size_t hidden_units = 50;   // Table II
  double learning_rate = 0.05;     // mu of Eq. 8
  dnn::TrainerConfig trainer;
};

class DnnPredictor final : public SeriesPredictor {
 public:
  DnnPredictor(const DnnPredictorConfig& config, util::Rng& rng);

  void train(const SeriesCorpus& corpus) override;
  double predict(const PredictionQuery& query) override;

  /// GEMM path: packs every non-empty history into one N x Delta input
  /// matrix, runs a single blocked forward pass (sharded over
  /// request.pool when provided), and un-normalizes per row. Each value is
  /// bit-identical to predict() on the same query.
  BatchResult predict_batch(const BatchRequest& request) override;

  std::string_view name() const override { return "dnn"; }

  bool trained() const { return trained_; }
  const dnn::TrainReport& last_report() const { return report_; }
  const DnnPredictorConfig& config() const { return config_; }

 private:
  /// Mean of the trailing horizon-length span of a normalized input
  /// window — the level anchor the network's residual output adds to.
  double window_anchor(std::span<const double> window) const;

  /// Tiles + normalizes a history into a Delta-slot window (the scalar
  /// path and every batch row go through this same routine).
  void fill_window(std::span<const double> history, std::span<double> window)
      const;

  DnnPredictorConfig config_;
  util::Rng rng_;
  dnn::MinMaxNormalizer normalizer_;
  std::unique_ptr<dnn::Network> network_;
  dnn::TrainReport report_;
  bool trained_ = false;
};

}  // namespace corp::predict
