// Prediction-error bookkeeping (Eq. 20-21).
//
// delta_{t+tau} = u_{t+tau} - u_hat_{t+L}: actual minus predicted unused
// resource. The tracker estimates
//   - sigma_hat, the SD of errors, for the confidence interval (Eq. 18);
//   - Pr(0 <= delta < epsilon), the empirical probability the prediction
//     under-estimated by less than epsilon, for the preemption gate
//     (Eq. 21): resource is "unlocked" only when that probability is at
//     least P_th.
#pragma once

#include <cstddef>

#include "util/time_series.hpp"

namespace corp::predict {

class PredictionErrorTracker {
 public:
  /// Retains up to `capacity` most recent errors.
  explicit PredictionErrorTracker(std::size_t capacity = 512);

  /// Records one error sample delta = actual - predicted.
  void record(double actual, double predicted);

  std::size_t count() const { return errors_.size(); }

  /// Sample SD of retained errors (0 with < 2 samples).
  double stddev() const;

  /// Mean of retained errors (bias).
  double mean() const;

  /// Empirical Pr(0 <= delta < epsilon). With no samples returns 0 —
  /// an untracked prediction must not unlock resources.
  double probability_within(double epsilon) const;

  /// Eq. 21: Pr(0 <= delta < epsilon) >= p_threshold. The comparison is
  /// inclusive: a probability exactly equal to p_threshold unlocks. The
  /// paper states the gate as "Pr >= P_th", so the boundary case counts as
  /// meeting the threshold, not missing it.
  bool unlocked(double epsilon, double p_threshold) const;

  void reset();

 private:
  util::TimeSeries errors_;
};

}  // namespace corp::predict
