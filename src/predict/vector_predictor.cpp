#include "predict/vector_predictor.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "predict/stack_builder.hpp"

namespace corp::predict {

void VectorCorpus::add_series(const std::vector<ResourceVector>& series) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    std::vector<double> scalar;
    scalar.reserve(series.size());
    for (const auto& v : series) scalar.push_back(v[r]);
    per_type[r].push_back(std::move(scalar));
  }
}

bool VectorCorpus::empty() const {
  for (const auto& corpus : per_type) {
    if (!corpus.empty()) return false;
  }
  return true;
}

bool impute_gaps(const std::vector<double>& series,
                 std::vector<double>& imputed) {
  bool has_gap = false;
  for (double x : series) {
    if (!std::isfinite(x)) {
      has_gap = true;
      break;
    }
  }
  if (!has_gap) return false;
  imputed = series;
  // Forward fill, then back-fill any leading gap with the first finite
  // value (0 when the series is all gaps).
  double last = std::numeric_limits<double>::quiet_NaN();
  for (double& x : imputed) {
    if (std::isfinite(x)) {
      last = x;
    } else if (std::isfinite(last)) {
      x = last;
    }
  }
  double first = 0.0;
  for (double x : imputed) {
    if (std::isfinite(x)) {
      first = x;
      break;
    }
  }
  for (double& x : imputed) {
    if (!std::isfinite(x)) x = first;
  }
  return true;
}

VectorPredictor::VectorPredictor(Method method, const StackConfig& config,
                                 util::Rng& rng, bool enable_hmm_correction,
                                 bool enable_confidence_bound,
                                 const HealthConfig& health)
    : method_(method), monitor_(health) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    stacks_[r] = StackBuilder(method)
                     .config(config)
                     .hmm_correction(enable_hmm_correction)
                     .confidence_bound(enable_confidence_bound)
                     .build(rng);
  }
  // The fallback rung is the conservative ETS lower-bound stack. When the
  // primary already is that stack (RCCR) the ladder skips straight to
  // reserved-only. Constructing it consumes no draws from `rng` (the ETS
  // stack is deterministic), so fault-free streams are unchanged.
  if (method != Method::kRccr) {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      fallback_[r] = StackBuilder(Method::kRccr).config(config).build(rng);
    }
  }
}

void VectorPredictor::train(const VectorCorpus& corpus) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    stacks_[r]->train(corpus.per_type[r]);
    if (fallback_[r]) fallback_[r]->train(corpus.per_type[r]);
  }
}

ResourceVector VectorPredictor::predict(
    const std::array<std::vector<double>, kNumResources>& history,
    const InjectedFaultVector& faults) {
  ResourceVector out;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const std::vector<double>* series = &history[r];
    if (impute_gaps(history[r], imputed_)) series = &imputed_;
    double raw = stacks_[r]->predict(*series);
    switch (faults[r]) {
      case InjectedFault::kNone:
        break;
      case InjectedFault::kNan:
        raw = std::numeric_limits<double>::quiet_NaN();
        break;
      case InjectedFault::kExplode:
        // Magnitude blow-up: the analogue of a sigma explosion escaping
        // the confidence-bound arithmetic.
        raw = (std::isfinite(raw) ? std::abs(raw) + 1.0 : 1.0) * 1e9;
        break;
    }
    // The monitor sees every raw primary forecast — also while degraded,
    // so recovery (and continued poisoning) is observed without acting on
    // the value.
    const bool ok = monitor_.observe(raw);
    switch (monitor_.tier()) {
      case DegradationTier::kPrimary:
        // A transient fault inside the healthy tier: substitute the
        // fallback's value for this sample (0 without a fallback rung).
        out[r] = ok ? raw
                    : (fallback_[r] ? fallback_[r]->predict(*series) : 0.0);
        break;
      case DegradationTier::kFallback:
        out[r] = fallback_[r] ? fallback_[r]->predict(*series) : 0.0;
        break;
      case DegradationTier::kReservedOnly:
        out[r] = 0.0;
        break;
    }
  }
  return out;
}

std::vector<ResourceVector> VectorPredictor::predict_batch(
    const VectorBatchRequest& request) {
  const std::size_t n = request.histories.size();
  if (!request.faults.empty() && request.faults.size() != n) {
    throw std::invalid_argument(
        "VectorPredictor::predict_batch: faults/histories size mismatch");
  }
  if (obs::registry().enabled()) {
    obs::registry().counter("predict.batch.vector_calls").add(1);
    obs::registry().counter("predict.batch.vector_rows").add(n);
  }

  // Phase A — pure inference: one batched stack call per resource type
  // over every row. Imputed buffers are owned here (the spans handed to
  // the stacks must outlive the call); moving the outer vector's elements
  // never relocates their heap data, so the views stay valid.
  std::vector<std::vector<double>> imputed_store;
  std::array<std::vector<std::span<const double>>, kNumResources> views;
  std::array<std::vector<double>, kNumResources> raw;
  BatchRequest batch;
  batch.pool = request.pool;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    views[r].resize(n);
    batch.queries.clear();
    batch.queries.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<double>& series = (*request.histories[i])[r];
      std::vector<double> imputed;
      if (impute_gaps(series, imputed)) {
        imputed_store.push_back(std::move(imputed));
        views[r][i] = imputed_store.back();
      } else {
        views[r][i] = series;
      }
      batch.queries.push_back(PredictionQuery{
          .entity = i, .horizon = 0, .history = views[r][i]});
    }
    raw[r] = stacks_[r]->predict_batch(batch).values;
  }

  // Phase B — stateful dispatch, serially in the scalar path's order
  // (job-major, resource-minor) so health-monitor transitions mid-batch
  // land on exactly the rows they would in a sequential sweep.
  std::vector<ResourceVector> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      double value = raw[r][i];
      const InjectedFault fault =
          request.faults.empty() ? InjectedFault::kNone : request.faults[i][r];
      switch (fault) {
        case InjectedFault::kNone:
          break;
        case InjectedFault::kNan:
          value = std::numeric_limits<double>::quiet_NaN();
          break;
        case InjectedFault::kExplode:
          value = (std::isfinite(value) ? std::abs(value) + 1.0 : 1.0) * 1e9;
          break;
      }
      const bool ok = monitor_.observe(value);
      switch (monitor_.tier()) {
        case DegradationTier::kPrimary:
          out[i][r] = ok ? value
                         : (fallback_[r] ? fallback_[r]->predict(views[r][i])
                                         : 0.0);
          break;
        case DegradationTier::kFallback:
          out[i][r] = fallback_[r] ? fallback_[r]->predict(views[r][i]) : 0.0;
          break;
        case DegradationTier::kReservedOnly:
          out[i][r] = 0.0;
          break;
      }
    }
  }
  return out;
}

void VectorPredictor::record_outcome(const ResourceVector& actual,
                                     const ResourceVector& predicted) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    stacks_[r]->record_outcome(actual[r], predicted[r]);
    if (fallback_[r]) fallback_[r]->record_outcome(actual[r], predicted[r]);
  }
}

bool VectorPredictor::unlocked() const {
  switch (monitor_.tier()) {
    case DegradationTier::kReservedOnly:
      return false;
    case DegradationTier::kFallback:
      for (const auto& stack : fallback_) {
        if (!stack || !stack->unlocked()) return false;
      }
      return true;
    case DegradationTier::kPrimary:
      break;
  }
  for (const auto& stack : stacks_) {
    if (!stack->unlocked()) return false;
  }
  return true;
}

}  // namespace corp::predict
