#include "predict/vector_predictor.hpp"

namespace corp::predict {

void VectorCorpus::add_series(const std::vector<ResourceVector>& series) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    std::vector<double> scalar;
    scalar.reserve(series.size());
    for (const auto& v : series) scalar.push_back(v[r]);
    per_type[r].push_back(std::move(scalar));
  }
}

bool VectorCorpus::empty() const {
  for (const auto& corpus : per_type) {
    if (!corpus.empty()) return false;
  }
  return true;
}

VectorPredictor::VectorPredictor(Method method, const StackConfig& config,
                                 util::Rng& rng, bool enable_hmm_correction,
                                 bool enable_confidence_bound)
    : method_(method) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    stacks_[r] = make_stack(method, config, rng, enable_hmm_correction,
                            enable_confidence_bound);
  }
}

void VectorPredictor::train(const VectorCorpus& corpus) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    stacks_[r]->train(corpus.per_type[r]);
  }
}

ResourceVector VectorPredictor::predict(
    const std::array<std::vector<double>, kNumResources>& history) {
  ResourceVector out;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    out[r] = stacks_[r]->predict(history[r]);
  }
  return out;
}

void VectorPredictor::record_outcome(const ResourceVector& actual,
                                     const ResourceVector& predicted) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    stacks_[r]->record_outcome(actual[r], predicted[r]);
  }
}

bool VectorPredictor::unlocked() const {
  for (const auto& stack : stacks_) {
    if (!stack->unlocked()) return false;
  }
  return true;
}

}  // namespace corp::predict
