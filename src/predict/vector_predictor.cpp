#include "predict/vector_predictor.hpp"

#include <cmath>
#include <limits>

namespace corp::predict {

void VectorCorpus::add_series(const std::vector<ResourceVector>& series) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    std::vector<double> scalar;
    scalar.reserve(series.size());
    for (const auto& v : series) scalar.push_back(v[r]);
    per_type[r].push_back(std::move(scalar));
  }
}

bool VectorCorpus::empty() const {
  for (const auto& corpus : per_type) {
    if (!corpus.empty()) return false;
  }
  return true;
}

bool impute_gaps(const std::vector<double>& series,
                 std::vector<double>& imputed) {
  bool has_gap = false;
  for (double x : series) {
    if (!std::isfinite(x)) {
      has_gap = true;
      break;
    }
  }
  if (!has_gap) return false;
  imputed = series;
  // Forward fill, then back-fill any leading gap with the first finite
  // value (0 when the series is all gaps).
  double last = std::numeric_limits<double>::quiet_NaN();
  for (double& x : imputed) {
    if (std::isfinite(x)) {
      last = x;
    } else if (std::isfinite(last)) {
      x = last;
    }
  }
  double first = 0.0;
  for (double x : imputed) {
    if (std::isfinite(x)) {
      first = x;
      break;
    }
  }
  for (double& x : imputed) {
    if (!std::isfinite(x)) x = first;
  }
  return true;
}

VectorPredictor::VectorPredictor(Method method, const StackConfig& config,
                                 util::Rng& rng, bool enable_hmm_correction,
                                 bool enable_confidence_bound,
                                 const HealthConfig& health)
    : method_(method), monitor_(health) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    stacks_[r] = make_stack(method, config, rng, enable_hmm_correction,
                            enable_confidence_bound);
  }
  // The fallback rung is the conservative ETS lower-bound stack. When the
  // primary already is that stack (RCCR) the ladder skips straight to
  // reserved-only. Constructing it consumes no draws from `rng` (the ETS
  // stack is deterministic), so fault-free streams are unchanged.
  if (method != Method::kRccr) {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      fallback_[r] = make_stack(Method::kRccr, config, rng);
    }
  }
}

void VectorPredictor::train(const VectorCorpus& corpus) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    stacks_[r]->train(corpus.per_type[r]);
    if (fallback_[r]) fallback_[r]->train(corpus.per_type[r]);
  }
}

ResourceVector VectorPredictor::predict(
    const std::array<std::vector<double>, kNumResources>& history,
    const InjectedFaultVector& faults) {
  ResourceVector out;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const std::vector<double>* series = &history[r];
    if (impute_gaps(history[r], imputed_)) series = &imputed_;
    double raw = stacks_[r]->predict(*series);
    switch (faults[r]) {
      case InjectedFault::kNone:
        break;
      case InjectedFault::kNan:
        raw = std::numeric_limits<double>::quiet_NaN();
        break;
      case InjectedFault::kExplode:
        // Magnitude blow-up: the analogue of a sigma explosion escaping
        // the confidence-bound arithmetic.
        raw = (std::isfinite(raw) ? std::abs(raw) + 1.0 : 1.0) * 1e9;
        break;
    }
    // The monitor sees every raw primary forecast — also while degraded,
    // so recovery (and continued poisoning) is observed without acting on
    // the value.
    const bool ok = monitor_.observe(raw);
    switch (monitor_.tier()) {
      case DegradationTier::kPrimary:
        // A transient fault inside the healthy tier: substitute the
        // fallback's value for this sample (0 without a fallback rung).
        out[r] = ok ? raw
                    : (fallback_[r] ? fallback_[r]->predict(*series) : 0.0);
        break;
      case DegradationTier::kFallback:
        out[r] = fallback_[r] ? fallback_[r]->predict(*series) : 0.0;
        break;
      case DegradationTier::kReservedOnly:
        out[r] = 0.0;
        break;
    }
  }
  return out;
}

void VectorPredictor::record_outcome(const ResourceVector& actual,
                                     const ResourceVector& predicted) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    stacks_[r]->record_outcome(actual[r], predicted[r]);
    if (fallback_[r]) fallback_[r]->record_outcome(actual[r], predicted[r]);
  }
}

bool VectorPredictor::unlocked() const {
  switch (monitor_.tier()) {
    case DegradationTier::kReservedOnly:
      return false;
    case DegradationTier::kFallback:
      for (const auto& stack : fallback_) {
        if (!stack || !stack->unlocked()) return false;
      }
      return true;
    case DegradationTier::kPrimary:
      break;
  }
  for (const auto& stack : stacks_) {
    if (!stack->unlocked()) return false;
  }
  return true;
}

}  // namespace corp::predict
