#include "predict/ets_predictor.hpp"

#include <cmath>
#include <limits>

namespace corp::predict {

EtsPredictor::EtsPredictor(EtsPredictorConfig config) : config_(config) {}

double EtsPredictor::sse_one_step(std::span<const double> series, double alpha,
                                  double beta) {
  if (series.size() < 3) return 0.0;
  double level = series[0];
  double trend = series[1] - series[0];
  double sse = 0.0;
  for (std::size_t t = 1; t < series.size(); ++t) {
    const double forecast = level + trend;
    const double err = series[t] - forecast;
    sse += err * err;
    const double prev_level = level;
    level = alpha * series[t] + (1.0 - alpha) * (level + trend);
    trend = beta * (level - prev_level) + (1.0 - beta) * trend;
  }
  return sse;
}

void EtsPredictor::train(const SeriesCorpus& corpus) {
  double best_sse = std::numeric_limits<double>::infinity();
  const std::size_t n = config_.grid_steps;
  for (std::size_t ai = 1; ai <= n; ++ai) {
    const double alpha = static_cast<double>(ai) / static_cast<double>(n + 1);
    for (std::size_t bi = config_.allow_no_trend ? 0 : 1; bi <= n; ++bi) {
      const double beta = static_cast<double>(bi) / static_cast<double>(n + 1);
      double sse = 0.0;
      for (const auto& series : corpus) {
        sse += sse_one_step(series, alpha, beta);
      }
      if (sse < best_sse) {
        best_sse = sse;
        alpha_ = alpha;
        beta_ = beta;
      }
    }
  }
}

double EtsPredictor::predict(const PredictionQuery& query) {
  const std::span<const double> history = query.history;
  const std::size_t horizon = query.horizon;
  if (history.empty()) return 0.0;
  if (history.size() == 1) return history[0];
  double level = history[0];
  double trend = history[1] - history[0];
  for (std::size_t t = 1; t < history.size(); ++t) {
    const double prev_level = level;
    level = alpha_ * history[t] + (1.0 - alpha_) * (level + trend);
    trend = beta_ * (level - prev_level) + (1.0 - beta_) * trend;
  }
  // Damped-trend extrapolation h steps ahead.
  double forecast = level;
  double damp = config_.trend_damping;
  for (std::size_t h = 0; h < horizon; ++h) {
    forecast += trend * damp;
    damp *= config_.trend_damping;
  }
  return forecast;
}

}  // namespace corp::predict
