#include "predict/dnn_predictor.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace corp::predict {

DnnPredictor::DnnPredictor(const DnnPredictorConfig& config, util::Rng& rng)
    : config_(config), rng_(rng.fork()) {
  if (config.history_slots == 0 || config.horizon_slots == 0) {
    throw std::invalid_argument("DnnPredictor: zero history or horizon");
  }
}

void DnnPredictor::train(const SeriesCorpus& corpus) {
  // Pool all samples to fit the normalizer, then build one windowed
  // dataset across series (windows never straddle series boundaries).
  std::vector<double> pooled;
  for (const auto& series : corpus) {
    pooled.insert(pooled.end(), series.begin(), series.end());
  }
  if (pooled.empty()) {
    throw std::invalid_argument("DnnPredictor::train: empty corpus");
  }
  normalizer_.fit(pooled);

  // Level-free residual learning: the target is the next window's mean
  // MINUS the anchor (mean of the most recent window of inputs). The
  // network then models fluctuation structure rather than absolute
  // levels, which keeps it calibrated on jobs whose baseline utilization
  // differs from the training trace's.
  dnn::Dataset data;
  for (const auto& series : corpus) {
    const std::vector<double> norm = normalizer_.transform(series);
    dnn::Dataset part = dnn::make_windowed_dataset(
        norm, config_.history_slots, config_.horizon_slots);
    for (std::size_t s = 0; s < part.inputs.size(); ++s) {
      part.targets[s][0] -= window_anchor(part.inputs[s]);
    }
    for (auto& in : part.inputs) data.inputs.push_back(std::move(in));
    for (auto& tg : part.targets) data.targets.push_back(std::move(tg));
  }
  if (data.size() == 0) {
    throw std::invalid_argument(
        "DnnPredictor::train: corpus series too short for window");
  }

  dnn::NetworkConfig net_config;
  net_config.input_size = config_.history_slots;
  net_config.output_size = 1;
  net_config.hidden_layers = config_.hidden_layers;
  net_config.hidden_units = config_.hidden_units;
  network_ = std::make_unique<dnn::Network>(net_config, rng_);

  dnn::SgdOptimizer optimizer(config_.learning_rate);
  dnn::Trainer trainer(config_.trainer, rng_);
  report_ = trainer.fit(*network_, optimizer, data);
  trained_ = true;
}

double DnnPredictor::predict(const PredictionQuery& query) {
  if (!trained_) throw std::logic_error("DnnPredictor::predict before train");
  if (query.history.empty()) return normalizer_.inverse(0.5);

  std::vector<double> window(config_.history_slots);
  fill_window(query.history, window);
  const dnn::Vector out = network_->predict(window);
  return normalizer_.inverse(window_anchor(window) + out.front());
}

BatchResult DnnPredictor::predict_batch(const BatchRequest& request) {
  if (!trained_) throw std::logic_error("DnnPredictor::predict before train");
  const std::size_t n = request.queries.size();
  BatchResult result;
  result.values.assign(n, 0.0);

  if (obs::registry().enabled()) {
    obs::registry().counter("predict.batch.calls").add(1);
    obs::registry().counter("predict.batch.rows").add(n);
  }

  // Empty histories resolve to the scalar path's constant without entering
  // the network; the remaining queries become GEMM rows in query order.
  std::vector<std::size_t> gemm_rows;
  gemm_rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (request.queries[i].history.empty()) {
      result.values[i] = normalizer_.inverse(0.5);
    } else {
      gemm_rows.push_back(i);
    }
  }
  if (gemm_rows.empty()) return result;

  dnn::Matrix inputs(gemm_rows.size(), config_.history_slots);
  std::vector<double> anchors(gemm_rows.size());
  for (std::size_t k = 0; k < gemm_rows.size(); ++k) {
    const std::span<double> window = inputs.row(k);
    fill_window(request.queries[gemm_rows[k]].history, window);
    anchors[k] = window_anchor(window);
  }
  const dnn::Matrix out = network_->forward_batch(inputs, request.pool);
  for (std::size_t k = 0; k < gemm_rows.size(); ++k) {
    result.values[gemm_rows[k]] = normalizer_.inverse(anchors[k] + out(k, 0));
  }
  return result;
}

void DnnPredictor::fill_window(std::span<const double> history,
                               std::span<double> window) const {
  // Short histories are left-padded by *tiling* the available samples:
  // a run of constant padding is far outside the training distribution
  // (real windows always fluctuate) and provokes erratic outputs, while
  // a tiled window is locally realistic.
  const std::size_t have = std::min(history.size(), config_.history_slots);
  const std::size_t pad = config_.history_slots - have;
  const std::size_t base = history.size() - have;
  for (std::size_t i = 0; i < pad; ++i) {
    window[i] = history[base + i % have];
  }
  for (std::size_t i = 0; i < have; ++i) {
    window[pad + i] = history[base + i];
  }
  for (double& x : window) x = normalizer_.transform(x);
}

double DnnPredictor::window_anchor(std::span<const double> window) const {
  const std::size_t take = std::min(config_.horizon_slots, window.size());
  double sum = 0.0;
  for (std::size_t i = window.size() - take; i < window.size(); ++i) {
    sum += window[i];
  }
  return sum / static_cast<double>(take);
}

}  // namespace corp::predict
