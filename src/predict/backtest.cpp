#include "predict/backtest.hpp"

#include <cmath>
#include <stdexcept>

namespace corp::predict {

BacktestReport backtest(PredictionStack& stack, const SeriesCorpus& corpus,
                        const BacktestConfig& config) {
  if (config.horizon == 0 || config.stride == 0) {
    throw std::invalid_argument("backtest: horizon and stride must be > 0");
  }
  BacktestReport report;
  double se = 0.0, ae = 0.0, bias = 0.0;
  std::size_t covered = 0, in_band = 0;

  for (const auto& series : corpus) {
    if (series.size() < config.warmup_slots + config.horizon) continue;
    for (std::size_t origin = config.warmup_slots;
         origin + config.horizon <= series.size();
         origin += config.stride) {
      const std::span<const double> history(series.data(), origin);
      const double predicted = stack.predict(history);
      double actual = 0.0;
      for (std::size_t h = 0; h < config.horizon; ++h) {
        actual += series[origin + h];
      }
      actual /= static_cast<double>(config.horizon);

      const double delta = actual - predicted;
      se += delta * delta;
      ae += std::abs(delta);
      bias += delta;
      if (delta >= 0.0) ++covered;
      if (delta >= 0.0 && delta < config.epsilon) ++in_band;
      ++report.forecasts;

      if (config.feed_outcomes) {
        stack.record_outcome(actual, predicted);
      }
    }
  }
  if (report.forecasts > 0) {
    const auto n = static_cast<double>(report.forecasts);
    report.rmse = std::sqrt(se / n);
    report.mae = ae / n;
    report.bias = bias / n;
    report.coverage = static_cast<double>(covered) / n;
    report.band_rate = static_cast<double>(in_band) / n;
  }
  return report;
}

}  // namespace corp::predict
