// Fluent, validated construction of per-resource prediction stacks.
//
// All stack construction funnels through StackBuilder::build — the lint
// rule CORP-API-001 flags direct CorpStack/RccrStack/CloudScaleStack/
// DraStack constructions anywhere else, so method-specific option tuning
// (trainer schedules, ETS trend policy, HMM windows) lives in exactly one
// place. Defaults come from StackConfig; sim::Params::stack_builder()
// seeds a builder with the simulation's knobs.
#pragma once

#include <memory>

#include "predict/stacks.hpp"

namespace corp::predict {

class StackBuilder {
 public:
  explicit StackBuilder(Method method) : method_(method) {}

  /// Replaces the whole StackConfig (knobs set before this call are lost).
  StackBuilder& config(const StackConfig& config) {
    config_ = config;
    return *this;
  }

  StackBuilder& confidence_level(double value) {
    config_.confidence_level = value;
    return *this;
  }
  StackBuilder& error_tolerance(double value) {
    config_.error_tolerance = value;
    return *this;
  }
  StackBuilder& probability_threshold(double value) {
    config_.probability_threshold = value;
    return *this;
  }
  StackBuilder& error_history(std::size_t value) {
    config_.error_history = value;
    return *this;
  }
  StackBuilder& horizon_slots(std::size_t value) {
    config_.horizon_slots = value;
    return *this;
  }

  /// CORP-only ablation switches (ignored by the baselines).
  StackBuilder& hmm_correction(bool enabled) {
    enable_hmm_correction_ = enabled;
    return *this;
  }
  StackBuilder& confidence_bound(bool enabled) {
    enable_confidence_bound_ = enabled;
    return *this;
  }

  Method method() const { return method_; }
  const StackConfig& stack_config() const { return config_; }

  /// Validates every knob (throws std::invalid_argument naming the bad
  /// field) and constructs the stack with the method's paper-default
  /// option tuning.
  std::unique_ptr<PredictionStack> build(util::Rng& rng) const;

 private:
  Method method_;
  StackConfig config_{};
  bool enable_hmm_correction_ = true;
  bool enable_confidence_bound_ = true;
};

}  // namespace corp::predict
