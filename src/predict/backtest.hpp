// Walk-forward (rolling-origin) backtesting for series predictors.
//
// Given a corpus of held-out series, a stack is evaluated exactly as it
// would run online: at each origin it sees only the past, forecasts the
// next window, and is scored against what then happened. Reports the
// standard regression errors plus the two quantities CORP's control loop
// actually consumes: the conservative-coverage rate P(delta >= 0) and the
// Eq. 21 band rate P(0 <= delta < eps).
#pragma once

#include <cstddef>

#include "predict/stacks.hpp"

namespace corp::predict {

struct BacktestConfig {
  /// Slots of history exposed at the first origin.
  std::size_t warmup_slots = 12;
  /// Origin stride (1 = every slot; horizon = one score per window).
  std::size_t stride = 6;
  /// Forecast horizon in slots; the target is the window mean.
  std::size_t horizon = 6;
  /// Band width eps for the Eq. 21 rate, in series units.
  double epsilon = 0.3;
  /// Feed each outcome back into the stack (online operation) or keep
  /// the stack frozen (pure evaluation).
  bool feed_outcomes = true;
};

struct BacktestReport {
  std::size_t forecasts = 0;
  double rmse = 0.0;
  double mae = 0.0;
  /// Mean of delta = actual - predicted (positive = conservative).
  double bias = 0.0;
  /// P(delta >= 0): how often the forecast was a safe lower bound.
  double coverage = 0.0;
  /// P(0 <= delta < eps): the Eq. 21 band rate.
  double band_rate = 0.0;
};

/// Walk-forward evaluation of `stack` over every series in `corpus`.
/// The stack must already be trained.
BacktestReport backtest(PredictionStack& stack, const SeriesCorpus& corpus,
                        const BacktestConfig& config = {});

}  // namespace corp::predict
