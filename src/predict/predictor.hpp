// Predictor interface for per-resource unused-amount forecasting.
//
// Every method in the paper — CORP's DNN+HMM stack and the three baselines
// (RCCR's ETS, CloudScale's signature+Markov chain, DRA's run-time
// estimator) — reduces to the same contract: given the recent history of a
// scalar series (the temporarily-unused amount of one resource type on one
// VM/job), forecast the value `horizon` slots ahead.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace corp::predict {

/// A training corpus: multiple independent historical series (one per
/// job/VM observed in the warm-up period).
using SeriesCorpus = std::vector<std::vector<double>>;

class SeriesPredictor {
 public:
  virtual ~SeriesPredictor() = default;

  /// Fits model parameters on historical series. Called once before the
  /// simulation run (the paper trains on historical Google-trace data).
  virtual void train(const SeriesCorpus& corpus) = 0;

  /// Forecasts the series value `horizon` steps after the end of
  /// `history`. `history` is chronological; implementations must tolerate
  /// short histories (fewer samples than their preferred lookback).
  virtual double predict(std::span<const double> history,
                         std::size_t horizon) = 0;

  virtual std::string_view name() const = 0;
};

/// The provisioning methods compared in Sec. IV.
enum class Method { kCorp, kRccr, kCloudScale, kDra };

std::string_view method_name(Method m);

inline constexpr Method kAllMethods[] = {Method::kCorp, Method::kRccr,
                                         Method::kCloudScale, Method::kDra};

}  // namespace corp::predict
