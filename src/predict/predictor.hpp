// Predictor interface for per-resource unused-amount forecasting.
//
// Every method in the paper — CORP's DNN+HMM stack and the three baselines
// (RCCR's ETS, CloudScale's signature+Markov chain, DRA's run-time
// estimator) — reduces to the same contract: given the recent history of a
// scalar series (the temporarily-unused amount of one resource type on one
// VM/job), forecast the value `horizon` slots ahead.
//
// The contract is batch-first: callers gather one PredictionQuery per
// entity (job/VM) and submit them together through predict_batch, which
// lets the DNN stack run a single blocked GEMM over all rows instead of
// thousands of tiny matrix-vector products per slot. The default
// predict_batch adapter loops the scalar path, so baselines stay correct
// without opting in; see docs/batching.md for the determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace corp::util {
class ThreadPool;
}  // namespace corp::util

namespace corp::predict {

/// A training corpus: multiple independent historical series (one per
/// job/VM observed in the warm-up period).
using SeriesCorpus = std::vector<std::vector<double>>;

/// One forecast request: a chronological history view plus the horizon in
/// slots. `entity` identifies the job/VM the series belongs to; it is
/// carried for diagnostics and caching keys, never used in the math. The
/// history span is non-owning — it must stay valid for the duration of the
/// predict/predict_batch call.
struct PredictionQuery {
  std::uint64_t entity = 0;
  std::size_t horizon = 0;
  std::span<const double> history;
};

/// A batch of queries evaluated in one call. `pool` (optional, non-owning)
/// lets batch-aware implementations shard rows across threads; results are
/// bit-identical with or without it.
struct BatchRequest {
  std::vector<PredictionQuery> queries;
  util::ThreadPool* pool = nullptr;
};

/// Forecasts in query order: values[i] answers queries[i].
struct BatchResult {
  std::vector<double> values;
};

class SeriesPredictor {
 public:
  virtual ~SeriesPredictor() = default;

  /// Fits model parameters on historical series. Called once before the
  /// simulation run (the paper trains on historical Google-trace data).
  virtual void train(const SeriesCorpus& corpus) = 0;

  /// Forecasts the series value `query.horizon` steps after the end of
  /// `query.history`. Implementations must tolerate short histories (fewer
  /// samples than their preferred lookback).
  virtual double predict(const PredictionQuery& query) = 0;

  /// Evaluates every query in the batch. Results are bit-identical to
  /// calling predict() on each query in order; the default adapter does
  /// exactly that, so scalar-only baselines inherit correct behavior.
  virtual BatchResult predict_batch(const BatchRequest& request) {
    BatchResult result;
    result.values.reserve(request.queries.size());
    for (const PredictionQuery& query : request.queries) {
      result.values.push_back(predict(query));
    }
    return result;
  }

  virtual std::string_view name() const = 0;
};

/// The provisioning methods compared in Sec. IV, plus kPredAware — the
/// prediction-aware online allocator with an explicit consistency–
/// robustness trust knob (Buchbinder et al.; sched/pred_aware_scheduler
/// .hpp). It runs CORP's prediction stack, so it is not part of the
/// paper-figure method set below.
enum class Method { kCorp, kRccr, kCloudScale, kDra, kPredAware };

std::string_view method_name(Method m);

/// The four methods of the paper's Sec. IV figures. kPredAware is
/// deliberately excluded: the robustness-frontier bench sweeps it
/// explicitly against CORP/RCCR instead.
inline constexpr Method kAllMethods[] = {Method::kCorp, Method::kRccr,
                                         Method::kCloudScale, Method::kDra};

}  // namespace corp::predict
