#include "predict/hmm_corrector.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace corp::predict {

HmmCorrector::HmmCorrector(const HmmCorrectorConfig& config, util::Rng& rng)
    : config_(config), rng_(rng.fork()) {
  if (config.window_slots < 2) {
    throw std::invalid_argument("HmmCorrector: window_slots must be >= 2");
  }
}

void HmmCorrector::fit(const SeriesCorpus& corpus) {
  std::vector<double> pooled;
  for (const auto& series : corpus) {
    pooled.insert(pooled.end(), series.begin(), series.end());
  }
  if (pooled.empty()) {
    throw std::invalid_argument("HmmCorrector::fit: empty corpus");
  }
  symbolizer_.fit(pooled);

  // The correction magnitude min(h - m, m - l) is computed over *window
  // means* (the quantity the stack predicts), not raw slots, and h/l are
  // taken as the 80th/20th percentiles of the window-mean distribution
  // rather than absolute extremes: a correction sized to the extreme
  // band would dwarf the prediction error it is meant to fix.
  std::vector<double> window_means;
  for (const auto& series : corpus) {
    for (std::size_t start = 0; start + config_.window_slots <= series.size();
         start += config_.window_slots) {
      double mean = 0.0;
      for (std::size_t i = 0; i < config_.window_slots; ++i) {
        mean += series[start + i];
      }
      window_means.push_back(mean /
                             static_cast<double>(config_.window_slots));
    }
  }
  if (window_means.empty()) {
    window_means.assign(pooled.begin(), pooled.end());
  }
  const double m = util::mean_of(window_means);
  const double h = util::percentile(window_means, 0.80);
  const double l = util::percentile(window_means, 0.20);
  magnitude_ = std::max(0.0, std::min(h - m, m - l));

  // Observation sequences per series, concatenated for Baum-Welch. The
  // few artificial transitions at series boundaries are negligible next
  // to the volume of genuine within-series transitions.
  std::vector<std::size_t> observations;
  for (const auto& series : corpus) {
    const auto symbols =
        symbolizer_.observation_sequence(series, config_.window_slots);
    observations.insert(observations.end(), symbols.begin(), symbols.end());
  }
  hmm_ = std::make_unique<hmm::DiscreteHmm>(
      config_.num_states, hmm::kNumFluctuationSymbols, rng_);
  if (observations.size() >= 2) {
    hmm_->baum_welch(observations, config_.baum_welch_iterations,
                     config_.baum_welch_tolerance);
  }
  fitted_ = true;
}

const hmm::DiscreteHmm& HmmCorrector::model() const {
  if (!hmm_) throw std::logic_error("HmmCorrector: not fitted");
  return *hmm_;
}

std::optional<hmm::FluctuationSymbol> HmmCorrector::predict_symbol(
    std::span<const double> recent) const {
  if (!fitted_) throw std::logic_error("HmmCorrector: not fitted");
  const auto observations =
      symbolizer_.observation_sequence(recent, config_.window_slots);
  // A single window gives the HMM no transition evidence; correcting on
  // it would add more noise than it removes.
  if (observations.size() < 2) return std::nullopt;
  return static_cast<hmm::FluctuationSymbol>(
      hmm_->predict_next_symbol(observations));
}

double HmmCorrector::correct(double raw_prediction,
                             std::span<const double> recent) const {
  const auto symbol = predict_symbol(recent);
  if (!symbol.has_value()) return raw_prediction;
  const double magnitude = magnitude_;
  switch (*symbol) {
    case hmm::FluctuationSymbol::kPeak:
      return raw_prediction + magnitude;
    case hmm::FluctuationSymbol::kValley:
      return raw_prediction - magnitude;
    case hmm::FluctuationSymbol::kCenter:
      return raw_prediction;
  }
  return raw_prediction;
}

double HmmCorrector::correction_magnitude() const { return magnitude_; }

}  // namespace corp::predict
