// Full per-resource prediction stacks for each provisioning method.
//
// A stack is a SeriesPredictor plus the method's error-handling pipeline:
//
//   CORP       : DNN -> HMM peak/valley correction -> confidence lower
//                bound (Eq. 19) -> preemption gate (Eq. 21)
//   RCCR       : ETS -> confidence lower bound -> preemption gate
//   CloudScale : PRESS/Markov -> adaptive padding from recent burstiness
//                and recent prediction errors (no confidence levels)
//   DRA        : sliding mean, no correction, no gate
//
// Stacks track their own online prediction errors (Eq. 20): the simulator
// calls record_outcome() when the actual unused amount becomes known.
#pragma once

#include <memory>

#include "predict/dnn_predictor.hpp"
#include "predict/error_tracker.hpp"
#include "predict/ets_predictor.hpp"
#include "predict/hmm_corrector.hpp"
#include "predict/markov_predictor.hpp"
#include "predict/mean_predictor.hpp"
#include "predict/predictor.hpp"

namespace corp::predict {

/// Common knobs shared across stacks (Table II).
struct StackConfig {
  /// Confidence level eta (Table II: 50%-90%). theta = 1 - eta.
  double confidence_level = 0.90;
  /// Prediction-error tolerance epsilon of Eq. 21, expressed as a
  /// *fraction of the training corpus mean* so one knob works across
  /// resource types with different units (CPU cores vs storage GB). Each
  /// stack resolves it to an absolute tolerance at train() time.
  double error_tolerance = 0.50;
  /// Probability threshold P_th of Eq. 21 (Table II: 0.95).
  double probability_threshold = 0.95;
  /// Error history retained by the tracker.
  std::size_t error_history = 512;
  /// Forecast horizon L in slots.
  std::size_t horizon_slots = 6;
};

/// One resource type's prediction pipeline.
class PredictionStack {
 public:
  virtual ~PredictionStack() = default;

  virtual void train(const SeriesCorpus& corpus) = 0;

  /// Final (corrected, conservative) forecast of the unused amount at
  /// t + L, clamped non-negative.
  virtual double predict(std::span<const double> history) = 0;

  /// Batched forecasts, one per query (horizon fields are ignored — a
  /// stack's horizon is fixed at construction). Bit-identical to calling
  /// predict() on each query's history in order; the default adapter does
  /// exactly that. Stacks must not mutate error-tracker state here, so a
  /// batch sees one frozen tracker snapshot just as a scalar sweep
  /// between record_outcome() calls would.
  virtual BatchResult predict_batch(const BatchRequest& request);

  /// Feeds back the actual value for a previous prediction (Eq. 20).
  virtual void record_outcome(double actual, double predicted) = 0;

  /// Eq. 21 gate: may the predicted unused resource be reallocated?
  virtual bool unlocked() const = 0;

  /// Current empirical Pr(0 <= delta < eps) backing the gate (0 for
  /// methods without a gate). Exposed for diagnostics and tests.
  virtual double gate_probability() const = 0;

  virtual std::string_view name() const = 0;
};

/// CORP: DNN + HMM + confidence lower bound + gate. Ablation flags let
/// the component benches switch individual stages off.
class CorpStack final : public PredictionStack {
 public:
  struct Options {
    StackConfig stack;
    DnnPredictorConfig dnn;
    HmmCorrectorConfig hmm;
    bool enable_hmm_correction = true;
    bool enable_confidence_bound = true;
  };

  CorpStack(const Options& options, util::Rng& rng);

  void train(const SeriesCorpus& corpus) override;
  double predict(std::span<const double> history) override;

  /// Runs the DNN once over all rows (one GEMM), then applies the HMM
  /// correction and confidence bound per row. Bit-identical to the scalar
  /// loop because both correction stages are pure and the tracker's
  /// stddev is constant between record_outcome() calls.
  BatchResult predict_batch(const BatchRequest& request) override;

  void record_outcome(double actual, double predicted) override;
  bool unlocked() const override;
  double gate_probability() const override;
  std::string_view name() const override { return "corp"; }

  const PredictionErrorTracker& tracker() const { return tracker_; }
  const HmmCorrector& corrector() const { return corrector_; }
  double absolute_tolerance() const { return epsilon_abs_; }

 private:
  Options options_;
  DnnPredictor dnn_;
  HmmCorrector corrector_;
  PredictionErrorTracker tracker_;
  double epsilon_abs_ = 0.0;
};

/// RCCR: ETS + confidence lower bound + gate.
class RccrStack final : public PredictionStack {
 public:
  struct Options {
    StackConfig stack;
    EtsPredictorConfig ets;
  };

  explicit RccrStack(const Options& options);

  void train(const SeriesCorpus& corpus) override;
  double predict(std::span<const double> history) override;
  void record_outcome(double actual, double predicted) override;
  bool unlocked() const override;
  double gate_probability() const override;
  std::string_view name() const override { return "rccr"; }

  const PredictionErrorTracker& tracker() const { return tracker_; }
  double absolute_tolerance() const { return epsilon_abs_; }

 private:
  Options options_;
  EtsPredictor ets_;
  PredictionErrorTracker tracker_;
  double epsilon_abs_ = 0.0;
};

/// CloudScale: PRESS/Markov + adaptive padding. "CloudScale does not
/// utilize confidence levels" (Sec. IV), so its conservatism comes from
/// padding only; it still gates reallocation on its own error history.
class CloudScaleStack final : public PredictionStack {
 public:
  struct Options {
    StackConfig stack;
    MarkovPredictorConfig markov;
    /// Window over which burstiness is measured, in slots.
    std::size_t burst_window = 12;
    /// Fraction of the measured burst amplitude used as padding.
    double burst_padding_fraction = 0.55;
  };

  explicit CloudScaleStack(const Options& options);

  void train(const SeriesCorpus& corpus) override;
  double predict(std::span<const double> history) override;
  void record_outcome(double actual, double predicted) override;
  bool unlocked() const override;
  double gate_probability() const override;
  std::string_view name() const override { return "cloudscale"; }

 private:
  /// Adaptive padding: max(recent burst amplitude * fraction, |recent
  /// mean error|). Subtracted from the unused-amount forecast so that
  /// over-estimates (which would trigger SLO violations) are damped.
  double padding(std::span<const double> history) const;

  Options options_;
  MarkovChainPredictor markov_;
  PredictionErrorTracker tracker_;
  double epsilon_abs_ = 0.0;
};

/// DRA: run-time mean estimate; never gates (DRA is demand-based and does
/// not reallocate opportunistically — the scheduler enforces that, and the
/// stack reports unlocked() = false accordingly).
class DraStack final : public PredictionStack {
 public:
  struct Options {
    StackConfig stack;
    MeanPredictorConfig mean;
  };

  explicit DraStack(const Options& options);

  void train(const SeriesCorpus& corpus) override;
  double predict(std::span<const double> history) override;
  void record_outcome(double actual, double predicted) override;
  bool unlocked() const override { return false; }
  double gate_probability() const override { return 0.0; }
  std::string_view name() const override { return "dra"; }

 private:
  Options options_;
  SlidingMeanPredictor mean_;
  PredictionErrorTracker tracker_;
};

/// Builds the stack matching a Method with paper-default options. The two
/// flags are CORP-only ablation switches (ignored by the baselines). Thin
/// wrapper over StackBuilder (see predict/stack_builder.hpp), kept for
/// positional-call ergonomics in tests.
std::unique_ptr<PredictionStack> make_stack(Method method,
                                            const StackConfig& config,
                                            util::Rng& rng,
                                            bool enable_hmm_correction = true,
                                            bool enable_confidence_bound = true);

}  // namespace corp::predict
