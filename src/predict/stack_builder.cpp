#include "predict/stack_builder.hpp"

#include <stdexcept>
#include <string>

namespace corp::predict {

namespace {

void validate(const StackConfig& config) {
  const auto bad = [](const std::string& field, const std::string& why) {
    throw std::invalid_argument("StackBuilder: " + field + " " + why);
  };
  if (!(config.confidence_level > 0.0 && config.confidence_level < 1.0)) {
    bad("confidence_level", "must be in (0, 1)");
  }
  if (!(config.error_tolerance >= 0.0)) {
    bad("error_tolerance", "must be >= 0");
  }
  // 0 is a legitimate operating point: the Eq. 21 gate opens as soon as a
  // stack has any outcome history (used by tests and warm-up studies).
  if (!(config.probability_threshold >= 0.0 &&
        config.probability_threshold <= 1.0)) {
    bad("probability_threshold", "must be in [0, 1]");
  }
  if (config.error_history == 0) bad("error_history", "must be >= 1");
  if (config.horizon_slots == 0) bad("horizon_slots", "must be >= 1");
}

}  // namespace

std::unique_ptr<PredictionStack> StackBuilder::build(util::Rng& rng) const {
  validate(config_);
  switch (method_) {
    // The prediction-aware scheduler consumes CORP's forecasts — same
    // DNN + HMM + confidence-bound stack, same trainer schedule — and
    // differs only in how much the *scheduler* trusts them, so the two
    // cases share one construction path.
    case Method::kPredAware:
    case Method::kCorp: {
      CorpStack::Options options;
      options.stack = config_;
      options.dnn.horizon_slots = config_.horizon_slots;
      options.dnn.trainer.max_epochs = 40;
      options.dnn.trainer.patience = 5;
      options.dnn.trainer.min_delta = 1e-7;
      options.dnn.trainer.pretrain_epochs = 2;
      options.hmm.window_slots = config_.horizon_slots;
      options.enable_hmm_correction = enable_hmm_correction_;
      options.enable_confidence_bound = enable_confidence_bound_;
      return std::make_unique<CorpStack>(options, rng);
    }
    case Method::kRccr: {
      RccrStack::Options options;
      options.stack = config_;
      // Holt's linear ETS: the trend component is what the RCCR paper's
      // forecaster carries, and on pattern-free bursty series it is also
      // what extrapolates burst edges into the future wrongly — the
      // failure mode Sec. IV attributes to time-series forecasting.
      options.ets.allow_no_trend = false;
      options.ets.trend_damping = 0.95;
      return std::make_unique<RccrStack>(options);
    }
    case Method::kCloudScale: {
      CloudScaleStack::Options options;
      options.stack = config_;
      return std::make_unique<CloudScaleStack>(options);
    }
    case Method::kDra: {
      DraStack::Options options;
      options.stack = config_;
      return std::make_unique<DraStack>(options);
    }
  }
  throw std::invalid_argument("StackBuilder: unknown method");
}

}  // namespace corp::predict
