#include "predict/error_tracker.hpp"

#include "util/stats.hpp"

namespace corp::predict {

PredictionErrorTracker::PredictionErrorTracker(std::size_t capacity)
    : errors_(capacity) {}

void PredictionErrorTracker::record(double actual, double predicted) {
  errors_.push(actual - predicted);
}

double PredictionErrorTracker::stddev() const {
  if (errors_.size() < 2) return 0.0;
  util::RunningStats stats;
  for (std::size_t i = 0; i < errors_.size(); ++i) stats.add(errors_.at(i));
  return stats.stddev();
}

double PredictionErrorTracker::mean() const { return errors_.mean(); }

double PredictionErrorTracker::probability_within(double epsilon) const {
  if (errors_.empty()) return 0.0;
  std::size_t within = 0;
  for (std::size_t i = 0; i < errors_.size(); ++i) {
    const double d = errors_.at(i);
    if (d >= 0.0 && d < epsilon) ++within;
  }
  return static_cast<double>(within) / static_cast<double>(errors_.size());
}

bool PredictionErrorTracker::unlocked(double epsilon,
                                      double p_threshold) const {
  return probability_within(epsilon) >= p_threshold;
}

void PredictionErrorTracker::reset() { errors_.clear(); }

}  // namespace corp::predict
