#include "predict/mean_predictor.hpp"

#include <algorithm>

namespace corp::predict {

SlidingMeanPredictor::SlidingMeanPredictor(MeanPredictorConfig config)
    : config_(config) {}

void SlidingMeanPredictor::train(const SeriesCorpus& corpus) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& series : corpus) {
    for (double x : series) {
      sum += x;
      ++n;
    }
  }
  corpus_mean_ = n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double SlidingMeanPredictor::predict(const PredictionQuery& query) {
  const std::span<const double> history = query.history;  // horizon unused
  if (history.empty()) return corpus_mean_;
  const std::size_t take = config_.window == 0
                               ? history.size()
                               : std::min(config_.window, history.size());
  double sum = 0.0;
  for (std::size_t i = history.size() - take; i < history.size(); ++i) {
    sum += history[i];
  }
  return sum / static_cast<double>(take);
}

}  // namespace corp::predict
