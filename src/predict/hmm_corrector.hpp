// Fluctuation-aware prediction correction (Sec. III-A1b).
//
// Wraps FluctuationSymbolizer + DiscreteHmm into the exact correction CORP
// applies to the DNN forecast: predict whether the next window is a peak,
// center or valley of the unused-resource series, then
//     peak   ->  y_hat + min(h - m, m - l)
//     valley ->  y_hat - min(h - m, m - l)
//     center ->  y_hat (unchanged).
#pragma once

#include <memory>
#include <optional>

#include "hmm/hmm.hpp"
#include "hmm/symbolizer.hpp"
#include "predict/predictor.hpp"
#include "util/rng.hpp"

namespace corp::predict {

struct HmmCorrectorConfig {
  /// Number of hidden states H (Table II: 3 — OP/NP/UP).
  std::size_t num_states = 3;
  /// Observation window in slots; one symbol per window (the paper's L).
  std::size_t window_slots = 6;
  std::size_t baum_welch_iterations = 40;
  double baum_welch_tolerance = 1e-5;
};

class HmmCorrector {
 public:
  HmmCorrector(const HmmCorrectorConfig& config, util::Rng& rng);

  /// Fits the symbolizer thresholds on the pooled corpus and trains the
  /// HMM (Baum-Welch) on the corpus's observation sequences.
  void fit(const SeriesCorpus& corpus);

  bool fitted() const { return fitted_; }

  /// Predicts the next window's fluctuation symbol from recent history.
  /// Returns nullopt when the history yields no complete window.
  std::optional<hmm::FluctuationSymbol> predict_symbol(
      std::span<const double> recent) const;

  /// Applies the peak/valley adjustment to a raw forecast. With no usable
  /// history, returns the forecast unchanged.
  double correct(double raw_prediction, std::span<const double> recent) const;

  /// min(h - m, m - l) learned from the corpus.
  double correction_magnitude() const;

  const hmm::FluctuationSymbolizer& symbolizer() const { return symbolizer_; }
  const hmm::DiscreteHmm& model() const;

 private:
  HmmCorrectorConfig config_;
  util::Rng rng_;
  hmm::FluctuationSymbolizer symbolizer_;
  /// min(h - m, m - l) over the window-mean distribution (h/l = p80/p20).
  double magnitude_ = 0.0;
  std::unique_ptr<hmm::DiscreteHmm> hmm_;
  bool fitted_ = false;
};

}  // namespace corp::predict
