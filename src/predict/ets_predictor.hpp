// Exponential smoothing (ETS) forecaster — the prediction engine of the
// RCCR baseline ("we first used a time series forecasting technique, i.e.,
// Exponential Smoothing (ETS), to predict the amount of unused resource",
// Sec. IV). Holt's linear variant with the trend damped for multi-step
// forecasts; train() grid-searches (alpha, beta) on one-step-ahead error
// over the corpus, which is exactly where the method's pattern assumption
// bites on pattern-free short-job series.
#pragma once

#include "predict/predictor.hpp"

namespace corp::predict {

struct EtsPredictorConfig {
  /// Grid resolution for the (alpha, beta) search in (0, 1).
  std::size_t grid_steps = 9;
  /// Damping applied to the trend per extrapolated step.
  double trend_damping = 0.85;
  /// Allow beta = 0 (simple exponential smoothing) in the grid.
  bool allow_no_trend = true;
};

class EtsPredictor final : public SeriesPredictor {
 public:
  explicit EtsPredictor(EtsPredictorConfig config = {});

  void train(const SeriesCorpus& corpus) override;
  double predict(const PredictionQuery& query) override;
  std::string_view name() const override { return "ets"; }

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

 private:
  /// Sum of squared one-step errors of (alpha, beta) over a series.
  static double sse_one_step(std::span<const double> series, double alpha,
                             double beta);

  EtsPredictorConfig config_;
  double alpha_ = 0.5;
  double beta_ = 0.1;
};

}  // namespace corp::predict
