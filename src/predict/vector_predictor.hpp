// Multi-resource predictor: one PredictionStack per resource type,
// operating on ResourceVector series. This is the object the schedulers
// hold — "CORP periodically predicts the allocated and unused resources in
// each VM" (Sec. III-B) — shared across VMs (the model is global; the
// per-VM state is just the history series the caller supplies).
//
// Resilience: a PredictorHealthMonitor inspects every raw forecast and
// drives a graceful-degradation ladder (primary stack -> conservative ETS
// lower-bound fallback -> reserved-only, see health_monitor.hpp), and
// NaN-marked telemetry gaps in the history are imputed (last observation
// carried forward) instead of crashing the stacks. Both paths are inert
// on healthy input: fault-free runs stay bit-identical.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "predict/health_monitor.hpp"
#include "predict/stacks.hpp"
#include "trace/resources.hpp"

namespace corp::predict {

using trace::kNumResources;
using trace::ResourceVector;

/// Per-resource-type training corpora.
struct VectorCorpus {
  std::array<SeriesCorpus, kNumResources> per_type;

  /// Appends one multi-resource series, splitting it per type.
  void add_series(const std::vector<ResourceVector>& series);

  bool empty() const;
};

/// Per-type fault directives applied to the raw forecasts of one predict
/// call (from the fault-injection layer; all-kNone = no poisoning).
using InjectedFaultVector = std::array<InjectedFault, kNumResources>;

/// Replaces non-finite entries (telemetry-gap markers) with the last
/// finite observation before them (first finite one for a leading gap;
/// 0 when the series has no finite entry). Returns false when the series
/// had no gaps (output untouched — callers keep the original buffer).
bool impute_gaps(const std::vector<double>& series,
                 std::vector<double>& imputed);

/// One predict() call's worth of input for every job in a window,
/// submitted together so each resource type's stack runs one batched
/// (GEMM for CORP) inference over all jobs. History pointers are
/// non-owning and must stay valid for the duration of the call.
struct VectorBatchRequest {
  std::vector<const std::array<std::vector<double>, kNumResources>*>
      histories;
  /// Per-job fault directives; empty means no poisoning, otherwise must
  /// have one entry per history.
  std::vector<InjectedFaultVector> faults;
  util::ThreadPool* pool = nullptr;
};

class VectorPredictor {
 public:
  VectorPredictor(Method method, const StackConfig& config, util::Rng& rng,
                  bool enable_hmm_correction = true,
                  bool enable_confidence_bound = true,
                  const HealthConfig& health = {});

  Method method() const { return method_; }

  void train(const VectorCorpus& corpus);

  /// Forecasts the unused vector at t + L from per-type histories.
  /// Histories may contain NaN gap markers (imputed before prediction).
  /// `faults` poisons the raw per-type forecasts before the health
  /// monitor inspects them (fault-injection hook; defaults to none).
  ResourceVector predict(
      const std::array<std::vector<double>, kNumResources>& history,
      const InjectedFaultVector& faults = {});

  /// Batched predict(): one forecast vector per request row, bit-identical
  /// to calling predict() on each (history, faults) pair in order. Phase A
  /// runs each resource type's stack once over all rows (the stacks are
  /// pure during prediction); phase B replays fault injection, health
  /// observation, and tier dispatch serially in the scalar path's
  /// job-major/resource-minor order, so mid-batch demotions affect later
  /// rows exactly as sequential calls would.
  std::vector<ResourceVector> predict_batch(const VectorBatchRequest& request);

  /// Records actual-vs-predicted per type (Eq. 20 feedback). Feeds the
  /// active tier's trackers (fallback included, so it is warm on demotion).
  void record_outcome(const ResourceVector& actual,
                      const ResourceVector& predicted);

  /// Eq. 21: the prediction is reallocatable only when every resource
  /// type's gate opens (a packed job needs all types simultaneously) AND
  /// the health monitor has not degraded to reserved-only provisioning.
  bool unlocked() const;

  /// Current degradation rung (see health_monitor.hpp).
  DegradationTier tier() const { return monitor_.tier(); }
  const PredictorHealthMonitor& health() const { return monitor_; }

  PredictionStack& stack(std::size_t type) { return *stacks_[type]; }
  const PredictionStack& stack(std::size_t type) const {
    return *stacks_[type];
  }

 private:
  Method method_;
  std::array<std::unique_ptr<PredictionStack>, kNumResources> stacks_;
  /// Conservative ETS lower-bound stacks backing the kFallback rung; null
  /// when the primary already is the ETS stack (ladder skips the rung).
  std::array<std::unique_ptr<PredictionStack>, kNumResources> fallback_;
  PredictorHealthMonitor monitor_;
  /// Scratch buffer reused by gap imputation.
  std::vector<double> imputed_;
};

}  // namespace corp::predict
