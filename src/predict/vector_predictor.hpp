// Multi-resource predictor: one PredictionStack per resource type,
// operating on ResourceVector series. This is the object the schedulers
// hold — "CORP periodically predicts the allocated and unused resources in
// each VM" (Sec. III-B) — shared across VMs (the model is global; the
// per-VM state is just the history series the caller supplies).
#pragma once

#include <array>
#include <memory>

#include "predict/stacks.hpp"
#include "trace/resources.hpp"

namespace corp::predict {

using trace::kNumResources;
using trace::ResourceVector;

/// Per-resource-type training corpora.
struct VectorCorpus {
  std::array<SeriesCorpus, kNumResources> per_type;

  /// Appends one multi-resource series, splitting it per type.
  void add_series(const std::vector<ResourceVector>& series);

  bool empty() const;
};

class VectorPredictor {
 public:
  VectorPredictor(Method method, const StackConfig& config, util::Rng& rng,
                  bool enable_hmm_correction = true,
                  bool enable_confidence_bound = true);

  Method method() const { return method_; }

  void train(const VectorCorpus& corpus);

  /// Forecasts the unused vector at t + L from per-type histories.
  ResourceVector predict(
      const std::array<std::vector<double>, kNumResources>& history);

  /// Records actual-vs-predicted per type (Eq. 20 feedback).
  void record_outcome(const ResourceVector& actual,
                      const ResourceVector& predicted);

  /// Eq. 21: the prediction is reallocatable only when every resource
  /// type's gate opens (a packed job needs all types simultaneously).
  bool unlocked() const;

  PredictionStack& stack(std::size_t type) { return *stacks_[type]; }
  const PredictionStack& stack(std::size_t type) const {
    return *stacks_[type];
  }

 private:
  Method method_;
  std::array<std::unique_ptr<PredictionStack>, kNumResources> stacks_;
};

}  // namespace corp::predict
