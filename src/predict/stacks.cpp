#include "predict/stacks.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "predict/stack_builder.hpp"
#include "util/stats.hpp"

namespace corp::predict {

std::string_view method_name(Method m) {
  switch (m) {
    case Method::kCorp: return "CORP";
    case Method::kRccr: return "RCCR";
    case Method::kCloudScale: return "CloudScale";
    case Method::kDra: return "DRA";
    case Method::kPredAware: return "pred-aware";
  }
  return "?";
}

namespace {

/// Confidence lower bound of Eq. 19: u_hat - sigma_hat * z_{theta/2}.
double confidence_lower_bound(double prediction, double sigma,
                              double confidence_level) {
  const double theta = std::clamp(1.0 - confidence_level, 1e-6, 1.0 - 1e-6);
  return prediction - sigma * util::z_half_alpha(theta);
}

/// Mean of all values across a corpus (0 for empty corpora). Used to
/// resolve the relative Eq. 21 tolerance into absolute units.
double corpus_mean(const SeriesCorpus& corpus) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& series : corpus) {
    for (double x : series) {
      sum += x;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

/// Seeds a stack's error tracker by replaying held-out corpus windows
/// through the stack's *full* pipeline (corrections and confidence bound
/// included), so the Eq. 21 gate and sigma estimates reflect the stack's
/// actual operating bias from the first live prediction. The replay is
/// sequential: each prediction sees the tracker state the previous ones
/// built, exactly as online operation would.
void seed_tracker(PredictionStack& stack, const SeriesCorpus& corpus,
                  std::size_t history_slots, std::size_t horizon) {
  for (const auto& series : corpus) {
    if (series.size() < history_slots + horizon) continue;
    // Stride by the horizon: one seeded error per prediction window.
    for (std::size_t end = history_slots; end + horizon <= series.size();
         end += horizon) {
      const std::span<const double> history(series.data() + end -
                                                history_slots,
                                            history_slots);
      const double predicted = stack.predict(history);
      double actual = 0.0;
      for (std::size_t h = 0; h < horizon; ++h) actual += series[end + h];
      actual /= static_cast<double>(horizon);
      stack.record_outcome(actual, predicted);
    }
  }
}

}  // namespace

BatchResult PredictionStack::predict_batch(const BatchRequest& request) {
  if (obs::registry().enabled()) {
    obs::registry()
        .counter("predict.batch.stack_scalar_rows")
        .add(request.queries.size());
  }
  BatchResult result;
  result.values.reserve(request.queries.size());
  for (const PredictionQuery& query : request.queries) {
    result.values.push_back(predict(query.history));
  }
  return result;
}

// ---------------------------------------------------------------- CORP --

CorpStack::CorpStack(const Options& options, util::Rng& rng)
    : options_(options),
      dnn_(options.dnn, rng),
      corrector_(options.hmm, rng),
      tracker_(options.stack.error_history) {}

void CorpStack::train(const SeriesCorpus& corpus) {
  dnn_.train(corpus);
  corrector_.fit(corpus);
  epsilon_abs_ = options_.stack.error_tolerance * corpus_mean(corpus);
  seed_tracker(*this, corpus, options_.dnn.history_slots,
               options_.stack.horizon_slots);
}

double CorpStack::predict(std::span<const double> history) {
  double y = dnn_.predict(PredictionQuery{
      .entity = 0, .horizon = options_.stack.horizon_slots,
      .history = history});
  if (options_.enable_hmm_correction) {
    y = corrector_.correct(y, history);
  }
  if (options_.enable_confidence_bound) {
    y = confidence_lower_bound(y, tracker_.stddev(),
                               options_.stack.confidence_level);
  }
  return std::max(0.0, y);
}

BatchResult CorpStack::predict_batch(const BatchRequest& request) {
  // One GEMM across all rows (the DNN ignores per-query horizons; this
  // stack's horizon is baked into its training targets), then the pure
  // per-row correction pipeline in query order.
  BatchResult result = dnn_.predict_batch(request);
  const double sigma = tracker_.stddev();
  for (std::size_t i = 0; i < request.queries.size(); ++i) {
    double y = result.values[i];
    if (options_.enable_hmm_correction) {
      y = corrector_.correct(y, request.queries[i].history);
    }
    if (options_.enable_confidence_bound) {
      y = confidence_lower_bound(y, sigma, options_.stack.confidence_level);
    }
    result.values[i] = std::max(0.0, y);
  }
  return result;
}

void CorpStack::record_outcome(double actual, double predicted) {
  tracker_.record(actual, predicted);
}

bool CorpStack::unlocked() const {
  return tracker_.unlocked(epsilon_abs_,
                           options_.stack.probability_threshold);
}

double CorpStack::gate_probability() const {
  return tracker_.probability_within(epsilon_abs_);
}

// ---------------------------------------------------------------- RCCR --

RccrStack::RccrStack(const Options& options)
    : options_(options),
      ets_(options.ets),
      tracker_(options.stack.error_history) {}

namespace {

/// Compresses a slot-level series into consecutive window means. RCCR's
/// time-series forecaster predicts window-level amounts (its SLO horizon
/// is long); running ETS on raw 10-second slots would have it chase slot
/// noise.
std::vector<double> to_window_means(std::span<const double> series,
                                    std::size_t window) {
  std::vector<double> means;
  if (window == 0) return means;
  for (std::size_t start = 0; start + window <= series.size();
       start += window) {
    double m = 0.0;
    for (std::size_t i = 0; i < window; ++i) m += series[start + i];
    means.push_back(m / static_cast<double>(window));
  }
  if (means.empty() && !series.empty()) {
    double m = 0.0;
    for (double x : series) m += x;
    means.push_back(m / static_cast<double>(series.size()));
  }
  return means;
}

}  // namespace

void RccrStack::train(const SeriesCorpus& corpus) {
  SeriesCorpus compressed;
  compressed.reserve(corpus.size());
  for (const auto& series : corpus) {
    compressed.push_back(to_window_means(series, options_.stack.horizon_slots));
  }
  ets_.train(compressed);
  epsilon_abs_ = options_.stack.error_tolerance * corpus_mean(corpus);
  seed_tracker(*this, corpus, /*history_slots=*/12,
               options_.stack.horizon_slots);
}

double RccrStack::predict(std::span<const double> history) {
  const std::vector<double> means =
      to_window_means(history, options_.stack.horizon_slots);
  double y = ets_.predict(
      PredictionQuery{.entity = 0, .horizon = 1, .history = means});
  y = confidence_lower_bound(y, tracker_.stddev(),
                             options_.stack.confidence_level);
  return std::max(0.0, y);
}

void RccrStack::record_outcome(double actual, double predicted) {
  tracker_.record(actual, predicted);
}

bool RccrStack::unlocked() const {
  return tracker_.unlocked(epsilon_abs_,
                           options_.stack.probability_threshold);
}

double RccrStack::gate_probability() const {
  return tracker_.probability_within(epsilon_abs_);
}

// ---------------------------------------------------------- CloudScale --

CloudScaleStack::CloudScaleStack(const Options& options)
    : options_(options),
      markov_(options.markov),
      tracker_(options.stack.error_history) {}

void CloudScaleStack::train(const SeriesCorpus& corpus) {
  markov_.train(corpus);
  epsilon_abs_ = options_.stack.error_tolerance * corpus_mean(corpus);
  seed_tracker(*this, corpus, /*history_slots=*/12,
               options_.stack.horizon_slots);
}

double CloudScaleStack::padding(std::span<const double> history) const {
  double burst = 0.0;
  if (!history.empty()) {
    const std::size_t take =
        std::min(options_.burst_window, history.size());
    double lo = history[history.size() - take];
    double hi = lo;
    for (std::size_t i = history.size() - take; i < history.size(); ++i) {
      lo = std::min(lo, history[i]);
      hi = std::max(hi, history[i]);
    }
    burst = (hi - lo) * options_.burst_padding_fraction;
  }
  const double recent_bias = std::abs(tracker_.mean());
  return std::max(burst, recent_bias);
}

double CloudScaleStack::predict(std::span<const double> history) {
  const double y = markov_.predict(PredictionQuery{
      .entity = 0, .horizon = options_.stack.horizon_slots,
      .history = history});
  return std::max(0.0, y - padding(history));
}

void CloudScaleStack::record_outcome(double actual, double predicted) {
  tracker_.record(actual, predicted);
}

bool CloudScaleStack::unlocked() const {
  return tracker_.unlocked(epsilon_abs_,
                           options_.stack.probability_threshold);
}

double CloudScaleStack::gate_probability() const {
  return tracker_.probability_within(epsilon_abs_);
}

// ----------------------------------------------------------------- DRA --

DraStack::DraStack(const Options& options)
    : options_(options),
      mean_(options.mean),
      tracker_(options.stack.error_history) {}

void DraStack::train(const SeriesCorpus& corpus) { mean_.train(corpus); }

double DraStack::predict(std::span<const double> history) {
  return std::max(0.0, mean_.predict(PredictionQuery{
                           .entity = 0,
                           .horizon = options_.stack.horizon_slots,
                           .history = history}));
}

void DraStack::record_outcome(double actual, double predicted) {
  tracker_.record(actual, predicted);
}

// ------------------------------------------------------------- factory --

std::unique_ptr<PredictionStack> make_stack(Method method,
                                            const StackConfig& config,
                                            util::Rng& rng,
                                            bool enable_hmm_correction,
                                            bool enable_confidence_bound) {
  return StackBuilder(method)
      .config(config)
      .hmm_correction(enable_hmm_correction)
      .confidence_bound(enable_confidence_bound)
      .build(rng);
}

}  // namespace corp::predict
