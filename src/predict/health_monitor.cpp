#include "predict/health_monitor.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace corp::predict {

const char* tier_name(DegradationTier tier) {
  switch (tier) {
    case DegradationTier::kPrimary: return "primary";
    case DegradationTier::kFallback: return "fallback";
    case DegradationTier::kReservedOnly: return "reserved-only";
  }
  return "?";
}

PredictorHealthMonitor::PredictorHealthMonitor(HealthConfig config)
    : config_(config) {}

bool PredictorHealthMonitor::healthy(double raw_forecast) const {
  return std::isfinite(raw_forecast) &&
         std::abs(raw_forecast) <= config_.explosion_threshold;
}

bool PredictorHealthMonitor::observe(double raw_forecast) {
  const bool ok = healthy(raw_forecast);
  window_.push_back(!ok);
  if (!ok) {
    ++window_faults_;
    ++faults_observed_;
    healthy_streak_ = 0;
    obs::count("degrade.faulty_forecasts");
  } else {
    ++healthy_streak_;
  }
  while (window_.size() > config_.fault_window) {
    if (window_.front()) --window_faults_;
    window_.pop_front();
  }
  if (window_faults_ >= config_.demote_faults &&
      tier_ != DegradationTier::kReservedOnly) {
    demote();
  } else if (healthy_streak_ >= config_.promote_healthy &&
             tier_ != DegradationTier::kPrimary) {
    promote();
  }
  return ok;
}

void PredictorHealthMonitor::demote() {
  tier_ = tier_ == DegradationTier::kPrimary ? DegradationTier::kFallback
                                             : DegradationTier::kReservedOnly;
  ++demotions_;
  // Demotion consumes the evidence: a fresh window and streak, so the
  // next rung gets a full observation period before any further move.
  window_.clear();
  window_faults_ = 0;
  healthy_streak_ = 0;
  obs::count("degrade.demotions");
  obs::set_gauge("degrade.tier", static_cast<double>(tier_));
}

void PredictorHealthMonitor::promote() {
  tier_ = tier_ == DegradationTier::kReservedOnly
              ? DegradationTier::kFallback
              : DegradationTier::kPrimary;
  ++promotions_;
  healthy_streak_ = 0;
  obs::count("degrade.promotions");
  obs::set_gauge("degrade.tier", static_cast<double>(tier_));
}

void PredictorHealthMonitor::reset() {
  tier_ = DegradationTier::kPrimary;
  window_.clear();
  window_faults_ = 0;
  healthy_streak_ = 0;
  faults_observed_ = 0;
  demotions_ = 0;
  promotions_ = 0;
}

}  // namespace corp::predict
