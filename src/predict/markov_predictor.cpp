#include "predict/markov_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace corp::predict {

MarkovChainPredictor::MarkovChainPredictor(MarkovPredictorConfig config)
    : config_(config) {
  if (config.num_bins < 2) {
    throw std::invalid_argument("MarkovChainPredictor: need >= 2 bins");
  }
}

double MarkovChainPredictor::autocorrelation(std::span<const double> series,
                                             std::size_t lag) {
  if (series.size() <= lag + 1) return 0.0;
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(series.size());
  double num = 0.0, den = 0.0;
  for (std::size_t t = 0; t < series.size(); ++t) {
    const double d = series[t] - mean;
    den += d * d;
    if (t + lag < series.size()) {
      num += d * (series[t + lag] - mean);
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

std::size_t MarkovChainPredictor::bin_of(double value) const {
  const double range = max_value_ - min_value_;
  if (range <= 0.0) return 0;
  const double frac = (value - min_value_) / range;
  const auto bin = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(config_.num_bins));
  return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(config_.num_bins) - 1));
}

double MarkovChainPredictor::bin_center(std::size_t bin) const {
  const double width = (max_value_ - min_value_) /
                       static_cast<double>(config_.num_bins);
  return min_value_ + (static_cast<double>(bin) + 0.5) * width;
}

void MarkovChainPredictor::train(const SeriesCorpus& corpus) {
  // Value range across the corpus.
  bool any = false;
  for (const auto& series : corpus) {
    for (double x : series) {
      if (!any) {
        min_value_ = max_value_ = x;
        any = true;
      } else {
        min_value_ = std::min(min_value_, x);
        max_value_ = std::max(max_value_, x);
      }
    }
  }
  if (!any) {
    throw std::invalid_argument("MarkovChainPredictor::train: empty corpus");
  }

  // Signature search: does any candidate period dominate on average?
  signature_period_ = 0;
  double best_corr = config_.signature_threshold;
  for (std::size_t period = config_.min_period; period <= config_.max_period;
       ++period) {
    double corr = 0.0;
    std::size_t counted = 0;
    for (const auto& series : corpus) {
      if (series.size() > 2 * period) {
        corr += autocorrelation(series, period);
        ++counted;
      }
    }
    if (counted == 0) continue;
    corr /= static_cast<double>(counted);
    if (corr > best_corr) {
      best_corr = corr;
      signature_period_ = period;
    }
  }

  // Markov transition counts with add-one smoothing.
  const std::size_t n = config_.num_bins;
  std::vector<std::vector<double>> counts(n, std::vector<double>(n, 1.0));
  for (const auto& series : corpus) {
    for (std::size_t t = 0; t + 1 < series.size(); ++t) {
      counts[bin_of(series[t])][bin_of(series[t + 1])] += 1.0;
    }
  }
  transition_.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (double c : counts[i]) row_sum += c;
    for (std::size_t j = 0; j < n; ++j) {
      transition_[i][j] = counts[i][j] / row_sum;
    }
  }
  trained_ = true;
}

double MarkovChainPredictor::predict(const PredictionQuery& query) {
  const std::span<const double> history = query.history;
  const std::size_t horizon = query.horizon;
  if (!trained_) {
    throw std::logic_error("MarkovChainPredictor::predict before train");
  }
  if (history.empty()) return bin_center(config_.num_bins / 2);

  // Signature replay when the trace showed a repeating pattern and the
  // history is long enough to index into the period: the forecast for the
  // slot `horizon` steps past the end is the most recent sample at the
  // same phase of the period.
  if (signature_period_ > 0 && history.size() >= signature_period_ &&
      horizon > 0) {
    const std::size_t periods_back =
        (horizon + signature_period_ - 1) / signature_period_;
    const std::size_t offset = periods_back * signature_period_ - horizon;
    if (offset < history.size()) {
      return history[history.size() - 1 - offset];
    }
  }

  // Multi-step Markov: propagate the state distribution `horizon` steps
  // and return the expected bin center. As the paper notes, correlation
  // with the actual demand weakens with each extra step.
  const std::size_t n = config_.num_bins;
  std::vector<double> dist(n, 0.0);
  dist[bin_of(history.back())] = 1.0;
  for (std::size_t step = 0; step < std::max<std::size_t>(horizon, 1);
       ++step) {
    std::vector<double> next(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (dist[i] == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        next[j] += dist[i] * transition_[i][j];
      }
    }
    dist = std::move(next);
  }
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i) expected += dist[i] * bin_center(i);
  return expected;
}

}  // namespace corp::predict
