// PRESS-style signature + discrete-time Markov-chain forecaster — the
// prediction engine of the CloudScale baseline (Sec. IV: "we first used the
// prediction model developed in [37] (PRESS) and a discrete-time Markov
// chain to predict the amount of unused resource").
//
// PRESS first looks for a repeating signature (a dominant period found via
// autocorrelation); when a signature exists, the forecast replays it. When
// no pattern is found — the common case for short-lived jobs, which is the
// paper's whole point — it falls back to a quantized Markov chain: values
// are binned into states, a transition matrix is learned, and the
// multi-step forecast is the expected bin center after `horizon`
// transitions of the state distribution.
#pragma once

#include <vector>

#include "predict/predictor.hpp"

namespace corp::predict {

struct MarkovPredictorConfig {
  /// Number of quantization bins (PRESS uses coarse state spaces).
  std::size_t num_bins = 12;
  /// Minimum autocorrelation to accept a signature period.
  double signature_threshold = 0.8;
  /// Candidate periods searched for a signature (in slots).
  std::size_t min_period = 4;
  std::size_t max_period = 60;
};

class MarkovChainPredictor final : public SeriesPredictor {
 public:
  explicit MarkovChainPredictor(MarkovPredictorConfig config = {});

  void train(const SeriesCorpus& corpus) override;
  double predict(const PredictionQuery& query) override;
  std::string_view name() const override { return "press-markov"; }

  /// Detected signature period (0 = none found, Markov fallback in use).
  std::size_t signature_period() const { return signature_period_; }

  /// Bin index for a raw value (exposed for tests).
  std::size_t bin_of(double value) const;
  /// Center value of a bin.
  double bin_center(std::size_t bin) const;

 private:
  /// Lag-k autocorrelation of a series.
  static double autocorrelation(std::span<const double> series,
                                std::size_t lag);

  MarkovPredictorConfig config_;
  double min_value_ = 0.0;
  double max_value_ = 1.0;
  /// Row-stochastic transition matrix over bins.
  std::vector<std::vector<double>> transition_;
  std::size_t signature_period_ = 0;
  bool trained_ = false;
};

}  // namespace corp::predict
