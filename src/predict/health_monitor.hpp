// Predictor health monitoring and graceful degradation.
//
// A prediction-driven provisioner has a failure mode the paper never
// exercises: a poisoned model (NaN outputs, exploding magnitudes) that
// keeps "predicting" unused resource and thereby keeps unlocking it
// through the Eq. 21 gate. The gate alone reacts only after bad outcomes
// are *recorded*, one window later — by then the resource was already
// pledged. The health monitor inspects every raw forecast before it is
// used and trips a degradation ladder:
//
//   kPrimary      — the method's full stack (CORP: DNN + HMM + bound)
//   kFallback     — conservative ETS lower-bound stack
//   kReservedOnly — no opportunistic unlocking at all
//
// Demotion is immediate once faults accumulate in the observation window;
// re-promotion requires a long streak of healthy primary forecasts
// (hysteresis), so a flapping predictor cannot oscillate resources open.
// The monitor is pure bookkeeping — it draws no randomness and, on an
// all-healthy run, never changes a value — so enabling it preserves
// bit-identical outputs on fault-free runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

namespace corp::predict {

/// Poisoning applied to a raw forecast by the fault-injection layer
/// (mirrors fault::PredictorFaultKind without depending on corp_fault).
enum class InjectedFault : std::uint8_t { kNone = 0, kNan = 1, kExplode = 2 };

/// Degradation rungs, most capable first.
enum class DegradationTier : std::uint8_t {
  kPrimary = 0,
  kFallback = 1,
  kReservedOnly = 2,
};

const char* tier_name(DegradationTier tier);

struct HealthConfig {
  /// A finite forecast whose magnitude exceeds this is a fault. Forecasts
  /// are request-normalized fractions (healthy range roughly [0, 1]), so
  /// this threshold can never trip on a sane model.
  double explosion_threshold = 1e3;
  /// Sliding window of recent forecast observations.
  std::size_t fault_window = 48;
  /// Faults within the window that force a one-rung demotion.
  std::size_t demote_faults = 4;
  /// Consecutive healthy primary forecasts required before promoting one
  /// rung back up (hysteresis against flapping).
  std::size_t promote_healthy = 96;
};

/// Tracks raw-forecast health and the current degradation tier. One
/// monitor guards one VectorPredictor (all resource types share the tier,
/// matching the all-types-must-unlock semantics of Eq. 21).
class PredictorHealthMonitor {
 public:
  explicit PredictorHealthMonitor(HealthConfig config = {});

  /// Is this raw forecast healthy? (finite and below the explosion
  /// threshold). Does not mutate state.
  bool healthy(double raw_forecast) const;

  /// Records one raw primary forecast, updating the window, streak and —
  /// when thresholds are crossed — the tier. Returns healthy(raw).
  bool observe(double raw_forecast);

  DegradationTier tier() const { return tier_; }

  /// Faulty fraction of the current observation window (0 while the
  /// window is empty, e.g. right after a demotion consumed the evidence).
  /// Continuous health signal consumed by trust-adaptive scheduling
  /// (sched/trust.hpp).
  double window_fault_fraction() const {
    return window_.empty() ? 0.0
                           : static_cast<double>(window_faults_) /
                                 static_cast<double>(window_.size());
  }

  std::size_t faults_observed() const { return faults_observed_; }
  std::size_t demotions() const { return demotions_; }
  std::size_t promotions() const { return promotions_; }

  void reset();

 private:
  void demote();
  void promote();

  HealthConfig config_;
  DegradationTier tier_ = DegradationTier::kPrimary;
  std::deque<bool> window_;  // true = fault
  std::size_t window_faults_ = 0;
  std::size_t healthy_streak_ = 0;
  std::size_t faults_observed_ = 0;
  std::size_t demotions_ = 0;
  std::size_t promotions_ = 0;
};

}  // namespace corp::predict
