// Sliding-window mean estimator — the prediction engine of the DRA
// baseline ("we used the run-time software to periodically estimate the
// amount of unused resource of VMs based on the historical resource usage
// data", Sec. IV). No fluctuation handling, no confidence levels — exactly
// the deficiencies Figs. 6-9 attribute to DRA.
#pragma once

#include "predict/predictor.hpp"

namespace corp::predict {

struct MeanPredictorConfig {
  /// Number of trailing samples averaged (0 = whole history).
  std::size_t window = 12;
};

class SlidingMeanPredictor final : public SeriesPredictor {
 public:
  explicit SlidingMeanPredictor(MeanPredictorConfig config = {});

  /// Stateless in the corpus: train() only records a fallback mean used
  /// when predict() is handed an empty history.
  void train(const SeriesCorpus& corpus) override;
  double predict(const PredictionQuery& query) override;
  std::string_view name() const override { return "sliding-mean"; }

 private:
  MeanPredictorConfig config_;
  double corpus_mean_ = 0.0;
};

}  // namespace corp::predict
