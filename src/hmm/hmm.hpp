// Discrete Hidden Markov Model (Rabiner's classic formulation, which the
// paper cites) with:
//   - scaled forward/backward recursions (numerically safe for long
//     observation sequences),
//   - Viterbi decoding of the single best state path (Sec. III-A1b:
//     "we use Viterbi algorithm to find the single best state sequence"),
//   - Baum-Welch parameter re-estimation ("we use the method in [30] to
//     re-estimate the parameters A, B, pi"),
//   - the next-observation distribution of Eq. 17:
//       E[P_{T+1}(k)] = sum_j P(q_{T+1} = S_j | q_T = q_L*) b_j(k).
//
// The CORP instantiation is H = 3 states (over-/normal-/under-provisioning)
// and M = 3 symbols (peak/center/valley), but the class is generic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace corp::hmm {

/// Row-stochastic matrix stored as vector of rows.
using StochasticMatrix = std::vector<std::vector<double>>;

struct HmmParams {
  StochasticMatrix transition;   // A: H x H
  StochasticMatrix emission;     // B: H x M
  std::vector<double> initial;   // pi: H

  std::size_t num_states() const { return initial.size(); }
  std::size_t num_symbols() const {
    return emission.empty() ? 0 : emission.front().size();
  }

  /// Checks shapes and row-stochasticity within eps.
  bool valid(double eps = 1e-6) const;
};

struct ForwardResult {
  /// Scaled alpha_t(i); alpha[t][i] * prod(c[0..t]) equals the raw value.
  std::vector<std::vector<double>> alpha;
  /// Per-step scaling coefficients (c_t = 1 / sum_i raw_alpha_t(i)).
  std::vector<double> scale;
  double log_likelihood = 0.0;
};

struct BaumWelchReport {
  std::size_t iterations = 0;
  double final_log_likelihood = 0.0;
  bool converged = false;
};

class DiscreteHmm {
 public:
  /// Random near-uniform initialization (Baum-Welch needs asymmetry to
  /// break out of the uniform fixed point).
  DiscreteHmm(std::size_t num_states, std::size_t num_symbols,
              util::Rng& rng);

  /// Explicit parameters; throws std::invalid_argument if not valid().
  explicit DiscreteHmm(HmmParams params);

  const HmmParams& params() const { return params_; }
  std::size_t num_states() const { return params_.num_states(); }
  std::size_t num_symbols() const { return params_.num_symbols(); }

  /// Scaled forward pass; observations are symbol indices in [0, M).
  ForwardResult forward(std::span<const std::size_t> observations) const;

  /// Scaled backward variables matching forward()'s scaling.
  std::vector<std::vector<double>> backward(
      std::span<const std::size_t> observations,
      std::span<const double> scale) const;

  /// log P(O | lambda).
  double log_likelihood(std::span<const std::size_t> observations) const;

  /// gamma_t(i) = P(q_t = S_i | O, lambda) (Eq. 12-13).
  std::vector<std::vector<double>> posterior_states(
      std::span<const std::size_t> observations) const;

  /// Single best state path (Viterbi, log space).
  std::vector<std::size_t> viterbi(
      std::span<const std::size_t> observations) const;

  /// Baum-Welch re-estimation in place over one observation sequence.
  BaumWelchReport baum_welch(std::span<const std::size_t> observations,
                             std::size_t max_iterations = 50,
                             double tolerance = 1e-6);

  /// Eq. 17: distribution over the next observation symbol, conditioning
  /// on the Viterbi-decoded final state.
  std::vector<double> next_symbol_distribution(
      std::span<const std::size_t> observations) const;

  /// argmax of next_symbol_distribution.
  std::size_t predict_next_symbol(
      std::span<const std::size_t> observations) const;

 private:
  void validate_observations(std::span<const std::size_t> observations) const;

  HmmParams params_;
};

}  // namespace corp::hmm
