// Fluctuation symbolizer (Sec. III-A1b).
//
// From historical unused-resource data it learns min/mean/max, splits
// [min, max] into three subintervals at
//     t1 = min + (mean - min) / 2      and
//     t2 = mean + (max - mean) / 2,
// and maps each observation window's range Delta_j = max - min within the
// window to a symbol:
//     Delta_j <= t1            -> VALLEY
//     t1 < Delta_j < t2        -> CENTER
//     Delta_j >= t2            -> PEAK
// It also exposes the conservative correction magnitude
//     min(h - m, m - l)
// the predictor adds (peak) or subtracts (valley) from the DNN forecast.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace corp::hmm {

/// Observation symbols; values double as HMM symbol indices.
enum class FluctuationSymbol : std::size_t {
  kPeak = 0,
  kCenter = 1,
  kValley = 2,
};

inline constexpr std::size_t kNumFluctuationSymbols = 3;

std::string_view fluctuation_symbol_name(FluctuationSymbol s);

class FluctuationSymbolizer {
 public:
  FluctuationSymbolizer() = default;

  /// Learns min/mean/max from historical unused-resource samples.
  /// Throws std::invalid_argument on empty input.
  void fit(std::span<const double> history);

  bool fitted() const { return fitted_; }
  double min() const { return min_; }
  double mean() const { return mean_; }
  double max() const { return max_; }

  /// Lower/upper split points t1/t2.
  double lower_threshold() const;
  double upper_threshold() const;

  /// Classifies a single window range Delta_j.
  FluctuationSymbol symbolize_range(double delta) const;

  /// Splits a chronological unused-resource series into `window`-slot
  /// windows (the paper's L-1 subwindows between consecutive observation
  /// slots) and emits one symbol per window.
  std::vector<std::size_t> observation_sequence(
      std::span<const double> series, std::size_t window) const;

  /// min(h - m, m - l): the conservative prediction-correction amount
  /// applied when the HMM predicts a peak or valley (Sec. III-A1b).
  double correction_magnitude() const;

 private:
  double min_ = 0.0;
  double mean_ = 0.0;
  double max_ = 0.0;
  bool fitted_ = false;
};

}  // namespace corp::hmm
