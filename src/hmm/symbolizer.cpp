#include "hmm/symbolizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/time_series.hpp"

namespace corp::hmm {

std::string_view fluctuation_symbol_name(FluctuationSymbol s) {
  switch (s) {
    case FluctuationSymbol::kPeak: return "peak";
    case FluctuationSymbol::kCenter: return "center";
    case FluctuationSymbol::kValley: return "valley";
  }
  return "?";
}

void FluctuationSymbolizer::fit(std::span<const double> history) {
  if (history.empty()) {
    throw std::invalid_argument("FluctuationSymbolizer::fit: empty history");
  }
  min_ = *std::min_element(history.begin(), history.end());
  max_ = *std::max_element(history.begin(), history.end());
  double sum = 0.0;
  for (double x : history) sum += x;
  mean_ = sum / static_cast<double>(history.size());
  fitted_ = true;
}

double FluctuationSymbolizer::lower_threshold() const {
  if (!fitted_) throw std::logic_error("FluctuationSymbolizer: not fitted");
  return min_ + 0.5 * (mean_ - min_);
}

double FluctuationSymbolizer::upper_threshold() const {
  if (!fitted_) throw std::logic_error("FluctuationSymbolizer: not fitted");
  return mean_ + 0.5 * (max_ - mean_);
}

FluctuationSymbol FluctuationSymbolizer::symbolize_range(double delta) const {
  if (delta <= lower_threshold()) return FluctuationSymbol::kValley;
  if (delta < upper_threshold()) return FluctuationSymbol::kCenter;
  return FluctuationSymbol::kPeak;
}

std::vector<std::size_t> FluctuationSymbolizer::observation_sequence(
    std::span<const double> series, std::size_t window) const {
  const std::vector<double> ranges = util::window_ranges(series, window);
  std::vector<std::size_t> symbols;
  symbols.reserve(ranges.size());
  for (double delta : ranges) {
    symbols.push_back(static_cast<std::size_t>(symbolize_range(delta)));
  }
  return symbols;
}

double FluctuationSymbolizer::correction_magnitude() const {
  if (!fitted_) throw std::logic_error("FluctuationSymbolizer: not fitted");
  return std::max(0.0, std::min(max_ - mean_, mean_ - min_));
}

}  // namespace corp::hmm
