#include "hmm/hmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace corp::hmm {

namespace {

bool row_stochastic(const std::vector<double>& row, double eps) {
  double sum = 0.0;
  for (double x : row) {
    if (x < -eps) return false;
    sum += x;
  }
  return std::abs(sum - 1.0) <= eps;
}

void normalize_row(std::vector<double>& row) {
  double sum = 0.0;
  for (double x : row) sum += x;
  if (sum <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(row.size());
    for (double& x : row) x = uniform;
    return;
  }
  for (double& x : row) x /= sum;
}

}  // namespace

bool HmmParams::valid(double eps) const {
  const std::size_t h = num_states();
  const std::size_t m = num_symbols();
  if (h == 0 || m == 0) return false;
  if (transition.size() != h || emission.size() != h) return false;
  for (const auto& row : transition) {
    if (row.size() != h || !row_stochastic(row, eps)) return false;
  }
  for (const auto& row : emission) {
    if (row.size() != m || !row_stochastic(row, eps)) return false;
  }
  return row_stochastic(initial, eps);
}

DiscreteHmm::DiscreteHmm(std::size_t num_states, std::size_t num_symbols,
                         util::Rng& rng) {
  if (num_states == 0 || num_symbols == 0) {
    throw std::invalid_argument("DiscreteHmm: zero states or symbols");
  }
  auto perturbed_row = [&](std::size_t n) {
    std::vector<double> row(n);
    for (double& x : row) x = 1.0 + rng.uniform(-0.05, 0.05);
    normalize_row(row);
    return row;
  };
  params_.transition.resize(num_states);
  params_.emission.resize(num_states);
  for (std::size_t i = 0; i < num_states; ++i) {
    params_.transition[i] = perturbed_row(num_states);
    params_.emission[i] = perturbed_row(num_symbols);
  }
  params_.initial = perturbed_row(num_states);
}

DiscreteHmm::DiscreteHmm(HmmParams params) : params_(std::move(params)) {
  if (!params_.valid()) {
    throw std::invalid_argument("DiscreteHmm: invalid parameters");
  }
}

void DiscreteHmm::validate_observations(
    std::span<const std::size_t> observations) const {
  if (observations.empty()) {
    throw std::invalid_argument("DiscreteHmm: empty observation sequence");
  }
  for (std::size_t o : observations) {
    if (o >= num_symbols()) {
      throw std::invalid_argument("DiscreteHmm: observation symbol out of range");
    }
  }
}

ForwardResult DiscreteHmm::forward(
    std::span<const std::size_t> observations) const {
  validate_observations(observations);
  const std::size_t T = observations.size();
  const std::size_t H = num_states();
  ForwardResult result;
  result.alpha.assign(T, std::vector<double>(H, 0.0));
  result.scale.assign(T, 0.0);

  double norm = 0.0;
  for (std::size_t i = 0; i < H; ++i) {
    result.alpha[0][i] =
        params_.initial[i] * params_.emission[i][observations[0]];
    norm += result.alpha[0][i];
  }
  if (norm <= 0.0) norm = std::numeric_limits<double>::min();
  result.scale[0] = 1.0 / norm;
  for (double& a : result.alpha[0]) a *= result.scale[0];

  for (std::size_t t = 1; t < T; ++t) {
    norm = 0.0;
    for (std::size_t j = 0; j < H; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < H; ++i) {
        acc += result.alpha[t - 1][i] * params_.transition[i][j];
      }
      result.alpha[t][j] = acc * params_.emission[j][observations[t]];
      norm += result.alpha[t][j];
    }
    if (norm <= 0.0) norm = std::numeric_limits<double>::min();
    result.scale[t] = 1.0 / norm;
    for (double& a : result.alpha[t]) a *= result.scale[t];
  }

  double ll = 0.0;
  for (double c : result.scale) ll -= std::log(c);
  result.log_likelihood = ll;
  return result;
}

std::vector<std::vector<double>> DiscreteHmm::backward(
    std::span<const std::size_t> observations,
    std::span<const double> scale) const {
  validate_observations(observations);
  const std::size_t T = observations.size();
  const std::size_t H = num_states();
  if (scale.size() != T) {
    throw std::invalid_argument("DiscreteHmm::backward: scale size mismatch");
  }
  std::vector<std::vector<double>> beta(T, std::vector<double>(H, 0.0));
  for (std::size_t i = 0; i < H; ++i) beta[T - 1][i] = scale[T - 1];
  for (std::size_t t = T - 1; t-- > 0;) {
    for (std::size_t i = 0; i < H; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < H; ++j) {
        acc += params_.transition[i][j] *
               params_.emission[j][observations[t + 1]] * beta[t + 1][j];
      }
      beta[t][i] = acc * scale[t];
    }
  }
  return beta;
}

double DiscreteHmm::log_likelihood(
    std::span<const std::size_t> observations) const {
  return forward(observations).log_likelihood;
}

std::vector<std::vector<double>> DiscreteHmm::posterior_states(
    std::span<const std::size_t> observations) const {
  const ForwardResult fwd = forward(observations);
  const auto beta = backward(observations, fwd.scale);
  const std::size_t T = observations.size();
  const std::size_t H = num_states();
  std::vector<std::vector<double>> gamma(T, std::vector<double>(H, 0.0));
  for (std::size_t t = 0; t < T; ++t) {
    double norm = 0.0;
    for (std::size_t i = 0; i < H; ++i) {
      gamma[t][i] = fwd.alpha[t][i] * beta[t][i];
      norm += gamma[t][i];
    }
    if (norm > 0.0) {
      for (double& g : gamma[t]) g /= norm;
    }
  }
  return gamma;
}

std::vector<std::size_t> DiscreteHmm::viterbi(
    std::span<const std::size_t> observations) const {
  validate_observations(observations);
  const std::size_t T = observations.size();
  const std::size_t H = num_states();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  auto safe_log = [](double x) {
    return x > 0.0 ? std::log(x) : -std::numeric_limits<double>::max();
  };

  std::vector<std::vector<double>> delta(T, std::vector<double>(H, kNegInf));
  std::vector<std::vector<std::size_t>> psi(T, std::vector<std::size_t>(H, 0));
  for (std::size_t i = 0; i < H; ++i) {
    delta[0][i] = safe_log(params_.initial[i]) +
                  safe_log(params_.emission[i][observations[0]]);
  }
  for (std::size_t t = 1; t < T; ++t) {
    for (std::size_t j = 0; j < H; ++j) {
      double best = kNegInf;
      std::size_t arg = 0;
      for (std::size_t i = 0; i < H; ++i) {
        const double cand = delta[t - 1][i] + safe_log(params_.transition[i][j]);
        if (cand > best) {
          best = cand;
          arg = i;
        }
      }
      delta[t][j] = best + safe_log(params_.emission[j][observations[t]]);
      psi[t][j] = arg;
    }
  }
  std::vector<std::size_t> path(T, 0);
  path[T - 1] = static_cast<std::size_t>(
      std::max_element(delta[T - 1].begin(), delta[T - 1].end()) -
      delta[T - 1].begin());
  for (std::size_t t = T - 1; t-- > 0;) {
    path[t] = psi[t + 1][path[t + 1]];
  }
  return path;
}

BaumWelchReport DiscreteHmm::baum_welch(
    std::span<const std::size_t> observations, std::size_t max_iterations,
    double tolerance) {
  const obs::ScopedTimer timer("hmm.baum_welch");
  validate_observations(observations);
  const std::size_t T = observations.size();
  const std::size_t H = num_states();
  const std::size_t M = num_symbols();
  BaumWelchReport report;
  double prev_ll = -std::numeric_limits<double>::infinity();
  double last_delta = 0.0;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const ForwardResult fwd = forward(observations);
    const auto beta = backward(observations, fwd.scale);

    // gamma_t(i) and xi_t(i,j) accumulators.
    std::vector<std::vector<double>> gamma(T, std::vector<double>(H, 0.0));
    std::vector<std::vector<double>> xi_sum(H, std::vector<double>(H, 0.0));
    for (std::size_t t = 0; t < T; ++t) {
      double norm = 0.0;
      for (std::size_t i = 0; i < H; ++i) {
        gamma[t][i] = fwd.alpha[t][i] * beta[t][i];
        norm += gamma[t][i];
      }
      if (norm > 0.0) {
        for (double& g : gamma[t]) g /= norm;
      }
    }
    for (std::size_t t = 0; t + 1 < T; ++t) {
      double norm = 0.0;
      std::vector<std::vector<double>> xi(H, std::vector<double>(H, 0.0));
      for (std::size_t i = 0; i < H; ++i) {
        for (std::size_t j = 0; j < H; ++j) {
          xi[i][j] = fwd.alpha[t][i] * params_.transition[i][j] *
                     params_.emission[j][observations[t + 1]] *
                     beta[t + 1][j];
          norm += xi[i][j];
        }
      }
      if (norm > 0.0) {
        for (std::size_t i = 0; i < H; ++i) {
          for (std::size_t j = 0; j < H; ++j) {
            xi_sum[i][j] += xi[i][j] / norm;
          }
        }
      }
    }

    // Re-estimation.
    for (std::size_t i = 0; i < H; ++i) {
      params_.initial[i] = gamma[0][i];
      double gamma_total = 0.0;
      for (std::size_t t = 0; t + 1 < T; ++t) gamma_total += gamma[t][i];
      if (gamma_total > 0.0) {
        for (std::size_t j = 0; j < H; ++j) {
          params_.transition[i][j] = xi_sum[i][j] / gamma_total;
        }
      }
      normalize_row(params_.transition[i]);

      std::vector<double> emit(M, 0.0);
      double emit_total = 0.0;
      for (std::size_t t = 0; t < T; ++t) {
        emit[observations[t]] += gamma[t][i];
        emit_total += gamma[t][i];
      }
      if (emit_total > 0.0) {
        for (std::size_t k = 0; k < M; ++k) {
          params_.emission[i][k] = emit[k] / emit_total;
        }
      }
      normalize_row(params_.emission[i]);
    }
    normalize_row(params_.initial);

    report.iterations = iter + 1;
    report.final_log_likelihood = fwd.log_likelihood;
    last_delta = std::abs(fwd.log_likelihood - prev_ll);
    if (last_delta < tolerance) {
      report.converged = true;
      break;
    }
    prev_ll = fwd.log_likelihood;
  }
  // Record the likelihood of the final parameters.
  report.final_log_likelihood = log_likelihood(observations);
  if (obs::enabled()) {
    obs::MetricRegistry& reg = obs::registry();
    reg.counter("hmm.bw_fits").add(1);
    reg.counter("hmm.bw_iterations").add(report.iterations);
    if (report.converged) reg.counter("hmm.bw_converged").add(1);
    reg.gauge("hmm.final_log_likelihood")
        .set(report.final_log_likelihood);
    reg.gauge("hmm.log_likelihood_delta").set(last_delta);
  }
  return report;
}

std::vector<double> DiscreteHmm::next_symbol_distribution(
    std::span<const std::size_t> observations) const {
  const std::vector<std::size_t> path = viterbi(observations);
  const std::size_t last_state = path.back();
  const std::size_t H = num_states();
  const std::size_t M = num_symbols();
  std::vector<double> dist(M, 0.0);
  for (std::size_t j = 0; j < H; ++j) {
    const double p = params_.transition[last_state][j];
    for (std::size_t k = 0; k < M; ++k) {
      dist[k] += p * params_.emission[j][k];
    }
  }
  return dist;
}

std::size_t DiscreteHmm::predict_next_symbol(
    std::span<const std::size_t> observations) const {
  const std::vector<double> dist = next_symbol_distribution(observations);
  return static_cast<std::size_t>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace corp::hmm
