#include "trace/google_format.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <stdexcept>

#include "util/csv.hpp"

namespace corp::trace {

namespace {

double field_or_zero(const std::vector<std::string>& row, std::size_t idx) {
  if (idx >= row.size() || row[idx].empty()) return 0.0;
  return std::stod(row[idx]);
}

std::uint64_t ufield(const std::vector<std::string>& row, std::size_t idx,
                     std::size_t line) {
  if (idx >= row.size() || row[idx].empty()) {
    throw std::runtime_error("google trace: missing field " +
                             std::to_string(idx) + " on line " +
                             std::to_string(line));
  }
  return std::stoull(row[idx]);
}

}  // namespace

std::vector<GoogleTaskEvent> read_task_events(std::istream& in) {
  std::vector<GoogleTaskEvent> events;
  std::string line;
  std::size_t line_no = 0;
  // Materializing reader for trimmed extracts; production volume
  // streams through trace::StreamReader instead.
  // lint: streaming-io -- bounded: trimmed extracts only
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto row = util::split_csv_line(line);
    if (row.size() < 6) {
      throw std::runtime_error("task_events: too few columns on line " +
                               std::to_string(line_no));
    }
    GoogleTaskEvent event;
    event.timestamp_us = static_cast<std::int64_t>(ufield(row, 0, line_no));
    event.job_id = ufield(row, 2, line_no);
    event.task_index = static_cast<std::uint32_t>(ufield(row, 3, line_no));
    event.event_type = static_cast<int>(ufield(row, 5, line_no));
    event.cpu_request = field_or_zero(row, 9);
    event.memory_request = field_or_zero(row, 10);
    event.disk_request = field_or_zero(row, 11);
    events.push_back(event);
  }
  return events;
}

std::vector<GoogleTaskUsage> read_task_usage(std::istream& in) {
  std::vector<GoogleTaskUsage> usage;
  std::string line;
  std::size_t line_no = 0;
  // Materializing reader for trimmed extracts; production volume
  // streams through trace::StreamReader instead.
  // lint: streaming-io -- bounded: trimmed extracts only
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto row = util::split_csv_line(line);
    if (row.size() < 6) {
      throw std::runtime_error("task_usage: too few columns on line " +
                               std::to_string(line_no));
    }
    GoogleTaskUsage record;
    record.start_time_us =
        static_cast<std::int64_t>(ufield(row, 0, line_no));
    record.end_time_us = static_cast<std::int64_t>(ufield(row, 1, line_no));
    record.job_id = ufield(row, 2, line_no);
    record.task_index = static_cast<std::uint32_t>(ufield(row, 3, line_no));
    record.mean_cpu = field_or_zero(row, 5);
    record.canonical_memory = field_or_zero(row, 6);
    record.mean_disk_space = field_or_zero(row, 12);
    usage.push_back(record);
  }
  return usage;
}

Trace build_trace(const std::vector<GoogleTaskEvent>& events,
                  const std::vector<GoogleTaskUsage>& usage,
                  const GoogleFormatConfig& config, util::Rng& rng) {
  using TaskKey = std::pair<std::uint64_t, std::uint32_t>;

  // SUBMIT events carry the requests and the arrival timestamp.
  std::map<TaskKey, const GoogleTaskEvent*> submits;
  std::int64_t first_submit_us = 0;
  bool any = false;
  for (const auto& event : events) {
    if (event.event_type != 0) continue;  // SUBMIT only
    const TaskKey key{event.job_id, event.task_index};
    if (submits.count(key) == 0) {
      submits[key] = &event;
      if (!any || event.timestamp_us < first_submit_us) {
        first_submit_us = event.timestamp_us;
        any = true;
      }
    }
  }

  // Usage records per task, ordered by window start.
  std::map<TaskKey, std::vector<const GoogleTaskUsage*>> windows;
  for (const auto& record : usage) {
    windows[{record.job_id, record.task_index}].push_back(&record);
  }
  for (auto& [key, records] : windows) {
    std::sort(records.begin(), records.end(),
              [](const GoogleTaskUsage* a, const GoogleTaskUsage* b) {
                return a->start_time_us < b->start_time_us;
              });
  }

  const double slot_us = trace::kSlotSeconds * 1e6;
  Trace trace;
  std::uint64_t next_id = 0;
  for (const auto& [key, submit] : submits) {
    const auto found = windows.find(key);
    if (found == windows.end() || found->second.empty()) continue;
    const auto& records = found->second;

    Job coarse;
    coarse.id = next_id++;
    coarse.submit_slot = static_cast<std::int64_t>(
        static_cast<double>(submit->timestamp_us - first_submit_us) /
        slot_us);
    coarse.slo_stretch = config.slo_stretch;
    coarse.request = ResourceVector(
        submit->cpu_request * config.cpu_scale_cores,
        submit->memory_request * config.mem_scale_gb,
        submit->disk_request * config.storage_scale_gb);

    // One coarse sample per usage window; gaps repeat the previous
    // record (the trace omits windows with unchanged usage).
    std::vector<ResourceVector> samples;
    std::int64_t cursor = records.front()->start_time_us;
    std::size_t idx = 0;
    while (idx < records.size()) {
      const GoogleTaskUsage* record = records[idx];
      if (record->start_time_us > cursor && !samples.empty()) {
        samples.push_back(samples.back());  // fill the gap
        cursor += config.usage_window_us;
        continue;
      }
      samples.push_back(ResourceVector(
          record->mean_cpu * config.cpu_scale_cores,
          record->canonical_memory * config.mem_scale_gb,
          record->mean_disk_space * config.storage_scale_gb));
      cursor = record->start_time_us + config.usage_window_us;
      ++idx;
    }

    // Requests can be under-reported in the trace; grow them to cover
    // observed usage so Job::valid() holds.
    for (const auto& s : samples) {
      coarse.request = ResourceVector::max(coarse.request, s);
    }
    coarse.usage = std::move(samples);
    coarse.duration_slots = coarse.usage.size();

    ResampleConfig resample = config.resample;
    resample.slots_per_sample = static_cast<std::size_t>(
        static_cast<double>(config.usage_window_us) / slot_us);
    Job fine;
    if (coarse.usage.size() > 1) {
      fine = resample_job(coarse, resample, rng);
    } else {
      // A single 5-minute record still covers a full window of fine
      // slots: replicate it (no interior anchors to interpolate).
      fine = coarse;
      fine.usage.assign(resample.slots_per_sample, coarse.usage.front());
      fine.duration_slots = fine.usage.size();
    }
    if (config.max_duration_slots > 0 &&
        fine.duration_slots > config.max_duration_slots) {
      continue;  // long-lived: dropped, as in Sec. IV
    }
    trace.add(std::move(fine));
  }
  trace.sort();
  return trace;
}

Trace load_google_trace(const std::string& task_events_path,
                        const std::string& task_usage_path,
                        const GoogleFormatConfig& config, util::Rng& rng) {
  std::ifstream events_in(task_events_path);
  if (!events_in) {
    throw std::runtime_error("cannot open " + task_events_path);
  }
  std::ifstream usage_in(task_usage_path);
  if (!usage_in) {
    throw std::runtime_error("cannot open " + task_usage_path);
  }
  const auto events = read_task_events(events_in);
  const auto usage = read_task_usage(usage_in);
  return build_trace(events, usage, config, rng);
}

}  // namespace corp::trace
