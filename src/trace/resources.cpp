#include "trace/resources.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace corp::trace {

std::string_view resource_name(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu: return "CPU";
    case ResourceKind::kMemory: return "MEM";
    case ResourceKind::kStorage: return "STORAGE";
  }
  return "?";
}

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  for (std::size_t i = 0; i < kNumResources; ++i) v_[i] += o.v_[i];
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  for (std::size_t i = 0; i < kNumResources; ++i) v_[i] -= o.v_[i];
  return *this;
}

ResourceVector& ResourceVector::operator*=(double s) {
  for (std::size_t i = 0; i < kNumResources; ++i) v_[i] *= s;
  return *this;
}

bool ResourceVector::fits_within(const ResourceVector& other,
                                 double eps) const {
  for (std::size_t i = 0; i < kNumResources; ++i) {
    if (v_[i] > other.v_[i] + eps) return false;
  }
  return true;
}

bool ResourceVector::any_negative(double eps) const {
  for (std::size_t i = 0; i < kNumResources; ++i) {
    if (v_[i] < -eps) return true;
  }
  return false;
}

ResourceVector ResourceVector::clamped_non_negative() const {
  ResourceVector out = *this;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    out.v_[i] = std::max(0.0, out.v_[i]);
  }
  return out;
}

ResourceVector ResourceVector::min(const ResourceVector& a,
                                   const ResourceVector& b) {
  ResourceVector out;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    out.v_[i] = std::min(a.v_[i], b.v_[i]);
  }
  return out;
}

ResourceVector ResourceVector::max(const ResourceVector& a,
                                   const ResourceVector& b) {
  ResourceVector out;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    out.v_[i] = std::max(a.v_[i], b.v_[i]);
  }
  return out;
}

ResourceKind ResourceVector::dominant() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kNumResources; ++i) {
    if (v_[i] > v_[best]) best = i;
  }
  return static_cast<ResourceKind>(best);
}

double ResourceVector::total() const {
  double s = 0.0;
  for (std::size_t i = 0; i < kNumResources; ++i) s += v_[i];
  return s;
}

double ResourceVector::weighted_total(
    const std::array<double, kNumResources>& w) const {
  double s = 0.0;
  for (std::size_t i = 0; i < kNumResources; ++i) s += w[i] * v_[i];
  return s;
}

std::ostream& operator<<(std::ostream& os, const ResourceVector& r) {
  os << '<' << r.cpu() << ", " << r.memory() << ", " << r.storage() << '>';
  return os;
}

bool ResourceWeights::valid(double eps) const {
  double sum = 0.0;
  for (double x : w) {
    if (x < 0.0) return false;
    sum += x;
  }
  return std::abs(sum - 1.0) <= eps;
}

}  // namespace corp::trace
