// Job model: a short-lived cloud task with a reserved request vector and a
// fluctuating per-slot demand series, plus the whole-trace container.
//
// Time is discrete: slots of kSlotSeconds (the paper resamples the Google
// trace to 10-second records and predicts over 1-minute windows).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "trace/resources.hpp"

namespace corp::trace {

/// Simulation slot length. The paper transforms the 5-minute Google trace
/// into a 10-second trace (Sec. IV).
inline constexpr double kSlotSeconds = 10.0;

/// Prediction window L = 1 minute = 6 slots (Sec. III-A).
inline constexpr std::size_t kWindowSlots = 6;

/// Short-lived job cap: "a maximum timeout of 5 minutes" = 30 slots.
inline constexpr std::size_t kShortJobMaxSlots = 30;

/// Resource-intensity class of a job; drives both generation and the
/// complementary-packing evaluation.
enum class JobClass : std::uint8_t {
  kCpuIntensive = 0,
  kMemIntensive = 1,
  kStorageIntensive = 2,
  kBalanced = 3,
};

std::string_view job_class_name(JobClass c);

/// One short-lived job.
///
/// `request` is what a reservation-based allocator would set aside for the
/// job (its declared requirement); `usage[k]` is the actual demand d_{ij,t}
/// during the job's k-th slot of execution. The temporarily-unused resource
/// the paper reallocates is `request - usage[k]`, component-wise.
struct Job {
  std::uint64_t id = 0;
  JobClass job_class = JobClass::kBalanced;
  std::int64_t submit_slot = 0;
  /// Nominal execution length in slots when fully provisioned.
  std::size_t duration_slots = 1;
  /// Reserved/declared requirement per resource type.
  ResourceVector request;
  /// Actual demand per execution slot; size() == duration_slots.
  std::vector<ResourceVector> usage;
  /// Response-time SLO threshold as a multiple of duration_slots; a job
  /// whose (possibly stretched) response time exceeds
  /// duration_slots * slo_stretch violates its SLO (Sec. IV).
  double slo_stretch = 1.2;

  /// Demand during the k-th slot of execution; the final sample repeats if
  /// k runs past the recorded series (clamped access).
  const ResourceVector& demand_at(std::size_t k) const;

  /// Component-wise peak demand over the job's lifetime.
  ResourceVector peak_demand() const;

  /// Component-wise mean demand over the job's lifetime.
  ResourceVector mean_demand() const;

  /// request - demand_at(k), clamped at zero: the temporarily-unused
  /// resource in slot k.
  ResourceVector unused_at(std::size_t k) const;

  /// Dominant resource of the job's request vector (Sec. III-B).
  ResourceKind dominant_resource() const;

  /// True when the duration respects the short-lived cap.
  bool is_short_lived() const { return duration_slots <= kShortJobMaxSlots; }

  /// Validates internal consistency (usage length, non-negative demands,
  /// usage within request). Returns false rather than throwing so trace
  /// loaders can report bad rows.
  bool valid() const;
};

/// A workload trace: jobs sorted by submit slot.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Job> jobs);

  const std::vector<Job>& jobs() const { return jobs_; }
  std::vector<Job>& jobs() { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  void add(Job job);

  /// Re-sorts by (submit_slot, id); loaders call this after bulk insert.
  void sort();

  /// Last slot at which any job can still be running (0 for empty traces).
  std::int64_t horizon_slots() const;

  /// Indices of jobs submitted exactly at `slot`.
  std::vector<std::size_t> arrivals_at(std::int64_t slot) const;

  /// Number of jobs per class, for reporting.
  std::vector<std::size_t> class_histogram() const;

  /// Drops jobs longer than max_slots — the paper's removal of long-lived
  /// jobs from the Google trace. Returns the number removed.
  std::size_t filter_long_jobs(std::size_t max_slots = kShortJobMaxSlots);

 private:
  std::vector<Job> jobs_;
};

}  // namespace corp::trace
