#include "trace/stats.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "util/table.hpp"

namespace corp::trace {

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  stats.tasks = trace.size();
  stats.horizon_slots = trace.horizon_slots();

  std::vector<double> durations;
  std::array<std::vector<double>, kNumResources> requests;
  std::vector<double> utilizations;
  std::vector<double> unused;
  durations.reserve(trace.size());

  for (const Job& job : trace.jobs()) {
    stats.class_histogram[static_cast<std::size_t>(job.job_class)]++;
    (job.is_short_lived() ? stats.short_lived : stats.long_lived)++;
    durations.push_back(static_cast<double>(job.duration_slots) *
                        kSlotSeconds);
    double util_sum = 0.0;
    std::size_t util_n = 0;
    const ResourceVector mean_demand = job.mean_demand();
    for (std::size_t r = 0; r < kNumResources; ++r) {
      requests[r].push_back(job.request[r]);
      if (job.request[r] > 0.0) {
        util_sum += mean_demand[r] / job.request[r];
        ++util_n;
      }
    }
    if (util_n > 0) {
      const double u = util_sum / static_cast<double>(util_n);
      utilizations.push_back(u);
      unused.push_back(1.0 - u);
    }
  }

  stats.duration_seconds = util::summarize(durations);
  for (std::size_t r = 0; r < kNumResources; ++r) {
    stats.request[r] = util::summarize(requests[r]);
  }
  stats.utilization_fraction = util::summarize(utilizations);
  stats.unused_fraction = util::summarize(unused);

  // Concurrency profile via an arrival/departure sweep.
  if (!trace.empty()) {
    std::vector<std::pair<std::int64_t, int>> events;
    events.reserve(trace.size() * 2);
    for (const Job& job : trace.jobs()) {
      events.emplace_back(job.submit_slot, +1);
      events.emplace_back(
          job.submit_slot + static_cast<std::int64_t>(job.duration_slots),
          -1);
    }
    std::sort(events.begin(), events.end());
    std::int64_t current = 0, peak = 0;
    for (const auto& [slot, delta] : events) {
      current += delta;
      peak = std::max(peak, current);
    }
    stats.peak_concurrency = static_cast<std::size_t>(peak);
  }
  return stats;
}

void print_stats(const TraceStats& stats, std::ostream& out) {
  out << "tasks: " << stats.tasks << "  (" << stats.short_lived
      << " short-lived, " << stats.long_lived << " long-lived)\n"
      << "arrival horizon: " << stats.horizon_slots << " slots ("
      << static_cast<double>(stats.horizon_slots) * kSlotSeconds
      << " s), peak concurrency: " << stats.peak_concurrency << "\n\n";

  util::TextTable mix({"class", "tasks"});
  for (std::size_t c = 0; c < stats.class_histogram.size(); ++c) {
    mix.add_row(std::string(job_class_name(static_cast<JobClass>(c))),
                {static_cast<double>(stats.class_histogram[c])});
  }
  out << mix.to_string() << '\n';

  util::TextTable table({"metric", "mean", "median", "p95", "max"});
  auto row = [&](const std::string& name, const util::Summary& s) {
    table.add_row(name, {s.mean, s.median, s.p95, s.max});
  };
  row("duration (s)", stats.duration_seconds);
  row("cpu request (cores)",
      stats.request[static_cast<std::size_t>(ResourceKind::kCpu)]);
  row("mem request (GB)",
      stats.request[static_cast<std::size_t>(ResourceKind::kMemory)]);
  row("storage request (GB)",
      stats.request[static_cast<std::size_t>(ResourceKind::kStorage)]);
  row("utilization fraction", stats.utilization_fraction);
  row("unused fraction", stats.unused_fraction);
  out << table.to_string();
}

}  // namespace corp::trace
