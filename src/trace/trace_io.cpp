#include "trace/trace_io.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/csv.hpp"

namespace corp::trace {

namespace {
const std::vector<std::string> kHeader = {
    "job_id",  "class",    "submit_slot", "duration_slots",
    "slo_stretch", "req_cpu", "req_mem",     "req_storage",
    "slot",    "use_cpu",  "use_mem",     "use_storage"};

// Parse-error helper: every diagnostic names the 1-based file line and the
// offending column so a broken multi-gigabyte trace is debuggable without
// bisecting the file. The header is line 1; data row i is line i + 2.
[[noreturn]] void fail_field(std::size_t line, const std::string& column,
                             const std::string& value,
                             const std::string& reason) {
  throw std::runtime_error("read_trace_csv: line " + std::to_string(line) +
                           ", field '" + column + "': " + reason + " (got '" +
                           value + "')");
}

std::uint64_t parse_u64(const std::string& value, std::size_t line,
                        const std::string& column) {
  std::size_t consumed = 0;
  std::uint64_t out = 0;
  try {
    out = std::stoull(value, &consumed);
  } catch (const std::invalid_argument&) {
    fail_field(line, column, value, "expected an unsigned integer");
  } catch (const std::out_of_range&) {
    fail_field(line, column, value, "unsigned integer out of range");
  }
  if (consumed != value.size() || value.front() == '-') {
    fail_field(line, column, value, "expected an unsigned integer");
  }
  return out;
}

std::int64_t parse_i64(const std::string& value, std::size_t line,
                       const std::string& column) {
  std::size_t consumed = 0;
  std::int64_t out = 0;
  try {
    out = std::stoll(value, &consumed);
  } catch (const std::invalid_argument&) {
    fail_field(line, column, value, "expected an integer");
  } catch (const std::out_of_range&) {
    fail_field(line, column, value, "integer out of range");
  }
  if (consumed != value.size()) {
    fail_field(line, column, value, "expected an integer");
  }
  return out;
}

double parse_double(const std::string& value, std::size_t line,
                    const std::string& column) {
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &consumed);
  } catch (const std::invalid_argument&) {
    fail_field(line, column, value, "expected a number");
  } catch (const std::out_of_range&) {
    fail_field(line, column, value, "number out of range");
  }
  if (consumed != value.size()) {
    fail_field(line, column, value, "expected a number");
  }
  return out;
}
}  // namespace

void write_trace_csv(const Trace& trace, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row(kHeader);
  for (const auto& job : trace.jobs()) {
    for (std::size_t t = 0; t < job.usage.size(); ++t) {
      writer.write_row(std::vector<std::string>{
          std::to_string(job.id),
          std::to_string(static_cast<int>(job.job_class)),
          std::to_string(job.submit_slot),
          std::to_string(job.duration_slots),
          util::format_double(job.slo_stretch, 12),
          util::format_double(job.request.cpu(), 12),
          util::format_double(job.request.memory(), 12),
          util::format_double(job.request.storage(), 12),
          std::to_string(t),
          util::format_double(job.usage[t].cpu(), 12),
          util::format_double(job.usage[t].memory(), 12),
          util::format_double(job.usage[t].storage(), 12)});
    }
  }
}

void write_trace_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace_csv_file: cannot open " + path);
  }
  write_trace_csv(trace, out);
}

Trace read_trace_csv(std::istream& in) {
  const util::CsvDocument doc = util::read_csv(in);
  if (doc.header != kHeader) {
    std::string expected;
    for (const auto& column : kHeader) {
      if (!expected.empty()) expected += ",";
      expected += column;
    }
    throw std::runtime_error(
        "read_trace_csv: line 1: unexpected header (expected '" + expected +
        "')");
  }
  std::map<std::uint64_t, Job> jobs;
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    const auto& row = doc.rows[i];
    const std::size_t line = i + 2;
    if (row.size() != kHeader.size()) {
      throw std::runtime_error(
          "read_trace_csv: line " + std::to_string(line) + ": expected " +
          std::to_string(kHeader.size()) + " fields, got " +
          std::to_string(row.size()));
    }
    const std::uint64_t id = parse_u64(row[0], line, "job_id");
    Job& job = jobs[id];
    job.id = id;
    const std::int64_t job_class = parse_i64(row[1], line, "class");
    if (job_class < 0 || job_class > static_cast<int>(JobClass::kBalanced)) {
      fail_field(line, "class", row[1], "job class out of range");
    }
    job.job_class = static_cast<JobClass>(job_class);
    job.submit_slot = parse_i64(row[2], line, "submit_slot");
    job.duration_slots =
        static_cast<std::size_t>(parse_u64(row[3], line, "duration_slots"));
    job.slo_stretch = parse_double(row[4], line, "slo_stretch");
    job.request = ResourceVector(parse_double(row[5], line, "req_cpu"),
                                 parse_double(row[6], line, "req_mem"),
                                 parse_double(row[7], line, "req_storage"));
    const auto slot = static_cast<std::size_t>(parse_u64(row[8], line, "slot"));
    if (job.usage.size() <= slot) job.usage.resize(slot + 1);
    job.usage[slot] = ResourceVector(parse_double(row[9], line, "use_cpu"),
                                     parse_double(row[10], line, "use_mem"),
                                     parse_double(row[11], line, "use_storage"));
  }
  std::vector<Job> list;
  list.reserve(jobs.size());
  for (auto& [id, job] : jobs) {
    if (!job.valid()) {
      throw std::runtime_error("read_trace_csv: invalid job " +
                               std::to_string(id));
    }
    list.push_back(std::move(job));
  }
  return Trace(std::move(list));
}

Trace read_trace_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_trace_csv_file: cannot open " + path);
  }
  return read_trace_csv(in);
}

}  // namespace corp::trace
