#include "trace/trace_io.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/csv.hpp"

namespace corp::trace {

namespace {
const std::vector<std::string> kHeader = {
    "job_id",  "class",    "submit_slot", "duration_slots",
    "slo_stretch", "req_cpu", "req_mem",     "req_storage",
    "slot",    "use_cpu",  "use_mem",     "use_storage"};
}  // namespace

void write_trace_csv(const Trace& trace, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row(kHeader);
  for (const auto& job : trace.jobs()) {
    for (std::size_t t = 0; t < job.usage.size(); ++t) {
      writer.write_row(std::vector<std::string>{
          std::to_string(job.id),
          std::to_string(static_cast<int>(job.job_class)),
          std::to_string(job.submit_slot),
          std::to_string(job.duration_slots),
          util::format_double(job.slo_stretch, 12),
          util::format_double(job.request.cpu(), 12),
          util::format_double(job.request.memory(), 12),
          util::format_double(job.request.storage(), 12),
          std::to_string(t),
          util::format_double(job.usage[t].cpu(), 12),
          util::format_double(job.usage[t].memory(), 12),
          util::format_double(job.usage[t].storage(), 12)});
    }
  }
}

void write_trace_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace_csv_file: cannot open " + path);
  }
  write_trace_csv(trace, out);
}

Trace read_trace_csv(std::istream& in) {
  const util::CsvDocument doc = util::read_csv(in);
  if (doc.header != kHeader) {
    throw std::runtime_error("read_trace_csv: unexpected header");
  }
  std::map<std::uint64_t, Job> jobs;
  for (const auto& row : doc.rows) {
    if (row.size() != kHeader.size()) {
      throw std::runtime_error("read_trace_csv: malformed row");
    }
    const std::uint64_t id = std::stoull(row[0]);
    Job& job = jobs[id];
    job.id = id;
    job.job_class = static_cast<JobClass>(std::stoi(row[1]));
    job.submit_slot = std::stoll(row[2]);
    job.duration_slots = std::stoul(row[3]);
    job.slo_stretch = std::stod(row[4]);
    job.request =
        ResourceVector(std::stod(row[5]), std::stod(row[6]), std::stod(row[7]));
    const auto slot = static_cast<std::size_t>(std::stoul(row[8]));
    if (job.usage.size() <= slot) job.usage.resize(slot + 1);
    job.usage[slot] =
        ResourceVector(std::stod(row[9]), std::stod(row[10]), std::stod(row[11]));
  }
  std::vector<Job> list;
  list.reserve(jobs.size());
  for (auto& [id, job] : jobs) {
    if (!job.valid()) {
      throw std::runtime_error("read_trace_csv: invalid job " +
                               std::to_string(id));
    }
    list.push_back(std::move(job));
  }
  return Trace(std::move(list));
}

Trace read_trace_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_trace_csv_file: cannot open " + path);
  }
  return read_trace_csv(in);
}

}  // namespace corp::trace
