#include "trace/resampler.hpp"

#include <algorithm>
#include <cmath>

namespace corp::trace {

std::vector<double> resample_series(std::span<const double> coarse,
                                    const ResampleConfig& config,
                                    util::Rng& rng) {
  if (coarse.size() < 2 || config.slots_per_sample == 0) {
    return std::vector<double>(coarse.begin(), coarse.end());
  }
  std::vector<double> fine;
  fine.reserve((coarse.size() - 1) * config.slots_per_sample + 1);
  for (std::size_t i = 0; i + 1 < coarse.size(); ++i) {
    const double a = coarse[i];
    const double b = coarse[i + 1];
    for (std::size_t s = 0; s < config.slots_per_sample; ++s) {
      const double frac =
          static_cast<double>(s) / static_cast<double>(config.slots_per_sample);
      double v = a + (b - a) * frac;
      if (s != 0 && config.jitter_fraction > 0.0) {
        v *= 1.0 + rng.normal(0.0, config.jitter_fraction);
      }
      fine.push_back(std::max(config.floor_value, v));
    }
  }
  fine.push_back(std::max(config.floor_value, coarse.back()));
  return fine;
}

std::vector<ResourceVector> resample_usage(
    std::span<const ResourceVector> coarse, const ResampleConfig& config,
    util::Rng& rng) {
  if (coarse.size() < 2 || config.slots_per_sample == 0) {
    return std::vector<ResourceVector>(coarse.begin(), coarse.end());
  }
  std::array<std::vector<double>, kNumResources> per_type;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    std::vector<double> series;
    series.reserve(coarse.size());
    for (const auto& v : coarse) series.push_back(v[r]);
    per_type[r] = resample_series(series, config, rng);
  }
  const std::size_t n = per_type[0].size();
  std::vector<ResourceVector> fine(n);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      fine[t][r] = per_type[r][t];
    }
  }
  return fine;
}

Job resample_job(const Job& coarse, const ResampleConfig& config,
                 util::Rng& rng) {
  Job fine = coarse;
  fine.usage = resample_usage(coarse.usage, config, rng);
  // Clamp into [0, request] so jitter cannot push demand above the
  // reservation — Job::valid() requires usage <= request.
  for (auto& u : fine.usage) {
    u = ResourceVector::min(u.clamped_non_negative(), fine.request);
  }
  fine.duration_slots = fine.usage.size();
  return fine;
}

}  // namespace corp::trace
