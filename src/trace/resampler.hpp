// Trace resampling: the paper "transformed the remaining of the 5-minute
// trace into 10-second trace" (Sec. IV). This module implements that
// transformation for coarse usage records: linear interpolation between
// 5-minute anchor samples plus bounded jitter so the fine-grained series
// exhibits the fluctuations short-lived jobs show in practice.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "trace/job.hpp"
#include "util/rng.hpp"

namespace corp::trace {

struct ResampleConfig {
  /// Number of fine slots per coarse sample: 5 min / 10 s = 30.
  std::size_t slots_per_sample = 30;
  /// Std-dev of multiplicative jitter added to interpolated points, as a
  /// fraction of the local value. Zero gives pure linear interpolation.
  double jitter_fraction = 0.05;
  /// Clamp resampled values into [floor, ceiling] * anchor scale.
  double floor_value = 0.0;
};

/// Expands a coarse series (one sample per 5 minutes) into a fine series
/// (one per 10 seconds) with `slots_per_sample` points per input interval.
/// The output has (input.size() - 1) * slots_per_sample + 1 points and
/// passes exactly through each anchor; the last anchor terminates the
/// series. An input with fewer than 2 samples is returned unchanged.
std::vector<double> resample_series(std::span<const double> coarse,
                                    const ResampleConfig& config,
                                    util::Rng& rng);

/// Resamples a coarse per-sample demand series of ResourceVectors into
/// fine-grained slots, component-wise with independent jitter.
std::vector<ResourceVector> resample_usage(
    std::span<const ResourceVector> coarse, const ResampleConfig& config,
    util::Rng& rng);

/// Rebuilds a Job whose usage was recorded at coarse granularity into a
/// fine-grained job: duration and usage expand by slots_per_sample.
/// The request vector is preserved; fine usage is clamped into
/// [0, request] so Job::valid() still holds.
Job resample_job(const Job& coarse, const ResampleConfig& config,
                 util::Rng& rng);

}  // namespace corp::trace
