// Trace serialization. Format: one CSV row per (job, slot) usage sample,
// mirroring how cluster traces ship (long format), so external tools can
// consume generated traces and we can replay recorded ones.
//
// Columns:
//   job_id, class, submit_slot, duration_slots, slo_stretch,
//   req_cpu, req_mem, req_storage, slot, use_cpu, use_mem, use_storage
#pragma once

#include <iosfwd>
#include <string>

#include "trace/job.hpp"

namespace corp::trace {

/// Writes the trace in long CSV format.
void write_trace_csv(const Trace& trace, std::ostream& out);
void write_trace_csv_file(const Trace& trace, const std::string& path);

/// Parses a trace written by write_trace_csv. Malformed input (bad header,
/// wrong field count, non-numeric or out-of-range fields) raises
/// std::runtime_error naming the 1-based line and the offending column; rows
/// that fail semantic validation (negative demand, usage above request,
/// inconsistent duration) raise std::runtime_error with the offending job id.
Trace read_trace_csv(std::istream& in);
Trace read_trace_csv_file(const std::string& path);

}  // namespace corp::trace
