#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace corp::trace {

namespace {

/// Burst regime of the usage process. Matches the paper's observation that
/// short-lived jobs "exhibit fluctuations in resource use": demand hovers
/// around a base level and occasionally spikes to a peak or drops to a
/// valley for a few slots.
enum class Regime { kNormal, kPeak, kValley };

}  // namespace

GoogleTraceGenerator::GoogleTraceGenerator(GeneratorConfig config)
    : config_(config) {
  if (config_.num_jobs == 0) {
    throw std::invalid_argument("GeneratorConfig: num_jobs must be > 0");
  }
  if (config_.horizon_slots <= 0) {
    throw std::invalid_argument("GeneratorConfig: horizon_slots must be > 0");
  }
  if (config_.max_duration_slots == 0) {
    throw std::invalid_argument(
        "GeneratorConfig: max_duration_slots must be > 0");
  }
  if (config_.mean_utilization <= 0.0 || config_.mean_utilization > 1.0) {
    throw std::invalid_argument(
        "GeneratorConfig: mean_utilization must be in (0, 1]");
  }
}

JobClass GoogleTraceGenerator::sample_class(util::Rng& rng) const {
  const auto idx = rng.categorical(config_.class_mix);
  return static_cast<JobClass>(idx);
}

std::size_t GoogleTraceGenerator::sample_duration(util::Rng& rng) const {
  const double raw =
      rng.lognormal(config_.duration_log_mu, config_.duration_log_sigma);
  const auto slots = static_cast<std::size_t>(std::llround(std::ceil(raw)));
  return std::clamp<std::size_t>(slots, 1, config_.max_duration_slots);
}

ResourceVector GoogleTraceGenerator::sample_request(JobClass c,
                                                    util::Rng& rng) const {
  auto jitter = [&] {
    return std::exp(rng.normal(0.0, config_.request_jitter_sigma));
  };
  double cpu = config_.cpu_request_low;
  double mem = config_.mem_request_low;
  double sto = config_.storage_request_low;
  switch (c) {
    case JobClass::kCpuIntensive:
      cpu = config_.cpu_request_high;
      break;
    case JobClass::kMemIntensive:
      mem = config_.mem_request_high;
      break;
    case JobClass::kStorageIntensive:
      sto = config_.storage_request_high;
      break;
    case JobClass::kBalanced:
      cpu = 0.5 * (config_.cpu_request_low + config_.cpu_request_high);
      mem = 0.5 * (config_.mem_request_low + config_.mem_request_high);
      sto = 0.5 * (config_.storage_request_low + config_.storage_request_high);
      break;
  }
  return ResourceVector::min(
      ResourceVector(cpu * jitter(), mem * jitter(), sto * jitter()),
      config_.request_cap);
}

std::vector<double> GoogleTraceGenerator::generate_utilization_series(
    std::size_t length, util::Rng& rng) const {
  std::vector<double> series;
  series.reserve(length);
  Regime regime = Regime::kNormal;
  std::size_t regime_left = 0;
  // OU displacement around the mean utilization.
  double x = 0.0;
  const double burst_exit_p =
      config_.mean_burst_slots > 0.0 ? 1.0 / config_.mean_burst_slots : 1.0;
  for (std::size_t t = 0; t < length; ++t) {
    // Regime transitions.
    if (regime == Regime::kNormal) {
      const double u = rng.uniform(0.0, 1.0);
      if (u < config_.peak_probability) {
        regime = Regime::kPeak;
        regime_left = 1 + static_cast<std::size_t>(
                              rng.exponential(burst_exit_p) + 0.5);
      } else if (u < config_.peak_probability + config_.valley_probability) {
        regime = Regime::kValley;
        regime_left = 1 + static_cast<std::size_t>(
                              rng.exponential(burst_exit_p) + 0.5);
      }
    } else if (regime_left == 0) {
      regime = Regime::kNormal;
    } else {
      --regime_left;
    }

    // OU step for the base level.
    x += config_.ou_theta * (0.0 - x) + rng.normal(0.0, config_.ou_sigma);

    double level = config_.mean_utilization + x;
    if (regime == Regime::kPeak) {
      level = config_.peak_level + rng.normal(0.0, 0.03);
    } else if (regime == Regime::kValley) {
      level = config_.valley_level + rng.normal(0.0, 0.03);
    }
    series.push_back(std::clamp(level, config_.min_utilization, 1.0));
  }
  return series;
}

Job GoogleTraceGenerator::generate_job(std::uint64_t id,
                                       std::int64_t submit_slot,
                                       util::Rng& rng) const {
  Job job;
  job.id = id;
  job.submit_slot = submit_slot;
  job.job_class = sample_class(rng);
  job.duration_slots = sample_duration(rng);
  job.request = sample_request(job.job_class, rng);
  job.slo_stretch = config_.slo_stretch;

  // Each resource type gets its own fluctuation path; storage demand is
  // flatter (files do not oscillate as fast as CPU), so damp its series
  // toward its mean.
  std::array<std::vector<double>, kNumResources> util_series;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    util_series[r] = generate_utilization_series(job.duration_slots, rng);
  }
  constexpr double kStorageDamping = 0.6;
  for (double& u : util_series[static_cast<std::size_t>(
           ResourceKind::kStorage)]) {
    u = config_.mean_utilization +
        kStorageDamping * (u - config_.mean_utilization);
  }

  job.usage.resize(job.duration_slots);
  for (std::size_t t = 0; t < job.duration_slots; ++t) {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      job.usage[t][r] = util_series[r][t] * job.request[r];
    }
  }
  return job;
}

Job GoogleTraceGenerator::generate_long_job(std::uint64_t id,
                                            std::int64_t submit_slot,
                                            util::Rng& rng) const {
  Job job;
  job.id = id;
  job.submit_slot = submit_slot;
  job.job_class = sample_class(rng);
  job.duration_slots = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config_.long_duration_min_slots),
      static_cast<std::int64_t>(config_.long_duration_max_slots)));
  job.request = sample_request(job.job_class, rng);
  job.slo_stretch = config_.slo_stretch;

  // Patterned utilization: a sinusoid (the diurnal-style regularity of
  // long-running services) plus mild noise. This is precisely the kind
  // of signal time-series forecasting handles well, which is why the
  // paper scopes CORP to the pattern-free short-lived case and lets other
  // methods cooperate on these jobs.
  const double phase = rng.uniform(0.0, 2.0 * 3.14159265358979);
  job.usage.resize(job.duration_slots);
  for (std::size_t t = 0; t < job.duration_slots; ++t) {
    const double pattern =
        config_.mean_utilization +
        config_.long_pattern_amplitude *
            std::sin(2.0 * 3.14159265358979 *
                         static_cast<double>(t) /
                         config_.long_pattern_period +
                     phase);
    for (std::size_t r = 0; r < kNumResources; ++r) {
      const double u = std::clamp(pattern + rng.normal(0.0, 0.02),
                                  config_.min_utilization, 1.0);
      job.usage[t][r] = u * job.request[r];
    }
  }
  return job;
}

Trace GoogleTraceGenerator::generate(util::Rng& rng) const {
  std::vector<Job> jobs;
  std::uint64_t task_id = 0;
  for (std::size_t i = 0; i < config_.num_jobs; ++i) {
    const std::int64_t submit =
        rng.uniform_int(0, config_.horizon_slots - 1);
    if (config_.long_job_fraction > 0.0 &&
        rng.bernoulli(config_.long_job_fraction)) {
      jobs.push_back(generate_long_job(task_id++, submit, rng));
      continue;
    }
    const double raw_tasks =
        rng.lognormal(config_.tasks_log_mu, config_.tasks_log_sigma);
    const auto tasks = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(std::ceil(raw_tasks))), 1,
        config_.max_tasks_per_job);
    for (std::size_t k = 0; k < tasks; ++k) {
      jobs.push_back(generate_job(task_id++, submit, rng));
    }
  }
  return Trace(std::move(jobs));
}

}  // namespace corp::trace
