#include "trace/stream_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <limits>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "trace/resampler.hpp"
#include "util/rng.hpp"
#include "util/seed_streams.hpp"
#include "util/thread_pool.hpp"

namespace corp::trace {

namespace {

// Same shape as read_trace_csv's diagnostics (trace_io.cpp): 1-based file
// line plus the offending column, so a broken multi-gigabyte download is
// debuggable without bisecting it.
[[noreturn]] void fail_field(std::uint64_t line, std::string_view column,
                             std::string_view value, std::string_view reason) {
  throw std::runtime_error("read_trace_stream: line " + std::to_string(line) +
                           ", field '" + std::string(column) +
                           "': " + std::string(reason) + " (got '" +
                           std::string(value) + "')");
}

// Error values come out of a transient mmap window; clip and copy them.
std::string clip_value(std::string_view value) {
  constexpr std::size_t kMax = 64;
  if (value.size() <= kMax) return std::string(value);
  return std::string(value.substr(0, kMax)) + "...";
}

// One parsed usage row, already scaled into model units (cores / GB) so
// downstream assembly is schema-agnostic. `line` is chunk-local during
// parallel parsing and rebased to the global 1-based file line during the
// serial merge.
struct RawRow {
  std::uint64_t key_id = 0;
  std::uint32_t key_index = 0;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  double cpu = 0.0;
  double mem = 0.0;
  double storage = 0.0;
  std::uint64_t line = 0;
};

struct ChunkError {
  std::uint64_t local_line = 0;
  std::string column;
  std::string value;
  std::string reason;
};

// Output of parsing one chunk: a pure function of the mapped bytes, so
// chunks can parse on any worker in any order. The first error in a chunk
// is deferred (not thrown) and rethrown during the in-order merge, which
// keeps diagnostics bit-identical between serial and parallel parsing.
struct ChunkOut {
  std::vector<RawRow> rows;
  std::uint64_t lines = 0;
  bool has_error = false;
  ChunkError error;
};

// Records the first error of the chunk; parsing stops at it.
bool defer_error(ChunkOut& out, std::uint64_t local_line,
                 std::string_view column, std::string_view value,
                 std::string reason) {
  if (!out.has_error) {
    out.has_error = true;
    out.error = ChunkError{local_line, std::string(column), clip_value(value),
                           std::move(reason)};
  }
  return false;
}

bool parse_u64_field(std::string_view field, std::string_view column,
                     std::uint64_t local_line, ChunkOut& out,
                     std::uint64_t& value) {
  if (field.empty()) {
    return defer_error(out, local_line, column, field, "missing field");
  }
  const char* first = field.data();
  const char* last = field.data() + field.size();
  const auto result = std::from_chars(first, last, value);
  if (result.ec != std::errc() || result.ptr != last) {
    return defer_error(out, local_line, column, field,
                       "expected an unsigned integer");
  }
  return true;
}

bool parse_f64_field(std::string_view field, std::string_view column,
                     std::uint64_t local_line, ChunkOut& out, double& value,
                     bool optional) {
  if (field.empty()) {
    if (optional) {
      value = 0.0;
      return true;
    }
    return defer_error(out, local_line, column, field, "missing field");
  }
  const char* first = field.data();
  const char* last = field.data() + field.size();
  const auto result = std::from_chars(first, last, value);
  if (result.ec != std::errc() || result.ptr != last) {
    return defer_error(out, local_line, column, field, "expected a number");
  }
  if (value < 0.0) {
    return defer_error(out, local_line, column, field, "negative value");
  }
  return true;
}

// Splits one CSV line on commas; both public schemas are plain headerless
// CSV without quoting, so a quoted field is rejected explicitly rather
// than silently mis-split.
bool split_fields(std::string_view line, std::uint64_t local_line,
                  std::span<const std::string_view> columns, ChunkOut& out,
                  std::vector<std::string_view>& fields) {
  fields.clear();
  std::size_t begin = 0;
  while (true) {
    const std::size_t comma = line.find(',', begin);
    const std::string_view field =
        comma == std::string_view::npos
            ? line.substr(begin)
            : line.substr(begin, comma - begin);
    if (!field.empty() && field.front() == '"') {
      const std::string_view column = fields.size() < columns.size()
                                          ? columns[fields.size()]
                                          : std::string_view("row");
      return defer_error(out, local_line, column, field,
                         "quoted field (CSV quoting is not supported)");
    }
    fields.push_back(field);
    if (comma == std::string_view::npos) break;
    begin = comma + 1;
  }
  return true;
}

// FNV-1a, for keying Azure VM id strings without retaining them. 64-bit
// means collisions among the trace's VM population are negligible.
std::uint64_t fnv1a_64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Google cluster-usage v2 task_usage columns (by position).
constexpr std::array<std::string_view, 13> kGoogleColumns = {
    "start_time",     "end_time",  "job_id",        "task_index",
    "machine_id",     "mean_cpu",  "canonical_mem", "assigned_mem",
    "unmapped_cache", "page_cache", "max_mem",      "mean_disk_io",
    "mean_disk_space"};

// Azure VM trace vm_cpu_readings columns (by position).
constexpr std::array<std::string_view, 5> kAzureColumns = {
    "timestamp", "vm_id", "min_cpu", "max_cpu", "avg_cpu"};

constexpr std::string_view kDirectivePrefix = "#corp-trace schema=";

bool parse_google_row(std::string_view line, std::uint64_t local_line,
                      const StreamReaderConfig& config, ChunkOut& out,
                      std::vector<std::string_view>& fields) {
  if (!split_fields(line, local_line, kGoogleColumns, out, fields)) {
    return false;
  }
  if (fields.size() < 7) {
    return defer_error(out, local_line, "row", line,
                       "too few columns for a task_usage row (need >= 7)");
  }
  RawRow row;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::uint64_t job_id = 0;
  std::uint64_t task_index = 0;
  if (!parse_u64_field(fields[0], kGoogleColumns[0], local_line, out, start) ||
      !parse_u64_field(fields[1], kGoogleColumns[1], local_line, out, end) ||
      !parse_u64_field(fields[2], kGoogleColumns[2], local_line, out,
                       job_id) ||
      !parse_u64_field(fields[3], kGoogleColumns[3], local_line, out,
                       task_index)) {
    return false;
  }
  if (end <= start) {
    return defer_error(out, local_line, kGoogleColumns[1], fields[1],
                       "window end not after start");
  }
  double mean_cpu = 0.0;
  double canonical_mem = 0.0;
  double mean_disk = 0.0;
  if (!parse_f64_field(fields[5], kGoogleColumns[5], local_line, out, mean_cpu,
                       /*optional=*/true) ||
      !parse_f64_field(fields[6], kGoogleColumns[6], local_line, out,
                       canonical_mem, /*optional=*/true)) {
    return false;
  }
  if (fields.size() > 12 &&
      !parse_f64_field(fields[12], kGoogleColumns[12], local_line, out,
                       mean_disk, /*optional=*/true)) {
    return false;
  }
  row.key_id = job_id;
  row.key_index = static_cast<std::uint32_t>(task_index);
  row.start_us = static_cast<std::int64_t>(start);
  row.end_us = static_cast<std::int64_t>(end);
  row.cpu = mean_cpu * config.google.cpu_scale_cores;
  row.mem = canonical_mem * config.google.mem_scale_gb;
  row.storage = mean_disk * config.google.storage_scale_gb;
  row.line = local_line;
  out.rows.push_back(row);
  return true;
}

bool parse_azure_row(std::string_view line, std::uint64_t local_line,
                     const StreamReaderConfig& config, ChunkOut& out,
                     std::vector<std::string_view>& fields) {
  if (!split_fields(line, local_line, kAzureColumns, out, fields)) {
    return false;
  }
  if (fields.size() < 5) {
    return defer_error(out, local_line, "row", line,
                       "too few columns for a vm_cpu_readings row (need 5)");
  }
  std::uint64_t timestamp_s = 0;
  if (!parse_u64_field(fields[0], kAzureColumns[0], local_line, out,
                       timestamp_s)) {
    return false;
  }
  if (fields[1].empty()) {
    return defer_error(out, local_line, kAzureColumns[1], fields[1],
                       "missing field");
  }
  double min_cpu = 0.0;
  double max_cpu = 0.0;
  double avg_cpu = 0.0;
  if (!parse_f64_field(fields[2], kAzureColumns[2], local_line, out, min_cpu,
                       /*optional=*/false) ||
      !parse_f64_field(fields[3], kAzureColumns[3], local_line, out, max_cpu,
                       /*optional=*/false) ||
      !parse_f64_field(fields[4], kAzureColumns[4], local_line, out, avg_cpu,
                       /*optional=*/false)) {
    return false;
  }
  if (avg_cpu > 100.0) {
    return defer_error(out, local_line, kAzureColumns[4], fields[4],
                       "percent utilization out of range");
  }
  RawRow row;
  row.key_id = fnv1a_64(fields[1]);
  row.key_index = 0;
  row.start_us = static_cast<std::int64_t>(timestamp_s) * 1'000'000;
  row.end_us = row.start_us + config.azure_interval_us;
  const double fraction = avg_cpu / 100.0;
  row.cpu = fraction * config.azure_cpu_scale_cores;
  row.mem = fraction * config.azure_mem_scale_gb;
  row.storage = 0.0;
  row.line = local_line;
  out.rows.push_back(row);
  return true;
}

// Validates the optional self-description on line 1 of fixture files
// ("#corp-trace schema=google-v2"). Raw public downloads have no
// directive and rely on the configured schema.
bool parse_directive(std::string_view line, const StreamReaderConfig& config,
                     ChunkOut& out) {
  if (line.substr(0, kDirectivePrefix.size()) != kDirectivePrefix) {
    return defer_error(out, 1, "directive", line,
                       "unrecognized directive (expected '#corp-trace "
                       "schema=<google-v2|azure-vm>')");
  }
  const std::string_view name = line.substr(kDirectivePrefix.size());
  TraceSchema file_schema = TraceSchema::kGoogleV2;
  try {
    file_schema = parse_schema_name(name);
  } catch (const std::invalid_argument&) {
    return defer_error(out, 1, "schema", name, "unknown schema version");
  }
  if (file_schema != config.schema) {
    return defer_error(out, 1, "schema", name,
                       "schema mismatch (reader configured for '" +
                           std::string(schema_name(config.schema)) + "')");
  }
  return true;
}

// Parses the lines *starting* inside [chunk_begin, chunk_end). A line
// starting before chunk_begin is the previous chunk's, even when it ends
// inside this one; the final owned line may run past chunk_end into the
// window's max_line_bytes slack. Pure function of the mapped bytes.
ChunkOut parse_chunk(const char* window, std::uint64_t window_offset,
                     std::uint64_t chunk_begin, std::uint64_t chunk_end,
                     std::uint64_t file_size,
                     const StreamReaderConfig& config) {
  ChunkOut out;
  const auto at = [&](std::uint64_t off) -> char {
    return window[off - window_offset];
  };
  std::uint64_t pos = chunk_begin;
  if (chunk_begin > 0 && at(chunk_begin - 1) != '\n') {
    while (pos < chunk_end && at(pos) != '\n') ++pos;
    ++pos;  // first byte after the boundary-spanning line
  }
  std::vector<std::string_view> fields;
  fields.reserve(16);
  while (pos < chunk_end && pos < file_size) {
    ++out.lines;
    const std::uint64_t local_line = out.lines;
    const std::uint64_t limit =
        std::min<std::uint64_t>(file_size, pos + config.max_line_bytes + 1);
    std::uint64_t eol = pos;
    while (eol < limit && at(eol) != '\n') ++eol;
    if (eol == limit && limit < file_size) {
      const std::uint64_t preview = std::min<std::uint64_t>(32, limit - pos);
      defer_error(out, local_line, "row",
                  std::string_view(window + (pos - window_offset),
                                   static_cast<std::size_t>(preview)),
                  "line exceeds max_line_bytes (" +
                      std::to_string(config.max_line_bytes) + ")");
      break;
    }
    std::string_view line(window + (pos - window_offset), eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') {
      defer_error(out, local_line, "row", "\\r",
                  "CRLF line ending (expected LF-only)");
      break;
    }
    if (line.empty()) continue;
    if (line.front() == '#') {
      if (chunk_begin == 0 && local_line == 1) {
        if (!parse_directive(line, config, out)) break;
        continue;
      }
      defer_error(out, local_line, "row", line,
                  "directive allowed on line 1 only");
      break;
    }
    const bool ok = config.schema == TraceSchema::kGoogleV2
                        ? parse_google_row(line, local_line, config, out,
                                           fields)
                        : parse_azure_row(line, local_line, config, out,
                                          fields);
    if (!ok) break;
  }
  return out;
}

// RAII for one batch's mapped window, so parse exceptions cannot leak
// address space.
class MappedWindow {
 public:
  MappedWindow(int fd, std::uint64_t offset, std::size_t length,
               const std::string& path)
      : length_(length) {
    ptr_ = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd,
                  static_cast<off_t>(offset));
    if (ptr_ == MAP_FAILED) {
      throw std::runtime_error("read_trace_stream: mmap failed for '" + path +
                               "': " + std::strerror(errno));
    }
    ::madvise(ptr_, length, MADV_SEQUENTIAL);
  }
  ~MappedWindow() { ::munmap(ptr_, length_); }
  MappedWindow(const MappedWindow&) = delete;
  MappedWindow& operator=(const MappedWindow&) = delete;

  const char* data() const { return static_cast<const char*>(ptr_); }

 private:
  void* ptr_ = MAP_FAILED;
  std::size_t length_ = 0;
};

struct TaskKey {
  std::uint64_t id = 0;
  std::uint32_t index = 0;
  bool operator==(const TaskKey&) const = default;
};

struct TaskKeyHash {
  std::size_t operator()(const TaskKey& key) const {
    return static_cast<std::size_t>(util::splitmix64_mix(
        key.id + util::kSplitMix64Gamma *
                     (static_cast<std::uint64_t>(key.index) + 1)));
  }
};

struct OpenTask {
  std::int64_t first_start_us = 0;
  std::int64_t next_window_us = 0;
  std::int64_t last_end_us = 0;
  std::uint32_t segment = 0;
  bool dropped = false;
  std::vector<ResourceVector> windows;
};

// Lazy close-heap entry; stale entries (the task grew since) are skipped
// on pop by re-checking last_end_us.
struct CloseEntry {
  std::int64_t close_at_us = 0;
  std::uint64_t key_id = 0;
  std::uint32_t key_index = 0;
};

struct CloseEntryAfter {
  bool operator()(const CloseEntry& a, const CloseEntry& b) const {
    return std::tie(a.close_at_us, a.key_id, a.key_index) >
           std::tie(b.close_at_us, b.key_id, b.key_index);
  }
};

double safe_fraction(double value, double scale) {
  return scale > 0.0 ? value / scale : 0.0;
}

}  // namespace

std::string_view schema_name(TraceSchema schema) {
  switch (schema) {
    case TraceSchema::kGoogleV2:
      return "google-v2";
    case TraceSchema::kAzureVm:
      return "azure-vm";
  }
  return "unknown";
}

TraceSchema parse_schema_name(std::string_view name) {
  if (name == "google-v2") return TraceSchema::kGoogleV2;
  if (name == "azure-vm") return TraceSchema::kAzureVm;
  throw std::invalid_argument("unknown trace schema '" + std::string(name) +
                              "' (expected google-v2 or azure-vm)");
}

struct StreamReader::Impl {
  StreamReader* owner;
  StreamReaderConfig config;
  util::ThreadPool* pool;

  int fd = -1;
  std::uint64_t file_size = 0;
  std::uint64_t page_size = 4096;
  std::uint64_t num_chunks = 0;
  std::uint64_t next_chunk = 0;
  std::uint64_t lines_total = 0;

  // Assembly state: coarse window length, fine slots per window, and the
  // derived slot length in microseconds.
  std::int64_t window_us = 0;
  std::int64_t close_gap_us = 0;
  std::size_t slots_per_sample = 1;
  std::int64_t slot_us = 1;
  std::size_t segment_windows = 0;  // kSegment cut size; 0 = never

  bool have_epoch = false;
  std::int64_t watermark_us = 0;
  std::uint64_t next_job_id = 0;
  std::unordered_map<TaskKey, OpenTask, TaskKeyHash> open;
  std::priority_queue<CloseEntry, std::vector<CloseEntry>, CloseEntryAfter>
      close_heap;
  std::vector<Job> ready;

  Impl(StreamReader* owner_in, StreamReaderConfig config_in,
       util::ThreadPool* pool_in)
      : owner(owner_in), config(std::move(config_in)), pool(pool_in) {
    if (config.chunk_bytes == 0) {
      throw std::invalid_argument("StreamReaderConfig: chunk_bytes must be > 0");
    }
    if (config.chunks_per_batch == 0) config.chunks_per_batch = 1;
    if (config.max_line_bytes == 0) {
      throw std::invalid_argument(
          "StreamReaderConfig: max_line_bytes must be > 0");
    }
    window_us = config.schema == TraceSchema::kGoogleV2
                    ? config.google.usage_window_us
                    : config.azure_interval_us;
    if (window_us <= 0) {
      throw std::invalid_argument(
          "StreamReaderConfig: coarse window length must be > 0");
    }
    slots_per_sample = std::max<std::size_t>(
        1, config.google.resample.slots_per_sample);
    slot_us = std::max<std::int64_t>(
        1, window_us / static_cast<std::int64_t>(slots_per_sample));
    close_gap_us =
        config.close_gap_us > 0 ? config.close_gap_us : 2 * window_us;
    if (config.long_tasks == LongTaskPolicy::kSegment &&
        config.google.max_duration_slots > 0) {
      // Largest window count whose resampled duration stays within the
      // short-lived cap: fine slots = (w - 1) * sps + 1 for w >= 2.
      segment_windows = std::max<std::size_t>(
          1, (config.google.max_duration_slots - 1) / slots_per_sample + 1);
      if (fine_slots(segment_windows) > config.google.max_duration_slots) {
        segment_windows = 1;
      }
    }

    fd = ::open(owner->path_.c_str(), O_RDONLY);
    if (fd < 0) {
      throw std::runtime_error("read_trace_stream: cannot open '" +
                               owner->path_ + "': " + std::strerror(errno));
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      const std::string reason = std::strerror(errno);
      ::close(fd);
      fd = -1;
      throw std::runtime_error("read_trace_stream: cannot stat '" +
                               owner->path_ + "': " + reason);
    }
    file_size = static_cast<std::uint64_t>(st.st_size);
    const long page = ::sysconf(_SC_PAGESIZE);
    page_size = page > 0 ? static_cast<std::uint64_t>(page) : 4096;
    num_chunks = (file_size + config.chunk_bytes - 1) / config.chunk_bytes;
    owner->stats_.file_bytes = file_size;
  }

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  std::size_t fine_slots(std::size_t windows) const {
    if (windows <= 1) return slots_per_sample;
    return (windows - 1) * slots_per_sample + 1;
  }

  std::int64_t slot_of(std::int64_t us) const {
    if (us <= owner->epoch_us_) return 0;
    return (us - owner->epoch_us_) / slot_us;
  }

  std::string_view timestamp_column() const {
    return config.schema == TraceSchema::kGoogleV2 ? kGoogleColumns[0]
                                                   : kAzureColumns[0];
  }

  JobClass classify(const ResourceVector& peak) const {
    std::array<double, kNumResources> fraction{};
    if (config.schema == TraceSchema::kGoogleV2) {
      fraction = {safe_fraction(peak.cpu(), config.google.cpu_scale_cores),
                  safe_fraction(peak.memory(), config.google.mem_scale_gb),
                  safe_fraction(peak.storage(),
                                config.google.storage_scale_gb)};
    } else {
      fraction = {safe_fraction(peak.cpu(), config.azure_cpu_scale_cores),
                  safe_fraction(peak.memory(), config.azure_mem_scale_gb),
                  0.0};
    }
    std::size_t top = 0;
    for (std::size_t i = 1; i < fraction.size(); ++i) {
      if (fraction[i] > fraction[top]) top = i;
    }
    if (fraction[top] <= 0.0) return JobClass::kBalanced;
    double runner_up = 0.0;
    for (std::size_t i = 0; i < fraction.size(); ++i) {
      if (i != top) runner_up = std::max(runner_up, fraction[i]);
    }
    if (fraction[top] < 1.5 * runner_up) return JobClass::kBalanced;
    switch (top) {
      case 0:
        return JobClass::kCpuIntensive;
      case 1:
        return JobClass::kMemIntensive;
      default:
        return JobClass::kStorageIntensive;
    }
  }

  // Expands the coarse windows to fine 10-second slots. Jitter derives
  // from (seed, kTraceIngest, task key + segment), never from arrival
  // order, so the fine series is invariant to chunking and threading.
  Job refine(Job coarse, const TaskKey& key, std::uint32_t segment) const {
    if (slots_per_sample <= 1) return coarse;
    ResampleConfig resample = config.google.resample;
    resample.slots_per_sample = slots_per_sample;
    const std::uint64_t substream =
        util::splitmix64_mix(
            key.id + util::kSplitMix64Gamma *
                         (static_cast<std::uint64_t>(key.index) + 1)) +
        segment;
    util::Rng rng(util::derive_seed(config.seed,
                                    util::seed_stream::kTraceIngest,
                                    substream));
    if (coarse.usage.size() > 1) {
      return resample_job(coarse, resample, rng);
    }
    // A single coarse record still covers a full window of fine slots
    // (no interior anchors to interpolate) — same as google_format.
    Job fine = std::move(coarse);
    const ResourceVector sample = fine.usage.front();
    fine.usage.assign(slots_per_sample, sample);
    fine.duration_slots = fine.usage.size();
    return fine;
  }

  void emit(const TaskKey& key, OpenTask& task) {
    if (task.windows.empty()) return;
    Job coarse;
    coarse.id = next_job_id++;
    coarse.submit_slot = slot_of(task.first_start_us);
    coarse.slo_stretch = config.google.slo_stretch;
    ResourceVector peak = task.windows.front();
    for (const auto& w : task.windows) peak = ResourceVector::max(peak, w);
    coarse.request = peak * config.request_headroom;
    coarse.job_class = classify(peak);
    coarse.usage = std::move(task.windows);
    task.windows.clear();
    coarse.duration_slots = coarse.usage.size();
    Job fine = refine(std::move(coarse), key, task.segment);
    if (config.long_tasks == LongTaskPolicy::kDrop &&
        config.google.max_duration_slots > 0 &&
        fine.duration_slots > config.google.max_duration_slots) {
      ++owner->stats_.jobs_dropped_long;
      return;
    }
    owner->horizon_slots_ = std::max(
        owner->horizon_slots_,
        fine.submit_slot + static_cast<std::int64_t>(fine.duration_slots));
    ++owner->stats_.jobs_emitted;
    ready.push_back(std::move(fine));
  }

  // Appends one coarse window; applies the long-task policy eagerly so an
  // open task never accumulates more than segment_windows (or the drop
  // threshold) of state.
  void append_window(const TaskKey& key, OpenTask& task,
                     const ResourceVector& value, std::int64_t start_us) {
    if (task.windows.empty()) task.first_start_us = start_us;
    task.windows.push_back(value);
    task.next_window_us = start_us + window_us;
    if (config.long_tasks == LongTaskPolicy::kDrop) {
      if (config.google.max_duration_slots > 0 &&
          fine_slots(task.windows.size()) >
              config.google.max_duration_slots) {
        task.dropped = true;
        task.windows.clear();
        task.windows.shrink_to_fit();
        ++owner->stats_.jobs_dropped_long;
      }
    } else if (segment_windows > 0 &&
               task.windows.size() >= segment_windows) {
      emit(key, task);
      ++owner->stats_.jobs_segmented;
      ++task.segment;
    }
  }

  void drain_closed(std::int64_t up_to_watermark_us) {
    while (!close_heap.empty() &&
           close_heap.top().close_at_us <= up_to_watermark_us) {
      const CloseEntry entry = close_heap.top();
      close_heap.pop();
      const TaskKey key{entry.key_id, entry.key_index};
      auto it = open.find(key);
      if (it == open.end()) continue;
      if (it->second.last_end_us + close_gap_us != entry.close_at_us) {
        continue;  // stale: the task grew after this entry was pushed
      }
      emit(key, it->second);
      open.erase(it);
    }
  }

  void ingest_row(const RawRow& row) {
    if (!have_epoch) {
      have_epoch = true;
      owner->epoch_us_ = row.start_us;
      watermark_us = row.start_us;
    }
    if (row.start_us < watermark_us - config.reorder_slack_us) {
      fail_field(row.line, timestamp_column(), std::to_string(row.start_us),
                 "out-of-order timestamp (watermark " +
                     std::to_string(watermark_us) + " us)");
    }
    watermark_us = std::max(watermark_us, row.start_us);
    drain_closed(watermark_us);

    const TaskKey key{row.key_id, row.key_index};
    auto [it, inserted] = open.try_emplace(key);
    OpenTask& task = it->second;
    if (inserted) {
      ++owner->stats_.tasks_opened;
      owner->stats_.peak_open_tasks =
          std::max<std::uint64_t>(owner->stats_.peak_open_tasks, open.size());
      task.next_window_us = row.start_us;
      task.last_end_us = row.end_us;
    }
    const ResourceVector value(row.cpu, row.mem, row.storage);
    if (!task.dropped) {
      if (!task.windows.empty() && row.start_us < task.next_window_us) {
        // Sub-window record (task churn inside one 5-minute window):
        // merge into the current window by component-wise max.
        task.windows.back() = ResourceVector::max(task.windows.back(), value);
      } else {
        if (!task.windows.empty()) {
          // The trace omits windows with unchanged usage; repeat the
          // previous record across the gap, as google_format does.
          const std::int64_t missing =
              (row.start_us - task.next_window_us) / window_us;
          const ResourceVector fill = task.windows.back();
          for (std::int64_t g = 0; g < missing && !task.dropped; ++g) {
            ++owner->stats_.gap_fills;
            append_window(key, task, fill, task.next_window_us);
          }
        }
        if (!task.dropped) append_window(key, task, value, row.start_us);
      }
    }
    task.last_end_us = std::max(task.last_end_us, row.end_us);
    close_heap.push(CloseEntry{task.last_end_us + close_gap_us, key.id,
                               key.index});
  }

  // Lower bound on any future emission's submit slot: the watermark
  // (minus reorder slack) bounds rows not yet seen, and each open task's
  // anchor bounds the segments it will still emit. Min-reduction over the
  // open map is order-insensitive, so unordered iteration is safe.
  void update_safe_submit_slot() {
    if (owner->exhausted_) {
      owner->safe_submit_slot_ = std::numeric_limits<std::int64_t>::max();
      return;
    }
    if (!have_epoch) {
      owner->safe_submit_slot_ = 0;
      return;
    }
    std::int64_t bound_us = watermark_us - config.reorder_slack_us;
    for (const auto& [key, task] : open) {  // lint: sorted-gather
      if (task.dropped) continue;
      const std::int64_t anchor =
          task.windows.empty() ? task.next_window_us : task.first_start_us;
      bound_us = std::min(bound_us, anchor);
    }
    owner->safe_submit_slot_ = slot_of(bound_us);
  }

  void flush_all() {
    drain_closed(std::numeric_limits<std::int64_t>::max());
    if (!open.empty()) {
      throw std::logic_error(
          "read_trace_stream: open tasks survived the final flush");
    }
    owner->exhausted_ = true;
  }

  void ingest_batch() {
    const std::uint64_t first = next_chunk;
    const std::uint64_t count =
        std::min<std::uint64_t>(config.chunks_per_batch, num_chunks - first);
    const std::uint64_t batch_begin = first * config.chunk_bytes;
    const std::uint64_t batch_end =
        std::min<std::uint64_t>(file_size, (first + count) * config.chunk_bytes);
    const std::uint64_t map_begin =
        batch_begin == 0 ? 0 : (batch_begin - 1) / page_size * page_size;
    const std::uint64_t map_end =
        std::min<std::uint64_t>(file_size, batch_end + config.max_line_bytes);
    const MappedWindow window(fd, map_begin,
                              static_cast<std::size_t>(map_end - map_begin),
                              owner->path_);
    ++owner->stats_.batches_mapped;

    std::vector<ChunkOut> outs(count);
    const auto parse_one = [&](std::size_t i) {
      const std::uint64_t begin = (first + i) * config.chunk_bytes;
      const std::uint64_t end =
          std::min<std::uint64_t>(file_size, begin + config.chunk_bytes);
      outs[i] = parse_chunk(window.data(), map_begin, begin, end, file_size,
                            config);
    };
    if (pool != nullptr && pool->size() > 1 && count > 1) {
      pool->parallel_for(static_cast<std::size_t>(count), parse_one);
    } else {
      for (std::size_t i = 0; i < count; ++i) parse_one(i);
    }

    // Serial in-order merge: rebase chunk-local lines to global file
    // lines, assemble rows, and rethrow the earliest deferred error —
    // identical diagnostics whether the chunks parsed serially or not.
    for (auto& chunk : outs) {
      for (RawRow& row : chunk.rows) {
        row.line += lines_total;
        ingest_row(row);
      }
      owner->stats_.rows_parsed += chunk.rows.size();
      ++owner->stats_.chunks_parsed;
      if (chunk.has_error) {
        fail_field(lines_total + chunk.error.local_line, chunk.error.column,
                   chunk.error.value, chunk.error.reason);
      }
      lines_total += chunk.lines;
    }
    owner->stats_.lines_seen = lines_total;
    owner->stats_.bytes_read += batch_end - batch_begin;
    next_chunk = first + count;
  }
};

StreamReader::StreamReader(std::string path, StreamReaderConfig config,
                           util::ThreadPool* pool)
    : path_(std::move(path)),
      impl_(std::make_unique<Impl>(this, std::move(config), pool)) {}

StreamReader::~StreamReader() = default;

bool StreamReader::advance() {
  if (exhausted_) return false;
  if (impl_->next_chunk < impl_->num_chunks) {
    impl_->ingest_batch();
  }
  if (impl_->next_chunk >= impl_->num_chunks) {
    impl_->flush_all();
  }
  impl_->update_safe_submit_slot();
  return !exhausted_;
}

std::vector<Job> StreamReader::take_ready() {
  std::vector<Job> out;
  out.swap(impl_->ready);
  return out;
}

Trace StreamReader::read_all(const std::string& path,
                             const StreamReaderConfig& config,
                             util::ThreadPool* pool) {
  StreamReader reader(path, config, pool);
  std::vector<Job> jobs;
  do {
    reader.advance();
    std::vector<Job> batch = reader.take_ready();
    for (auto& job : batch) jobs.push_back(std::move(job));
  } while (!reader.exhausted());
  Trace trace(std::move(jobs));
  trace.sort();
  return trace;
}

}  // namespace corp::trace
