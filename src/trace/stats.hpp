// Workload statistics: the summary a capacity planner (or a reviewer
// checking a synthetic trace against the Google trace's published shape)
// wants from a Trace.
#pragma once

#include <array>
#include <iosfwd>

#include "trace/job.hpp"
#include "util/stats.hpp"

namespace corp::trace {

struct TraceStats {
  std::size_t tasks = 0;
  std::int64_t horizon_slots = 0;
  /// Tasks per JobClass (cpu/mem/storage-intensive, balanced).
  std::array<std::size_t, 4> class_histogram{};
  std::size_t short_lived = 0;
  std::size_t long_lived = 0;
  /// Task durations in seconds.
  util::Summary duration_seconds;
  /// Requested amounts per resource type.
  std::array<util::Summary, kNumResources> request;
  /// Per-task mean utilization fraction (demand / request), pooled over
  /// resource types with positive requests.
  util::Summary utilization_fraction;
  /// Per-task mean unused fraction (1 - utilization).
  util::Summary unused_fraction;
  /// Peak number of tasks whose [submit, submit+duration) overlap one
  /// slot — the workload's intrinsic concurrency (ignores scheduling).
  std::size_t peak_concurrency = 0;
};

/// Computes the full statistics of a trace in one pass (plus one pass for
/// the concurrency profile).
TraceStats compute_stats(const Trace& trace);

/// Pretty-prints the statistics as aligned tables.
void print_stats(const TraceStats& stats, std::ostream& out);

}  // namespace corp::trace
