// Multi-resource vectors (CPU, MEM, storage) — the `l = 3` resource types of
// Table II — with the arithmetic the packing/matching algorithms need.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string_view>

namespace corp::trace {

/// Resource types considered by the paper (Table II: l = 3).
enum class ResourceKind : std::size_t { kCpu = 0, kMemory = 1, kStorage = 2 };

inline constexpr std::size_t kNumResources = 3;

std::string_view resource_name(ResourceKind kind);

/// A value per resource type. Units are normalized machine shares for CPU
/// and MEM (1.0 = one server's worth) and GB for storage; the algorithms
/// only ever compare amounts of the same type or normalize by capacities, so
/// mixed units are safe.
class ResourceVector {
 public:
  constexpr ResourceVector() : v_{} {}
  constexpr ResourceVector(double cpu, double mem, double storage)
      : v_{cpu, mem, storage} {}

  static constexpr ResourceVector zero() { return ResourceVector{}; }
  static constexpr ResourceVector filled(double x) {
    return ResourceVector(x, x, x);
  }

  constexpr double operator[](std::size_t i) const { return v_[i]; }
  constexpr double& operator[](std::size_t i) { return v_[i]; }
  constexpr double get(ResourceKind k) const {
    return v_[static_cast<std::size_t>(k)];
  }
  constexpr void set(ResourceKind k, double x) {
    v_[static_cast<std::size_t>(k)] = x;
  }

  constexpr double cpu() const { return v_[0]; }
  constexpr double memory() const { return v_[1]; }
  constexpr double storage() const { return v_[2]; }

  ResourceVector& operator+=(const ResourceVector& o);
  ResourceVector& operator-=(const ResourceVector& o);
  ResourceVector& operator*=(double s);

  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    return a += b;
  }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
    return a -= b;
  }
  friend ResourceVector operator*(ResourceVector a, double s) { return a *= s; }
  friend ResourceVector operator*(double s, ResourceVector a) { return a *= s; }

  friend bool operator==(const ResourceVector&, const ResourceVector&) =
      default;

  /// True when every component of this vector is <= other + eps.
  bool fits_within(const ResourceVector& other, double eps = 1e-9) const;

  /// True when any component is negative beyond -eps.
  bool any_negative(double eps = 1e-9) const;

  /// Component-wise max(0, x).
  ResourceVector clamped_non_negative() const;

  /// Component-wise minimum of two vectors.
  static ResourceVector min(const ResourceVector& a, const ResourceVector& b);

  /// Component-wise maximum of two vectors.
  static ResourceVector max(const ResourceVector& a, const ResourceVector& b);

  /// The resource type with the largest amount — the job's *dominant
  /// resource* (Sec. III-B). Ties resolve to the lower-indexed type.
  ResourceKind dominant() const;

  /// Sum of all components.
  double total() const;

  /// Weighted sum with the given per-type weights (Eq. 2 numerators).
  double weighted_total(const std::array<double, kNumResources>& w) const;

 private:
  std::array<double, kNumResources> v_;
};

std::ostream& operator<<(std::ostream& os, const ResourceVector& r);

/// Per-type weights omega_j of Eq. 2/4. The paper sets CPU/MEM/storage to
/// 0.4/0.4/0.2 because storage is not the bottleneck resource.
struct ResourceWeights {
  std::array<double, kNumResources> w{0.4, 0.4, 0.2};

  double weight(ResourceKind k) const {
    return w[static_cast<std::size_t>(k)];
  }

  /// True when weights are non-negative and sum to 1 (within eps).
  bool valid(double eps = 1e-9) const;
};

}  // namespace corp::trace
