// Streaming trace ingestion: a memory-mapped, chunked CSV reader for the
// public Google cluster-usage v2 (task_usage table) and Azure VM
// (vm_cpu_readings) schemas that parses, windows and resamples multi-GB
// trace files in bounded memory — the whole timeline is never
// materialized. Jobs become available incrementally, in a deterministic
// order, so sim::ShardEngine can consume arrivals slot-by-slot through
// sim::StreamingJobSource while the tail of the file is still unread.
//
// Bounded-memory contract (docs/traces.md):
//  * the file is mapped one batch window at a time
//    (chunks_per_batch * chunk_bytes + max_line_bytes + one page) and
//    unmapped before the next batch, so resident set and virtual address
//    use stay O(batch), not O(file);
//  * per-task assembly state is one coarse window vector per *open* task,
//    closed and emitted as soon as the row watermark passes the task's
//    last window by close_gap_us (long tasks are dropped or segmented
//    eagerly, so no task accumulates unbounded windows).
//
// Determinism contract: chunk boundaries are fixed byte offsets
// (multiples of chunk_bytes over the whole file), a chunk owns exactly
// the lines *starting* inside its byte range, and per-chunk parsing is a
// pure function of the mapped bytes. Parsed rows are re-merged in file
// order before assembly, parse errors are deferred per chunk and the
// earliest one rethrown globally, and resample jitter derives from the
// task key (seed_stream::kTraceIngest), never from arrival order. The
// emitted job stream is therefore bit-identical for every chunk size,
// batch size and worker count — pinned by tests/trace/stream_reader_test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/google_format.hpp"
#include "trace/job.hpp"

namespace corp::util {
class ThreadPool;
}

namespace corp::trace {

/// On-disk schema of a streamed trace file.
enum class TraceSchema : std::uint8_t {
  /// Google cluster-usage v2 task_usage rows: start_time, end_time,
  /// job_id, task_index, machine_id, mean_cpu, canonical_mem, ... ,
  /// mean_disk_space (column 12). Headerless CSV, microsecond
  /// timestamps, usage normalized to the largest machine.
  kGoogleV2 = 0,
  /// Azure public VM trace CPU readings: timestamp (seconds), vm_id,
  /// min_cpu, max_cpu, avg_cpu (percent). Headerless CSV, one reading
  /// per VM per 5-minute interval.
  kAzureVm = 1,
};

std::string_view schema_name(TraceSchema schema);

/// Inverse of schema_name ("google-v2" | "azure-vm"); throws
/// std::invalid_argument on anything else.
TraceSchema parse_schema_name(std::string_view name);

/// What to do with tasks whose assembled duration exceeds
/// max_duration_slots.
enum class LongTaskPolicy : std::uint8_t {
  /// Drop them, as the paper does for the Google trace (Sec. IV). The
  /// task keeps streaming through the watermark machinery but its
  /// windows are discarded, so memory stays bounded.
  kDrop = 0,
  /// Split them into consecutive max-duration jobs — how a long-running
  /// Azure VM becomes a sequence of short-lived jobs the CORP model can
  /// schedule.
  kSegment = 1,
};

struct StreamReaderConfig {
  TraceSchema schema = TraceSchema::kGoogleV2;

  // --- chunking (throughput knobs; never affect results) ---
  /// Fixed chunk width in bytes; chunk k covers file bytes
  /// [k*chunk_bytes, (k+1)*chunk_bytes).
  std::size_t chunk_bytes = std::size_t{4} << 20;
  /// Chunks mapped and parsed per advance() call; one batch is the unit
  /// of parallel parsing and of mapped address space.
  std::size_t chunks_per_batch = 4;
  /// Hard cap on one CSV line; a longer line is a malformed-input error,
  /// and the mapped window carries exactly this much slack past the
  /// batch for lines that straddle its end.
  std::size_t max_line_bytes = std::size_t{64} << 10;

  // --- schema interpretation ---
  /// Google scales/resampling/limits; usage_window_us is also the coarse
  /// window length used for gap filling.
  GoogleFormatConfig google;
  /// Azure reading interval (5 minutes) and machine scales mapping
  /// percent CPU readings onto the resource model.
  std::int64_t azure_interval_us = 300'000'000;
  double azure_cpu_scale_cores = 16.0;
  double azure_mem_scale_gb = 64.0;

  // --- assembly ---
  /// Rows may arrive at most this many microseconds behind the maximum
  /// start timestamp seen so far; anything older is an out-of-order
  /// error (both public traces are sorted, so the default is strict).
  std::int64_t reorder_slack_us = 0;
  /// A task closes once the watermark passes its last window's end by
  /// this much. 0 resolves to 2 * usage_window_us.
  std::int64_t close_gap_us = 0;
  /// Streamed single-table ingest has no SUBMIT-event join, so the
  /// declared request is peak observed usage times this headroom.
  double request_headroom = 1.25;
  LongTaskPolicy long_tasks = LongTaskPolicy::kDrop;
  /// Base seed of the per-task resample-jitter streams
  /// (seed_stream::kTraceIngest).
  std::uint64_t seed = 42;
};

/// Ingestion counters, exported by bench/trace_replay and corpsim as
/// trace.* metrics (corp_trace deliberately does not link corp_obs).
struct StreamStats {
  std::uint64_t file_bytes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t rows_parsed = 0;
  std::uint64_t lines_seen = 0;
  std::uint64_t chunks_parsed = 0;
  std::uint64_t batches_mapped = 0;
  std::uint64_t tasks_opened = 0;
  std::uint64_t jobs_emitted = 0;
  std::uint64_t jobs_dropped_long = 0;
  std::uint64_t jobs_segmented = 0;
  std::uint64_t gap_fills = 0;
  std::uint64_t peak_open_tasks = 0;
};

/// Pull-based streaming reader. Call advance() to ingest the next batch,
/// take_ready() to collect jobs whose tasks have closed, and
/// safe_submit_slot() to learn which simulation slots are complete (no
/// future job can be submitted before it).
class StreamReader {
 public:
  /// Opens and maps metadata for `path`. `pool` parallelizes per-chunk
  /// parsing when it has more than one worker; results are bit-identical
  /// with and without it. Throws std::runtime_error when the file cannot
  /// be opened or its first line carries an unknown #corp-trace
  /// directive.
  StreamReader(std::string path, StreamReaderConfig config,
               util::ThreadPool* pool = nullptr);
  ~StreamReader();

  StreamReader(const StreamReader&) = delete;
  StreamReader& operator=(const StreamReader&) = delete;

  /// Ingests one batch of chunks (or performs the final flush). Returns
  /// true while more input remains, false once exhausted. Malformed
  /// input raises std::runtime_error naming the 1-based line and field,
  /// in the read_trace_csv convention.
  bool advance();

  /// Moves out all jobs emitted since the previous call. Jobs carry
  /// sequential ids in emission order; emission order is deterministic
  /// but not submit-sorted (tasks emit when they close).
  std::vector<Job> take_ready();

  /// True once the whole file has been consumed and every open task
  /// flushed.
  bool exhausted() const { return exhausted_; }

  /// Lower bound on the submit_slot of every job not yet emitted: slots
  /// strictly below it are complete. Max int64 once exhausted.
  std::int64_t safe_submit_slot() const { return safe_submit_slot_; }

  /// Largest submit_slot + duration_slots over emitted jobs so far.
  std::int64_t horizon_slots() const { return horizon_slots_; }

  /// Microsecond timestamp of the first row; submit slots count from it.
  std::int64_t epoch_us() const { return epoch_us_; }

  const StreamStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

  /// Convenience for tests and small files: streams the whole file and
  /// returns the materialized, submit-sorted trace.
  static Trace read_all(const std::string& path,
                        const StreamReaderConfig& config,
                        util::ThreadPool* pool = nullptr);

 private:
  struct Impl;

  std::string path_;
  std::unique_ptr<Impl> impl_;
  StreamStats stats_;
  bool exhausted_ = false;
  std::int64_t safe_submit_slot_ = 0;
  std::int64_t horizon_slots_ = 0;
  std::int64_t epoch_us_ = 0;
};

}  // namespace corp::trace
