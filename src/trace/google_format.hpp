// Reader for the Google cluster-usage trace format (clusterdata-2011),
// the dataset the paper evaluates on. Two of its tables matter here:
//
//   task_events:  timestamp, missing, job_id, task_index, machine_id,
//                 event_type, user, scheduling_class, priority,
//                 cpu_request, memory_request, disk_request, constraint
//   task_usage:   start_time, end_time, job_id, task_index, machine_id,
//                 mean_cpu, canonical_mem, assigned_mem, unmapped_cache,
//                 page_cache, max_mem, mean_disk_io, mean_disk_space,
//                 max_cpu, max_disk_io, cpi, mai, sample_portion,
//                 aggregation_type, sampled_cpu
//
// Timestamps are microseconds; usage records cover 5-minute windows; CPU
// and memory are normalized to the largest machine. This reader stitches
// the SUBMIT (0) event's requests with the task's usage windows into the
// corp::trace::Job model: coarse 5-minute usage resampled to 10-second
// slots via trace/resampler, long tasks dropped, exactly the paper's
// preprocessing. Only the columns above are interpreted; extra columns are
// ignored, so both the raw trace and trimmed extracts load.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/job.hpp"
#include "trace/resampler.hpp"
#include "util/rng.hpp"

namespace corp::trace {

struct GoogleFormatConfig {
  /// Microseconds per coarse usage record (5 minutes in the trace).
  std::int64_t usage_window_us = 300'000'000;
  /// Storage capacity (GB) that a disk_request of 1.0 corresponds to.
  double storage_scale_gb = 720.0;
  /// CPU cores that a cpu_request of 1.0 corresponds to.
  double cpu_scale_cores = 16.0;
  /// Memory (GB) that a memory_request of 1.0 corresponds to.
  double mem_scale_gb = 64.0;
  /// Resampling of the coarse records into 10-second slots.
  ResampleConfig resample;
  /// Drop tasks longer than this many fine slots (the paper's removal of
  /// long-lived jobs). 0 disables the filter.
  std::size_t max_duration_slots = kShortJobMaxSlots;
  /// SLO stretch assigned to loaded tasks (the trace has no SLOs).
  double slo_stretch = 1.10;
};

/// One row of a task_events extract (SUBMIT events only are consumed).
struct GoogleTaskEvent {
  std::int64_t timestamp_us = 0;
  std::uint64_t job_id = 0;
  std::uint32_t task_index = 0;
  int event_type = 0;  // 0 = SUBMIT
  double cpu_request = 0.0;
  double memory_request = 0.0;
  double disk_request = 0.0;
};

/// One row of a task_usage extract.
struct GoogleTaskUsage {
  std::int64_t start_time_us = 0;
  std::int64_t end_time_us = 0;
  std::uint64_t job_id = 0;
  std::uint32_t task_index = 0;
  double mean_cpu = 0.0;
  double canonical_memory = 0.0;
  double mean_disk_space = 0.0;
};

/// Parses a task_events CSV stream (headerless, as shipped by Google).
/// Malformed rows raise std::runtime_error with the line number.
std::vector<GoogleTaskEvent> read_task_events(std::istream& in);

/// Parses a task_usage CSV stream (headerless).
std::vector<GoogleTaskUsage> read_task_usage(std::istream& in);

/// Joins events and usage into a Trace:
///  - each (job_id, task_index) with a SUBMIT event and >= 1 usage record
///    becomes one Job;
///  - requests scale by the config's machine constants;
///  - usage windows are ordered, gaps filled with the previous record,
///    then resampled 5 min -> 10 s;
///  - tasks beyond max_duration_slots are dropped.
/// `rng` drives the resampler's jitter.
Trace build_trace(const std::vector<GoogleTaskEvent>& events,
                  const std::vector<GoogleTaskUsage>& usage,
                  const GoogleFormatConfig& config, util::Rng& rng);

/// Convenience: loads both extracts from files and builds the trace.
Trace load_google_trace(const std::string& task_events_path,
                        const std::string& task_usage_path,
                        const GoogleFormatConfig& config, util::Rng& rng);

}  // namespace corp::trace
