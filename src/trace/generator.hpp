// Synthetic Google-cluster-like workload generator.
//
// The paper evaluates on the Google cluster trace after (a) removing
// long-lived jobs and (b) resampling 5-minute records to 10-second slots.
// We cannot ship the proprietary trace, so this generator reproduces the
// statistics the CORP algorithms are sensitive to:
//   - heavy-tailed, short job durations (seconds to minutes, capped 5 min);
//   - per-job resource-intensity classes (CPU / MEM / storage dominant);
//   - fluctuating per-slot usage with *no long-horizon pattern*: a
//     mean-reverting base plus a peak/valley burst regime process — exactly
//     the behaviour Sec. III-A1b's HMM symbolizer is built to track;
//   - declared requests above actual usage (the temporarily-unused
//     resource CORP reallocates).
// All randomness flows through an injected seeded Rng, so traces are
// reproducible.
#pragma once

#include <array>
#include <cstdint>

#include "trace/job.hpp"
#include "util/rng.hpp"

namespace corp::trace {

struct GeneratorConfig {
  /// Total number of jobs to synthesize.
  std::size_t num_jobs = 300;

  /// Arrival horizon: submissions are spread over [0, horizon_slots).
  std::int64_t horizon_slots = 180;

  /// Task fan-out. Sec. IV: "we considered the tasks of jobs in the trace
  /// as short-lived jobs" — a trace job comprises several tasks that
  /// arrive together; |J| in Table II counts jobs, so the unit count the
  /// cluster sees is num_jobs x tasks. Lognormal, clamped to
  /// [1, max_tasks_per_job].
  double tasks_log_mu = 1.5;
  double tasks_log_sigma = 0.5;
  std::size_t max_tasks_per_job = 20;

  /// Lognormal duration parameters (in slots). With mu=1.6/sigma=0.7 the
  /// median is ~5 slots (50 s) and the tail reaches the 5-minute cap.
  double duration_log_mu = 1.6;
  double duration_log_sigma = 0.7;
  /// Hard cap for short-lived jobs (30 slots = 5 min).
  std::size_t max_duration_slots = kShortJobMaxSlots;

  /// Mix of job classes: cpu / mem / storage intensive / balanced.
  std::array<double, 4> class_mix{0.35, 0.30, 0.15, 0.20};

  /// Request magnitudes. CPU in cores, MEM in GB, storage in GB; the
  /// dominant resource draws from the "high" range, others from "low".
  double cpu_request_high = 2.0;
  double cpu_request_low = 0.4;
  double mem_request_high = 4.0;
  double mem_request_low = 0.8;
  double storage_request_high = 60.0;
  double storage_request_low = 8.0;
  /// Multiplicative jitter applied to every request draw (lognormal sigma).
  double request_jitter_sigma = 0.3;
  /// Component-wise upper bound on requests, so every job fits the target
  /// environment's VMs. Default: effectively unbounded.
  ResourceVector request_cap{1e18, 1e18, 1e18};

  /// Baseline utilization: mean of demand/request before bursts.
  double mean_utilization = 0.55;
  /// Mean-reversion rate of the Ornstein-Uhlenbeck base process per slot.
  double ou_theta = 0.35;
  /// OU volatility as a fraction of the request.
  double ou_sigma = 0.06;

  /// Per-slot probability of entering a peak / valley burst regime.
  double peak_probability = 0.06;
  double valley_probability = 0.06;
  /// Expected burst length in slots (geometric).
  double mean_burst_slots = 6.0;
  /// Demand level during peaks / valleys, as a fraction of request.
  double peak_level = 0.97;
  double valley_level = 0.22;

  /// Response-time SLO threshold multiplier (Sec. IV: threshold set from
  /// the task execution time in the trace).
  double slo_stretch = 1.3;

  /// Floor on demand as a fraction of request (jobs never go fully idle).
  double min_utilization = 0.05;

  /// Long-lived job mix (Sec. VI future work: "we will consider both
  /// short-lived and long-lived jobs"). Fraction of *jobs* (not tasks)
  /// that are long-lived services; such jobs have a single task, run
  /// long_duration_min..max slots, and — unlike short-lived jobs — carry
  /// a periodic utilization pattern (the regularity the paper says
  /// time-series methods exploit on long-running services).
  double long_job_fraction = 0.0;
  std::size_t long_duration_min_slots = 90;
  std::size_t long_duration_max_slots = 360;
  /// Period of the long jobs' utilization pattern, in slots.
  double long_pattern_period = 60.0;
  /// Amplitude of the pattern, as a fraction of the request.
  double long_pattern_amplitude = 0.25;
};

/// Generates reproducible synthetic traces per the config above.
class GoogleTraceGenerator {
 public:
  explicit GoogleTraceGenerator(GeneratorConfig config = {});

  const GeneratorConfig& config() const { return config_; }

  /// Generates a full trace of config.num_jobs jobs using `rng`.
  Trace generate(util::Rng& rng) const;

  /// Generates a single job with the given id and submit slot. Exposed for
  /// tests and for callers that stream jobs instead of materializing a
  /// whole trace.
  Job generate_job(std::uint64_t id, std::int64_t submit_slot,
                   util::Rng& rng) const;

  /// Generates a long-lived service job with a periodic usage pattern.
  Job generate_long_job(std::uint64_t id, std::int64_t submit_slot,
                        util::Rng& rng) const;

  /// Generates a standalone utilization series (demand as a fraction of
  /// request) of the given length using the same regime dynamics; used to
  /// build predictor training corpora without whole-job scaffolding.
  std::vector<double> generate_utilization_series(std::size_t length,
                                                  util::Rng& rng) const;

 private:
  JobClass sample_class(util::Rng& rng) const;
  std::size_t sample_duration(util::Rng& rng) const;
  ResourceVector sample_request(JobClass c, util::Rng& rng) const;

  GeneratorConfig config_;
};

}  // namespace corp::trace
