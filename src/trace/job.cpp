#include "trace/job.hpp"

#include <algorithm>

namespace corp::trace {

std::string_view job_class_name(JobClass c) {
  switch (c) {
    case JobClass::kCpuIntensive: return "cpu-intensive";
    case JobClass::kMemIntensive: return "mem-intensive";
    case JobClass::kStorageIntensive: return "storage-intensive";
    case JobClass::kBalanced: return "balanced";
  }
  return "?";
}

const ResourceVector& Job::demand_at(std::size_t k) const {
  static const ResourceVector kZero{};
  if (usage.empty()) return kZero;
  return usage[std::min(k, usage.size() - 1)];
}

ResourceVector Job::peak_demand() const {
  ResourceVector peak;
  for (const auto& u : usage) peak = ResourceVector::max(peak, u);
  return peak;
}

ResourceVector Job::mean_demand() const {
  if (usage.empty()) return ResourceVector::zero();
  ResourceVector sum;
  for (const auto& u : usage) sum += u;
  return sum * (1.0 / static_cast<double>(usage.size()));
}

ResourceVector Job::unused_at(std::size_t k) const {
  return (request - demand_at(k)).clamped_non_negative();
}

ResourceKind Job::dominant_resource() const { return request.dominant(); }

bool Job::valid() const {
  if (duration_slots == 0) return false;
  if (usage.size() != duration_slots) return false;
  if (request.any_negative()) return false;
  for (const auto& u : usage) {
    if (u.any_negative()) return false;
    if (!u.fits_within(request, 1e-6)) return false;
  }
  return slo_stretch >= 1.0;
}

Trace::Trace(std::vector<Job> jobs) : jobs_(std::move(jobs)) { sort(); }

void Trace::add(Job job) { jobs_.push_back(std::move(job)); }

void Trace::sort() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     if (a.submit_slot != b.submit_slot) {
                       return a.submit_slot < b.submit_slot;
                     }
                     return a.id < b.id;
                   });
}

std::int64_t Trace::horizon_slots() const {
  std::int64_t horizon = 0;
  for (const auto& j : jobs_) {
    horizon = std::max(
        horizon, j.submit_slot + static_cast<std::int64_t>(j.duration_slots));
  }
  return horizon;
}

std::vector<std::size_t> Trace::arrivals_at(std::int64_t slot) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].submit_slot == slot) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Trace::class_histogram() const {
  std::vector<std::size_t> hist(4, 0);
  for (const auto& j : jobs_) {
    hist[static_cast<std::size_t>(j.job_class)]++;
  }
  return hist;
}

std::size_t Trace::filter_long_jobs(std::size_t max_slots) {
  const std::size_t before = jobs_.size();
  std::erase_if(jobs_,
                [max_slots](const Job& j) { return j.duration_slots > max_slots; });
  return before - jobs_.size();
}

}  // namespace corp::trace
