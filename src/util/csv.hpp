// Minimal CSV reading/writing used for trace serialization and for dumping
// figure series from the benchmark harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace corp::util {

/// A parsed CSV document: a header row plus data rows of strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column, or npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t column(std::string_view name) const;
};

/// Splits one CSV line on commas, honouring double-quoted fields with
/// embedded commas and doubled quotes ("" -> ").
std::vector<std::string> split_csv_line(std::string_view line);

/// Quotes a field if it contains a comma, quote or newline.
std::string escape_csv_field(std::string_view field);

/// Parses an entire CSV stream; first line is the header.
CsvDocument read_csv(std::istream& in);

/// Parses a CSV file from disk. Throws std::runtime_error if unreadable.
CsvDocument read_csv_file(const std::string& path);

/// Writer that streams rows out with proper escaping.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough precision to round-trip.
  void write_row(const std::vector<double>& fields);

 private:
  std::ostream& out_;
};

/// Formats a double compactly (up to `digits` significant digits, no
/// trailing zeros) for tables and CSV output.
std::string format_double(double value, int digits = 6);

}  // namespace corp::util
