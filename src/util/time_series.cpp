#include "util/time_series.hpp"

#include <algorithm>

namespace corp::util {

TimeSeries::TimeSeries(std::size_t capacity)
    : data_(capacity > 0 ? capacity : 1), capacity_(capacity > 0 ? capacity : 1) {}

void TimeSeries::push(double x) {
  if (size_ < capacity_) {
    data_[physical_index(size_)] = x;
    ++size_;
  } else {
    data_[head_] = x;
    head_ = (head_ + 1) % capacity_;
  }
}

double TimeSeries::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("TimeSeries::at");
  return data_[physical_index(i)];
}

double TimeSeries::back() const {
  if (size_ == 0) throw std::out_of_range("TimeSeries::back on empty series");
  return data_[physical_index(size_ - 1)];
}

std::vector<double> TimeSeries::last(std::size_t n) const {
  const std::size_t take = std::min(n, size_);
  std::vector<double> out;
  out.reserve(take);
  for (std::size_t i = size_ - take; i < size_; ++i) out.push_back(at(i));
  return out;
}

std::vector<double> TimeSeries::snapshot() const { return last(size_); }

double TimeSeries::min() const {
  if (size_ == 0) return 0.0;
  double m = at(0);
  for (std::size_t i = 1; i < size_; ++i) m = std::min(m, at(i));
  return m;
}

double TimeSeries::max() const {
  if (size_ == 0) return 0.0;
  double m = at(0);
  for (std::size_t i = 1; i < size_; ++i) m = std::max(m, at(i));
  return m;
}

double TimeSeries::mean() const {
  if (size_ == 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < size_; ++i) s += at(i);
  return s / static_cast<double>(size_);
}

void TimeSeries::clear() {
  head_ = 0;
  size_ = 0;
}

std::vector<double> window_ranges(std::span<const double> series,
                                  std::size_t window) {
  std::vector<double> out;
  if (window == 0 || series.size() < window) return out;
  const std::size_t nwin = series.size() / window;
  out.reserve(nwin);
  for (std::size_t w = 0; w < nwin; ++w) {
    double lo = series[w * window];
    double hi = lo;
    for (std::size_t i = 1; i < window; ++i) {
      const double x = series[w * window + i];
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    out.push_back(hi - lo);
  }
  return out;
}

}  // namespace corp::util
