// Central registry of every util::derive_seed stream tag in the process.
//
// Determinism contract: every random stream hanging off one experiment
// seed gets its own tag here, so streams can never alias each other (or
// a neighbouring sweep seed's streams, thanks to derive_seed's double
// avalanche). Scattering tags across translation units is how two call
// sites end up passing the same literal without either knowing about the
// other — exactly the collision class PR 1 fixed. The static_assert
// below makes that collision a compile error instead.
//
// Conventions:
//   * small integers for the classic experiment streams (values are
//     load-bearing: changing any value changes every derived seed and
//     therefore every figure — treat them as frozen),
//   * ASCII mnemonics for subsystem streams ("REPL", "FALT", ...).
//
// The determinism lint (CORP-SEED-001, tools/lint/corp_lint.py) rejects
// bare literal stream tags at derive_seed call sites; add new tags here
// and pass them by name.
#pragma once

#include <cstddef>
#include <cstdint>

namespace corp::util::seed_stream {

// --- experiment streams (sim/experiment.cpp) ---------------------------
/// Shared per-experiment training trace.
inline constexpr std::uint64_t kTraining = 1;
/// Evaluation trace of one sweep point (substream: num_jobs).
inline constexpr std::uint64_t kEvaluation = 2;
/// One method's simulation — scheduler tie-breaks etc. (substream:
/// method index).
inline constexpr std::uint64_t kSimulation = 3;

// --- subsystem streams -------------------------------------------------
/// Replica fan-out (sim/replication.cpp; substream: replica index).
inline constexpr std::uint64_t kReplica = 0x5245504cULL;  // "REPL"
/// Root of the fault-injection oracle (sim/simulation.cpp).
inline constexpr std::uint64_t kFault = 0x46414C54ULL;  // "FALT"
/// Per-VM crash/recovery schedules (fault.cpp; substream: vm index).
inline constexpr std::uint64_t kFaultVm = 0x564d4352ULL;  // "VMCR"
/// Bursty telemetry gaps (fault.cpp; keyed by job id and slot).
inline constexpr std::uint64_t kFaultTelemetryGap = 0x54474150ULL;  // "TGAP"
/// Demand-spike stragglers (fault.cpp; keyed by job id).
inline constexpr std::uint64_t kFaultStraggler = 0x53545247ULL;  // "STRG"
/// Poisoned-forecast faults (fault.cpp; keyed by job id and slot).
inline constexpr std::uint64_t kFaultPredictor = 0x50464c54ULL;  // "PFLT"
/// Streaming trace ingest: per-task resample jitter (trace/stream_reader
/// .cpp; substream: task key + segment), so the fine-grained series a task
/// gets is independent of chunk size, batch size and worker count.
inline constexpr std::uint64_t kTraceIngest = 0x54494e47ULL;  // "TING"
/// Prediction-aware scheduler tie-breaking (sched/pred_aware_scheduler
/// .cpp): candidate selection among exactly-tied most-matched volumes at
/// interior trust values. Dedicated stream so the λ∈{0,1} endpoints stay
/// bit-identical to the reference schedulers, which draw nothing.
inline constexpr std::uint64_t kTrustAdaptation = 0x54525354ULL;  // "TRST"

namespace detail {
inline constexpr std::uint64_t kAll[] = {
    kTraining,  kEvaluation,       kSimulation,     kReplica,
    kFault,     kFaultVm,          kFaultTelemetryGap,
    kFaultStraggler, kFaultPredictor, kTraceIngest,  kTrustAdaptation,
};

constexpr bool all_distinct() {
  constexpr std::size_t n = sizeof(kAll) / sizeof(kAll[0]);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (kAll[i] == kAll[j]) return false;
    }
  }
  return true;
}
}  // namespace detail

static_assert(detail::all_distinct(),
              "seed stream tags must be pairwise distinct — a duplicate "
              "tag silently aliases two random streams");

}  // namespace corp::util::seed_stream
