// Minimal command-line flag parsing for the tools/ binaries:
// `--flag value` and `--flag=value` forms, typed getters with defaults,
// and validation that every provided flag was declared.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace corp::util {

class ArgParser {
 public:
  /// Parses argv[first..argc). Throws std::invalid_argument on a flag
  /// without a value or one not in `known` (empty known = accept all).
  ArgParser(int argc, char** argv, int first,
            const std::vector<std::string>& known = {});

  bool has(const std::string& flag) const;

  std::string get(const std::string& flag,
                  const std::string& fallback) const;
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  /// Non-negative count flag (thread counts, replication counts, ...).
  /// Throws std::invalid_argument on a negative value.
  std::size_t get_size(const std::string& flag, std::size_t fallback) const;

  /// Positional arguments (tokens not starting with --).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace corp::util
