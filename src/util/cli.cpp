#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace corp::util {

ArgParser::ArgParser(int argc, char** argv, int first,
                     const std::vector<std::string>& known) {
  for (int i = first; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    std::string flag = token.substr(2);
    std::string value;
    const auto eq = flag.find('=');
    if (eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + flag + " needs a value");
      }
      value = argv[++i];
    }
    if (!known.empty() &&
        std::find(known.begin(), known.end(), flag) == known.end()) {
      throw std::invalid_argument("unknown flag --" + flag);
    }
    values_[flag] = std::move(value);
  }
}

bool ArgParser::has(const std::string& flag) const {
  return values_.count(flag) > 0;
}

std::string ArgParser::get(const std::string& flag,
                           const std::string& fallback) const {
  const auto it = values_.find(flag);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& flag,
                                std::int64_t fallback) const {
  const auto it = values_.find(flag);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

std::size_t ArgParser::get_size(const std::string& flag,
                                std::size_t fallback) const {
  const std::int64_t value =
      get_int(flag, static_cast<std::int64_t>(fallback));
  if (value < 0) {
    throw std::invalid_argument("flag --" + flag +
                                " must be non-negative, got " +
                                std::to_string(value));
  }
  return static_cast<std::size_t>(value);
}

double ArgParser::get_double(const std::string& flag,
                             double fallback) const {
  const auto it = values_.find(flag);
  return it == values_.end() ? fallback : std::stod(it->second);
}

}  // namespace corp::util
