// Deterministic random number generation for all stochastic components.
//
// Every stochastic module in CORP (trace generation, DNN weight init,
// baseline predictors, schedulers that pick random feasible VMs) takes an
// explicit Rng so that experiments are reproducible run-to-run; there is no
// hidden global generator.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace corp::util {

/// A seedable pseudo-random generator wrapping a 64-bit Mersenne twister
/// with convenience distributions used throughout the code base.
class Rng {
 public:
  /// Constructs a generator from an explicit seed. The same seed always
  /// produces the same stream on every platform we target.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  /// Used for heavy-tailed short-job durations.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Pareto-distributed double with scale x_m > 0 and shape alpha > 0.
  /// Models the heavy tail of job resource demands in cluster traces.
  double pareto(double x_m, double alpha);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// first index is returned.
  std::size_t categorical(std::span<const double> weights);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator; useful for giving each worker
  /// thread or each job its own stream without sharing state.
  Rng fork();

  /// Access to the raw engine for std:: distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace corp::util
