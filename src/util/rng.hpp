// Deterministic random number generation for all stochastic components.
//
// Every stochastic module in CORP (trace generation, DNN weight init,
// baseline predictors, schedulers that pick random feasible VMs) takes an
// explicit Rng so that experiments are reproducible run-to-run; there is no
// hidden global generator.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace corp::util {

/// Golden-ratio increment of the SplitMix64 Weyl sequence.
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9e3779b97f4a7c15ULL;

/// SplitMix64 finalizer (Steele, Lea & Flood 2014): a bijective 64-bit
/// avalanche mixer. Every output bit depends on every input bit, so
/// structured inputs (small integers, arithmetic progressions) map to
/// statistically independent-looking outputs.
constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One SplitMix64 step: advances `state` along the Weyl sequence and
/// returns the mixed output. Useful for seeding a sequence of generators
/// from one root seed.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// Maps (base_seed, stream) to a well-mixed derived seed.
///
/// For a fixed base seed this is a bijection in `stream` — derived seeds of
/// distinct streams (e.g. replica indices) can never collide — and the
/// double avalanche removes all additive structure across base seeds, so
/// nearby sweep seeds do not produce overlapping replica streams (the
/// failure mode of naive `seed + k*stream` schemes).
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t stream);

/// Two-level derivation: an independent stream per (stream, substream)
/// pair, e.g. (component tag, sweep index).
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t stream,
                          std::uint64_t substream);

/// A seedable pseudo-random generator wrapping a 64-bit Mersenne twister
/// with convenience distributions used throughout the code base.
class Rng {
 public:
  /// Constructs a generator from an explicit seed. The same seed always
  /// produces the same stream on every platform we target.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  /// Used for heavy-tailed short-job durations.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Pareto-distributed double with scale x_m > 0 and shape alpha > 0.
  /// Models the heavy tail of job resource demands in cluster traces.
  double pareto(double x_m, double alpha);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// first index is returned.
  std::size_t categorical(std::span<const double> weights);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator; useful for giving each worker
  /// thread or each job its own stream without sharing state.
  Rng fork();

  /// Access to the raw engine for std:: distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace corp::util
