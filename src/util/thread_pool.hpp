// Fixed-size thread pool used to parallelize per-job DNN training and the
// per-method simulation sweeps in the benchmark harness.
//
// Design notes (C++ Core Guidelines CP.*):
//  - tasks are type-erased std::function<void()>; results flow through
//    futures or caller-owned per-task slots, never shared mutable state;
//  - the pool joins all workers in the destructor, so it cannot outlive its
//    tasks' captured references when used with parallel_for/wait.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace corp::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Worker count a pool constructed with `requested` would have
  /// (0 -> hardware concurrency, min 1).
  static std::size_t resolve(std::size_t requested);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs body(i) for i in [0, n), blocking until all iterations finish.
  /// Iterations are distributed in contiguous chunks to limit contention.
  /// When one or more iterations throw, every chunk is still drained
  /// (tasks reference this call's stack frame) and the exception of the
  /// lowest-indexed failing chunk is rethrown afterwards.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace corp::util
