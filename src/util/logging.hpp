// Tiny leveled logger. Off by default so tests and benches stay quiet; the
// examples turn it up to narrate what the scheduler is doing.
#pragma once

#include <sstream>
#include <string>

namespace corp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line "[LEVEL] message" to stderr if level passes the filter.
void log(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::kDebug) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log(LogLevel::kDebug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::kInfo) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log(LogLevel::kInfo, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::kWarn) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log(LogLevel::kWarn, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() > LogLevel::kError) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log(LogLevel::kError, os.str());
}

}  // namespace corp::util
