#include "util/csv.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace corp::util {

std::size_t CsvDocument::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return npos;
}

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string escape_csv_field(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvDocument read_csv(std::istream& in) {
  CsvDocument doc;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (first) {
      doc.header = std::move(fields);
      first = false;
    } else {
      doc.rows.push_back(std::move(fields));
    }
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(in);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape_csv_field(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& fields) {
  std::vector<std::string> formatted;
  formatted.reserve(fields.size());
  for (double v : fields) formatted.push_back(format_double(v, 12));
  write_row(formatted);
}

std::string format_double(double value, int digits) {
  // "Unknown" values (e.g. a single-sample confidence half-width) render
  // as n/a rather than a platform-dependent "nan"/"-nan(ind)".
  if (std::isnan(value)) return "n/a";
  std::ostringstream os;
  os.precision(digits);
  os << value;
  return os.str();
}

}  // namespace corp::util
