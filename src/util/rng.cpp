#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace corp::util {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += kSplitMix64Gamma;
  return splitmix64_mix(state);
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t stream) {
  // Finalize the base first so that consecutive base seeds land far apart,
  // then walk `stream` steps of the Weyl sequence from there and finalize
  // again. Injective in `stream` for any fixed base (the Weyl increment is
  // odd, the mixer bijective).
  const std::uint64_t origin = splitmix64_mix(base_seed + kSplitMix64Gamma);
  return splitmix64_mix(origin + (stream + 1) * kSplitMix64Gamma);
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t stream,
                          std::uint64_t substream) {
  return derive_seed(derive_seed(base_seed, stream), substream);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::exponential(double rate) {
  std::exponential_distribution<double> d(rate);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  const double q = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution d(q);
  return d(engine_);
}

double Rng::pareto(double x_m, double alpha) {
  // Inverse-CDF sampling: X = x_m / U^{1/alpha}, U ~ Uniform(0,1].
  const double u = 1.0 - uniform(0.0, 1.0);  // avoid u == 0
  return x_m / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) return 0;
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = std::max(weights[i], 0.0);
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

Rng Rng::fork() {
  // Draw two words to decorrelate the child from the parent stream.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x2545f4914f6cdd1dULL);
}

}  // namespace corp::util
