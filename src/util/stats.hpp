// Summary statistics, online accumulators and normal quantiles.
//
// These primitives back the paper's confidence-interval machinery
// (Eq. 18-19: the forecast is lowered by sigma_hat * z_{theta/2}) and the
// prediction-error bookkeeping (Eq. 20-21).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace corp::util {

/// Welford online accumulator for mean/variance; numerically stable and
/// O(1) per observation, suitable for long prediction-error streams.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const RunningStats& other);

  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary over a span of samples.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes a full summary of the samples (copies for percentile sorting).
Summary summarize(std::span<const double> samples);

/// Linear-interpolated percentile, q in [0, 1]. Empty input returns 0.
double percentile(std::span<const double> samples, double q);

/// Quantile function (inverse CDF) of the standard normal distribution,
/// evaluated with the Acklam rational approximation (|error| < 1.2e-9).
/// p must lie in (0, 1).
double normal_quantile(double p);

/// Standard normal CDF via erfc.
double normal_cdf(double x);

/// `z_{theta/2}`: the value such that P(Z > z) = theta/2 for standard normal
/// Z, i.e. the half-width multiplier of a (1 - theta) two-sided confidence
/// interval (Eq. 18). theta must lie in (0, 1).
double z_half_alpha(double theta);

/// Mean of a span (0 for empty spans).
double mean_of(std::span<const double> xs);

/// Mean of the last `n` entries of a series (whole series if shorter),
/// skipping non-finite entries (telemetry-gap markers). When the window
/// holds no finite sample — a full telemetry outage — the result falls
/// back to the most recent finite sample before the window: "we heard
/// nothing" must stay distinguishable from "demand was genuinely zero",
/// or downstream consumers (the Eq. 20/21 gate) read an outage as free
/// capacity and over-commit. Returns 0 only when the series never held a
/// finite sample at all.
double tail_mean(std::span<const double> series, std::size_t n);

/// Pearson correlation of two equal-length spans; 0 when undefined.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Root-mean-square error between predictions and truth (equal lengths).
double rmse(std::span<const double> pred, std::span<const double> truth);

/// Mean absolute error between predictions and truth (equal lengths).
double mae(std::span<const double> pred, std::span<const double> truth);

}  // namespace corp::util
