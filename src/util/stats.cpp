#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace corp::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::vector<double> v(samples.begin(), samples.end());
  std::sort(v.begin(), v.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const double pos = clamped * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = percentile(samples, 0.5);
  s.p95 = percentile(samples, 0.95);
  s.p99 = percentile(samples, 0.99);
  return s;
}

namespace {

// Coefficients of Acklam's rational approximation to the normal quantile.
constexpr double kA[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                         -2.759285104469687e+02, 1.383577518672690e+02,
                         -3.066479806614716e+01, 2.506628277459239e+00};
constexpr double kB[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                         -1.556989798598866e+02, 6.680131188771972e+01,
                         -1.328068155288572e+01};
constexpr double kC[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                         -2.400758277161838e+00, -2.549732539343734e+00,
                         4.374664141464968e+00,  2.938163982698783e+00};
constexpr double kD[] = {7.784695709041462e-03, 3.224671290700398e-01,
                         2.445134137142996e+00, 3.754408661907416e+00};

}  // namespace

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_quantile: p must be in (0, 1)");
  }
  constexpr double kLow = 0.02425;
  constexpr double kHigh = 1.0 - kLow;
  double q, r;
  if (p < kLow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
            kC[5]) /
           ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }
  if (p <= kHigh) {
    q = p - 0.5;
    r = q * q;
    return (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r +
            kA[5]) *
           q /
           (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
           kC[5]) /
         ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double z_half_alpha(double theta) {
  if (!(theta > 0.0 && theta < 1.0)) {
    throw std::domain_error("z_half_alpha: theta must be in (0, 1)");
  }
  return normal_quantile(1.0 - theta / 2.0);
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double tail_mean(std::span<const double> series, std::size_t n) {
  if (series.empty()) return 0.0;
  const std::size_t take = std::min(n, series.size());
  const std::size_t window_begin = series.size() - take;
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = window_begin; i < series.size(); ++i) {
    if (!std::isfinite(series[i])) continue;
    sum += series[i];
    ++counted;
  }
  if (counted > 0) return sum / static_cast<double>(counted);
  // All-gap window: the last finite sample before the window is the best
  // available estimate of the signal (last-observation-carried-forward,
  // matching predict::impute_gaps).
  for (std::size_t i = window_begin; i-- > 0;) {
    if (std::isfinite(series[i])) return series[i];
  }
  return 0.0;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double rmse(std::span<const double> pred, std::span<const double> truth) {
  if (pred.size() != truth.size() || pred.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(pred.size()));
}

double mae(std::span<const double> pred, std::span<const double> truth) {
  if (pred.size() != truth.size() || pred.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    s += std::abs(pred[i] - truth[i]);
  }
  return s / static_cast<double>(pred.size());
}

}  // namespace corp::util
