#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"

namespace corp::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    if (std::isnan(v)) {
      row.push_back("n/a");
      continue;
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    row.push_back(os.str());
  }
  add_row(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      os << std::setw(static_cast<int>(widths[c])) << std::left << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& out) const { out << to_string(); }

}  // namespace corp::util
