// Aligned plain-text table rendering. The benchmark harnesses use this to
// print each paper figure as a series table (x column + one column per
// method), which EXPERIMENTS.md then records.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace corp::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: first cell is the label, rest are numeric values.
  void add_row(const std::string& label, const std::vector<double>& values,
               int digits = 4);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment and a separator under the header.
  std::string to_string() const;

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace corp::util
