// Fixed-capacity sliding time series for per-job / per-VM resource history.
//
// Every predictor in src/predict consumes these: the DNN reads the last
// `delta` slots, the HMM symbolizer reads windowed min/max differences, ETS
// and the Markov chain read the full retained history.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace corp::util {

/// A ring buffer of doubles indexed from oldest (0) to newest (size()-1).
/// Capacity is fixed at construction; pushing past capacity evicts the
/// oldest sample. Contiguous access is provided by snapshot().
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Appends a sample, evicting the oldest if at capacity.
  void push(double x);

  /// i-th retained sample, 0 = oldest. Throws std::out_of_range.
  double at(std::size_t i) const;

  /// Newest sample. Throws std::out_of_range when empty.
  double back() const;

  /// The most recent `n` samples in chronological order (n <= size()).
  std::vector<double> last(std::size_t n) const;

  /// All retained samples in chronological order.
  std::vector<double> snapshot() const;

  /// Min/max/mean of retained samples (0s when empty).
  double min() const;
  double max() const;
  double mean() const;

  void clear();

 private:
  std::size_t physical_index(std::size_t logical) const {
    return (head_ + logical) % capacity_;
  }

  std::vector<double> data_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // physical index of oldest element
  std::size_t size_ = 0;
};

/// Splits a chronological series into fixed-width non-overlapping windows
/// and returns (max - min) per window — the `Delta_j` statistic used by the
/// paper's HMM symbolizer (Sec. III-A1b). Trailing partial windows are
/// dropped. window must be >= 1.
std::vector<double> window_ranges(std::span<const double> series,
                                  std::size_t window);

}  // namespace corp::util
