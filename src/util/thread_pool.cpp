#include "util/thread_pool.hpp"

#include <algorithm>

namespace corp::util {

std::size_t ThreadPool::resolve(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futures.push_back(submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  // Every future must be drained before any exception escapes: the tasks
  // capture `begin`/`end`/`&body` from THIS stack frame, so rethrowing on
  // the first failed get() while later chunks are still queued would let
  // workers run tasks whose captured references point into a dead frame.
  // The first chunk's exception (lowest begin index — deterministic) is
  // rethrown once everything has settled.
  std::exception_ptr first_failure;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_failure == nullptr) {
        first_failure = std::current_exception();
      }
    }
  }
  if (first_failure != nullptr) {
    std::rethrow_exception(first_failure);
  }
}

}  // namespace corp::util
