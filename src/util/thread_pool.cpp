#include "util/thread_pool.hpp"

#include <algorithm>

namespace corp::util {

std::size_t ThreadPool::resolve(std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    futures.push_back(submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first task exception
}

}  // namespace corp::util
