#include "cluster/sharding.hpp"

#include <algorithm>
#include <stdexcept>

namespace corp::cluster {

ShardPlan::ShardPlan(std::size_t num_vms, std::size_t requested_shards)
    : num_vms_(num_vms) {
  // Zero VMs keeps the trivial single empty shard; every division below
  // is guarded by num_shards_ >= 1.
  num_shards_ = std::clamp<std::size_t>(requested_shards, 1,
                                        std::max<std::size_t>(1, num_vms));
  base_ = num_vms_ / num_shards_;
  remainder_ = num_vms_ % num_shards_;
}

ShardRange ShardPlan::range(std::size_t s) const {
  if (s >= num_shards_) {
    throw std::out_of_range("ShardPlan::range: shard index out of range");
  }
  // Shards [0, remainder_) hold base_+1 VMs; the rest hold base_.
  const std::size_t extra = std::min(s, remainder_);
  const std::size_t begin = s * base_ + extra;
  const std::size_t size = base_ + (s < remainder_ ? 1 : 0);
  return ShardRange{static_cast<std::uint32_t>(begin),
                    static_cast<std::uint32_t>(begin + size)};
}

std::size_t ShardPlan::shard_of(std::uint32_t vm_id) const {
  if (vm_id >= num_vms_) {
    throw std::out_of_range("ShardPlan::shard_of: VM index out of range");
  }
  // The first remainder_ shards cover [0, remainder_ * (base_ + 1)).
  const std::size_t wide = remainder_ * (base_ + 1);
  if (vm_id < wide) return vm_id / (base_ + 1);
  // base_ > 0 here: base_ == 0 implies num_shards_ == num_vms_ (clamped),
  // so every VM lands in the wide region above.
  return remainder_ + (vm_id - wide) / base_;
}

}  // namespace corp::cluster
