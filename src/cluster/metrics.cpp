#include "cluster/metrics.hpp"

namespace corp::cluster {

double utilization(std::span<const AllocationSample> samples,
                   ResourceKind kind) {
  const auto k = static_cast<std::size_t>(kind);
  double demand = 0.0, allocated = 0.0;
  for (const auto& s : samples) {
    demand += s.demand[k];
    allocated += s.allocated[k];
  }
  return allocated > 0.0 ? demand / allocated : 0.0;
}

double overall_utilization(std::span<const AllocationSample> samples,
                           const ResourceWeights& weights) {
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < kNumResources; ++k) {
    double demand = 0.0, allocated = 0.0;
    for (const auto& s : samples) {
      demand += s.demand[k];
      allocated += s.allocated[k];
    }
    num += weights.w[k] * demand;
    den += weights.w[k] * allocated;
  }
  return den > 0.0 ? num / den : 0.0;
}

double wastage(std::span<const AllocationSample> samples, ResourceKind kind) {
  const auto k = static_cast<std::size_t>(kind);
  double waste = 0.0, allocated = 0.0;
  for (const auto& s : samples) {
    waste += s.allocated[k] - s.demand[k];
    allocated += s.allocated[k];
  }
  return allocated > 0.0 ? waste / allocated : 0.0;
}

double overall_wastage(std::span<const AllocationSample> samples,
                       const ResourceWeights& weights) {
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < kNumResources; ++k) {
    double waste = 0.0, allocated = 0.0;
    for (const auto& s : samples) {
      waste += s.allocated[k] - s.demand[k];
      allocated += s.allocated[k];
    }
    num += weights.w[k] * waste;
    den += weights.w[k] * allocated;
  }
  return den > 0.0 ? num / den : 0.0;
}

SlotMetricsAccumulator::SlotMetricsAccumulator(ResourceWeights weights)
    : weights_(weights) {}

void SlotMetricsAccumulator::observe_slot(
    std::span<const AllocationSample> samples) {
  // Skip slots with no allocation at all.
  double total_alloc = 0.0;
  for (const auto& s : samples) total_alloc += s.allocated.total();
  if (total_alloc <= 0.0) return;
  ++slots_;
  for (const auto& s : samples) {
    total_demand_ += s.demand;
    total_allocated_ += s.allocated;
  }
}

double SlotMetricsAccumulator::mean_utilization(ResourceKind kind) const {
  const auto k = static_cast<std::size_t>(kind);
  return total_allocated_[k] > 0.0 ? total_demand_[k] / total_allocated_[k]
                                   : 0.0;
}

double SlotMetricsAccumulator::mean_overall_utilization() const {
  const double num = total_demand_.weighted_total(weights_.w);
  const double den = total_allocated_.weighted_total(weights_.w);
  return den > 0.0 ? num / den : 0.0;
}

double SlotMetricsAccumulator::mean_wastage(ResourceKind kind) const {
  const auto k = static_cast<std::size_t>(kind);
  return total_allocated_[k] > 0.0
             ? (total_allocated_[k] - total_demand_[k]) / total_allocated_[k]
             : 0.0;
}

double SlotMetricsAccumulator::mean_overall_wastage() const {
  const double num = (total_allocated_ - total_demand_).weighted_total(weights_.w);
  const double den = total_allocated_.weighted_total(weights_.w);
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace corp::cluster
