// Resource utilization and wastage metrics — Eq. 1-4 of the paper.
//
// All four take per-job (allocated r_{ij,t}, demand d_{ij,t}) pairs for one
// time slot. The slot-level values feed the SlotMetricsAccumulator, which
// averages across the run for the figures.
#pragma once

#include <array>
#include <span>

#include "trace/resources.hpp"
#include "util/stats.hpp"

namespace corp::cluster {

using trace::kNumResources;
using trace::ResourceKind;
using trace::ResourceVector;
using trace::ResourceWeights;

/// One job's allocation/demand snapshot in a slot.
struct AllocationSample {
  ResourceVector allocated;  // r_{ij,t}
  ResourceVector demand;     // d_{ij,t}
};

/// Eq. 1: U_{j,t} = sum_i d_{ij,t} / sum_i r_{ij,t} for one resource type.
/// Returns 0 when nothing is allocated.
double utilization(std::span<const AllocationSample> samples,
                   ResourceKind kind);

/// Eq. 2: weighted overall utilization across resource types.
double overall_utilization(std::span<const AllocationSample> samples,
                           const ResourceWeights& weights);

/// Eq. 3: w_{j,t} = sum_i (r - d) / sum_i r for one resource type.
double wastage(std::span<const AllocationSample> samples, ResourceKind kind);

/// Eq. 4: weighted overall wastage ratio.
double overall_wastage(std::span<const AllocationSample> samples,
                       const ResourceWeights& weights);

/// Accumulates slot-level metrics over a simulation run. The reported
/// utilization is the *ratio of sums* across all slots
/// (sum_t sum_i d_{ij,t} / sum_t sum_i r_{ij,t}) rather than the mean of
/// per-slot ratios: every slot-second of demand and allocation carries
/// equal weight, so near-idle tail slots with two stragglers cannot
/// dominate a run's figure. Slots with zero allocation are skipped.
class SlotMetricsAccumulator {
 public:
  explicit SlotMetricsAccumulator(ResourceWeights weights = {});

  void observe_slot(std::span<const AllocationSample> samples);

  std::size_t slots_observed() const { return slots_; }
  double mean_utilization(ResourceKind kind) const;
  double mean_overall_utilization() const;
  double mean_wastage(ResourceKind kind) const;
  double mean_overall_wastage() const;

 private:
  ResourceWeights weights_;
  ResourceVector total_demand_;
  ResourceVector total_allocated_;
  std::size_t slots_ = 0;
};

}  // namespace corp::cluster
