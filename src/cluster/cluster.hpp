// The cluster: PMs and the VMs carved from them, built from an
// EnvironmentConfig. PMs are thin records (the allocation problem the
// paper studies is VM-level); VM state carries the reservation ledger.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/environment.hpp"
#include "cluster/sharding.hpp"
#include "cluster/vm.hpp"

namespace corp::cluster {

struct PhysicalMachine {
  std::uint32_t id = 0;
  ResourceVector capacity;
  std::vector<std::uint32_t> vm_ids;
  /// Owning partition (node class) index; 0 for homogeneous clusters.
  std::uint32_t partition = 0;
};

class Cluster {
 public:
  explicit Cluster(const EnvironmentConfig& env);

  const EnvironmentConfig& environment() const { return env_; }

  std::size_t num_pms() const { return pms_.size(); }
  std::size_t num_vms() const { return vms_.size(); }

  const PhysicalMachine& pm(std::size_t i) const { return pms_.at(i); }
  VirtualMachine& vm(std::size_t i) { return vms_.at(i); }
  const VirtualMachine& vm(std::size_t i) const { return vms_.at(i); }

  std::vector<VirtualMachine>& vms() { return vms_; }
  const std::vector<VirtualMachine>& vms() const { return vms_; }

  /// The contiguous VM block of one shard (structure-of-arrays view for
  /// the sharded slot engine: each worker touches only its own block).
  std::span<VirtualMachine> vm_block(const ShardRange& range);
  std::span<const VirtualMachine> vm_block(const ShardRange& range) const;

  /// Partition plan carving this cluster's VM table into `shards`
  /// contiguous blocks (clamped; degenerate-safe for empty clusters).
  ShardPlan shard_plan(std::size_t shards) const;

  /// Component-wise maximum VM capacity C' = <C'_1, ..., C'_l> (Eq. 22's
  /// normalizer for the unused resource volume).
  ResourceVector max_vm_capacity() const;

  /// Number of node classes (1 for a homogeneous environment).
  std::size_t num_partitions() const;

  /// Partition index owning a VM (0 everywhere when homogeneous). VM ids
  /// are assigned partition by partition, so each partition is a
  /// contiguous VM range.
  std::uint32_t vm_partition(std::size_t vm_id) const;

  /// Reserved-job admission cap of a partition (0 = unlimited).
  std::size_t partition_reserved_cap(std::size_t partition) const;

  /// Total committed resource across all VMs (Eq. 1-4 denominators).
  ResourceVector total_committed() const;

  /// Total capacity across all VMs.
  ResourceVector total_capacity() const;

  /// Releases every reservation (start of a fresh simulation run).
  void reset();

 private:
  EnvironmentConfig env_;
  std::vector<PhysicalMachine> pms_;
  std::vector<VirtualMachine> vms_;
  /// Per-VM partition index; empty for homogeneous environments (all 0).
  std::vector<std::uint32_t> vm_partition_;
};

}  // namespace corp::cluster
