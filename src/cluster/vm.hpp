// Virtual machine state: capacity plus the reservation ledger.
//
// `committed` is the fresh-allocated (reserved) resource on the VM — the
// r_{ij,t} denominators of Eq. 1-4 sum over it. Opportunistic placements
// (CORP/RCCR reusing temporarily-unused resource) deliberately do NOT move
// `committed`: they ride on allocations that already exist, which is the
// mechanism by which opportunistic provisioning raises utilization.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "trace/resources.hpp"

namespace corp::cluster {

using trace::ResourceVector;

class VirtualMachine {
 public:
  VirtualMachine(std::uint32_t id, std::uint32_t pm_id,
                 const ResourceVector& capacity);

  std::uint32_t id() const { return id_; }
  std::uint32_t pm_id() const { return pm_id_; }
  const ResourceVector& capacity() const { return capacity_; }
  const ResourceVector& committed() const { return committed_; }

  /// Availability: a crashed VM hosts nothing and accepts nothing until
  /// it recovers (fault-injection model; VMs start up).
  bool up() const { return up_; }

  /// Takes the VM down, wiping the reservation ledger (every tenant dies
  /// with the VM). Returns the committed amount that was lost.
  ResourceVector crash();

  /// Brings the VM back up with an empty ledger.
  void recover();

  /// capacity - committed while up; zero while down.
  ResourceVector unallocated() const;

  /// True when the VM is up and `amount` fits in the unallocated
  /// remainder.
  bool can_commit(const ResourceVector& amount) const;

  /// Reserves `amount`; throws std::runtime_error when it does not fit
  /// (callers must check can_commit — violating capacity is a logic bug,
  /// not an expected runtime condition).
  void commit(const ResourceVector& amount);

  /// Returns `amount` to the pool; clamps at zero to absorb floating-point
  /// dust from repeated commit/release cycles.
  void release(const ResourceVector& amount);

  /// Fraction of capacity committed, weighted; used for reporting.
  double committed_fraction(const trace::ResourceWeights& weights) const;

 private:
  std::uint32_t id_;
  std::uint32_t pm_id_;
  ResourceVector capacity_;
  ResourceVector committed_;
  bool up_ = true;
};

}  // namespace corp::cluster
