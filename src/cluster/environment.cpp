#include "cluster/environment.hpp"

namespace corp::cluster {

trace::ResourceVector NodeClass::vm_capacity() const {
  const double inv =
      vms_per_pm > 0 ? 1.0 / static_cast<double>(vms_per_pm) : 0.0;
  return pm_capacity * inv;
}

std::size_t EnvironmentConfig::total_vms() const {
  if (!heterogeneous()) return num_pms * vms_per_pm;
  std::size_t total = 0;
  for (const NodeClass& partition : partitions) {
    total += partition.total_vms();
  }
  return total;
}

trace::ResourceVector EnvironmentConfig::vm_capacity() const {
  if (!heterogeneous()) {
    const double inv = 1.0 / static_cast<double>(vms_per_pm);
    return pm_capacity * inv;
  }
  trace::ResourceVector smallest;
  bool first = true;
  for (const NodeClass& partition : partitions) {
    if (partition.total_vms() == 0) continue;
    const trace::ResourceVector cap = partition.vm_capacity();
    smallest = first ? cap : trace::ResourceVector::min(smallest, cap);
    first = false;
  }
  return smallest;
}

EnvironmentConfig EnvironmentConfig::PalmettoCluster() {
  EnvironmentConfig env;
  env.name = "palmetto-cluster";
  env.num_pms = 50;
  env.vms_per_pm = 2;
  env.pm_capacity = trace::ResourceVector(16.0, 64.0, 720.0);
  env.comm_overhead_us = 50.0;
  return env;
}

EnvironmentConfig EnvironmentConfig::AmazonEc2() {
  EnvironmentConfig env;
  env.name = "amazon-ec2";
  env.num_pms = 30;
  env.vms_per_pm = 1;  // "each node is simulated as a VM"
  env.pm_capacity = trace::ResourceVector(2.0, 4.0, 720.0);
  env.comm_overhead_us = 400.0;
  return env;
}

EnvironmentConfig EnvironmentConfig::SlurmHeterogeneous() {
  EnvironmentConfig env;
  env.name = "slurm-heterogeneous";
  env.comm_overhead_us = 50.0;
  // Partition layout modeled on a typical SLURM site config: a
  // general-compute partition, a fat-memory partition with fewer, larger
  // nodes, and a small burst partition whose admission is capped so the
  // scheduler must spill work onto the other classes.
  NodeClass compute;
  compute.name = "compute";
  compute.num_pms = 32;
  compute.vms_per_pm = 2;
  compute.pm_capacity = trace::ResourceVector(16.0, 64.0, 720.0);
  NodeClass bigmem;
  bigmem.name = "bigmem";
  bigmem.num_pms = 8;
  bigmem.vms_per_pm = 1;
  bigmem.pm_capacity = trace::ResourceVector(32.0, 256.0, 1440.0);
  NodeClass burst;
  burst.name = "burst";
  burst.num_pms = 10;
  burst.vms_per_pm = 4;
  burst.pm_capacity = trace::ResourceVector(8.0, 16.0, 360.0);
  burst.max_reserved_jobs = 48;
  env.partitions = {compute, bigmem, burst};
  return env;
}

}  // namespace corp::cluster
