#include "cluster/environment.hpp"

namespace corp::cluster {

trace::ResourceVector EnvironmentConfig::vm_capacity() const {
  const double inv = 1.0 / static_cast<double>(vms_per_pm);
  return pm_capacity * inv;
}

EnvironmentConfig EnvironmentConfig::PalmettoCluster() {
  EnvironmentConfig env;
  env.name = "palmetto-cluster";
  env.num_pms = 50;
  env.vms_per_pm = 2;
  env.pm_capacity = trace::ResourceVector(16.0, 64.0, 720.0);
  env.comm_overhead_us = 50.0;
  return env;
}

EnvironmentConfig EnvironmentConfig::AmazonEc2() {
  EnvironmentConfig env;
  env.name = "amazon-ec2";
  env.num_pms = 30;
  env.vms_per_pm = 1;  // "each node is simulated as a VM"
  env.pm_capacity = trace::ResourceVector(2.0, 4.0, 720.0);
  env.comm_overhead_us = 400.0;
  return env;
}

}  // namespace corp::cluster
