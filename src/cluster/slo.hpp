// Service Level Objective accounting.
//
// Sec. IV: "SLO is specified by using a threshold on the response time of a
// job, and the threshold is set based on the execution time of a task in
// the trace ... the SLO violation occurs when a job's response time exceeds
// the threshold." A job starved of resources progresses slower than 1 slot
// of work per slot, stretching its response time.
#pragma once

#include <cstdint>
#include <vector>

namespace corp::cluster {

struct JobOutcome {
  std::uint64_t job_id = 0;
  /// Nominal execution slots when fully provisioned.
  std::size_t nominal_slots = 0;
  /// Actual slots from start of execution to completion.
  std::size_t response_slots = 0;
  /// Threshold in slots (nominal * slo_stretch).
  double threshold_slots = 0.0;
  bool violated = false;
  /// True when the job never completed (retry budget exhausted after VM
  /// crashes); always counts as an SLO violation.
  bool failed = false;
};

class SloTracker {
 public:
  /// Records a completed job. `violated` is derived from response vs
  /// threshold; completions with threshold <= 0 are counted non-violated.
  void record(std::uint64_t job_id, std::size_t nominal_slots,
              std::size_t response_slots, double threshold_slots);

  /// Records a job that never completed (dropped after exhausting its
  /// crash-retry budget). Unconditionally an SLO violation — the user saw
  /// a failure, which is at least as bad as a late answer.
  void record_failure(std::uint64_t job_id, std::size_t nominal_slots,
                      std::size_t response_slots, double threshold_slots);

  std::size_t completed() const { return outcomes_.size() - failures_; }
  std::size_t failures() const { return failures_; }
  std::size_t violations() const { return violations_; }

  /// Violation rate in [0, 1] over completed + failed jobs; 0 when
  /// nothing was recorded.
  double violation_rate() const;

  /// Mean response stretch (response / nominal) over completed jobs
  /// (failed jobs excluded — they have no response time).
  double mean_stretch() const;

  const std::vector<JobOutcome>& outcomes() const { return outcomes_; }

  void reset();

 private:
  std::vector<JobOutcome> outcomes_;
  std::size_t violations_ = 0;
  std::size_t failures_ = 0;
};

}  // namespace corp::cluster
