// Evaluation environments (Sec. IV).
//
// The paper runs on (a) Clemson's Palmetto cluster — 50 HP SL230 servers
// (dual E5-2665: 16 cores, 64 GB RAM), each simulating a PM with logic
// disks as VMs — and (b) Amazon EC2 — 30 HP ProLiant ML110 G5-class nodes
// (1 core @ 2660 MIPS, 4 GB RAM), each node simulated as one VM. Both give
// every server 1 GB/s bandwidth and 720 GB disk. We model each testbed as a
// parameterized environment; the EC2 environment additionally carries the
// higher communication overhead the paper observes in Fig. 14 vs Fig. 10.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/resources.hpp"

namespace corp::cluster {

/// One SLURM-partition-style node class of a heterogeneous cluster: a
/// block of identical PMs with their own capacities, VM carve and
/// admission limit. VM ids are assigned partition by partition, in
/// declaration order, so each partition is a contiguous VM range.
struct NodeClass {
  std::string name;
  std::size_t num_pms = 0;
  std::size_t vms_per_pm = 1;
  /// Per-PM capacity of this class: CPU cores, MEM GB, storage GB.
  trace::ResourceVector pm_capacity;
  /// Cap on concurrently *reserved* jobs hosted across this partition's
  /// VMs (SLURM MaxJobs-style partition limit). 0 = unlimited.
  /// Opportunistic leases and in-place promotions are not admissions and
  /// bypass the cap.
  std::size_t max_reserved_jobs = 0;

  std::size_t total_vms() const { return num_pms * vms_per_pm; }

  /// Capacity of each VM (even carve of the PM).
  trace::ResourceVector vm_capacity() const;
};

struct EnvironmentConfig {
  std::string name;
  /// Number of physical servers (N_p, Table II: 30-50).
  std::size_t num_pms = 50;
  /// VMs carved per PM (N_v in Table II is 100-400 total).
  std::size_t vms_per_pm = 2;
  /// Per-PM capacity: CPU cores, MEM GB, storage GB.
  trace::ResourceVector pm_capacity{16.0, 64.0, 720.0};
  /// Modeled communication overhead added per allocation decision, in
  /// microseconds. EC2's control-plane round trips dominate this.
  double comm_overhead_us = 50.0;
  /// Heterogeneous node classes. Empty (the default) keeps the legacy
  /// homogeneous layout above — bit-identical to every pre-partition
  /// build; non-empty overrides num_pms/vms_per_pm/pm_capacity entirely.
  std::vector<NodeClass> partitions;

  bool heterogeneous() const { return !partitions.empty(); }

  std::size_t total_vms() const;

  /// Capacity of each VM (even carve of the PM). For a heterogeneous
  /// environment this is the component-wise *minimum* VM capacity across
  /// partitions — the conservative sizing bound workload generators use
  /// so synthetic requests fit every node class.
  trace::ResourceVector vm_capacity() const;

  /// Palmetto real-cluster testbed: 50 HP SL230 servers (16 cores, 64 GB,
  /// 720 GB), 2 VMs per PM -> 100 VMs, low comm overhead.
  static EnvironmentConfig PalmettoCluster();

  /// Amazon EC2 testbed: 30 ProLiant ML110 G5-class nodes (2 cores, 4 GB,
  /// 720 GB), each node one VM, higher comm overhead.
  static EnvironmentConfig AmazonEc2();

  /// Mixed-capacity cluster in the style of a SLURM partition config:
  /// a big-memory partition, a general compute partition, and a small
  /// capped burst partition. Packing and most-matched VM selection face
  /// non-uniform capacity; the burst partition exercises the
  /// max_reserved_jobs admission limit.
  static EnvironmentConfig SlurmHeterogeneous();
};

}  // namespace corp::cluster
