// Shard partitioning of the VM table: contiguous, near-equal blocks of VM
// indices, one block per shard. The sharded slot engine (sim/shard_engine)
// runs each block's telemetry update, gate evaluation and candidate
// collection on its own worker and merges cross-shard effects at slot
// barriers, so the partition must be
//   * deterministic — a pure function of (num_vms, requested shards);
//   * contiguous   — each shard owns [begin, end), keeping its VM state
//                    and running-job block cache-local (structure-of-
//                    arrays friendly);
//   * degenerate-safe — zero VMs, one VM, or more shards than VMs must
//                    never divide by zero or produce out-of-range blocks
//                    (requested counts are clamped, empty shards are
//                    never created).
//
// The architectural exemplar is SLURM's slurmctld: centralized decisions
// over a partitioned node table.
#pragma once

#include <cstddef>
#include <cstdint>

namespace corp::cluster {

/// Contiguous block of VM indices [begin, end) owned by one shard.
struct ShardRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// Deterministic partition of `num_vms` VMs into contiguous near-equal
/// blocks. The first `num_vms % shards` blocks are one VM larger, so
/// block sizes differ by at most one and shard_of() is O(1) arithmetic.
class ShardPlan {
 public:
  /// The trivial plan: one (possibly empty) shard.
  ShardPlan() = default;

  /// Clamps `requested_shards` into [1, max(1, num_vms)]: a request of 0
  /// means one shard, and asking for more shards than VMs collapses to
  /// one VM per shard instead of manufacturing empty shards.
  ShardPlan(std::size_t num_vms, std::size_t requested_shards);

  std::size_t num_shards() const { return num_shards_; }
  std::size_t num_vms() const { return num_vms_; }

  /// The VM block of shard `s` (s < num_shards()).
  ShardRange range(std::size_t s) const;

  /// The shard owning VM `vm_id` (vm_id < num_vms()). O(1).
  std::size_t shard_of(std::uint32_t vm_id) const;

 private:
  std::size_t num_vms_ = 0;
  std::size_t num_shards_ = 1;
  std::size_t base_ = 0;       // VMs per shard before remainder spread
  std::size_t remainder_ = 0;  // first `remainder_` shards get one extra
};

}  // namespace corp::cluster
