#include "cluster/vm.hpp"

namespace corp::cluster {

VirtualMachine::VirtualMachine(std::uint32_t id, std::uint32_t pm_id,
                               const ResourceVector& capacity)
    : id_(id), pm_id_(pm_id), capacity_(capacity) {
  if (capacity.any_negative()) {
    throw std::invalid_argument("VirtualMachine: negative capacity");
  }
}

ResourceVector VirtualMachine::crash() {
  const ResourceVector lost = committed_;
  committed_ = ResourceVector::zero();
  up_ = false;
  return lost;
}

void VirtualMachine::recover() {
  committed_ = ResourceVector::zero();
  up_ = true;
}

ResourceVector VirtualMachine::unallocated() const {
  if (!up_) return ResourceVector::zero();
  return (capacity_ - committed_).clamped_non_negative();
}

bool VirtualMachine::can_commit(const ResourceVector& amount) const {
  return up_ && (committed_ + amount).fits_within(capacity_, 1e-6);
}

void VirtualMachine::commit(const ResourceVector& amount) {
  if (!can_commit(amount)) {
    throw std::runtime_error(up_
                                 ? "VirtualMachine::commit: over capacity"
                                 : "VirtualMachine::commit: VM is down");
  }
  committed_ += amount;
}

void VirtualMachine::release(const ResourceVector& amount) {
  committed_ = (committed_ - amount).clamped_non_negative();
}

double VirtualMachine::committed_fraction(
    const trace::ResourceWeights& weights) const {
  double num = 0.0, den = 0.0;
  for (std::size_t r = 0; r < trace::kNumResources; ++r) {
    num += weights.w[r] * committed_[r];
    den += weights.w[r] * capacity_[r];
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace corp::cluster
