#include "cluster/slo.hpp"

namespace corp::cluster {

void SloTracker::record(std::uint64_t job_id, std::size_t nominal_slots,
                        std::size_t response_slots, double threshold_slots) {
  JobOutcome outcome;
  outcome.job_id = job_id;
  outcome.nominal_slots = nominal_slots;
  outcome.response_slots = response_slots;
  outcome.threshold_slots = threshold_slots;
  outcome.violated = threshold_slots > 0.0 &&
                     static_cast<double>(response_slots) > threshold_slots;
  if (outcome.violated) ++violations_;
  outcomes_.push_back(outcome);
}

void SloTracker::record_failure(std::uint64_t job_id,
                                std::size_t nominal_slots,
                                std::size_t response_slots,
                                double threshold_slots) {
  JobOutcome outcome;
  outcome.job_id = job_id;
  outcome.nominal_slots = nominal_slots;
  outcome.response_slots = response_slots;
  outcome.threshold_slots = threshold_slots;
  outcome.violated = true;
  outcome.failed = true;
  ++violations_;
  ++failures_;
  outcomes_.push_back(outcome);
}

double SloTracker::violation_rate() const {
  if (outcomes_.empty()) return 0.0;
  return static_cast<double>(violations_) /
         static_cast<double>(outcomes_.size());
}

double SloTracker::mean_stretch() const {
  if (outcomes_.empty()) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (const auto& o : outcomes_) {
    if (o.failed || o.nominal_slots == 0) continue;
    total += static_cast<double>(o.response_slots) /
             static_cast<double>(o.nominal_slots);
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

void SloTracker::reset() {
  outcomes_.clear();
  violations_ = 0;
  failures_ = 0;
}

}  // namespace corp::cluster
