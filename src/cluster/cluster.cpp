#include "cluster/cluster.hpp"

#include <span>
#include <stdexcept>

namespace corp::cluster {

Cluster::Cluster(const EnvironmentConfig& env) : env_(env) {
  pms_.reserve(env.num_pms);
  vms_.reserve(env.total_vms());
  const ResourceVector vm_cap = env.vm_capacity();
  std::uint32_t vm_id = 0;
  for (std::size_t p = 0; p < env.num_pms; ++p) {
    PhysicalMachine pm;
    pm.id = static_cast<std::uint32_t>(p);
    pm.capacity = env.pm_capacity;
    for (std::size_t v = 0; v < env.vms_per_pm; ++v) {
      pm.vm_ids.push_back(vm_id);
      vms_.emplace_back(vm_id, pm.id, vm_cap);
      ++vm_id;
    }
    pms_.push_back(std::move(pm));
  }
}

std::span<VirtualMachine> Cluster::vm_block(const ShardRange& range) {
  if (range.end > vms_.size() || range.begin > range.end) {
    throw std::out_of_range("Cluster::vm_block: range outside VM table");
  }
  return std::span<VirtualMachine>(vms_).subspan(range.begin, range.size());
}

std::span<const VirtualMachine> Cluster::vm_block(
    const ShardRange& range) const {
  if (range.end > vms_.size() || range.begin > range.end) {
    throw std::out_of_range("Cluster::vm_block: range outside VM table");
  }
  return std::span<const VirtualMachine>(vms_).subspan(range.begin,
                                                       range.size());
}

ShardPlan Cluster::shard_plan(std::size_t shards) const {
  return ShardPlan(vms_.size(), shards);
}

ResourceVector Cluster::max_vm_capacity() const {
  ResourceVector c;
  for (const auto& vm : vms_) {
    c = ResourceVector::max(c, vm.capacity());
  }
  return c;
}

ResourceVector Cluster::total_committed() const {
  ResourceVector total;
  for (const auto& vm : vms_) total += vm.committed();
  return total;
}

ResourceVector Cluster::total_capacity() const {
  ResourceVector total;
  for (const auto& vm : vms_) total += vm.capacity();
  return total;
}

void Cluster::reset() {
  for (auto& vm : vms_) {
    vm.release(vm.committed());
  }
}

}  // namespace corp::cluster
