#include "cluster/cluster.hpp"

#include <span>
#include <stdexcept>

namespace corp::cluster {

Cluster::Cluster(const EnvironmentConfig& env) : env_(env) {
  vms_.reserve(env.total_vms());
  std::uint32_t vm_id = 0;
  std::uint32_t pm_id = 0;
  if (!env.heterogeneous()) {
    pms_.reserve(env.num_pms);
    const ResourceVector vm_cap = env.vm_capacity();
    for (std::size_t p = 0; p < env.num_pms; ++p) {
      PhysicalMachine pm;
      pm.id = pm_id++;
      pm.capacity = env.pm_capacity;
      for (std::size_t v = 0; v < env.vms_per_pm; ++v) {
        pm.vm_ids.push_back(vm_id);
        vms_.emplace_back(vm_id, pm.id, vm_cap);
        ++vm_id;
      }
      pms_.push_back(std::move(pm));
    }
    return;
  }
  // Heterogeneous: partitions build in declaration order, so each node
  // class owns a contiguous VM-id range (shard blocks and partition
  // ranges then compose cleanly).
  vm_partition_.reserve(env.total_vms());
  for (std::size_t c = 0; c < env.partitions.size(); ++c) {
    const NodeClass& partition = env.partitions[c];
    const ResourceVector vm_cap = partition.vm_capacity();
    for (std::size_t p = 0; p < partition.num_pms; ++p) {
      PhysicalMachine pm;
      pm.id = pm_id++;
      pm.capacity = partition.pm_capacity;
      pm.partition = static_cast<std::uint32_t>(c);
      for (std::size_t v = 0; v < partition.vms_per_pm; ++v) {
        pm.vm_ids.push_back(vm_id);
        vms_.emplace_back(vm_id, pm.id, vm_cap);
        vm_partition_.push_back(static_cast<std::uint32_t>(c));
        ++vm_id;
      }
      pms_.push_back(std::move(pm));
    }
  }
}

std::span<VirtualMachine> Cluster::vm_block(const ShardRange& range) {
  if (range.end > vms_.size() || range.begin > range.end) {
    throw std::out_of_range("Cluster::vm_block: range outside VM table");
  }
  return std::span<VirtualMachine>(vms_).subspan(range.begin, range.size());
}

std::span<const VirtualMachine> Cluster::vm_block(
    const ShardRange& range) const {
  if (range.end > vms_.size() || range.begin > range.end) {
    throw std::out_of_range("Cluster::vm_block: range outside VM table");
  }
  return std::span<const VirtualMachine>(vms_).subspan(range.begin,
                                                       range.size());
}

ShardPlan Cluster::shard_plan(std::size_t shards) const {
  return ShardPlan(vms_.size(), shards);
}

ResourceVector Cluster::max_vm_capacity() const {
  ResourceVector c;
  for (const auto& vm : vms_) {
    c = ResourceVector::max(c, vm.capacity());
  }
  return c;
}

std::size_t Cluster::num_partitions() const {
  return env_.heterogeneous() ? env_.partitions.size() : 1;
}

std::uint32_t Cluster::vm_partition(std::size_t vm_id) const {
  if (vm_partition_.empty()) return 0;
  return vm_partition_.at(vm_id);
}

std::size_t Cluster::partition_reserved_cap(std::size_t partition) const {
  if (!env_.heterogeneous()) return 0;
  return env_.partitions.at(partition).max_reserved_jobs;
}

ResourceVector Cluster::total_committed() const {
  ResourceVector total;
  for (const auto& vm : vms_) total += vm.committed();
  return total;
}

ResourceVector Cluster::total_capacity() const {
  ResourceVector total;
  for (const auto& vm : vms_) total += vm.capacity();
  return total;
}

void Cluster::reset() {
  for (auto& vm : vms_) {
    vm.release(vm.committed());
  }
}

}  // namespace corp::cluster
