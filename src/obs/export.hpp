// Serialization of MetricsSnapshot: a single stable JSON schema shared by
// `corpsim --metrics-out`, every bench driver's `--json` record, and the
// CI bench-smoke gate (tools/validate_metrics.py enforces it).
//
// Schema (version 1), one object per line when appended as JSON lines:
//   {"schema_version":1,"run_id":"...",
//    "phases":{"<name>":{"calls":N,"total_ms":T,"mean_ms":M,"max_ms":X}},
//    "counters":{"<name>":N},
//    "gauges":{"<name>":V},
//    "histograms":{"<name>":{"count":N,"sum":S,"min":m,"max":M,
//                            "p50":..,"p90":..,"p99":..,
//                            "le":[b0,...],"cum":[c0,...]}}}
// `cum` holds cumulative bucket counts (monotone non-decreasing, last
// entry == count); `le` the matching upper bounds with an implicit +inf
// overflow bucket at the end.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace corp::obs {

inline constexpr int kSchemaVersion = 1;

/// The inner metrics object ({"phases":...,...}) without the envelope —
/// what the bench drivers nest under "metrics" in their timing records.
std::string metrics_json(const MetricsSnapshot& snapshot);

/// Full single-line record: envelope (schema_version, run_id) + metrics.
std::string snapshot_json(const MetricsSnapshot& snapshot,
                          const std::string& run_id);

/// Appends snapshot_json() as one JSON line; throws std::runtime_error
/// when the file cannot be opened.
void append_jsonl(const std::string& path, const MetricsSnapshot& snapshot,
                  const std::string& run_id);

/// Flat CSV: run_id,kind,name,field,value — one row per scalar field, so
/// spreadsheets and pandas ingest it without a JSON step.
void write_csv(std::ostream& out, const MetricsSnapshot& snapshot,
               const std::string& run_id);

/// write_csv() to a file; throws std::runtime_error on open failure.
void write_csv_file(const std::string& path, const MetricsSnapshot& snapshot,
                    const std::string& run_id);

/// JSON string escaping for metric names / run ids.
std::string json_escape(const std::string& text);

}  // namespace corp::obs
