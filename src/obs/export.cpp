#include "obs/export.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace corp::obs {

namespace {

/// Shortest round-trip double formatting; JSON has no NaN/inf literals,
/// so non-finite values serialize as null.
std::string number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

template <typename Map, typename Writer>
void write_object(std::ostream& out, const Map& map, Writer&& writer) {
  out << '{';
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":";
    writer(out, value);
  }
  out << '}';
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"phases\":";
  write_object(out, snapshot.phases,
               [](std::ostream& os, const PhaseSnapshot& p) {
                 os << "{\"calls\":" << p.calls
                    << ",\"total_ms\":" << number(p.total_ms)
                    << ",\"mean_ms\":" << number(p.mean_ms)
                    << ",\"max_ms\":" << number(p.max_ms) << '}';
               });
  out << ",\"counters\":";
  write_object(out, snapshot.counters,
               [](std::ostream& os, std::uint64_t v) { os << v; });
  out << ",\"gauges\":";
  write_object(out, snapshot.gauges,
               [](std::ostream& os, double v) { os << number(v); });
  out << ",\"histograms\":";
  write_object(
      out, snapshot.histograms,
      [](std::ostream& os, const HistogramSnapshot& h) {
        os << "{\"count\":" << h.count << ",\"sum\":" << number(h.sum)
           << ",\"min\":" << number(h.min) << ",\"max\":" << number(h.max)
           << ",\"p50\":" << number(h.p50) << ",\"p90\":" << number(h.p90)
           << ",\"p99\":" << number(h.p99) << ",\"le\":[";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) os << ',';
          os << number(h.bounds[i]);
        }
        os << "],\"cum\":[";
        for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
          if (i > 0) os << ',';
          os << h.cumulative[i];
        }
        os << "]}";
      });
  out << '}';
  return out.str();
}

std::string snapshot_json(const MetricsSnapshot& snapshot,
                          const std::string& run_id) {
  std::ostringstream out;
  out << "{\"schema_version\":" << kSchemaVersion << ",\"run_id\":\""
      << json_escape(run_id) << "\",";
  const std::string inner = metrics_json(snapshot);
  // Splice the inner object's fields into the envelope.
  out << inner.substr(1);
  return out.str();
}

void append_jsonl(const std::string& path, const MetricsSnapshot& snapshot,
                  const std::string& run_id) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    throw std::runtime_error("obs::append_jsonl: cannot open " + path);
  }
  out << snapshot_json(snapshot, run_id) << '\n';
}

void write_csv(std::ostream& out, const MetricsSnapshot& snapshot,
               const std::string& run_id) {
  out << "run_id,kind,name,field,value\n";
  auto row = [&](const char* kind, const std::string& name,
                 const char* field, const std::string& value) {
    out << run_id << ',' << kind << ',' << name << ',' << field << ','
        << value << '\n';
  };
  for (const auto& [name, value] : snapshot.counters) {
    row("counter", name, "value", std::to_string(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    row("gauge", name, "value", number(value));
  }
  for (const auto& [name, phase] : snapshot.phases) {
    row("phase", name, "calls", std::to_string(phase.calls));
    row("phase", name, "total_ms", number(phase.total_ms));
    row("phase", name, "mean_ms", number(phase.mean_ms));
    row("phase", name, "max_ms", number(phase.max_ms));
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    row("histogram", name, "count", std::to_string(histogram.count));
    row("histogram", name, "sum", number(histogram.sum));
    row("histogram", name, "min", number(histogram.min));
    row("histogram", name, "max", number(histogram.max));
    row("histogram", name, "p50", number(histogram.p50));
    row("histogram", name, "p90", number(histogram.p90));
    row("histogram", name, "p99", number(histogram.p99));
  }
}

void write_csv_file(const std::string& path, const MetricsSnapshot& snapshot,
                    const std::string& run_id) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs::write_csv_file: cannot open " + path);
  }
  write_csv(out, snapshot, run_id);
}

}  // namespace corp::obs
