#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace corp::obs {

namespace {

/// fetch-max for atomic<double> via CAS (no std::atomic<double>::fetch_max).
void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (current > value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void PhaseStat::add(double elapsed_ms) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  total_ms_.fetch_add(elapsed_ms, std::memory_order_relaxed);
  atomic_max(max_ms_, elapsed_ms);
}

void PhaseStat::reset() {
  calls_.store(0, std::memory_order_relaxed);
  total_ms_.store(0.0, std::memory_order_relaxed);
  max_ms_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_time_bounds_ms() {
  // 10 us .. 100 s in a 1-2.5-5 decade ladder: wide enough for a single
  // SGD step at the bottom and a full replication harness at the top.
  return {0.01, 0.025, 0.05, 0.1,  0.25,  0.5,  1.0,   2.5,   5.0,
          10.0, 25.0,  50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
          10000.0, 25000.0, 50000.0, 100000.0};
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(upper_bounds.empty() ? default_time_bounds_ms()
                                   : std::move(upper_bounds)),
      buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(n);
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t next = cumulative + counts[b];
    if (static_cast<double>(next) >= rank && counts[b] > 0) {
      // Linear interpolation within the bucket, clamped to the observed
      // range so the overflow/underflow buckets cannot extrapolate.
      const double lo = b == 0 ? min() : bounds_[b - 1];
      const double hi = b < bounds_.size() ? bounds_[b] : max();
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts[b]);
      const double value = lo + (hi - lo) * within;
      return std::clamp(value, min(), max());
    }
    cumulative = next;
  }
  return max();
}

void Histogram::reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

PhaseStat& MetricRegistry::phase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = phases_[name];
  if (!slot) slot = std::make_unique<PhaseStat>();
  return *slot;
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
  for (auto& [name, phase] : phases_) phase->reset();
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, phase] : phases_) {
    PhaseSnapshot p;
    p.calls = phase->calls();
    p.total_ms = phase->total_ms();
    p.max_ms = phase->max_ms();
    p.mean_ms =
        p.calls > 0 ? p.total_ms / static_cast<double>(p.calls) : 0.0;
    snap.phases[name] = p;
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    h.p50 = histogram->quantile(0.50);
    h.p90 = histogram->quantile(0.90);
    h.p99 = histogram->quantile(0.99);
    h.bounds = histogram->bounds();
    const std::vector<std::uint64_t> counts = histogram->bucket_counts();
    h.cumulative.reserve(counts.size());
    std::uint64_t running = 0;
    for (std::uint64_t c : counts) {
      running += c;
      h.cumulative.push_back(running);
    }
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

MetricRegistry& registry() {
  static MetricRegistry instance;
  return instance;
}

}  // namespace corp::obs
