// Lightweight observability: a process-wide MetricRegistry of counters,
// gauges, fixed-bucket histograms (with interpolated quantile extraction)
// and named phase timers, designed so the instrumented hot paths cost one
// relaxed atomic load when collection is disabled.
//
// Concurrency contract: every mutation path (Counter::add, Gauge::set,
// Histogram::observe, PhaseStat::add) is lock-free after the first
// name lookup, so replicas fanned out over util::ThreadPool can share the
// global registry. Name lookups take a mutex; hot loops should hoist the
// handle (`Counter& c = registry().counter("x")`) outside the loop.
//
// Determinism contract: the registry only *observes* — it never feeds
// back into simulation state or RNG streams — so enabling metrics must
// not perturb any experiment output (tests/obs/determinism_test.cpp pins
// this down).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace corp::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (losses, log-likelihoods, rates).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated wall time of one named phase: call count, total and max
/// milliseconds. Fed by ScopedTimer; cheap enough to leave in hot paths.
class PhaseStat {
 public:
  void add(double elapsed_ms);
  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  double total_ms() const {
    return total_ms_.load(std::memory_order_relaxed);
  }
  double max_ms() const { return max_ms_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<double> total_ms_{0.0};
  std::atomic<double> max_ms_{0.0};
};

/// Fixed-bucket histogram: counts per upper-bound bucket plus running
/// count/sum/min/max, all atomics. Bounds are fixed at construction (the
/// registry ignores bounds on repeat lookups of the same name).
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +inf
  /// overflow bucket is appended. Empty = default_time_bounds_ms().
  explicit Histogram(std::vector<double> upper_bounds = {});

  void observe(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest/largest observed value; 0 when count() == 0.
  double min() const;
  double max() const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Interpolated quantile (q in [0, 1]) from the bucket counts, clamped
  /// to the observed [min, max] range. 0 when empty.
  double quantile(double q) const;

  void reset();

  /// Exponential millisecond grid, 10 us .. 100 s, for phase durations.
  static std::vector<double> default_time_bounds_ms();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of everything a registry holds, safe to serialize
/// while the run continues.
struct PhaseSnapshot {
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;            // upper edges, +inf implicit
  std::vector<std::uint64_t> cumulative;  // monotonic, last == count
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, PhaseSnapshot> phases;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && phases.empty() &&
           histograms.empty();
  }
};

/// Named metric store. Handles returned by the lookup methods stay valid
/// for the registry's lifetime (metrics are never erased, only reset).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` only applies on first creation of `name`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});
  PhaseStat& phase(const std::string& name);

  /// Collection switch: instrumentation helpers and ScopedTimer become
  /// no-ops when disabled. Direct handle mutation is never gated.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Zeroes every metric's value; names and handles survive.
  void reset();

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<PhaseStat>> phases_;
  std::atomic<bool> enabled_{false};
};

/// The process-wide registry the instrumented libraries report into.
MetricRegistry& registry();

/// Convenience switches for the global registry.
inline bool enabled() { return registry().enabled(); }
inline void set_enabled(bool on) { registry().set_enabled(on); }

/// Gated helpers: one relaxed load when disabled, name lookup + atomic
/// bump when enabled. Hot loops should hoist handles instead.
inline void count(const char* name, std::uint64_t delta = 1) {
  MetricRegistry& reg = registry();
  if (reg.enabled()) reg.counter(name).add(delta);
}
inline void set_gauge(const char* name, double value) {
  MetricRegistry& reg = registry();
  if (reg.enabled()) reg.gauge(name).set(value);
}
inline void observe(const char* name, double value) {
  MetricRegistry& reg = registry();
  if (reg.enabled()) reg.histogram(name).observe(value);
}

/// RAII phase timer: records wall milliseconds into the named PhaseStat
/// on destruction. When the registry is disabled at construction the
/// timer is inert (no clock call, no lookup).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* phase_name,
                       MetricRegistry& reg = registry())
      : phase_(reg.enabled() ? &reg.phase(phase_name) : nullptr) {
    if (phase_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (phase_ != nullptr) {
      const std::chrono::duration<double, std::milli> wall =
          std::chrono::steady_clock::now() - start_;
      phase_->add(wall.count());
    }
  }

 private:
  PhaseStat* phase_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace corp::obs
