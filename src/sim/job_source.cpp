#include "sim/job_source.hpp"

#include <algorithm>
#include <utility>

namespace corp::sim {

void JobSource::retire(const trace::Job& job) { (void)job; }

std::int64_t JobSource::next_event_slot(std::int64_t after) {
  return exhausted() ? kNoEventSlot : after + 1;
}

TraceJobSource::TraceJobSource(const trace::Trace& trace)
    : trace_(&trace), horizon_(trace.horizon_slots()) {}

void TraceJobSource::poll(std::int64_t slot,
                          std::vector<const trace::Job*>& out) {
  const auto& jobs = trace_->jobs();
  while (next_ < jobs.size() && jobs[next_].submit_slot <= slot) {
    out.push_back(&jobs[next_]);
    ++next_;
  }
}

bool TraceJobSource::exhausted() const {
  return next_ == trace_->jobs().size();
}

std::int64_t TraceJobSource::next_event_slot(std::int64_t after) {
  (void)after;  // the trace is sorted: the next submit slot is exact
  const auto& jobs = trace_->jobs();
  return next_ < jobs.size() ? jobs[next_].submit_slot : kNoEventSlot;
}

StreamingJobSource::StreamingJobSource(trace::StreamReader& reader)
    : reader_(&reader) {}

void StreamingJobSource::absorb() {
  for (trace::Job& job : reader_->take_ready()) {
    auto owned = std::make_unique<trace::Job>(std::move(job));
    pending_.push(Pending{owned->submit_slot, owned->id, owned.get()});
    live_.emplace(owned->id, std::move(owned));
  }
  peak_live_ = std::max(peak_live_, live_.size());
}

void StreamingJobSource::poll(std::int64_t slot,
                              std::vector<const trace::Job*>& out) {
  absorb();
  // A job submitted at `slot` may close (and so emit) arbitrarily later
  // in the file; keep ingesting until the reader guarantees every job
  // with submit_slot <= slot has been emitted.
  while (!reader_->exhausted() && reader_->safe_submit_slot() <= slot) {
    reader_->advance();
    absorb();
  }
  while (!pending_.empty() && pending_.top().submit_slot <= slot) {
    out.push_back(pending_.top().job);
    pending_.pop();
  }
}

std::int64_t StreamingJobSource::next_event_slot(std::int64_t after) {
  absorb();
  // Catch up to `after` exactly as poll(after) would have; in the engine
  // flow poll already ran this slot, so the loop is a no-op there.
  while (!reader_->exhausted() && reader_->safe_submit_slot() <= after) {
    reader_->advance();
    absorb();
  }
  std::int64_t next = pending_.empty() ? kNoEventSlot
                                       : pending_.top().submit_slot;
  if (!reader_->exhausted()) {
    // No jump past the safe bound: the dense path would advance the
    // reader at that slot, and the clock must replay that schedule.
    next = std::min(next, reader_->safe_submit_slot());
  }
  return next;
}

bool StreamingJobSource::exhausted() const {
  return reader_->exhausted() && pending_.empty();
}

std::int64_t StreamingJobSource::horizon_slots() const {
  return reader_->horizon_slots();
}

void StreamingJobSource::retire(const trace::Job& job) {
  live_.erase(job.id);
}

}  // namespace corp::sim
