#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace corp::sim {

namespace {

double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Linear interpolation of y at target x over (x, y) pairs sorted by x.
/// Clamps outside the observed range.
double interpolate(const std::vector<std::pair<double, double>>& points,
                   double x) {
  if (points.empty()) return 0.0;
  if (x <= points.front().first) return points.front().second;
  if (x >= points.back().first) return points.back().second;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (x <= points[i].first) {
      const auto& [x0, y0] = points[i - 1];
      const auto& [x1, y1] = points[i];
      if (x1 - x0 <= 1e-12) return y1;
      return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
    }
  }
  return points.back().second;
}

}  // namespace

// All per-experiment random streams are SplitMix64-derived: tagged streams
// off the one user-visible seed. The earlier `seed * prime + offset`
// formulas carried the base seed's arithmetic structure into the stream
// seeds, so sweeps over consecutive (or additively related) seeds could
// alias streams across points; derive_seed's double avalanche cannot.
std::uint64_t training_seed(std::uint64_t base_seed) {
  return util::derive_seed(base_seed, seed_stream::kTraining);
}

std::uint64_t evaluation_seed(std::uint64_t base_seed,
                              std::size_t num_jobs) {
  return util::derive_seed(base_seed, seed_stream::kEvaluation,
                           static_cast<std::uint64_t>(num_jobs));
}

std::uint64_t simulation_seed(std::uint64_t base_seed, Method method) {
  return util::derive_seed(base_seed, seed_stream::kSimulation,
                           static_cast<std::uint64_t>(method));
}

std::string Figure::to_table() const {
  std::vector<std::string> header{xlabel};
  for (const auto& s : series) header.push_back(s.name);
  util::TextTable table(std::move(header));
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<double> row;
    row.reserve(series.size());
    for (const auto& s : series) {
      row.push_back(i < s.y.size() ? s.y[i] : 0.0);
    }
    std::ostringstream label;
    label << x[i];
    table.add_row(label.str(), row);
  }
  std::ostringstream out;
  out << "== " << id << ": " << title << " (y: " << ylabel << ") ==\n"
      << table.to_string();
  return out.str();
}

void Figure::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  std::vector<std::string> header{xlabel};
  for (const auto& s : series) header.push_back(s.name);
  writer.write_row(header);
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<double> row{x[i]};
    for (const auto& s : series) {
      row.push_back(i < s.y.size() ? s.y[i] : 0.0);
    }
    writer.write_row(row);
  }
}

SimulationConfig make_simulation_config(const ExperimentConfig& experiment,
                                        Method method,
                                        double aggressiveness) {
  const double a = std::clamp(aggressiveness, 0.0, 1.0);
  SimulationConfig config;
  config.environment = experiment.environment;
  config.method = method;
  config.params = experiment.params;
  config.faults = experiment.faults;
  config.seed = experiment.seed;

  predict::StackConfig stack = experiment.params.stack_config();
  switch (method) {
    case Method::kCorp: {
      // More aggressive -> lower gate threshold, wider tolerance, less
      // conservative confidence bound -> more opportunistic reuse; past
      // the midpoint the scheduler also overcommits the predicted pools
      // and trims tenant carves, which is where the SLO risk really
      // comes from at the high end of Fig. 8's curve.
      stack.probability_threshold = lerp(0.95, 0.30, a);
      stack.error_tolerance =
          experiment.params.error_tolerance * lerp(1.0, 4.0, a);
      stack.confidence_level = lerp(0.88, 0.45, a);
      sched::CorpSchedulerConfig corp;
      // Piecewise: conservative half keeps the tuned defaults; past the
      // midpoint the scheduler overcommits pools / trims carves.
      const double hot = std::max(0.0, a - 0.5) * 2.0;
      corp.pool_safety = lerp(0.72, 0.85, std::min(a * 2.0, 1.0)) +
                         0.85 * hot;
      corp.opportunistic_sizing = 0.92 - 0.04 * a - 0.35 * hot;
      config.corp_scheduler = corp;
      break;
    }
    case Method::kRccr:
      stack.probability_threshold = lerp(0.95, 0.30, a);
      stack.error_tolerance =
          experiment.params.error_tolerance * lerp(1.0, 4.0, a);
      stack.confidence_level = lerp(0.88, 0.45, a);
      break;
    case Method::kCloudScale: {
      sched::CloudScaleSchedulerConfig cs;
      cs.padding_scale = lerp(1.6, 0.15, a);
      config.cloudscale_scheduler = cs;
      break;
    }
    case Method::kDra: {
      sched::DraSchedulerConfig dra;
      dra.entitlement_scale = lerp(1.15, 0.90, a);
      config.dra_scheduler = dra;
      break;
    }
    case Method::kPredAware: {
      // Same forecast-side and placement-knob mapping as CORP: the
      // prediction-aware scheduler differs only in how much it trusts
      // the stack, which is exactly what the trust knob expresses — so
      // at trust 1 a sweep point is CORP's placement behavior over
      // CORP's forecasts.
      stack.probability_threshold = lerp(0.95, 0.30, a);
      stack.error_tolerance =
          experiment.params.error_tolerance * lerp(1.0, 4.0, a);
      stack.confidence_level = lerp(0.88, 0.45, a);
      sched::PredictionAwareConfig pred_aware;
      const double hot = std::max(0.0, a - 0.5) * 2.0;
      pred_aware.corp.pool_safety =
          lerp(0.72, 0.85, std::min(a * 2.0, 1.0)) + 0.85 * hot;
      pred_aware.corp.opportunistic_sizing = 0.92 - 0.04 * a - 0.35 * hot;
      pred_aware.trust = experiment.params.trust;
      pred_aware.adaptive = experiment.params.trust_adaptive;
      config.pred_aware = pred_aware;
      break;
    }
  }
  config.stack = stack;
  return config;
}

PointResult run_point(const ExperimentConfig& experiment, Method method,
                      std::size_t num_jobs, double aggressiveness,
                      std::optional<double> confidence_override) {
  const obs::ScopedTimer point_timer("experiment.point");
  obs::count("experiment.points");
  // The training history is one fixed corpus per experiment (as in the
  // paper: one historical Google trace), shared by every method and every
  // sweep point — per-point retraining variance would masquerade as a
  // workload-size effect. Evaluation workloads vary with num_jobs.
  const std::uint64_t train_seed = training_seed(experiment.seed);
  const std::uint64_t eval_seed = evaluation_seed(experiment.seed, num_jobs);

  trace::GoogleTraceGenerator train_gen(scaled_generator_config(
      experiment.environment, experiment.training_jobs,
      experiment.training_horizon_slots));
  util::Rng train_rng(train_seed);
  const trace::Trace training = train_gen.generate(train_rng);

  // The arrival horizon stretches inversely with the testbed's VM count
  // so the *pressure* (concurrent demand relative to capacity) matches
  // across environments — the paper's EC2 runs the same job counts on a
  // 30-node testbed without drowning it.
  const std::int64_t horizon =
      experiment.eval_horizon_slots * 100 /
      static_cast<std::int64_t>(
          std::max<std::size_t>(1, experiment.environment.total_vms()));
  trace::GoogleTraceGenerator eval_gen(scaled_generator_config(
      experiment.environment, num_jobs, std::max<std::int64_t>(horizon, 5)));
  util::Rng eval_rng(eval_seed);
  const trace::Trace evaluation = eval_gen.generate(eval_rng);

  SimulationConfig config =
      make_simulation_config(experiment, method, aggressiveness);
  config.seed = simulation_seed(experiment.seed, method);
  if (confidence_override.has_value() && config.stack.has_value()) {
    config.stack->confidence_level = *confidence_override;
  }

  Simulation simulation(std::move(config));
  simulation.train(training);

  PointResult result;
  // Prediction accuracy is its own experiment (Fig. 6): evaluate with the
  // trained model state, before the live run's contention feedback
  // perturbs the error trackers.
  {
    const obs::ScopedTimer eval_timer("experiment.prediction_eval");
    result.prediction =
        evaluate_prediction_error(simulation.predictor(), evaluation);
  }
  result.sim = simulation.run(evaluation);
  return result;
}

ExperimentHarness::ExperimentHarness(ExperimentConfig config)
    : config_(std::move(config)) {}

std::size_t ExperimentHarness::sweep_threads() const {
  return util::ThreadPool::resolve(config_.params.threads);
}

std::vector<std::size_t> ExperimentHarness::job_counts() const {
  std::vector<std::size_t> counts;
  for (std::size_t n = config_.params.jobs_min; n <= config_.params.jobs_max;
       n += config_.params.jobs_step) {
    counts.push_back(n);
  }
  return counts;
}

std::vector<std::vector<PointResult>> ExperimentHarness::sweep_jobs(
    double aggressiveness) {
  if (sweep_cached_) return cached_sweep_;
  const auto counts = job_counts();
  const std::size_t num_methods = std::size(predict::kAllMethods);
  std::vector<std::vector<PointResult>> results(
      num_methods, std::vector<PointResult>(counts.size()));

  util::ThreadPool pool(config_.params.threads);
  pool.parallel_for(num_methods * counts.size(), [&](std::size_t task) {
    const std::size_t mi = task / counts.size();
    const std::size_t pi = task % counts.size();
    results[mi][pi] = run_point(config_, predict::kAllMethods[mi],
                                counts[pi], aggressiveness);
    points_run_.fetch_add(1);
  });
  cached_sweep_ = results;
  sweep_cached_ = true;
  return results;
}

Figure ExperimentHarness::figure_prediction_error() {
  const auto sweep = sweep_jobs();
  const auto counts = job_counts();
  Figure fig;
  fig.id = "fig06";
  fig.title = "Prediction error rate vs number of jobs (" +
              config_.environment.name + ")";
  fig.xlabel = "jobs";
  fig.ylabel = "prediction error rate";
  for (double n : std::vector<double>(counts.begin(), counts.end())) {
    fig.x.push_back(n);
  }
  for (std::size_t mi = 0; mi < std::size(predict::kAllMethods); ++mi) {
    Series series;
    series.name = std::string(method_name(predict::kAllMethods[mi]));
    for (const auto& point : sweep[mi]) {
      series.y.push_back(point.prediction.error_rate);
    }
    fig.series.push_back(std::move(series));
  }
  return fig;
}

std::vector<Figure> ExperimentHarness::figure_utilization() {
  const auto sweep = sweep_jobs();
  const auto counts = job_counts();
  std::vector<Figure> figures;
  const char* kSub[] = {"a", "b", "c"};
  for (std::size_t r = 0; r < trace::kNumResources; ++r) {
    Figure fig;
    fig.id = std::string("fig-util-") + kSub[r];
    fig.title = std::string(trace::resource_name(
                    static_cast<trace::ResourceKind>(r))) +
                " utilization vs number of jobs (" +
                config_.environment.name + ")";
    fig.xlabel = "jobs";
    fig.ylabel = "utilization";
    for (std::size_t n : counts) fig.x.push_back(static_cast<double>(n));
    for (std::size_t mi = 0; mi < std::size(predict::kAllMethods); ++mi) {
      Series series;
      series.name = std::string(method_name(predict::kAllMethods[mi]));
      for (const auto& point : sweep[mi]) {
        series.y.push_back(point.sim.mean_utilization[r]);
      }
      fig.series.push_back(std::move(series));
    }
    figures.push_back(std::move(fig));
  }
  return figures;
}

Figure ExperimentHarness::figure_utilization_vs_slo() {
  // Sweep the aggressiveness knob; for each method gather (slo, util)
  // pairs, then interpolate utilization at the paper's target SLO rates.
  const std::vector<double> knobs{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<double> targets{0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  const std::size_t num_jobs = config_.params.jobs_max;
  const std::size_t num_methods = std::size(predict::kAllMethods);

  std::vector<std::vector<PointResult>> grid(
      num_methods, std::vector<PointResult>(knobs.size()));
  util::ThreadPool pool(config_.params.threads);
  pool.parallel_for(num_methods * knobs.size(), [&](std::size_t task) {
    const std::size_t mi = task / knobs.size();
    const std::size_t ki = task % knobs.size();
    grid[mi][ki] =
        run_point(config_, predict::kAllMethods[mi], num_jobs, knobs[ki]);
    points_run_.fetch_add(1);
  });

  Figure fig;
  fig.id = "fig-util-vs-slo";
  fig.title = "Overall utilization vs SLO violation rate (" +
              config_.environment.name + ")";
  fig.xlabel = "SLO violation rate";
  fig.ylabel = "overall utilization";
  fig.x = targets;
  for (std::size_t mi = 0; mi < num_methods; ++mi) {
    std::vector<std::pair<double, double>> points;
    for (const auto& point : grid[mi]) {
      points.emplace_back(point.sim.slo_violation_rate,
                          point.sim.overall_utilization);
    }
    std::sort(points.begin(), points.end());
    Series series;
    series.name = std::string(method_name(predict::kAllMethods[mi]));
    for (double target : targets) {
      series.y.push_back(interpolate(points, target));
    }
    fig.series.push_back(std::move(series));
  }
  return fig;
}

Figure ExperimentHarness::figure_slo_vs_confidence() {
  const std::vector<double> confidences{0.50, 0.60, 0.70, 0.80, 0.90};
  const std::size_t num_jobs = config_.params.jobs_max;
  const std::size_t num_methods = std::size(predict::kAllMethods);

  std::vector<std::vector<PointResult>> grid(
      num_methods, std::vector<PointResult>(confidences.size()));
  util::ThreadPool pool(config_.params.threads);
  pool.parallel_for(num_methods * confidences.size(), [&](std::size_t task) {
    const std::size_t mi = task / confidences.size();
    const std::size_t ci = task % confidences.size();
    // Moderate aggressiveness; the confidence level eta is the lever.
    grid[mi][ci] = run_point(config_, predict::kAllMethods[mi], num_jobs,
                             /*aggressiveness=*/0.5, confidences[ci]);
    points_run_.fetch_add(1);
  });

  Figure fig;
  fig.id = "fig-slo-vs-confidence";
  fig.title = "SLO violation rate vs confidence level (" +
              config_.environment.name + ")";
  fig.xlabel = "confidence level";
  fig.ylabel = "SLO violation rate";
  fig.x = confidences;
  for (std::size_t mi = 0; mi < num_methods; ++mi) {
    Series series;
    series.name = std::string(method_name(predict::kAllMethods[mi]));
    for (const auto& point : grid[mi]) {
      series.y.push_back(point.sim.slo_violation_rate);
    }
    fig.series.push_back(std::move(series));
  }
  return fig;
}

Figure ExperimentHarness::figure_overhead() {
  const std::size_t num_jobs = config_.params.jobs_max;  // 300 in the paper
  const std::size_t num_methods = std::size(predict::kAllMethods);
  std::vector<PointResult> results(num_methods);
  util::ThreadPool pool(config_.params.threads);
  pool.parallel_for(num_methods, [&](std::size_t mi) {
    results[mi] = run_point(config_, predict::kAllMethods[mi], num_jobs);
    points_run_.fetch_add(1);
  });

  Figure fig;
  fig.id = "fig-overhead";
  fig.title = "Latency for allocating resources to " +
              std::to_string(num_jobs) + " jobs (" +
              config_.environment.name + ")";
  fig.xlabel = "jobs";
  fig.ylabel = "latency (ms)";
  fig.x = {static_cast<double>(num_jobs)};
  for (std::size_t mi = 0; mi < num_methods; ++mi) {
    Series series;
    series.name = std::string(method_name(predict::kAllMethods[mi]));
    series.y = {results[mi].sim.total_latency_ms};
    fig.series.push_back(std::move(series));
  }
  return fig;
}

}  // namespace corp::sim
