#include "sim/replication.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/stats.hpp"

namespace corp::sim {

namespace {

MetricEstimate estimate(const std::vector<double>& samples,
                        double confidence) {
  MetricEstimate out;
  if (samples.empty()) return out;
  util::RunningStats stats;
  for (double x : samples) stats.add(x);
  out.mean = stats.mean();
  out.min = stats.min();
  out.max = stats.max();
  if (samples.size() > 1) {
    const double theta = 1.0 - confidence;
    out.half_width = util::z_half_alpha(theta) * stats.stddev() /
                     std::sqrt(static_cast<double>(samples.size()));
  }
  return out;
}

}  // namespace

ReplicatedPoint run_replicated_point(const ExperimentConfig& experiment,
                                     Method method, std::size_t num_jobs,
                                     const ReplicationConfig& config,
                                     double aggressiveness) {
  if (config.replications == 0) {
    throw std::invalid_argument("run_replicated_point: zero replications");
  }
  std::vector<double> util, slo, err, opp;
  for (std::size_t r = 0; r < config.replications; ++r) {
    ExperimentConfig replica = experiment;
    replica.seed = experiment.seed + 1000 * (r + 1);
    const PointResult point =
        run_point(replica, method, num_jobs, aggressiveness);
    util.push_back(point.sim.overall_utilization);
    slo.push_back(point.sim.slo_violation_rate);
    err.push_back(point.prediction.error_rate);
    opp.push_back(
        static_cast<double>(point.sim.opportunistic_placements));
  }
  ReplicatedPoint out;
  out.replications = config.replications;
  out.overall_utilization = estimate(util, config.confidence);
  out.slo_violation_rate = estimate(slo, config.confidence);
  out.prediction_error_rate = estimate(err, config.confidence);
  out.opportunistic_placements = estimate(opp, config.confidence);
  return out;
}

}  // namespace corp::sim
