#include "sim/replication.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/seed_streams.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace corp::sim {

namespace {

MetricEstimate estimate(const std::vector<double>& samples,
                        double confidence) {
  MetricEstimate out;
  // A lone sample carries no spread information: report "unknown", not a
  // misleadingly tight zero-width interval. Table/CSV writers render the
  // NaN as "n/a".
  out.half_width = std::numeric_limits<double>::quiet_NaN();
  if (samples.empty()) return out;
  util::RunningStats stats;
  for (double x : samples) stats.add(x);
  out.mean = stats.mean();
  out.min = stats.min();
  out.max = stats.max();
  if (samples.size() > 1) {
    const double theta = 1.0 - confidence;
    out.half_width = util::z_half_alpha(theta) * stats.stddev() /
                     std::sqrt(static_cast<double>(samples.size()));
  }
  return out;
}

}  // namespace

std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t replica) {
  return util::derive_seed(base_seed, util::seed_stream::kReplica,
                           static_cast<std::uint64_t>(replica));
}

ReplicatedPoint run_replicated_point(const ExperimentConfig& experiment,
                                     Method method, std::size_t num_jobs,
                                     const ReplicationConfig& config,
                                     double aggressiveness) {
  if (config.replications == 0) {
    throw std::invalid_argument("run_replicated_point: zero replications");
  }
  const obs::ScopedTimer point_timer("replicate.point");
  obs::count("replicate.replicas", config.replications);
  const auto start = std::chrono::steady_clock::now();

  // Each replica writes only its own pre-allocated slot; aggregation below
  // walks the slots in replica order, so the thread schedule cannot leak
  // into the result.
  std::vector<PointResult> points(config.replications);
  util::ThreadPool pool(config.threads);
  pool.parallel_for(config.replications, [&](std::size_t r) {
    // Per-replica stage timing: replicas run concurrently, so total_ms
    // across replicas exceeds the wall time of the fan-out.
    const obs::ScopedTimer replica_timer("replicate.replica");
    ExperimentConfig replica = experiment;
    replica.seed = replica_seed(experiment.seed, r);
    points[r] = run_point(replica, method, num_jobs, aggressiveness);
  });

  std::vector<double> util_s, slo, err, opp;
  util_s.reserve(points.size());
  slo.reserve(points.size());
  err.reserve(points.size());
  opp.reserve(points.size());
  for (const PointResult& point : points) {
    util_s.push_back(point.sim.overall_utilization);
    slo.push_back(point.sim.slo_violation_rate);
    err.push_back(point.prediction.error_rate);
    opp.push_back(static_cast<double>(point.sim.opportunistic_placements));
  }

  ReplicatedPoint out;
  out.replications = config.replications;
  out.overall_utilization = estimate(util_s, config.confidence);
  out.slo_violation_rate = estimate(slo, config.confidence);
  out.prediction_error_rate = estimate(err, config.confidence);
  out.opportunistic_placements = estimate(opp, config.confidence);

  const std::chrono::duration<double, std::milli> wall =
      std::chrono::steady_clock::now() - start;
  out.timing.wall_ms = wall.count();
  out.timing.replicas_per_sec =
      wall.count() > 0.0
          ? static_cast<double>(config.replications) * 1e3 / wall.count()
          : 0.0;
  out.timing.threads = pool.size();
  if (obs::enabled()) {
    obs::registry()
        .gauge("replicate.replicas_per_sec")
        .set(out.timing.replicas_per_sec);
  }
  return out;
}

}  // namespace corp::sim
