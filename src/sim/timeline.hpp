// Per-slot timeline of a simulation run: what the cluster looked like
// while the workload played out. Off by default (it costs memory per
// slot); examples and analysis tools switch it on via
// SimulationConfig::record_timeline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "trace/resources.hpp"

namespace corp::sim {

struct TimelineSample {
  std::int64_t slot = 0;
  std::size_t running_reserved = 0;
  std::size_t running_opportunistic = 0;
  std::size_t queued = 0;
  /// Eq. 2 overall utilization of this slot (0 when nothing allocated).
  double overall_utilization = 0.0;
  /// Committed fraction of total cluster capacity (weighted).
  double committed_fraction = 0.0;
  /// Jobs completing in this slot.
  std::size_t completions = 0;
  /// SLO violations recorded in this slot.
  std::size_t violations = 0;
};

class Timeline {
 public:
  void add(TimelineSample sample) { samples_.push_back(sample); }

  const std::vector<TimelineSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// Slot with the most concurrent work (reserved + opportunistic).
  std::int64_t busiest_slot() const;

  /// Maximum concurrent running jobs over the run.
  std::size_t peak_running() const;

  /// Maximum queue depth over the run.
  std::size_t peak_queue() const;

  /// Writes one CSV row per slot (header included).
  void write_csv(std::ostream& out) const;

 private:
  std::vector<TimelineSample> samples_;
};

}  // namespace corp::sim
