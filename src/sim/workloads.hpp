// Named workload scenarios. The figure benches all use the paper's sweep
// workload; examples, extension benches and downstream users pick from
// these archetypes instead of hand-tuning GeneratorConfig fields.
#pragma once

#include <string>
#include <vector>

#include "cluster/environment.hpp"
#include "trace/generator.hpp"

namespace corp::sim {

enum class WorkloadKind {
  /// The paper's evaluation workload: short tasks, uniform arrivals.
  kPaperSweep,
  /// A query storm: everything lands within seconds (IoT / analytics).
  kBurst,
  /// Steady trickle: arrivals spread thin, low concurrency.
  kTrickle,
  /// Heavy-tailed: a few jobs with large fan-out and long durations near
  /// the short-lived cap dominate the load.
  kHeavyTail,
  /// Mixed short-lived tasks + long-lived patterned services (Sec. VI).
  kMixedServices,
};

std::string_view workload_name(WorkloadKind kind);

/// All kinds, for parameterized tests and sweeps.
inline constexpr WorkloadKind kAllWorkloads[] = {
    WorkloadKind::kPaperSweep, WorkloadKind::kBurst,
    WorkloadKind::kTrickle, WorkloadKind::kHeavyTail,
    WorkloadKind::kMixedServices,
};

/// Builds the generator configuration for a scenario, scaled to the
/// environment's VM size (as scaled_generator_config does).
trace::GeneratorConfig workload_config(WorkloadKind kind,
                                       const cluster::EnvironmentConfig& env,
                                       std::size_t num_jobs);

}  // namespace corp::sim
