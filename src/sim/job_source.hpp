// Where the slot loop's arrivals come from.
//
// The engine historically iterated a materialized trace::Trace. At
// production trace volume (multi-GB Google/Azure CSV files) the whole
// timeline never fits in memory, so the engine consumes a JobSource
// instead: poll(t) yields the jobs submitted at or before slot t, in the
// exact (submit_slot, id) order a sorted materialized trace would, and
// retire() tells the source a job finished so its storage can be freed.
//
// Determinism contract: for the same underlying job set, every JobSource
// implementation delivers the same pointers in the same order at the same
// slots, so ShardEngine results are bit-identical between a materialized
// trace and a streaming reader — pinned by tests/sim/stream_replay_test.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/slot_clock.hpp"
#include "trace/job.hpp"
#include "trace/stream_reader.hpp"

namespace corp::sim {

class JobSource {
 public:
  virtual ~JobSource() = default;

  /// Appends every not-yet-delivered job with submit_slot <= slot, in
  /// (submit_slot, id) order. Pointers stay valid until retire().
  virtual void poll(std::int64_t slot,
                    std::vector<const trace::Job*>& out) = 0;

  /// True once every job has been delivered.
  virtual bool exhausted() const = 0;

  /// Event horizon for the event-driven slot clock: the earliest slot
  /// > `after` at which this source could change the simulation — an
  /// arrival, or (for incremental sources) any internal state step the
  /// dense slot-by-slot path would have taken. kNoEventSlot when
  /// exhausted. Returning an earlier slot than strictly necessary is
  /// always safe (the engine just ticks an extra empty slot); the
  /// default adapter returns after + 1, i.e. dense polling, so existing
  /// JobSource implementations stay correct unchanged.
  virtual std::int64_t next_event_slot(std::int64_t after);

  /// Max submit_slot + duration_slots over delivered jobs; exact once
  /// exhausted() (the engine only uses it for the grace cutoff, which it
  /// evaluates only when the source is exhausted).
  virtual std::int64_t horizon_slots() const = 0;

  /// The engine is permanently done with `job` (completed, dropped after
  /// its retry budget, or force-completed). Default: no-op.
  virtual void retire(const trace::Job& job);
};

/// Adapter over a materialized, sorted trace — the legacy path; holds no
/// job storage of its own.
class TraceJobSource final : public JobSource {
 public:
  explicit TraceJobSource(const trace::Trace& trace);

  void poll(std::int64_t slot, std::vector<const trace::Job*>& out) override;
  bool exhausted() const override;
  /// Exact: the submit slot of the next undelivered job.
  std::int64_t next_event_slot(std::int64_t after) override;
  std::int64_t horizon_slots() const override { return horizon_; }

 private:
  const trace::Trace* trace_;
  std::size_t next_ = 0;
  std::int64_t horizon_ = 0;
};

/// Adapter over a trace::StreamReader: owns the jobs between emission and
/// retirement, and only releases slot-t arrivals once the reader's safe
/// submit bound has passed t, so no late emission can miss its slot.
/// Live-job storage is O(running jobs + one ingest batch), not O(trace).
class StreamingJobSource final : public JobSource {
 public:
  /// The reader must outlive this source; it may already be partially
  /// advanced (emitted-but-untaken jobs are absorbed on first poll).
  explicit StreamingJobSource(trace::StreamReader& reader);

  void poll(std::int64_t slot, std::vector<const trace::Job*>& out) override;
  bool exhausted() const override;
  /// The earliest pending submit slot, or — when no emitted job is
  /// waiting — the reader's safe submit bound: the first slot at which
  /// the dense path's poll() would advance the reader again. Landing
  /// there (instead of jumping straight to the next arrival) replays the
  /// exact ingest schedule of the dense loop, so reader state, stats and
  /// the exhaustion slot stay bit-identical between clock modes.
  std::int64_t next_event_slot(std::int64_t after) override;
  std::int64_t horizon_slots() const override;
  void retire(const trace::Job& job) override;

  /// Jobs currently owned (delivered or awaiting delivery); bounded-memory
  /// telemetry for bench/trace_replay.
  std::size_t live_jobs() const { return live_.size(); }
  std::size_t peak_live_jobs() const { return peak_live_; }

 private:
  struct Pending {
    std::int64_t submit_slot = 0;
    std::uint64_t id = 0;
    const trace::Job* job = nullptr;
  };
  struct PendingAfter {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.submit_slot > b.submit_slot ||
             (a.submit_slot == b.submit_slot && a.id > b.id);
    }
  };

  void absorb();

  trace::StreamReader* reader_;
  std::unordered_map<std::uint64_t, std::unique_ptr<trace::Job>> live_;
  std::priority_queue<Pending, std::vector<Pending>, PendingAfter> pending_;
  std::size_t peak_live_ = 0;
};

}  // namespace corp::sim
