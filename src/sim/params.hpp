// Table II parameter settings, centralized. Every experiment harness and
// example starts from these defaults and overrides only what its sweep
// varies.
#pragma once

#include <cstddef>

#include "predict/stack_builder.hpp"
#include "predict/stacks.hpp"
#include "sim/slot_clock.hpp"
#include "trace/job.hpp"

namespace corp::sim {

struct ReplicationConfig;

struct Params {
  // --- Table II ---
  /// Number of servers N_p: 30-50 (50 on the cluster, 30 on EC2).
  std::size_t num_servers_cluster = 50;
  std::size_t num_servers_ec2 = 30;
  /// Number of VMs N_v: 100-400 (cluster default 200 = 50 x 4).
  std::size_t vms_per_pm = 4;
  /// Number of jobs |J|: 50-300 with step 50.
  std::size_t jobs_min = 50;
  std::size_t jobs_max = 300;
  std::size_t jobs_step = 50;
  /// Resource types l = 3 (CPU, MEM, storage).
  static constexpr std::size_t kResourceTypes = trace::kNumResources;
  /// Probability threshold P_th = 0.95.
  double probability_threshold = 0.95;
  /// DNN: h = 4 layers, N_n = 50 units per layer.
  std::size_t dnn_layers = 4;
  std::size_t dnn_units = 50;
  /// HMM: H = 3 states.
  std::size_t hmm_states = 3;
  /// Significance level theta: 5%-30%; confidence level eta: 50%-90%.
  double significance_min = 0.05;
  double significance_max = 0.30;
  double confidence_min = 0.50;
  double confidence_max = 0.90;

  // --- derived / fixed by Sec. III-IV ---
  /// Prediction window L = 1 minute = 6 slots of 10 s.
  std::size_t window_slots = trace::kWindowSlots;
  /// Per-job history slots Delta fed to the DNN.
  std::size_t history_slots = 12;
  /// Eq. 21 error tolerance epsilon, as a fraction of the training-corpus
  /// mean unused amount (resolved per resource type at train time). Must
  /// comfortably exceed the conservative bias the confidence bound
  /// introduces, or the gate never opens.
  double error_tolerance = 0.80;
  /// Additive response-time slack in slots on top of duration * stretch
  /// (absorbs the one-slot rounding a single deficit slot costs).
  double slo_slack_slots = 1.0;
  /// Resource weights omega = (0.4, 0.4, 0.2) of Eq. 2.
  trace::ResourceWeights weights;
  /// Convexity of the slowdown under resource pressure: a slot at
  /// bottleneck satisfaction ratio rho advances rho^p slots of work
  /// (p > 1 models thrashing under starvation).
  double contention_penalty = 2.0;

  // --- execution knobs (harness, not Table II) ---
  /// Independent replicas per sweep point for confidence intervals.
  std::size_t replications = 5;
  /// Confidence level of the replication half-width.
  double replication_confidence = 0.95;
  /// Worker threads for sweep and replication fan-out (0 = hardware
  /// concurrency). One knob drives both the per-figure point sweeps and
  /// run_replicated_point.
  std::size_t threads = 0;
  /// Shards of the simulation slot loop: VM, telemetry and running-job
  /// state is partitioned into this many contiguous blocks whose per-slot
  /// walks run on worker threads (sim/shard_engine.hpp). 0 = one shard
  /// per resolved worker thread; requests are clamped to the VM count.
  /// Results are bit-identical for every value — 1 (the default) IS the
  /// serial reference layout — so this is purely a throughput knob.
  /// Fanning out needs a resolved worker count > 1; on a single-core
  /// host the engine stays inline-serial regardless of this value.
  std::size_t shards = 1;
  /// Chunk size (KiB) of the streaming trace ingester: parse-work unit
  /// and determinism boundary of trace::StreamReader. Purely a
  /// throughput/footprint knob — results are bit-identical for every
  /// value (pinned by tests/trace/stream_reader_test).
  std::size_t ingest_chunk_kb = 4096;
  /// Time base of the slot loop (sim/slot_clock.hpp). The event clock
  /// jumps over spans where nothing can change — no queued work, no
  /// running jobs — landing on the next arrival, crash-retry release,
  /// fault-plan transition or grace cutoff. Results are bit-identical to
  /// the dense tick-every-slot reference for every source, shard and
  /// thread count (pinned by tests/sim/event_clock_test.cpp); dense
  /// remains available as the differential baseline, so this is purely a
  /// throughput knob, like `shards`.
  SlotClockMode slot_clock = SlotClockMode::kEvent;
  /// Forecast refresh cadence of the opportunistic methods
  /// (sim/slot_clock.hpp). kEverySlot reproduces every historical pinned
  /// number; kWindow re-runs the batched stack only when a tenant's
  /// window watermark moved, its Eq. 20 pledge resolved, or the health
  /// tier changed — a deliberate semantic change (forecasts go up to
  /// L - 1 slots stale), itself bit-identical across clock modes and
  /// shard/thread counts.
  PredictCadence predict_cadence = PredictCadence::kEverySlot;
  /// Trust λ of the prediction-aware scheduler (sched/pred_aware_
  /// scheduler.hpp): 1 follows the forecast like CORP, 0 is demand-based
  /// worst-case admission, intermediate values blend the admission
  /// thresholds. Read only by method pred-aware.
  double trust = 1.0;
  /// Drive λ online from predictor-health signals instead of the fixed
  /// value (`--trust auto`).
  bool trust_adaptive = false;

  /// Builds the default per-type prediction StackConfig.
  predict::StackConfig stack_config() const;

  /// A StackBuilder pre-seeded with these params' stack knobs — the
  /// canonical way for CLIs and bench drivers to construct a stack.
  predict::StackBuilder stack_builder(predict::Method method) const;

  /// Builds the ReplicationConfig (replications, confidence, threads)
  /// these params describe.
  ReplicationConfig replication_config() const;
};

}  // namespace corp::sim
