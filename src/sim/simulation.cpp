#include "sim/simulation.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/baseline_schedulers.hpp"
#include "sched/corp_scheduler.hpp"
#include "sim/shard_engine.hpp"
#include "util/rng.hpp"

namespace corp::sim {

namespace {

using trace::Job;
using trace::kNumResources;
using trace::ResourceVector;

/// Training series length after concatenation. Individual short-lived
/// jobs are seconds long; a VM, however, observes a *continuous* unused-
/// resource signal as successive short jobs run on it. Concatenating the
/// trace's per-job series in submit order and segmenting reproduces that
/// signal and gives the windowed predictors enough samples to train on.
constexpr std::size_t kTrainingSegmentSlots = 150;

std::vector<std::vector<double>> segment(const std::vector<double>& series) {
  std::vector<std::vector<double>> out;
  for (std::size_t start = 0; start + kTrainingSegmentSlots <= series.size();
       start += kTrainingSegmentSlots) {
    out.emplace_back(series.begin() + start,
                     series.begin() + start + kTrainingSegmentSlots);
  }
  if (out.empty() && !series.empty()) out.push_back(series);
  return out;
}

}  // namespace

predict::VectorCorpus build_unused_corpus(const trace::Trace& trace) {
  // Concatenate per-type unused series across jobs in submit order. The
  // series are *request-normalized* (unused / request, in [0, 1]): jobs'
  // absolute requests span orders of magnitude, and predicting raw
  // amounts across job boundaries would drown the signal in cross-job
  // scale variance. Callers de-normalize with the job's request.
  std::array<std::vector<double>, kNumResources> concatenated;
  for (const Job& job : trace.jobs()) {
    for (std::size_t t = 0; t < job.usage.size(); ++t) {
      const ResourceVector unused = job.unused_at(t);
      for (std::size_t r = 0; r < kNumResources; ++r) {
        if (job.request[r] > 0.0) {
          concatenated[r].push_back(unused[r] / job.request[r]);
        }
      }
    }
  }
  predict::VectorCorpus corpus;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    corpus.per_type[r] = segment(concatenated[r]);
  }
  return corpus;
}

predict::SeriesCorpus build_utilization_corpus(const trace::Trace& trace) {
  std::vector<double> concatenated;
  for (const Job& job : trace.jobs()) {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      if (job.request[r] <= 0.0) continue;
      for (const auto& u : job.usage) {
        concatenated.push_back(u[r] / job.request[r]);
      }
    }
  }
  return segment(concatenated);
}

trace::GeneratorConfig scaled_generator_config(
    const cluster::EnvironmentConfig& env, std::size_t num_jobs,
    std::int64_t horizon_slots) {
  trace::GeneratorConfig config;
  config.num_jobs = num_jobs;
  config.horizon_slots = horizon_slots;
  // Jobs sized so a VM hosts ~8-12 of them: enough reserved tenants per VM
  // that their pooled temporarily-unused resource can carry an extra
  // opportunistic job, as in the paper's Fig. 5 example.
  const ResourceVector vm = env.vm_capacity();
  config.cpu_request_high = 0.11 * vm.cpu();
  config.cpu_request_low = 0.03 * vm.cpu();
  config.mem_request_high = 0.11 * vm.memory();
  config.mem_request_low = 0.03 * vm.memory();
  config.storage_request_high = 0.09 * vm.storage();
  config.storage_request_low = 0.02 * vm.storage();
  // Median duration ~7 slots (70 s) with the 5-minute short-job cap.
  config.duration_log_mu = 2.0;
  config.request_cap = vm * 0.9;
  // Short-lived queries are latency-sensitive: the response-time SLO sits
  // tight above the nominal execution time (Sec. IV derives it from the
  // trace execution time).
  config.slo_stretch = 1.10;
  return config;
}

Simulation::Simulation(SimulationConfig config) : config_(std::move(config)) {
  util::Rng rng(config_.seed);
  const predict::StackConfig stack =
      config_.stack.value_or(config_.params.stack_config());
  predictor_ = std::make_unique<predict::VectorPredictor>(
      config_.method, stack, rng, config_.enable_hmm_correction,
      config_.enable_confidence_bound);
  switch (config_.method) {
    case Method::kCorp:
      scheduler_ = std::make_unique<sched::CorpScheduler>(
          config_.corp_scheduler.value_or(sched::CorpSchedulerConfig{}));
      break;
    case Method::kRccr:
      scheduler_ = std::make_unique<sched::RccrScheduler>();
      break;
    case Method::kCloudScale:
      scheduler_ = std::make_unique<sched::CloudScaleScheduler>(
          config_.cloudscale_scheduler.value_or(
              sched::CloudScaleSchedulerConfig{}));
      break;
    case Method::kDra:
      scheduler_ = std::make_unique<sched::DraScheduler>(
          config_.dra_scheduler.value_or(sched::DraSchedulerConfig{}));
      break;
    case Method::kPredAware: {
      sched::PredictionAwareConfig pred_aware =
          config_.pred_aware.value_or(sched::PredictionAwareConfig{});
      // The tie-break stream hangs off the run seed, not whatever the
      // caller left in the config, so replicas and sweeps derive it the
      // same way as every other per-run stream.
      pred_aware.seed = config_.seed;
      scheduler_ =
          std::make_unique<sched::PredictionAwareScheduler>(pred_aware);
      break;
    }
  }
}

void Simulation::train(const trace::Trace& history) {
  const obs::ScopedTimer timer("sim.train");
  predictor_->train(build_unused_corpus(history));
  scheduler_->train(build_utilization_corpus(history));
  trained_ = true;
}

SimulationResult Simulation::run(const trace::Trace& trace) {
  if (!trained_) {
    throw std::logic_error("Simulation::run before train()");
  }
  ShardEngine engine(config_, *predictor_, *scheduler_, pool_);
  return engine.run(trace);
}

SimulationResult Simulation::run(JobSource& source) {
  if (!trained_) {
    throw std::logic_error("Simulation::run before train()");
  }
  ShardEngine engine(config_, *predictor_, *scheduler_, pool_);
  return engine.run(source);
}

}  // namespace corp::sim
