#include "sim/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "dnn/network.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "sched/baseline_schedulers.hpp"
#include "sched/corp_scheduler.hpp"
#include "util/rng.hpp"
#include "util/seed_streams.hpp"

namespace corp::sim {

namespace {

using Clock = std::chrono::steady_clock;
using trace::Job;
using trace::kNumResources;
using trace::ResourceVector;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}


/// Bottleneck satisfaction ratio: min over resource types with non-trivial
/// demand of received/desired, in [0, 1].
double bottleneck_ratio(const ResourceVector& received,
                        const ResourceVector& desired) {
  constexpr double kEps = 1e-9;
  double ratio = 1.0;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    if (desired[r] > kEps) {
      ratio = std::min(ratio, received[r] / desired[r]);
    }
  }
  return std::clamp(ratio, 0.0, 1.0);
}

/// Mean of the last `n` entries of a series (whole series if shorter),
/// skipping non-finite entries (telemetry-gap markers). 0 when the
/// window holds no finite sample.
double tail_mean(const std::vector<double>& series, std::size_t n) {
  if (series.empty()) return 0.0;
  const std::size_t take = std::min(n, series.size());
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = series.size() - take; i < series.size(); ++i) {
    if (!std::isfinite(series[i])) continue;
    sum += series[i];
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

}  // namespace

namespace {

/// Training series length after concatenation. Individual short-lived
/// jobs are seconds long; a VM, however, observes a *continuous* unused-
/// resource signal as successive short jobs run on it. Concatenating the
/// trace's per-job series in submit order and segmenting reproduces that
/// signal and gives the windowed predictors enough samples to train on.
constexpr std::size_t kTrainingSegmentSlots = 150;

std::vector<std::vector<double>> segment(const std::vector<double>& series) {
  std::vector<std::vector<double>> out;
  for (std::size_t start = 0; start + kTrainingSegmentSlots <= series.size();
       start += kTrainingSegmentSlots) {
    out.emplace_back(series.begin() + start,
                     series.begin() + start + kTrainingSegmentSlots);
  }
  if (out.empty() && !series.empty()) out.push_back(series);
  return out;
}

}  // namespace

predict::VectorCorpus build_unused_corpus(const trace::Trace& trace) {
  // Concatenate per-type unused series across jobs in submit order. The
  // series are *request-normalized* (unused / request, in [0, 1]): jobs'
  // absolute requests span orders of magnitude, and predicting raw
  // amounts across job boundaries would drown the signal in cross-job
  // scale variance. Callers de-normalize with the job's request.
  std::array<std::vector<double>, kNumResources> concatenated;
  for (const Job& job : trace.jobs()) {
    for (std::size_t t = 0; t < job.usage.size(); ++t) {
      const ResourceVector unused = job.unused_at(t);
      for (std::size_t r = 0; r < kNumResources; ++r) {
        if (job.request[r] > 0.0) {
          concatenated[r].push_back(unused[r] / job.request[r]);
        }
      }
    }
  }
  predict::VectorCorpus corpus;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    corpus.per_type[r] = segment(concatenated[r]);
  }
  return corpus;
}

predict::SeriesCorpus build_utilization_corpus(const trace::Trace& trace) {
  std::vector<double> concatenated;
  for (const Job& job : trace.jobs()) {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      if (job.request[r] <= 0.0) continue;
      for (const auto& u : job.usage) {
        concatenated.push_back(u[r] / job.request[r]);
      }
    }
  }
  return segment(concatenated);
}

trace::GeneratorConfig scaled_generator_config(
    const cluster::EnvironmentConfig& env, std::size_t num_jobs,
    std::int64_t horizon_slots) {
  trace::GeneratorConfig config;
  config.num_jobs = num_jobs;
  config.horizon_slots = horizon_slots;
  // Jobs sized so a VM hosts ~8-12 of them: enough reserved tenants per VM
  // that their pooled temporarily-unused resource can carry an extra
  // opportunistic job, as in the paper's Fig. 5 example.
  const ResourceVector vm = env.vm_capacity();
  config.cpu_request_high = 0.11 * vm.cpu();
  config.cpu_request_low = 0.03 * vm.cpu();
  config.mem_request_high = 0.11 * vm.memory();
  config.mem_request_low = 0.03 * vm.memory();
  config.storage_request_high = 0.09 * vm.storage();
  config.storage_request_low = 0.02 * vm.storage();
  // Median duration ~7 slots (70 s) with the 5-minute short-job cap.
  config.duration_log_mu = 2.0;
  config.request_cap = vm * 0.9;
  // Short-lived queries are latency-sensitive: the response-time SLO sits
  // tight above the nominal execution time (Sec. IV derives it from the
  // trace execution time).
  config.slo_stretch = 1.10;
  return config;
}

Simulation::Simulation(SimulationConfig config) : config_(std::move(config)) {
  util::Rng rng(config_.seed);
  const predict::StackConfig stack =
      config_.stack.value_or(config_.params.stack_config());
  predictor_ = std::make_unique<predict::VectorPredictor>(
      config_.method, stack, rng, config_.enable_hmm_correction,
      config_.enable_confidence_bound);
  switch (config_.method) {
    case Method::kCorp:
      scheduler_ = std::make_unique<sched::CorpScheduler>(
          config_.corp_scheduler.value_or(sched::CorpSchedulerConfig{}));
      break;
    case Method::kRccr:
      scheduler_ = std::make_unique<sched::RccrScheduler>();
      break;
    case Method::kCloudScale:
      scheduler_ = std::make_unique<sched::CloudScaleScheduler>(
          config_.cloudscale_scheduler.value_or(
              sched::CloudScaleSchedulerConfig{}));
      break;
    case Method::kDra:
      scheduler_ = std::make_unique<sched::DraScheduler>(
          config_.dra_scheduler.value_or(sched::DraSchedulerConfig{}));
      break;
  }
}

void Simulation::train(const trace::Trace& history) {
  const obs::ScopedTimer timer("sim.train");
  predictor_->train(build_unused_corpus(history));
  scheduler_->train(build_utilization_corpus(history));
  trained_ = true;
}

SimulationResult Simulation::run(const trace::Trace& trace) {
  if (!trained_) {
    throw std::logic_error("Simulation::run before train()");
  }
  const obs::ScopedTimer run_timer("sim.run");
  // Metric handles hoisted out of the slot loop: the per-slot cost is a
  // handful of relaxed atomic adds when enabled, a null check when not.
  obs::MetricRegistry& reg = obs::registry();
  const bool obs_on = reg.enabled();
  obs::Counter* m_slots = obs_on ? &reg.counter("sim.slot_ticks") : nullptr;
  obs::Counter* m_attempts =
      obs_on ? &reg.counter("sim.placement_attempts") : nullptr;
  obs::Counter* m_failures =
      obs_on ? &reg.counter("sim.placement_failures") : nullptr;
  obs::Counter* m_promotions =
      obs_on ? &reg.counter("sim.gate_promotions") : nullptr;
  obs::Counter* m_preemptions =
      obs_on ? &reg.counter("sim.gate_preemptions") : nullptr;
  obs::PhaseStat* m_place_phase =
      obs_on ? &reg.phase("sim.place") : nullptr;
  obs::PhaseStat* m_predict_phase =
      obs_on ? &reg.phase("sim.predict") : nullptr;
  const Params& params = config_.params;
  const std::size_t L = params.window_slots;
  const bool opportunistic_method =
      config_.method == Method::kCorp || config_.method == Method::kRccr;

  cluster::Cluster cluster(config_.environment);
  cluster::SlotMetricsAccumulator metrics(params.weights);
  cluster::SloTracker slo;
  util::Rng rng(config_.seed ^ 0x9e3779b97f4a7c15ULL);

  SimulationResult result;
  result.method = config_.method;

  std::vector<RunningJob> running;
  std::deque<const Job*> queue;
  const auto& jobs = trace.jobs();
  std::size_t next_arrival = 0;
  const std::int64_t horizon = trace.horizon_slots();
  const std::int64_t max_slot = horizon + config_.grace_slots;

  double compute_ms = 0.0;
  double comm_us = 0.0;

  const ResourceVector max_vm_capacity = cluster.max_vm_capacity();

  // Fault injection. The oracle hangs off its own derived seed stream and
  // with all rates zero is inert: none of the `faults_on` branches below
  // execute, no randomness is drawn, and the run is bit-identical to a
  // build without the subsystem.
  fault::FaultInjector injector(
      config_.faults,
      util::derive_seed(config_.seed, util::seed_stream::kFault),
      cluster.num_vms(), max_slot + 1);
  const bool faults_on = injector.enabled();
  obs::Counter* m_vm_crashes =
      obs_on && faults_on ? &reg.counter("fault.vm_crashes") : nullptr;
  obs::Counter* m_vm_recoveries =
      obs_on && faults_on ? &reg.counter("fault.vm_recoveries") : nullptr;
  obs::Counter* m_jobs_killed =
      obs_on && faults_on ? &reg.counter("fault.jobs_killed") : nullptr;
  obs::Counter* m_job_retries =
      obs_on && faults_on ? &reg.counter("fault.job_retries") : nullptr;
  obs::Counter* m_jobs_dropped =
      obs_on && faults_on ? &reg.counter("fault.jobs_dropped") : nullptr;
  obs::Counter* m_gaps =
      obs_on && faults_on ? &reg.counter("fault.telemetry_gaps") : nullptr;
  obs::Counter* m_stragglers =
      obs_on && faults_on ? &reg.counter("fault.straggler_placements")
                          : nullptr;

  /// Crash-killed jobs waiting out their retry backoff.
  struct PendingRetry {
    const Job* job = nullptr;
    std::int64_t release_slot = 0;
  };
  std::vector<PendingRetry> retries;
  std::unordered_map<std::uint64_t, std::size_t> crash_kills;

  for (std::int64_t t = 0;; ++t) {
    if (m_slots != nullptr) m_slots->add(1);

    // --- 0. fault transitions and retry release -----------------------
    if (faults_on) {
      for (const fault::VmTransition& tr : injector.transitions_at(t)) {
        auto& vm = cluster.vm(tr.vm_id);
        if (tr.up) {
          vm.recover();
          ++result.vm_recoveries;
          if (m_vm_recoveries != nullptr) m_vm_recoveries->add(1);
          continue;
        }
        vm.crash();
        ++result.vm_crashes;
        if (m_vm_crashes != nullptr) m_vm_crashes->add(1);
        // Every tenant dies with the VM — reserved and opportunistic
        // alike (the pool the latter ride is gone). Killed jobs restart
        // from scratch after a capped exponential backoff until their
        // retry budget is spent; the response clock keeps running, so
        // retries eat into the SLO threshold.
        for (std::size_t i = 0; i < running.size();) {
          RunningJob& rj = running[i];
          if (rj.vm_id != tr.vm_id) {
            ++i;
            continue;
          }
          ++result.jobs_killed;
          if (m_jobs_killed != nullptr) m_jobs_killed->add(1);
          const std::size_t attempt = ++crash_kills[rj.job->id];
          if (attempt > injector.config().retry_budget) {
            slo.record_failure(
                rj.job->id, rj.job->duration_slots,
                static_cast<std::size_t>(t - rj.submit_slot + 1),
                static_cast<double>(rj.job->duration_slots) *
                        rj.job->slo_stretch +
                    params.slo_slack_slots);
            ++result.jobs_dropped;
            if (m_jobs_dropped != nullptr) m_jobs_dropped->add(1);
          } else {
            retries.push_back({rj.job, t + injector.retry_backoff(attempt)});
            ++result.job_retries;
            if (m_job_retries != nullptr) m_job_retries->add(1);
          }
          running[i] = std::move(running.back());
          running.pop_back();
        }
      }
      for (std::size_t i = 0; i < retries.size();) {
        if (retries[i].release_slot <= t) {
          queue.push_back(retries[i].job);
          retries.erase(retries.begin() +
                        static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }

    // --- 1. arrivals ------------------------------------------------
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].submit_slot <= t) {
      queue.push_back(&jobs[next_arrival]);
      ++next_arrival;
    }

    // --- 2. placement ------------------------------------------------
    if (!queue.empty()) {
      std::vector<const Job*> batch(queue.begin(), queue.end());

      // VM views: unallocated from the ledger; predicted unused is the
      // sum of the per-job cached forecasts over reserved tenants.
      std::vector<sched::VmView> views(cluster.num_vms());
      for (std::size_t v = 0; v < cluster.num_vms(); ++v) {
        views[v].vm_id = cluster.vm(v).id();
        views[v].unallocated = cluster.vm(v).unallocated();
      }
      if (opportunistic_method) {
        const bool unlocked = predictor_->unlocked();
        for (const RunningJob& rj : running) {
          if (rj.kind == sched::AllocationKind::kReserved) {
            if (rj.has_cached_prediction) {
              views[rj.vm_id].predicted_unused += rj.cached_prediction;
            }
          } else {
            // Tenants already riding this VM's unused pool consume it:
            // without this subtraction the same pool would be pledged to
            // new tenants every slot until the donors starve.
            views[rj.vm_id].predicted_unused -= rj.allocated;
          }
        }
        for (auto& view : views) {
          view.predicted_unused = view.predicted_unused.clamped_non_negative();
          // Predicted unused can never exceed what is committed.
          view.predicted_unused = ResourceVector::min(
              view.predicted_unused, cluster.vm(view.vm_id).committed());
          view.unlocked = unlocked && view.predicted_unused.total() > 0.0;
        }
      }

      sched::SchedulerContext ctx;
      ctx.vms = views;
      ctx.max_vm_capacity = max_vm_capacity;
      ctx.rng = &rng;

      const auto start = Clock::now();
      const auto decisions = scheduler_->place(batch, ctx);
      const double place_ms = elapsed_ms(start);
      compute_ms += place_ms;
      if (m_place_phase != nullptr) m_place_phase->add(place_ms);
      if (m_attempts != nullptr) m_attempts->add(batch.size());
      comm_us +=
          config_.environment.comm_overhead_us *
          static_cast<double>(decisions.size());

      std::vector<bool> placed(batch.size(), false);
      for (const auto& decision : decisions) {
        auto& vm = cluster.vm(decision.vm_id);
        if (decision.kind == sched::AllocationKind::kReserved) {
          // The scheduler worked from a snapshot; clamp against the live
          // ledger to absorb floating-point dust.
          const ResourceVector amount =
              ResourceVector::min(decision.allocated, vm.unallocated());
          vm.commit(amount);
          ++result.reserved_placements;
        } else {
          ++result.opportunistic_placements;
        }
        // Split the entity's allocation across members: each member is
        // accounted its own share. For reserved single jobs the decision
        // amount may be method-sized (CloudScale/DRA below request).
        const bool single = decision.batch_indices.size() == 1;
        for (std::size_t member : decision.batch_indices) {
          placed[member] = true;
          const Job& job = *batch[member];
          if (m_stragglers != nullptr && injector.is_straggler(job.id)) {
            m_stragglers->add(1);
          }
          RunningJob rj;
          rj.job = &job;
          rj.vm_id = decision.vm_id;
          rj.kind = decision.kind;
          rj.allocated = single ? decision.allocated
                                : job.request * decision.request_fraction;
          rj.submit_slot = job.submit_slot;
          running.push_back(std::move(rj));
        }
      }
      queue.clear();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!placed[i]) {
          queue.push_back(batch[i]);
          if (m_failures != nullptr) m_failures->add(1);
        }
      }
    }

    // --- 3. execution -------------------------------------------------
    // Pass 1: reserved jobs receive min(demand, allocation); accumulate
    // per-VM consumption.
    std::unordered_map<std::uint32_t, ResourceVector> vm_consumed;
    std::unordered_map<std::uint32_t, ResourceVector> vm_opp_want;
    std::vector<ResourceVector> desired(running.size());
    std::vector<ResourceVector> received(running.size());
    for (std::size_t i = 0; i < running.size(); ++i) {
      RunningJob& rj = running[i];
      const auto idx = static_cast<std::size_t>(rj.progress);
      desired[i] = rj.job->demand_at(idx);
      if (faults_on && injector.is_straggler(rj.job->id)) {
        // Demand-spike straggler: inflate the demand curve, capped at the
        // request (a tenant cannot demand beyond its reservation).
        desired[i] = ResourceVector::min(
            desired[i] * injector.demand_multiplier(rj.job->id),
            rj.job->request);
      }
      if (rj.kind == sched::AllocationKind::kReserved) {
        received[i] = ResourceVector::min(desired[i], rj.allocated);
        vm_consumed[rj.vm_id] += received[i];
      } else {
        const ResourceVector want =
            ResourceVector::min(desired[i], rj.allocated);
        vm_opp_want[rj.vm_id] += want;
      }
    }
    // Pass 2: opportunistic jobs share each VM's *allocated-but-unused*
    // resource (committed minus what the reserved tenants actually
    // consume) proportionally per resource type. Uncommitted capacity is
    // NOT donated — it is held for future reservations — so when donor
    // jobs peak, opportunistic tenants starve; this is exactly the risk
    // the prediction stack and the Eq. 21 gate exist to manage.
    for (std::size_t i = 0; i < running.size(); ++i) {
      RunningJob& rj = running[i];
      if (rj.kind != sched::AllocationKind::kOpportunistic) continue;
      const auto& vm = cluster.vm(rj.vm_id);
      const ResourceVector leftover =
          (vm.committed() - vm_consumed[rj.vm_id]).clamped_non_negative();
      const ResourceVector& want_total = vm_opp_want[rj.vm_id];
      const ResourceVector want =
          ResourceVector::min(desired[i], rj.allocated);
      ResourceVector grant;
      for (std::size_t r = 0; r < kNumResources; ++r) {
        const double scale =
            want_total[r] > 1e-12
                ? std::min(1.0, leftover[r] / want_total[r])
                : 1.0;
        grant[r] = want[r] * scale;
      }
      received[i] = grant;
    }

    // Progress, histories, metrics samples.
    std::vector<cluster::AllocationSample> samples;
    samples.reserve(running.size());
    for (std::size_t i = 0; i < running.size(); ++i) {
      RunningJob& rj = running[i];
      // Resource pressure slows execution convexly (thrashing): a slot at
      // satisfaction ratio rho advances rho^p slots of work.
      const double ratio = bottleneck_ratio(received[i], desired[i]);
      rj.progress += std::pow(ratio, params.contention_penalty);
      if (rj.kind == sched::AllocationKind::kOpportunistic) {
        if (ratio < 0.05) {
          ++rj.starved_slots;
        } else {
          rj.starved_slots = 0;
        }
      }
      // A telemetry gap drops this slot's unused observation: the
      // predictor sees a NaN marker (imputed downstream) instead of the
      // real sample. Demand history is the scheduler's own bookkeeping
      // and is not subject to telemetry loss.
      const bool gap = faults_on && injector.telemetry_gap(rj.job->id, t);
      if (gap) {
        ++result.telemetry_gaps;
        if (m_gaps != nullptr) m_gaps->add(1);
      }
      for (std::size_t r = 0; r < kNumResources; ++r) {
        rj.demand_history[r].push_back(desired[i][r]);
        // Unused history is request-normalized, matching the corpus the
        // prediction stacks were trained on.
        const double request = rj.job->request[r];
        rj.unused_history[r].push_back(
            gap ? std::numeric_limits<double>::quiet_NaN()
            : request > 0.0
                ? std::max(0.0, rj.allocated[r] - received[i][r]) / request
                : 0.0);
      }
      cluster::AllocationSample sample;
      // Eq. 1's numerator is the job's demand d_{ij,t} — what it needs,
      // not what contention granted it; a squeezed job must not read as
      // perfectly utilized.
      sample.demand = desired[i];
      sample.allocated = rj.kind == sched::AllocationKind::kReserved
                             ? rj.allocated
                             : ResourceVector::zero();
      samples.push_back(sample);
    }
    metrics.observe_slot(samples);

    const std::size_t violations_before = slo.violations();
    const std::size_t completed_before = slo.completed();

    // --- 4. completions and opportunistic preemption ----------------------
    // An opportunistic tenant whose donors departed has no pool left;
    // after a few starved slots its lease is preempted and the task is
    // resubmitted from scratch (opportunistic resources carry no
    // availability guarantee — Marshall et al.'s preemptible leases).
    for (std::size_t i = 0; i < running.size();) {
      RunningJob& rj = running[i];
      if (rj.kind == sched::AllocationKind::kOpportunistic &&
          rj.starved_slots >= 3) {
        // Lease promotion first: if the VM has unallocated capacity the
        // provider simply commits it and the tenant continues as a
        // reserved job; only when the VM is genuinely full is the lease
        // preempted and the task resubmitted from scratch.
        auto& vm = cluster.vm(rj.vm_id);
        if (vm.can_commit(rj.allocated)) {
          vm.commit(rj.allocated);
          rj.kind = sched::AllocationKind::kReserved;
          rj.starved_slots = 0;
          ++result.lease_promotions;
          if (m_promotions != nullptr) m_promotions->add(1);
          ++i;
          continue;
        }
        ++result.lease_preemptions;
        if (m_preemptions != nullptr) m_preemptions->add(1);
        queue.push_back(rj.job);
        running[i] = std::move(running.back());
        running.pop_back();
        continue;
      }
      if (rj.progress + 1e-9 >=
          static_cast<double>(rj.job->duration_slots)) {
        const auto response =
            static_cast<std::size_t>(t - rj.submit_slot + 1);
        slo.record(rj.job->id, rj.job->duration_slots, response,
                   static_cast<double>(rj.job->duration_slots) *
                           rj.job->slo_stretch +
                       params.slo_slack_slots);
        if (rj.kind == sched::AllocationKind::kReserved) {
          cluster.vm(rj.vm_id).release(rj.allocated);
        }
        running[i] = std::move(running.back());
        running.pop_back();
      } else {
        ++i;
      }
    }

    // --- 5. predictions and re-provisioning -------------------------------
    // Short-lived jobs often finish before a full window elapses, so the
    // opportunistic methods refresh every running job's unused forecast
    // each slot (the paper's per-window forecast, rolled forward), while
    // Eq. 20 outcome feedback resolves one window after each pledge.
    if (!running.empty()) {
      const auto start = Clock::now();
      if (opportunistic_method) {
        // Pass 1 — resolve matured Eq. 20 outcomes for every reserved
        // tenant before any forecast is made, so the whole window's batch
        // sees one consistent error-tracker state.
        //
        // Only reserved tenants donate unused resource, and only their
        // series match the training distribution (a squeezed opportunistic
        // tenant's allocation-minus-received is an artifact of contention,
        // not reusable capacity).
        for (RunningJob& rj : running) {
          if (rj.kind != sched::AllocationKind::kReserved) continue;
          if (rj.pending_prediction.has_value() &&
              rj.slots_since_prediction >= L) {
            ResourceVector actual;
            for (std::size_t r = 0; r < kNumResources; ++r) {
              actual[r] = tail_mean(rj.unused_history[r], L);
            }
            predictor_->record_outcome(actual, *rj.pending_prediction);
            rj.pending_prediction.reset();
          }
        }

        // Pass 2 — deterministic gather in roster order (the roster's
        // order is itself seed-deterministic), then ONE batched predictor
        // call for the whole window instead of per-job scalar calls.
        std::vector<RunningJob*> reserved;
        reserved.reserve(running.size());
        predict::VectorBatchRequest request;
        for (RunningJob& rj : running) {
          if (rj.kind != sched::AllocationKind::kReserved) continue;
          reserved.push_back(&rj);
          request.histories.push_back(&rj.unused_history);
        }
        if (faults_on) {
          request.faults.reserve(reserved.size());
          for (const RunningJob* rj : reserved) {
            predict::InjectedFaultVector injected{};
            for (std::size_t r = 0; r < kNumResources; ++r) {
              injected[r] = static_cast<predict::InjectedFault>(
                  injector.predictor_fault(rj->job->id, t, r));
            }
            request.faults.push_back(injected);
          }
        }
        if (predict_pool_ == nullptr && params.threads != 1 &&
            reserved.size() >= dnn::kForwardBatchShardMinRows) {
          predict_pool_ =
              std::make_unique<util::ThreadPool>(params.threads);
        }
        request.pool = predict_pool_.get();
        const std::vector<ResourceVector> fractions =
            predictor_->predict_batch(request);

        // Pass 3 — scatter forecasts back into the per-(job, window)
        // caches and pledge bookkeeping, in the same roster order.
        for (std::size_t i = 0; i < reserved.size(); ++i) {
          RunningJob& rj = *reserved[i];
          const ResourceVector& fraction = fractions[i];
          for (std::size_t r = 0; r < kNumResources; ++r) {
            rj.cached_prediction[r] =
                std::clamp(fraction[r], 0.0, 1.0) * rj.job->request[r];
          }
          rj.has_cached_prediction = true;
          // Pledge a forecast into the Eq. 20/21 error accounting only
          // once the job has a full window of real history behind it;
          // scoring cold-start guesses would poison the gate with errors
          // no amount of prediction skill can remove.
          if (!rj.pending_prediction.has_value()) {
            if (rj.unused_history[0].size() >= L) {
              rj.pending_prediction = fraction;
              rj.slots_since_prediction = 0;
            }
          } else {
            ++rj.slots_since_prediction;
          }
        }
      } else if ((t + 1) % static_cast<std::int64_t>(L) == 0) {
        // Demand-based methods re-size reservations once per window.
        for (RunningJob& rj : running) {
          if (rj.kind != sched::AllocationKind::kReserved) continue;
          const ResourceVector target = scheduler_->reprovision(
              *rj.job, rj.demand_history, rj.allocated);
          auto& vm = cluster.vm(rj.vm_id);
          const ResourceVector grow =
              (target - rj.allocated).clamped_non_negative();
          const ResourceVector shrink =
              (rj.allocated - target).clamped_non_negative();
          const ResourceVector granted_grow =
              ResourceVector::min(grow, vm.unallocated());
          vm.commit(granted_grow);
          vm.release(shrink);
          rj.allocated += granted_grow;
          rj.allocated -= shrink;
          rj.allocated = rj.allocated.clamped_non_negative();
        }
      }
      const double predict_ms = elapsed_ms(start);
      compute_ms += predict_ms;
      if (m_predict_phase != nullptr) m_predict_phase->add(predict_ms);
    }

    if (config_.record_timeline) {
      TimelineSample sample;
      sample.slot = t;
      for (const RunningJob& rj : running) {
        if (rj.kind == sched::AllocationKind::kReserved) {
          ++sample.running_reserved;
        } else {
          ++sample.running_opportunistic;
        }
      }
      sample.queued = queue.size();
      sample.overall_utilization =
          cluster::overall_utilization(samples, params.weights);
      double committed = 0.0, capacity = 0.0;
      for (std::size_t r = 0; r < kNumResources; ++r) {
        committed += params.weights.w[r] * cluster.total_committed()[r];
        capacity += params.weights.w[r] * cluster.total_capacity()[r];
      }
      sample.committed_fraction = capacity > 0.0 ? committed / capacity : 0.0;
      sample.completions = slo.completed() - completed_before;
      sample.violations = slo.violations() - violations_before;
      result.timeline.add(sample);
    }

    // --- 6. termination ---------------------------------------------------
    const bool drained = queue.empty() && running.empty() &&
                         retries.empty() && next_arrival == jobs.size();
    if (drained || t >= max_slot) {
      result.slots_simulated = t + 1;
      if (!drained) {
        // Force-complete stragglers as violations.
        for (const RunningJob& rj : running) {
          const auto response =
              static_cast<std::size_t>(t - rj.submit_slot + 1);
          slo.record(rj.job->id, rj.job->duration_slots, response,
                     static_cast<double>(rj.job->duration_slots) *
                             rj.job->slo_stretch +
                         params.slo_slack_slots);
          ++result.jobs_forced;
        }
        for (const Job* job : queue) {
          const auto response =
              static_cast<std::size_t>(t - job->submit_slot + 1);
          slo.record(job->id, job->duration_slots, response,
                     static_cast<double>(job->duration_slots) *
                             job->slo_stretch +
                         params.slo_slack_slots);
          ++result.jobs_forced;
        }
        for (const PendingRetry& pr : retries) {
          const auto response =
              static_cast<std::size_t>(t - pr.job->submit_slot + 1);
          slo.record(pr.job->id, pr.job->duration_slots, response,
                     static_cast<double>(pr.job->duration_slots) *
                             pr.job->slo_stretch +
                         params.slo_slack_slots);
          ++result.jobs_forced;
        }
      }
      break;
    }
  }

  for (std::size_t r = 0; r < kNumResources; ++r) {
    const auto kind = static_cast<trace::ResourceKind>(r);
    result.mean_utilization[r] = metrics.mean_utilization(kind);
    result.mean_wastage[r] = metrics.mean_wastage(kind);
  }
  result.overall_utilization = metrics.mean_overall_utilization();
  result.overall_wastage = metrics.mean_overall_wastage();
  result.slo_violation_rate = slo.violation_rate();
  result.mean_stretch = slo.mean_stretch();
  result.jobs_completed = slo.completed();
  result.jobs_violated = slo.violations();
  result.degradation_tier = static_cast<int>(predictor_->tier());
  result.compute_latency_ms = compute_ms;
  result.total_latency_ms = compute_ms + comm_us / 1000.0;
  if (obs_on) {
    reg.counter("sim.runs").add(1);
    reg.counter("sim.opportunistic_placements")
        .add(result.opportunistic_placements);
    reg.counter("sim.reserved_placements").add(result.reserved_placements);
    reg.counter("sim.jobs_completed").add(result.jobs_completed);
    reg.counter("sim.jobs_violated").add(result.jobs_violated);
    reg.histogram("sim.run_latency_ms").observe(result.total_latency_ms);
  }
  return result;
}

}  // namespace corp::sim
