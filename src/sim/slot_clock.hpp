// Event-driven time base of the slot loop.
//
// The dense reference clock ticks every 10-second slot. The event clock
// jumps directly to the next slot where anything can change, skipping
// spans where the engine provably does nothing: no queued work (so no
// placement attempt, no RNG draw, no trust sample), no running jobs (so
// no execution accounting, no telemetry append, no prediction call, no
// completion). On such a span every per-slot phase is a no-op —
// SlotMetricsAccumulator::observe_slot early-returns on an empty sample
// set before touching its slot count — so skipping is bit-identical to
// ticking by construction; tests/sim/event_clock_test.cpp pins it under
// fault injection for every shard/thread count.
//
// Event classes bounding a skip (an EventHorizon):
//   - next arrival        (JobSource::next_event_slot),
//   - next crash-retry release (fault backoff queue),
//   - next fault-plan transition (FaultInjector::next_transition_slot —
//     the clock always lands ON a transition slot, never jumps one),
//   - the grace cutoff once the source is exhausted.
// Lease expiry/completion and prediction-refresh deadlines need no
// entries: both only exist while a job runs, and the clock never skips
// while any job runs.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace corp::sim {

/// Sentinel for "no pending event of this class".
inline constexpr std::int64_t kNoEventSlot =
    std::numeric_limits<std::int64_t>::max();

enum class SlotClockMode : std::uint8_t {
  kDense = 0,  ///< Tick every slot — the differential reference.
  kEvent = 1,  ///< Jump empty spans to the next event slot.
};

/// Forecast refresh cadence of the opportunistic methods' slot loop.
enum class PredictCadence : std::uint8_t {
  /// Re-run the batched stack for every reserved tenant each slot (the
  /// paper harness's rolled-forward per-window forecast; the default —
  /// every historical pinned number was produced under it).
  kEverySlot = 0,
  /// Refresh a tenant only when its window watermark moved (history
  /// length crossed a multiple of L), its Eq. 20 pledge just resolved,
  /// or the predictor health tier changed since its last forecast —
  /// amortizing prediction across unchanged telemetry windows.
  kWindow = 1,
};

/// Candidate wake-up slots for one skip decision; kNoEventSlot entries
/// are ignored. Populated by the engine from deterministic state only,
/// so the skip trajectory is a pure function of config and trace.
struct EventHorizon {
  std::int64_t next_arrival = kNoEventSlot;
  std::int64_t next_retry_release = kNoEventSlot;
  std::int64_t next_fault_transition = kNoEventSlot;
  /// Grace cutoff (horizon + grace), armed once the source is exhausted
  /// so the termination check fires on exactly the dense slot.
  std::int64_t cutoff = kNoEventSlot;

  std::int64_t earliest() const;
};

class SlotClock {
 public:
  explicit SlotClock(SlotClockMode mode) : mode_(mode) {}

  SlotClockMode mode() const { return mode_; }

  /// The next slot the engine must simulate after `now`. Dense mode and
  /// busy slots (queued or running work) always step to now + 1; event
  /// mode jumps to the earliest horizon candidate, clamped to at least
  /// now + 1 (an exhausted horizon also degrades to a dense step, so the
  /// clock can never stall or run backwards).
  std::int64_t next(std::int64_t now, bool busy, const EventHorizon& horizon);

  /// Total slots jumped over so far (sum of span lengths).
  std::int64_t skipped_slots() const { return skipped_; }

 private:
  SlotClockMode mode_;
  std::int64_t skipped_ = 0;
};

/// CLI helpers ("dense" | "event", "slot" | "window"); throw
/// std::invalid_argument on anything else.
SlotClockMode parse_slot_clock(std::string_view name);
PredictCadence parse_predict_cadence(std::string_view name);
std::string_view to_string(SlotClockMode mode);
std::string_view to_string(PredictCadence cadence);

}  // namespace corp::sim
