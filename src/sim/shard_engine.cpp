#include "sim/shard_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/sharding.hpp"
#include "dnn/network.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "sched/pred_aware_scheduler.hpp"
#include "sched/trust.hpp"
#include "sim/slot_clock.hpp"
#include "util/seed_streams.hpp"
#include "util/stats.hpp"

namespace corp::sim {

namespace {

using Clock = std::chrono::steady_clock;
using trace::Job;
using trace::kNumResources;
using trace::ResourceVector;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Bottleneck satisfaction ratio: min over resource types with non-trivial
/// demand of received/desired, in [0, 1].
double bottleneck_ratio(const ResourceVector& received,
                        const ResourceVector& desired) {
  constexpr double kEps = 1e-9;
  double ratio = 1.0;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    if (desired[r] > kEps) {
      ratio = std::min(ratio, received[r] / desired[r]);
    }
  }
  return std::clamp(ratio, 0.0, 1.0);
}

/// One running job. Lives in its VM's shard block; `seq` is the global
/// admission sequence number assigned at placement, the sort key of every
/// cross-shard gather (shard rosters stay seq-sorted by construction:
/// removals are stable compactions and placements append strictly
/// increasing seqs).
struct RunningJob {
  const Job* job = nullptr;
  std::uint64_t seq = 0;
  std::uint32_t vm_id = 0;
  sched::AllocationKind kind = sched::AllocationKind::kReserved;
  ResourceVector allocated;
  double progress = 0.0;
  std::int64_t submit_slot = 0;
  sched::DemandHistory demand_history;
  std::array<std::vector<double>, kNumResources> unused_history;
  /// Normalized (fraction-space) forecast awaiting its Eq. 20 outcome.
  std::optional<ResourceVector> pending_prediction;
  std::size_t slots_since_prediction = 0;
  /// Latest per-window unused forecast, aggregated into the VM view.
  ResourceVector cached_prediction;
  bool has_cached_prediction = false;
  /// Health tier the cached forecast was produced under; the window
  /// cadence invalidates the cache when the predictor changes tier.
  predict::DegradationTier forecast_tier = predict::DegradationTier::kPrimary;
  /// Window-cadence refresh forced by an Eq. 20 pledge resolving this
  /// slot (re-pledging must not wait for the next watermark).
  bool refresh_due = false;
  /// Consecutive slots an opportunistic tenant made ~no progress.
  std::size_t starved_slots = 0;
};

/// A shard-local effect that must be applied globally at the slot
/// barrier, in seq order across shards.
struct SlotEvent {
  enum class Kind : std::uint8_t {
    kComplete = 0,  // record in the SLO tracker
    kRequeue = 1,   // preempted opportunistic lease: resubmit the job
  };
  std::uint64_t seq = 0;
  Kind kind = Kind::kComplete;
  const Job* job = nullptr;
};

/// One shard: a contiguous VM block plus structure-of-arrays job state.
/// Workers touch only their own shard during parallel phases; everything
/// that crosses shards is staged in the event/sample buffers and merged
/// serially at the barrier.
struct Shard {
  cluster::ShardRange vms;
  std::vector<RunningJob> jobs;  // invariant: sorted by seq

  // --- per-slot scratch, parallel arrays over `jobs` -------------------
  std::vector<ResourceVector> desired;
  std::vector<ResourceVector> received;
  std::vector<cluster::AllocationSample> samples;
  // Dense per-VM accumulators, indexed vm_id - vms.begin (replaces the
  // historical per-slot hash maps: no hashing on the hot path, and the
  // per-VM accumulation order is the shard-roster seq order).
  std::vector<ResourceVector> vm_consumed;
  std::vector<ResourceVector> vm_opp_want;
  // Shard-local reserved-job tally per partition (heterogeneous caps);
  // merged serially at the barrier with commutative integer adds.
  std::vector<std::size_t> partition_reserved;
  // --- barrier staging -------------------------------------------------
  std::vector<SlotEvent> events;
  std::vector<std::size_t> matured;           // job indices, seq order
  std::vector<ResourceVector> matured_actual;  // aligned with `matured`
  // --- per-slot tallies (merged with commutative integer adds) ---------
  std::size_t gaps = 0;
  std::size_t promotions = 0;
  std::size_t preemptions = 0;
};

/// K-way sorted gather: visits (shard, index) pairs in ascending seq
/// order across shards. Seqs are globally unique, and each shard's list
/// is pre-sorted, so a linear cursor scan per step is exact; shard
/// counts are small, so the scan beats a heap.
template <typename SizeFn, typename SeqFn, typename VisitFn>
void merge_by_seq(std::size_t num_shards, const SizeFn& size_of,
                  const SeqFn& seq_of, const VisitFn& visit) {
  std::vector<std::size_t> cursor(num_shards, 0);
  for (;;) {
    std::size_t best = num_shards;
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (cursor[s] < size_of(s)) {
        const std::uint64_t seq = seq_of(s, cursor[s]);
        if (seq < best_seq) {
          best = s;
          best_seq = seq;
        }
      }
    }
    if (best == num_shards) break;
    visit(best, cursor[best]++);
  }
}

/// Crash-killed jobs waiting out their retry backoff.
struct PendingRetry {
  const Job* job = nullptr;
  std::int64_t release_slot = 0;
};

}  // namespace

ShardEngine::ShardEngine(const SimulationConfig& config,
                         predict::VectorPredictor& predictor,
                         sched::Scheduler& scheduler,
                         std::unique_ptr<util::ThreadPool>& pool_slot)
    : config_(config),
      predictor_(predictor),
      scheduler_(scheduler),
      pool_slot_(pool_slot) {}

SimulationResult ShardEngine::run(const trace::Trace& trace) {
  TraceJobSource source(trace);
  return run(source);
}

SimulationResult ShardEngine::run(JobSource& source) {
  const obs::ScopedTimer run_timer("sim.run");
  // Metric handles hoisted out of the slot loop: the per-slot cost is a
  // handful of relaxed atomic adds when enabled, a null check when not.
  obs::MetricRegistry& reg = obs::registry();
  const bool obs_on = reg.enabled();
  obs::Counter* m_slots = obs_on ? &reg.counter("sim.slot_ticks") : nullptr;
  obs::Counter* m_attempts =
      obs_on ? &reg.counter("sim.placement_attempts") : nullptr;
  obs::Counter* m_failures =
      obs_on ? &reg.counter("sim.placement_failures") : nullptr;
  obs::Counter* m_promotions =
      obs_on ? &reg.counter("sim.gate_promotions") : nullptr;
  obs::Counter* m_preemptions =
      obs_on ? &reg.counter("sim.gate_preemptions") : nullptr;
  obs::PhaseStat* m_place_phase = obs_on ? &reg.phase("sim.place") : nullptr;
  obs::PhaseStat* m_predict_phase =
      obs_on ? &reg.phase("sim.predict") : nullptr;
  // Event-clock counters are created whenever metrics are on (a zero is a
  // meaningful reading: "nothing was skippable"), so downstream schema
  // gates can rely on their presence after any run.
  obs::Counter* m_skipped =
      obs_on ? &reg.counter("event.skipped_slots") : nullptr;
  obs::Counter* m_amortized =
      obs_on ? &reg.counter("event.predictions_amortized") : nullptr;

  const Params& params = config_.params;
  const std::size_t L = params.window_slots;
  SlotClock clock(params.slot_clock);
  const bool window_cadence =
      params.predict_cadence == PredictCadence::kWindow;
  const bool pred_aware = config_.method == Method::kPredAware;
  const bool opportunistic_method = config_.method == Method::kCorp ||
                                    config_.method == Method::kRccr ||
                                    pred_aware;
  // P_th backing the trust signals' gate margin (pred-aware only).
  const double gate_probability_threshold =
      config_.stack.value_or(params.stack_config()).probability_threshold;

  cluster::Cluster cluster(config_.environment);
  cluster::SlotMetricsAccumulator metrics(params.weights);
  cluster::SloTracker slo;
  util::Rng rng(config_.seed ^ 0x9e3779b97f4a7c15ULL);

  // --- shard layout ----------------------------------------------------
  // shards == 0 resolves to one shard per worker thread; any request is
  // clamped to the VM count, so a single VM (or an empty cluster) always
  // collapses to the serial single-shard layout. Pools are gated on the
  // *resolved* worker count: when the hardware only offers one thread
  // (threads == 0 on a single-core box), shipping work to a one-worker
  // pool is a context-switch round trip per dispatch with nothing to
  // overlap — the engine stays inline-serial instead.
  const std::size_t resolved_threads =
      util::ThreadPool::resolve(params.threads);
  const std::size_t requested_shards =
      params.shards == 0 ? resolved_threads : params.shards;
  const cluster::ShardPlan plan = cluster.shard_plan(requested_shards);
  std::vector<Shard> shards(plan.num_shards());
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    shards[s].vms = plan.range(s);
    // Per-VM execution scratch, sized once. Slots zero only the entries
    // their jobs touch (O(roster), not O(VMs/shard)): at a million VMs a
    // full zeroing walk per slot costs ~10 ms and would swamp every slot
    // tick, busy or idle, drowning the event clock's skip win.
    shards[s].vm_consumed.resize(shards[s].vms.size());
    shards[s].vm_opp_want.resize(shards[s].vms.size());
  }
  const std::size_t num_shards = shards.size();
  if (num_shards > 1 && resolved_threads > 1 && pool_slot_ == nullptr) {
    pool_slot_ = std::make_unique<util::ThreadPool>(params.threads);
  }
  // Runs each shard's slot work, fanned out on the pool when one exists.
  // Shard bodies only touch shard-local state (their VM block, their job
  // roster, their staging buffers), so execution order cannot change any
  // result bit.
  const auto for_each_shard =
      [&shards, this](const std::function<void(std::size_t)>& body) {
        if (pool_slot_ == nullptr || shards.size() <= 1) {
          for (std::size_t s = 0; s < shards.size(); ++s) body(s);
        } else {
          pool_slot_->parallel_for(shards.size(), body);
        }
      };
  const auto total_running = [&shards] {
    std::size_t n = 0;
    for (const Shard& shard : shards) n += shard.jobs.size();
    return n;
  };
  std::uint64_t next_seq = 0;

  SimulationResult result;
  result.method = config_.method;

  std::deque<const Job*> queue;
  std::vector<const Job*> arrivals;  // poll buffer, reused across slots

  double compute_ms = 0.0;
  double comm_us = 0.0;

  const ResourceVector max_vm_capacity = cluster.max_vm_capacity();

  // Fault injection. The oracle hangs off its own derived seed stream and
  // with all rates zero is inert: none of the `faults_on` branches below
  // execute, no randomness is drawn, and the run is bit-identical to a
  // build without the subsystem. The crash plan spans the horizon known
  // at entry: exact for a materialized trace; for a streaming source
  // (horizon discovered incrementally) VM-crash schedules only cover the
  // initially-known span, so fault studies should materialize first.
  fault::FaultInjector injector(
      config_.faults, util::derive_seed(config_.seed, util::seed_stream::kFault),
      cluster.num_vms(), source.horizon_slots() + config_.grace_slots + 1);
  const bool faults_on = injector.enabled();
  obs::Counter* m_vm_crashes =
      obs_on && faults_on ? &reg.counter("fault.vm_crashes") : nullptr;
  obs::Counter* m_vm_recoveries =
      obs_on && faults_on ? &reg.counter("fault.vm_recoveries") : nullptr;
  obs::Counter* m_jobs_killed =
      obs_on && faults_on ? &reg.counter("fault.jobs_killed") : nullptr;
  obs::Counter* m_job_retries =
      obs_on && faults_on ? &reg.counter("fault.job_retries") : nullptr;
  obs::Counter* m_jobs_dropped =
      obs_on && faults_on ? &reg.counter("fault.jobs_dropped") : nullptr;
  obs::Counter* m_gaps =
      obs_on && faults_on ? &reg.counter("fault.telemetry_gaps") : nullptr;
  obs::Counter* m_stragglers =
      obs_on && faults_on ? &reg.counter("fault.straggler_placements")
                          : nullptr;

  std::vector<PendingRetry> retries;
  std::unordered_map<std::uint64_t, std::size_t> crash_kills;

  // Merged per-slot sample buffer (global seq order), reused across slots.
  std::vector<cluster::AllocationSample> slot_samples;

  // Scheduler view table, allocated once: at 100k VMs a fresh
  // zero-initialized vector every placement slot is a serial multi-MB
  // construction before any shard can start filling. Each shard fully
  // overwrites its own slice below, so reuse is safe.
  std::vector<sched::VmView> views(cluster.num_vms());

  // Heterogeneous partition admission caps: active only when some node
  // class limits its concurrently reserved jobs. Counts are recomputed
  // from the shard rosters every placement slot (no incremental counter
  // to race with parallel completions), merged serially below.
  const std::size_t num_partitions = cluster.num_partitions();
  bool partition_caps = false;
  for (std::size_t p = 0; p < num_partitions; ++p) {
    if (cluster.partition_reserved_cap(p) > 0) partition_caps = true;
  }
  std::vector<std::size_t> partition_reserved(num_partitions, 0);
  std::vector<std::uint8_t> partition_open(num_partitions, 1);

  for (std::int64_t t = 0;;) {
    ++result.slots_ticked;
    if (m_slots != nullptr) m_slots->add(1);

    // --- 0. fault transitions and retry release -----------------------
    // Serial: crashes are rare, and each transition touches exactly one
    // VM's shard block (stable compaction keeps the roster seq-sorted, so
    // the kill/retry event order is shard-count invariant).
    if (faults_on) {
      for (const fault::VmTransition& tr : injector.transitions_at(t)) {
        auto& vm = cluster.vm(tr.vm_id);
        if (tr.up) {
          vm.recover();
          ++result.vm_recoveries;
          if (m_vm_recoveries != nullptr) m_vm_recoveries->add(1);
          continue;
        }
        vm.crash();
        ++result.vm_crashes;
        if (m_vm_crashes != nullptr) m_vm_crashes->add(1);
        // Every tenant dies with the VM — reserved and opportunistic
        // alike (the pool the latter ride is gone). Killed jobs restart
        // from scratch after a capped exponential backoff until their
        // retry budget is spent; the response clock keeps running, so
        // retries eat into the SLO threshold.
        Shard& shard = shards[plan.shard_of(tr.vm_id)];
        std::size_t write = 0;
        for (std::size_t i = 0; i < shard.jobs.size(); ++i) {
          RunningJob& rj = shard.jobs[i];
          if (rj.vm_id != tr.vm_id) {
            if (write != i) shard.jobs[write] = std::move(shard.jobs[i]);
            ++write;
            continue;
          }
          ++result.jobs_killed;
          if (m_jobs_killed != nullptr) m_jobs_killed->add(1);
          const std::size_t attempt = ++crash_kills[rj.job->id];
          if (attempt > injector.config().retry_budget) {
            slo.record_failure(
                rj.job->id, rj.job->duration_slots,
                static_cast<std::size_t>(t - rj.submit_slot + 1),
                static_cast<double>(rj.job->duration_slots) *
                        rj.job->slo_stretch +
                    params.slo_slack_slots);
            ++result.jobs_dropped;
            if (m_jobs_dropped != nullptr) m_jobs_dropped->add(1);
            source.retire(*rj.job);
          } else {
            retries.push_back({rj.job, t + injector.retry_backoff(attempt)});
            ++result.job_retries;
            if (m_job_retries != nullptr) m_job_retries->add(1);
          }
        }
        shard.jobs.resize(write);
      }
      for (std::size_t i = 0; i < retries.size();) {
        if (retries[i].release_slot <= t) {
          queue.push_back(retries[i].job);
          retries.erase(retries.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }

    // --- 1. arrivals --------------------------------------------------
    // The source delivers this slot's jobs in (submit_slot, id) order —
    // the same order a sorted materialized trace yields — and, for the
    // streaming source, blocks on ingest until no late emission can still
    // land at or before t.
    arrivals.clear();
    source.poll(t, arrivals);
    for (const Job* job : arrivals) queue.push_back(job);

    // --- 2. placement -------------------------------------------------
    // Candidate collection and gate evaluation fan out per shard (each
    // worker fills its own contiguous slice of the view table from its
    // own VM block and job roster); the placement decision itself stays
    // centralized, slurmctld-style.
    if (!queue.empty()) {
      std::vector<const Job*> batch(queue.begin(), queue.end());

      // VM views: unallocated from the ledger; predicted unused is the
      // sum of the per-job cached forecasts over reserved tenants. The
      // table is the hoisted buffer above; this loop resets every slice
      // element, so nothing from the previous slot can leak through.
      const bool unlocked = opportunistic_method && predictor_.unlocked();
      for_each_shard([&](std::size_t s) {
        Shard& shard = shards[s];
        for (std::uint32_t v = shard.vms.begin; v < shard.vms.end; ++v) {
          views[v] = sched::VmView{};
          views[v].vm_id = cluster.vm(v).id();
          views[v].unallocated = cluster.vm(v).unallocated();
          views[v].capacity = cluster.vm(v).capacity();
        }
        if (partition_caps) {
          shard.partition_reserved.assign(num_partitions, 0);
          for (const RunningJob& rj : shard.jobs) {
            if (rj.kind == sched::AllocationKind::kReserved) {
              ++shard.partition_reserved[cluster.vm_partition(rj.vm_id)];
            }
          }
        }
        if (!opportunistic_method) return;
        for (const RunningJob& rj : shard.jobs) {
          if (rj.kind == sched::AllocationKind::kReserved) {
            if (rj.has_cached_prediction) {
              views[rj.vm_id].predicted_unused += rj.cached_prediction;
            }
          } else {
            // Tenants already riding this VM's unused pool consume it:
            // without this subtraction the same pool would be pledged to
            // new tenants every slot until the donors starve.
            views[rj.vm_id].predicted_unused -= rj.allocated;
          }
        }
        for (std::uint32_t v = shard.vms.begin; v < shard.vms.end; ++v) {
          sched::VmView& view = views[v];
          view.predicted_unused = view.predicted_unused.clamped_non_negative();
          // Predicted unused can never exceed what is committed.
          view.predicted_unused = ResourceVector::min(
              view.predicted_unused, cluster.vm(view.vm_id).committed());
          view.unlocked = unlocked && view.predicted_unused.total() > 0.0;
        }
      });

      if (partition_caps) {
        // Serial merge (commutative integer adds), then advertise which
        // partitions still admit reservations via the views.
        std::fill(partition_reserved.begin(), partition_reserved.end(),
                  std::size_t{0});
        for (const Shard& shard : shards) {
          for (std::size_t p = 0; p < num_partitions; ++p) {
            partition_reserved[p] += shard.partition_reserved[p];
          }
        }
        for (std::size_t p = 0; p < num_partitions; ++p) {
          const std::size_t cap = cluster.partition_reserved_cap(p);
          partition_open[p] =
              static_cast<std::uint8_t>(cap == 0 || partition_reserved[p] < cap);
        }
        for_each_shard([&](std::size_t s) {
          const Shard& shard = shards[s];
          for (std::uint32_t v = shard.vms.begin; v < shard.vms.end; ++v) {
            views[v].accepts_reserved = partition_open[cluster.vm_partition(v)] != 0;
          }
        });
      }

      sched::SchedulerContext ctx;
      ctx.vms = views;
      ctx.max_vm_capacity = max_vm_capacity;
      ctx.rng = &rng;

      // Predictor-health snapshot for trust-adaptive scheduling. Sampled
      // in the serial centralized placement step from state that is
      // bit-identical across shard/thread counts (the monitor and the
      // trackers are fed in seq order), so the trust trajectory is too.
      sched::TrustSignals trust_signals;
      if (pred_aware) {
        trust_signals.tier = predictor_.tier();
        trust_signals.window_fault_fraction =
            predictor_.health().window_fault_fraction();
        double min_gate = 1.0;
        for (std::size_t r = 0; r < kNumResources; ++r) {
          min_gate =
              std::min(min_gate, predictor_.stack(r).gate_probability());
        }
        trust_signals.min_gate_probability = min_gate;
        trust_signals.probability_threshold = gate_probability_threshold;
        ctx.trust = &trust_signals;
      }

      const auto start = Clock::now();
      const auto decisions = scheduler_.place(batch, ctx);
      const double place_ms = elapsed_ms(start);
      compute_ms += place_ms;
      if (m_place_phase != nullptr) m_place_phase->add(place_ms);
      if (m_attempts != nullptr) m_attempts->add(batch.size());
      comm_us += config_.environment.comm_overhead_us *
                 static_cast<double>(decisions.size());

      std::vector<bool> placed(batch.size(), false);
      for (const auto& decision : decisions) {
        auto& vm = cluster.vm(decision.vm_id);
        if (partition_caps &&
            decision.kind == sched::AllocationKind::kReserved) {
          // Hard admission check: the views advertised pre-batch counts,
          // so a batch of reserved placements can still overrun a
          // partition cap. Rejected members stay unplaced and requeue.
          const std::size_t p = cluster.vm_partition(decision.vm_id);
          const std::size_t cap = cluster.partition_reserved_cap(p);
          if (cap > 0 &&
              partition_reserved[p] + decision.batch_indices.size() > cap) {
            continue;
          }
          partition_reserved[p] += decision.batch_indices.size();
        }
        if (decision.kind == sched::AllocationKind::kReserved) {
          // The scheduler worked from a snapshot; clamp against the live
          // ledger to absorb floating-point dust.
          const ResourceVector amount =
              ResourceVector::min(decision.allocated, vm.unallocated());
          vm.commit(amount);
          ++result.reserved_placements;
        } else {
          ++result.opportunistic_placements;
        }
        // Split the entity's allocation across members: each member is
        // accounted its own share. For reserved single jobs the decision
        // amount may be method-sized (CloudScale/DRA below request).
        const bool single = decision.batch_indices.size() == 1;
        Shard& shard = shards[plan.shard_of(decision.vm_id)];
        for (std::size_t member : decision.batch_indices) {
          placed[member] = true;
          const Job& job = *batch[member];
          if (m_stragglers != nullptr && injector.is_straggler(job.id)) {
            m_stragglers->add(1);
          }
          RunningJob rj;
          rj.job = &job;
          rj.seq = next_seq++;
          rj.vm_id = decision.vm_id;
          rj.kind = decision.kind;
          rj.allocated = single ? decision.allocated
                                : job.request * decision.request_fraction;
          rj.submit_slot = job.submit_slot;
          shard.jobs.push_back(std::move(rj));
        }
      }
      queue.clear();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!placed[i]) {
          queue.push_back(batch[i]);
          if (m_failures != nullptr) m_failures->add(1);
        }
      }
    }

    // --- 3. execution (parallel per shard) ----------------------------
    // Pass 1: reserved jobs receive min(demand, allocation); accumulate
    // per-VM consumption. Pass 2: opportunistic jobs share each VM's
    // *allocated-but-unused* resource (committed minus what the reserved
    // tenants actually consume) proportionally per resource type.
    // Uncommitted capacity is NOT donated — it is held for future
    // reservations — so when donor jobs peak, opportunistic tenants
    // starve; this is exactly the risk the prediction stack and the
    // Eq. 21 gate exist to manage. Pass 3: progress, histories, samples.
    // All state is shard-local; every VM's accumulation order is its
    // jobs' seq order, so the float sums are shard-count invariant.
    for_each_shard([&](std::size_t s) {
      Shard& shard = shards[s];
      const std::size_t n = shard.jobs.size();
      shard.desired.resize(n);
      shard.received.resize(n);
      shard.samples.resize(n);
      // Zero only the scratch entries this slot's roster touches: later
      // passes never read a VM that hosts no job, so untouched (stale)
      // entries are unobservable and the walk stays O(roster) instead of
      // O(VMs/shard) — the difference between ~10 ms and ~1 us per slot
      // tick at a million VMs.
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t local_vm = shard.jobs[i].vm_id - shard.vms.begin;
        shard.vm_consumed[local_vm] = ResourceVector{};
        shard.vm_opp_want[local_vm] = ResourceVector{};
      }
      for (std::size_t i = 0; i < n; ++i) {
        RunningJob& rj = shard.jobs[i];
        const auto idx = static_cast<std::size_t>(rj.progress);
        shard.desired[i] = rj.job->demand_at(idx);
        if (faults_on && injector.is_straggler(rj.job->id)) {
          // Demand-spike straggler: inflate the demand curve, capped at
          // the request (a tenant cannot demand beyond its reservation).
          shard.desired[i] = ResourceVector::min(
              shard.desired[i] * injector.demand_multiplier(rj.job->id),
              rj.job->request);
        }
        const std::size_t local_vm = rj.vm_id - shard.vms.begin;
        if (rj.kind == sched::AllocationKind::kReserved) {
          shard.received[i] =
              ResourceVector::min(shard.desired[i], rj.allocated);
          shard.vm_consumed[local_vm] += shard.received[i];
        } else {
          shard.vm_opp_want[local_vm] +=
              ResourceVector::min(shard.desired[i], rj.allocated);
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        RunningJob& rj = shard.jobs[i];
        if (rj.kind != sched::AllocationKind::kOpportunistic) continue;
        const std::size_t local_vm = rj.vm_id - shard.vms.begin;
        const auto& vm = cluster.vm(rj.vm_id);
        const ResourceVector leftover =
            (vm.committed() - shard.vm_consumed[local_vm])
                .clamped_non_negative();
        const ResourceVector& want_total = shard.vm_opp_want[local_vm];
        const ResourceVector want =
            ResourceVector::min(shard.desired[i], rj.allocated);
        ResourceVector grant;
        for (std::size_t r = 0; r < kNumResources; ++r) {
          const double scale = want_total[r] > 1e-12
                                   ? std::min(1.0, leftover[r] / want_total[r])
                                   : 1.0;
          grant[r] = want[r] * scale;
        }
        shard.received[i] = grant;
      }
      shard.gaps = 0;
      for (std::size_t i = 0; i < n; ++i) {
        RunningJob& rj = shard.jobs[i];
        // Resource pressure slows execution convexly (thrashing): a slot
        // at satisfaction ratio rho advances rho^p slots of work.
        const double ratio = bottleneck_ratio(shard.received[i],
                                              shard.desired[i]);
        rj.progress += std::pow(ratio, params.contention_penalty);
        if (rj.kind == sched::AllocationKind::kOpportunistic) {
          if (ratio < 0.05) {
            ++rj.starved_slots;
          } else {
            rj.starved_slots = 0;
          }
        }
        // A telemetry gap drops this slot's unused observation: the
        // predictor sees a NaN marker (imputed downstream) instead of the
        // real sample. Demand history is the scheduler's own bookkeeping
        // and is not subject to telemetry loss.
        const bool gap = faults_on && injector.telemetry_gap(rj.job->id, t);
        if (gap) ++shard.gaps;
        for (std::size_t r = 0; r < kNumResources; ++r) {
          rj.demand_history[r].push_back(shard.desired[i][r]);
          // Unused history is request-normalized, matching the corpus the
          // prediction stacks were trained on.
          const double request = rj.job->request[r];
          rj.unused_history[r].push_back(
              gap ? std::numeric_limits<double>::quiet_NaN()
              : request > 0.0
                  ? std::max(0.0, rj.allocated[r] - shard.received[i][r]) /
                        request
                  : 0.0);
        }
        // Eq. 1's numerator is the job's demand d_{ij,t} — what it needs,
        // not what contention granted it; a squeezed job must not read as
        // perfectly utilized.
        shard.samples[i].demand = shard.desired[i];
        shard.samples[i].allocated =
            rj.kind == sched::AllocationKind::kReserved
                ? rj.allocated
                : ResourceVector::zero();
      }
    });

    // Barrier: deterministic sorted gather of the per-shard sample and
    // gap tallies. Samples feed the Eq. 1-4 sums in global seq order, so
    // the accumulator sees the exact serial addition order.
    slot_samples.clear();
    merge_by_seq(
        num_shards, [&](std::size_t s) { return shards[s].samples.size(); },
        [&](std::size_t s, std::size_t i) { return shards[s].jobs[i].seq; },
        [&](std::size_t s, std::size_t i) {
          slot_samples.push_back(shards[s].samples[i]);
        });
    metrics.observe_slot(slot_samples);
    for (const Shard& shard : shards) {
      result.telemetry_gaps += shard.gaps;
      if (m_gaps != nullptr && shard.gaps > 0) {
        m_gaps->add(shard.gaps);
      }
    }

    const std::size_t violations_before = slo.violations();
    const std::size_t completed_before = slo.completed();

    // --- 4. completions and opportunistic preemption (parallel) -------
    // An opportunistic tenant whose donors departed has no pool left;
    // after a few starved slots its lease is preempted and the task is
    // resubmitted from scratch (opportunistic resources carry no
    // availability guarantee — Marshall et al.'s preemptible leases).
    // Lease promotion and the reservation release are VM-local, so each
    // shard applies them directly; SLO records and requeues are staged as
    // events and applied at the barrier in seq order.
    for_each_shard([&](std::size_t s) {
      Shard& shard = shards[s];
      shard.events.clear();
      shard.promotions = 0;
      shard.preemptions = 0;
      std::size_t write = 0;
      for (std::size_t i = 0; i < shard.jobs.size(); ++i) {
        RunningJob& rj = shard.jobs[i];
        bool keep = true;
        if (rj.kind == sched::AllocationKind::kOpportunistic &&
            rj.starved_slots >= 3) {
          // Lease promotion first: if the VM has unallocated capacity the
          // provider simply commits it and the tenant continues as a
          // reserved job; only when the VM is genuinely full is the lease
          // preempted and the task resubmitted from scratch.
          auto& vm = cluster.vm(rj.vm_id);
          if (vm.can_commit(rj.allocated)) {
            vm.commit(rj.allocated);
            rj.kind = sched::AllocationKind::kReserved;
            rj.starved_slots = 0;
            ++shard.promotions;
          } else {
            ++shard.preemptions;
            shard.events.push_back(
                {rj.seq, SlotEvent::Kind::kRequeue, rj.job});
            keep = false;
          }
        } else if (rj.progress + 1e-9 >=
                   static_cast<double>(rj.job->duration_slots)) {
          shard.events.push_back(
              {rj.seq, SlotEvent::Kind::kComplete, rj.job});
          if (rj.kind == sched::AllocationKind::kReserved) {
            cluster.vm(rj.vm_id).release(rj.allocated);
          }
          keep = false;
        }
        if (keep) {
          if (write != i) shard.jobs[write] = std::move(shard.jobs[i]);
          ++write;
        }
      }
      shard.jobs.resize(write);
    });
    for (const Shard& shard : shards) {
      result.lease_promotions += shard.promotions;
      result.lease_preemptions += shard.preemptions;
      if (m_promotions != nullptr && shard.promotions > 0) {
        m_promotions->add(shard.promotions);
      }
      if (m_preemptions != nullptr && shard.preemptions > 0) {
        m_preemptions->add(shard.preemptions);
      }
    }
    merge_by_seq(
        num_shards, [&](std::size_t s) { return shards[s].events.size(); },
        [&](std::size_t s, std::size_t i) { return shards[s].events[i].seq; },
        [&](std::size_t s, std::size_t i) {
          const SlotEvent& event = shards[s].events[i];
          if (event.kind == SlotEvent::Kind::kRequeue) {
            queue.push_back(event.job);
            return;
          }
          const auto response =
              static_cast<std::size_t>(t - event.job->submit_slot + 1);
          slo.record(event.job->id, event.job->duration_slots, response,
                     static_cast<double>(event.job->duration_slots) *
                             event.job->slo_stretch +
                         params.slo_slack_slots);
          source.retire(*event.job);
        });

    // --- 5. predictions and re-provisioning ---------------------------
    // Short-lived jobs often finish before a full window elapses, so the
    // opportunistic methods refresh every running job's unused forecast
    // each slot (the paper's per-window forecast, rolled forward), while
    // Eq. 20 outcome feedback resolves one window after each pledge.
    if (total_running() > 0) {
      const auto start = Clock::now();
      if (opportunistic_method) {
        // Pass 1 — resolve matured Eq. 20 outcomes for every reserved
        // tenant before any forecast is made, so the whole window's batch
        // sees one consistent error-tracker state. The window tail means
        // are shard-local math and fan out; the stateful record_outcome
        // calls are applied at the barrier in seq order.
        //
        // Only reserved tenants donate unused resource, and only their
        // series match the training distribution (a squeezed
        // opportunistic tenant's allocation-minus-received is an artifact
        // of contention, not reusable capacity).
        for_each_shard([&](std::size_t s) {
          Shard& shard = shards[s];
          shard.matured.clear();
          shard.matured_actual.clear();
          for (std::size_t i = 0; i < shard.jobs.size(); ++i) {
            RunningJob& rj = shard.jobs[i];
            if (rj.kind != sched::AllocationKind::kReserved) continue;
            if (!rj.pending_prediction.has_value() ||
                rj.slots_since_prediction < L) {
              continue;
            }
            ResourceVector actual;
            for (std::size_t r = 0; r < kNumResources; ++r) {
              actual[r] = util::tail_mean(rj.unused_history[r], L);
            }
            shard.matured.push_back(i);
            shard.matured_actual.push_back(actual);
          }
        });
        merge_by_seq(
            num_shards,
            [&](std::size_t s) { return shards[s].matured.size(); },
            [&](std::size_t s, std::size_t i) {
              return shards[s].jobs[shards[s].matured[i]].seq;
            },
            [&](std::size_t s, std::size_t i) {
              RunningJob& rj = shards[s].jobs[shards[s].matured[i]];
              predictor_.record_outcome(shards[s].matured_actual[i],
                                        *rj.pending_prediction);
              rj.pending_prediction.reset();
              // A resolved pledge re-pledges on its next forecast; the
              // window cadence must not defer that to the next watermark.
              rj.refresh_due = true;
            });

        // Pass 2 — deterministic sorted gather of reserved tenants in seq
        // order, then ONE batched predictor call for the whole window
        // instead of per-job scalar calls. Under the per-slot cadence
        // every reserved tenant is gathered; the window cadence gathers
        // only tenants whose forecast is actually stale — window
        // watermark moved (history crossed a multiple of L), Eq. 20
        // pledge just resolved, health tier changed, or no cache yet —
        // and keeps the others' pledge clocks ticking exactly as the
        // scatter below would. The skip predicate reads only per-job
        // state plus the serially-fed monitor tier, so the gathered set
        // (hence the monitor's observation stream) is bit-identical
        // across shard/thread counts and clock modes.
        const predict::DegradationTier tier_now = predictor_.tier();
        std::size_t amortized = 0;
        std::vector<RunningJob*> reserved;
        reserved.reserve(slot_samples.size());
        predict::VectorBatchRequest request;
        merge_by_seq(
            num_shards, [&](std::size_t s) { return shards[s].jobs.size(); },
            [&](std::size_t s, std::size_t i) { return shards[s].jobs[i].seq; },
            [&](std::size_t s, std::size_t i) {
              RunningJob& rj = shards[s].jobs[i];
              if (rj.kind != sched::AllocationKind::kReserved) return;
              if (window_cadence && rj.has_cached_prediction &&
                  !rj.refresh_due && rj.forecast_tier == tier_now &&
                  rj.unused_history[0].size() % L != 0) {
                ++amortized;
                if (rj.pending_prediction.has_value()) {
                  ++rj.slots_since_prediction;
                }
                return;
              }
              reserved.push_back(&rj);
              request.histories.push_back(&rj.unused_history);
            });
        if (amortized > 0) {
          result.predictions_amortized += amortized;
          if (m_amortized != nullptr) m_amortized->add(amortized);
        }
        if (faults_on) {
          request.faults.reserve(reserved.size());
          for (const RunningJob* rj : reserved) {
            predict::InjectedFaultVector injected{};
            for (std::size_t r = 0; r < kNumResources; ++r) {
              injected[r] = static_cast<predict::InjectedFault>(
                  injector.predictor_fault(rj->job->id, t, r));
            }
            request.faults.push_back(injected);
          }
        }
        if (pool_slot_ == nullptr && resolved_threads > 1 &&
            reserved.size() >= dnn::kForwardBatchShardMinRows) {
          pool_slot_ = std::make_unique<util::ThreadPool>(params.threads);
        }
        request.pool = pool_slot_.get();
        const std::vector<ResourceVector> fractions =
            predictor_.predict_batch(request);

        // Pass 3 — scatter forecasts back into the per-(job, window)
        // caches and pledge bookkeeping, in the same seq order.
        const predict::DegradationTier tier_after = predictor_.tier();
        for (std::size_t i = 0; i < reserved.size(); ++i) {
          RunningJob& rj = *reserved[i];
          const ResourceVector& fraction = fractions[i];
          for (std::size_t r = 0; r < kNumResources; ++r) {
            rj.cached_prediction[r] =
                std::clamp(fraction[r], 0.0, 1.0) * rj.job->request[r];
          }
          rj.has_cached_prediction = true;
          rj.forecast_tier = tier_after;
          rj.refresh_due = false;
          // Pledge a forecast into the Eq. 20/21 error accounting only
          // once the job has a full window of real history behind it;
          // scoring cold-start guesses would poison the gate with errors
          // no amount of prediction skill can remove.
          if (!rj.pending_prediction.has_value()) {
            if (rj.unused_history[0].size() >= L) {
              rj.pending_prediction = fraction;
              rj.slots_since_prediction = 0;
            }
          } else {
            ++rj.slots_since_prediction;
          }
        }
      } else if ((t + 1) % static_cast<std::int64_t>(L) == 0) {
        // Demand-based methods re-size reservations once per window.
        // Serial in seq order: the schedulers' internal forecasters are
        // stateful, and commit/release must apply in a canonical order.
        merge_by_seq(
            num_shards, [&](std::size_t s) { return shards[s].jobs.size(); },
            [&](std::size_t s, std::size_t i) { return shards[s].jobs[i].seq; },
            [&](std::size_t s, std::size_t i) {
              RunningJob& rj = shards[s].jobs[i];
              if (rj.kind != sched::AllocationKind::kReserved) return;
              const ResourceVector target = scheduler_.reprovision(
                  *rj.job, rj.demand_history, rj.allocated);
              auto& vm = cluster.vm(rj.vm_id);
              const ResourceVector grow =
                  (target - rj.allocated).clamped_non_negative();
              const ResourceVector shrink =
                  (rj.allocated - target).clamped_non_negative();
              const ResourceVector granted_grow =
                  ResourceVector::min(grow, vm.unallocated());
              vm.commit(granted_grow);
              vm.release(shrink);
              rj.allocated += granted_grow;
              rj.allocated -= shrink;
              rj.allocated = rj.allocated.clamped_non_negative();
            });
      }
      const double predict_ms = elapsed_ms(start);
      compute_ms += predict_ms;
      if (m_predict_phase != nullptr) m_predict_phase->add(predict_ms);
    }

    if (config_.record_timeline) {
      TimelineSample sample;
      sample.slot = t;
      for (const Shard& shard : shards) {
        for (const RunningJob& rj : shard.jobs) {
          if (rj.kind == sched::AllocationKind::kReserved) {
            ++sample.running_reserved;
          } else {
            ++sample.running_opportunistic;
          }
        }
      }
      sample.queued = queue.size();
      sample.overall_utilization =
          cluster::overall_utilization(slot_samples, params.weights);
      double committed = 0.0, capacity = 0.0;
      for (std::size_t r = 0; r < kNumResources; ++r) {
        committed += params.weights.w[r] * cluster.total_committed()[r];
        capacity += params.weights.w[r] * cluster.total_capacity()[r];
      }
      sample.committed_fraction = capacity > 0.0 ? committed / capacity : 0.0;
      sample.completions = slo.completed() - completed_before;
      sample.violations = slo.violations() - violations_before;
      result.timeline.add(sample);
    }

    // --- 6. termination -----------------------------------------------
    // The grace cutoff is only meaningful relative to the *full* trace
    // horizon, which a streaming source knows exactly once exhausted; for
    // a materialized trace, t >= max_slot already implies every arrival
    // was delivered, so gating the cutoff on exhaustion changes nothing.
    const bool drained = queue.empty() && total_running() == 0 &&
                         retries.empty() && source.exhausted();
    const std::int64_t max_slot =
        source.horizon_slots() + config_.grace_slots;
    if (drained || (source.exhausted() && t >= max_slot)) {
      result.slots_simulated = t + 1;
      if (!drained) {
        // Force-complete stragglers as violations, running jobs first (in
        // seq order across shards), then the queue, then pending retries.
        merge_by_seq(
            num_shards, [&](std::size_t s) { return shards[s].jobs.size(); },
            [&](std::size_t s, std::size_t i) { return shards[s].jobs[i].seq; },
            [&](std::size_t s, std::size_t i) {
              const RunningJob& rj = shards[s].jobs[i];
              const auto response =
                  static_cast<std::size_t>(t - rj.submit_slot + 1);
              slo.record(rj.job->id, rj.job->duration_slots, response,
                         static_cast<double>(rj.job->duration_slots) *
                                 rj.job->slo_stretch +
                             params.slo_slack_slots);
              ++result.jobs_forced;
              source.retire(*rj.job);
            });
        for (const Job* job : queue) {
          const auto response =
              static_cast<std::size_t>(t - job->submit_slot + 1);
          slo.record(job->id, job->duration_slots, response,
                     static_cast<double>(job->duration_slots) *
                             job->slo_stretch +
                         params.slo_slack_slots);
          ++result.jobs_forced;
          source.retire(*job);
        }
        for (const PendingRetry& pr : retries) {
          const auto response =
              static_cast<std::size_t>(t - pr.job->submit_slot + 1);
          slo.record(pr.job->id, pr.job->duration_slots, response,
                     static_cast<double>(pr.job->duration_slots) *
                             pr.job->slo_stretch +
                         params.slo_slack_slots);
          ++result.jobs_forced;
          source.retire(*pr.job);
        }
      }
      break;
    }

    // --- 7. clock advance ---------------------------------------------
    // Busy slots always step densely: queued work retries placement (and
    // draws scheduler tie-breaks from the RNG) every slot, and running
    // jobs execute, complete and feed prediction. Only provably inert
    // spans are jumped — and the horizon below lands the clock ON every
    // slot where any engine input can change, so the jump is exact, not
    // approximate (see sim/slot_clock.hpp for the no-op argument).
    std::int64_t next = t + 1;
    if (clock.mode() == SlotClockMode::kEvent && queue.empty() &&
        total_running() == 0) {
      EventHorizon horizon;
      horizon.next_arrival = source.next_event_slot(t);
      for (const PendingRetry& pr : retries) {
        horizon.next_retry_release =
            std::min(horizon.next_retry_release, pr.release_slot);
      }
      if (faults_on) {
        horizon.next_fault_transition = injector.next_transition_slot(t + 1);
      }
      if (source.exhausted()) horizon.cutoff = max_slot;
      next = clock.next(t, /*busy=*/false, horizon);
      if (config_.record_timeline && next > t + 1) {
        // Closed-form fast-forward of the per-slot record: nothing runs
        // or queues on a jumped slot, its sample set is empty, and no
        // fault transition lands strictly inside the span, so the idle
        // sample the dense loop would emit is constant — replicate it
        // with only the slot number varying.
        TimelineSample idle;
        idle.overall_utilization = cluster::overall_utilization(
            std::span<const cluster::AllocationSample>{}, params.weights);
        double committed = 0.0, capacity = 0.0;
        for (std::size_t r = 0; r < kNumResources; ++r) {
          committed += params.weights.w[r] * cluster.total_committed()[r];
          capacity += params.weights.w[r] * cluster.total_capacity()[r];
        }
        idle.committed_fraction =
            capacity > 0.0 ? committed / capacity : 0.0;
        for (std::int64_t u = t + 1; u < next; ++u) {
          idle.slot = u;
          result.timeline.add(idle);
        }
      }
    }
    t = next;
  }
  result.slots_skipped = clock.skipped_slots();
  if (m_skipped != nullptr) m_skipped->add(result.slots_skipped);

  for (std::size_t r = 0; r < kNumResources; ++r) {
    const auto kind = static_cast<trace::ResourceKind>(r);
    result.mean_utilization[r] = metrics.mean_utilization(kind);
    result.mean_wastage[r] = metrics.mean_wastage(kind);
  }
  result.overall_utilization = metrics.mean_overall_utilization();
  result.overall_wastage = metrics.mean_overall_wastage();
  result.slo_violation_rate = slo.violation_rate();
  result.mean_stretch = slo.mean_stretch();
  result.jobs_completed = slo.completed();
  result.jobs_violated = slo.violations();
  result.degradation_tier = static_cast<int>(predictor_.tier());
  if (pred_aware) {
    const auto* scheduler =
        dynamic_cast<const sched::PredictionAwareScheduler*>(&scheduler_);
    if (scheduler != nullptr) result.trust_lambda = scheduler->current_trust();
  }
  result.compute_latency_ms = compute_ms;
  result.total_latency_ms = compute_ms + comm_us / 1000.0;
  if (obs_on) {
    reg.counter("sim.runs").add(1);
    reg.counter("sim.opportunistic_placements")
        .add(result.opportunistic_placements);
    reg.counter("sim.reserved_placements").add(result.reserved_placements);
    reg.counter("sim.jobs_completed").add(result.jobs_completed);
    reg.counter("sim.jobs_violated").add(result.jobs_violated);
    reg.histogram("sim.run_latency_ms").observe(result.total_latency_ms);
  }
  return result;
}

}  // namespace corp::sim
