#include "sim/timeline.hpp"

#include <algorithm>
#include <ostream>

#include "util/csv.hpp"

namespace corp::sim {

std::int64_t Timeline::busiest_slot() const {
  std::int64_t best_slot = 0;
  std::size_t best = 0;
  for (const auto& s : samples_) {
    const std::size_t running =
        s.running_reserved + s.running_opportunistic;
    if (running > best) {
      best = running;
      best_slot = s.slot;
    }
  }
  return best_slot;
}

std::size_t Timeline::peak_running() const {
  std::size_t best = 0;
  for (const auto& s : samples_) {
    best = std::max(best, s.running_reserved + s.running_opportunistic);
  }
  return best;
}

std::size_t Timeline::peak_queue() const {
  std::size_t best = 0;
  for (const auto& s : samples_) best = std::max(best, s.queued);
  return best;
}

void Timeline::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.write_row(std::vector<std::string>{
      "slot", "running_reserved", "running_opportunistic", "queued",
      "overall_utilization", "committed_fraction", "completions",
      "violations"});
  for (const auto& s : samples_) {
    writer.write_row(std::vector<double>{
        static_cast<double>(s.slot),
        static_cast<double>(s.running_reserved),
        static_cast<double>(s.running_opportunistic),
        static_cast<double>(s.queued), s.overall_utilization,
        s.committed_fraction, static_cast<double>(s.completions),
        static_cast<double>(s.violations)});
  }
}

}  // namespace corp::sim
