#include "sim/prediction_eval.hpp"

#include <cmath>

namespace corp::sim {

PredictionEvalResult evaluate_prediction_error(
    predict::VectorPredictor& predictor, const trace::Trace& trace,
    const PredictionEvalConfig& config) {
  PredictionEvalResult result;
  constexpr auto kCpu = static_cast<std::size_t>(trace::ResourceKind::kCpu);
  // Work in request-normalized units (the space the stacks train in) and
  // resolve the relative tolerance against the trace's mean normalized
  // unused CPU.
  double mean_unused = 0.0;
  std::size_t samples = 0;
  for (const trace::Job& job : trace.jobs()) {
    if (job.request[kCpu] <= 0.0) continue;
    for (std::size_t t = 0; t < job.usage.size(); ++t) {
      mean_unused += job.unused_at(t)[kCpu] / job.request[kCpu];
      ++samples;
    }
  }
  if (samples > 0) mean_unused /= static_cast<double>(samples);
  const double epsilon = config.epsilon_relative * mean_unused;

  double sum_error = 0.0;
  double sum_abs_error = 0.0;
  for (const trace::Job& job : trace.jobs()) {
    if (job.duration_slots < config.min_duration_slots) continue;
    if (job.request[kCpu] <= 0.0) continue;
    // Request-normalized unused-CPU series.
    std::vector<double> unused;
    unused.reserve(job.usage.size());
    for (std::size_t t = 0; t < job.usage.size(); ++t) {
      unused.push_back(job.unused_at(t)[kCpu] / job.request[kCpu]);
    }
    const std::size_t split = std::max<std::size_t>(1, unused.size() / 2);
    const std::span<const double> history(unused.data(), split);
    const double predicted = predictor.stack(kCpu).predict(history);
    // The forecast target is the unused amount over the next prediction
    // window (t, t+L] — Sec. III-A's 1-minute horizon — so the "actual"
    // is the mean over at most L slots past the split.
    const std::size_t span_end =
        std::min(unused.size(), split + trace::kWindowSlots);
    double actual = 0.0;
    for (std::size_t t = split; t < span_end; ++t) actual += unused[t];
    actual /= static_cast<double>(span_end - split);

    const double delta = actual - predicted;
    ++result.jobs_evaluated;
    sum_error += delta;
    sum_abs_error += std::abs(delta);
    if (delta >= 0.0 && delta < epsilon) ++result.jobs_correct;
  }
  if (result.jobs_evaluated > 0) {
    const auto n = static_cast<double>(result.jobs_evaluated);
    result.error_rate =
        1.0 - static_cast<double>(result.jobs_correct) / n;
    result.mean_error = sum_error / n;
    result.mean_abs_error = sum_abs_error / n;
  }
  return result;
}

}  // namespace corp::sim
