// Multi-seed replication: the paper reports single curves, but a credible
// reproduction quantifies run-to-run spread. ReplicatedPoint repeats a
// (method, workload) point across independent seeds and reports mean and
// a normal-approximation confidence half-width for each headline metric.
//
// Replicas fan out over a util::ThreadPool and are gathered in replica
// order, so the result is bit-identical whatever the thread count or
// schedule. Replica seeds come from util::derive_seed (SplitMix64), which
// guarantees that replica streams never collide — neither within one base
// seed nor across the base seeds of a sweep (the old additive
// `seed + 1000*(r+1)` formula aliased replica k+1 of seed S onto replica k
// of seed S+1000, silently correlating "independent" samples).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/experiment.hpp"

namespace corp::sim {

/// Mean and symmetric confidence half-width of one metric across seeds.
struct MetricEstimate {
  double mean = 0.0;
  /// z * sd / sqrt(n); NaN when n < 2 (spread unknown, not zero).
  double half_width = 0.0;
  double min = 0.0;
  double max = 0.0;

  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
};

/// Wall-clock record of one replicated point, for tracking the harness's
/// throughput over time. Not part of the statistical result: determinism
/// comparisons must ignore it.
struct ReplicationTiming {
  double wall_ms = 0.0;
  double replicas_per_sec = 0.0;
  std::size_t threads = 1;  // actual worker count used
};

struct ReplicatedPoint {
  std::size_t replications = 0;
  MetricEstimate overall_utilization;
  MetricEstimate slo_violation_rate;
  MetricEstimate prediction_error_rate;
  MetricEstimate opportunistic_placements;
  ReplicationTiming timing;
};

struct ReplicationConfig {
  std::size_t replications = 5;
  /// Confidence level of the half-width (two-sided, normal approx).
  double confidence = 0.95;
  /// Worker threads for the replica fan-out (0 = hardware concurrency).
  std::size_t threads = 0;
};

/// Seed of replica `replica` of base seed `base_seed`: a dedicated
/// SplitMix64 stream, collision-free across replicas and sweep seeds.
/// Exposed so tests and docs can pin the scheme down.
std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t replica);

/// Runs `config.replications` independent repetitions of a point — each
/// with a distinct derived experiment seed, hence distinct training and
/// evaluation traces — and aggregates the headline metrics. Parallel
/// execution is bit-identical to serial.
ReplicatedPoint run_replicated_point(const ExperimentConfig& experiment,
                                     Method method, std::size_t num_jobs,
                                     const ReplicationConfig& config = {},
                                     double aggressiveness = 0.35);

}  // namespace corp::sim
