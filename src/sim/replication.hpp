// Multi-seed replication: the paper reports single curves, but a credible
// reproduction quantifies run-to-run spread. ReplicatedPoint repeats a
// (method, workload) point across independent seeds and reports mean and
// a normal-approximation confidence half-width for each headline metric.
#pragma once

#include <cstddef>

#include "sim/experiment.hpp"

namespace corp::sim {

/// Mean and symmetric confidence half-width of one metric across seeds.
struct MetricEstimate {
  double mean = 0.0;
  double half_width = 0.0;  // z * sd / sqrt(n)
  double min = 0.0;
  double max = 0.0;

  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
};

struct ReplicatedPoint {
  std::size_t replications = 0;
  MetricEstimate overall_utilization;
  MetricEstimate slo_violation_rate;
  MetricEstimate prediction_error_rate;
  MetricEstimate opportunistic_placements;
};

struct ReplicationConfig {
  std::size_t replications = 5;
  /// Confidence level of the half-width (two-sided, normal approx).
  double confidence = 0.95;
};

/// Runs `config.replications` independent repetitions of a point — each
/// with a distinct experiment seed, hence distinct training and
/// evaluation traces — and aggregates the headline metrics.
ReplicatedPoint run_replicated_point(const ExperimentConfig& experiment,
                                     Method method, std::size_t num_jobs,
                                     const ReplicationConfig& config = {},
                                     double aggressiveness = 0.35);

}  // namespace corp::sim
