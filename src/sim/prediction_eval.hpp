// Per-job prediction-error evaluation (Fig. 6).
//
// Sec. IV: "We first calculated the prediction error of CPU by subtracting
// the predicted amount of unused resource from the actual amount ... for
// each job. Then we calculated the ratio of the correctly predicted jobs
// (the jobs whose prediction errors are within [0, eps)) to the number of
// jobs" — reported as the prediction error rate (fraction NOT correctly
// predicted, which is what Fig. 6 plots: lower is better and CORP is
// lowest).
//
// Protocol: each job's unused-CPU series is split in half; the method's
// full prediction stack sees the first half and forecasts; the actual
// value is the mean unused CPU over the second half. A job is correct when
// delta = actual - predicted lies in [0, eps).
#pragma once

#include "predict/vector_predictor.hpp"
#include "trace/job.hpp"

namespace corp::sim {

struct PredictionEvalConfig {
  /// Error tolerance eps as a fraction of the trace's mean unused CPU
  /// (resolved to absolute units per trace, so the same knob works on the
  /// cluster and EC2 environments whose CPU scales differ).
  double epsilon_relative = 0.9;
  /// Jobs shorter than this many slots are skipped: with less than one
  /// window of history there is nothing for any method to predict from.
  std::size_t min_duration_slots = 6;
};

struct PredictionEvalResult {
  std::size_t jobs_evaluated = 0;
  std::size_t jobs_correct = 0;
  /// 1 - correct/evaluated; 0 when nothing was evaluated.
  double error_rate = 0.0;
  double mean_error = 0.0;       // mean delta (bias)
  double mean_abs_error = 0.0;   // mean |delta|
};

/// Evaluates a trained predictor's CPU stack over every job of the trace.
PredictionEvalResult evaluate_prediction_error(
    predict::VectorPredictor& predictor, const trace::Trace& trace,
    const PredictionEvalConfig& config = {});

}  // namespace corp::sim
