#include "sim/workloads.hpp"

#include <stdexcept>

#include "sim/simulation.hpp"

namespace corp::sim {

std::string_view workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kPaperSweep: return "paper-sweep";
    case WorkloadKind::kBurst: return "burst";
    case WorkloadKind::kTrickle: return "trickle";
    case WorkloadKind::kHeavyTail: return "heavy-tail";
    case WorkloadKind::kMixedServices: return "mixed-services";
  }
  return "?";
}

trace::GeneratorConfig workload_config(WorkloadKind kind,
                                       const cluster::EnvironmentConfig& env,
                                       std::size_t num_jobs) {
  switch (kind) {
    case WorkloadKind::kPaperSweep:
      return scaled_generator_config(env, num_jobs, 20);
    case WorkloadKind::kBurst: {
      trace::GeneratorConfig config =
          scaled_generator_config(env, num_jobs, 3);
      config.duration_log_mu = 1.2;  // median ~3 slots
      config.duration_log_sigma = 0.5;
      config.tasks_log_mu = 1.8;  // big fan-out
      return config;
    }
    case WorkloadKind::kTrickle: {
      trace::GeneratorConfig config =
          scaled_generator_config(env, num_jobs, 120);
      config.tasks_log_mu = 0.5;  // mostly single tasks
      return config;
    }
    case WorkloadKind::kHeavyTail: {
      trace::GeneratorConfig config =
          scaled_generator_config(env, num_jobs, 30);
      config.duration_log_mu = 2.6;  // near the 5-minute cap
      config.duration_log_sigma = 1.0;
      config.tasks_log_sigma = 1.0;  // fan-out tail
      config.request_jitter_sigma = 0.5;
      return config;
    }
    case WorkloadKind::kMixedServices: {
      trace::GeneratorConfig config =
          scaled_generator_config(env, num_jobs, 30);
      config.long_job_fraction = 0.2;
      return config;
    }
  }
  throw std::invalid_argument("workload_config: unknown kind");
}

}  // namespace corp::sim
