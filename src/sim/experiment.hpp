// Experiment harness: parameter sweeps that regenerate each figure of the
// paper's evaluation (Sec. IV) as a printable/CSV-able series table.
//
// Figure map (see DESIGN.md):
//   Fig. 6        prediction error rate vs number of jobs
//   Fig. 7 / 11   per-type resource utilization vs number of jobs
//   Fig. 8 / 12   overall utilization vs SLO violation rate
//   Fig. 9 / 13   SLO violation rate vs confidence level
//   Fig. 10 / 14  allocation latency for 300 jobs
// The cluster figures use EnvironmentConfig::PalmettoCluster(), the EC2
// figures EnvironmentConfig::AmazonEc2(); the harness is parameterized on
// the environment so each bench binary picks its testbed.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/prediction_eval.hpp"
#include "sim/simulation.hpp"
#include "util/seed_streams.hpp"

namespace corp::sim {

/// Stream tags for util::derive_seed live in the central registry
/// (util/seed_streams.hpp), where a static_assert proves they are
/// pairwise distinct. The alias keeps the historical spelling
/// `seed_stream::kTraining` etc. working for sim code.
namespace seed_stream = ::corp::util::seed_stream;

/// Seed of the (shared, per-experiment) training trace.
std::uint64_t training_seed(std::uint64_t base_seed);
/// Seed of the evaluation trace for one sweep point.
std::uint64_t evaluation_seed(std::uint64_t base_seed, std::size_t num_jobs);
/// Seed of one method's simulation (scheduler tie-breaks etc.).
std::uint64_t simulation_seed(std::uint64_t base_seed, Method method);

/// One plotted series: a method's y value per x.
struct Series {
  std::string name;
  std::vector<double> y;
};

/// A figure as a table: shared x axis plus one series per method.
struct Figure {
  std::string id;      // e.g. "fig06"
  std::string title;
  std::string xlabel;
  std::string ylabel;
  std::vector<double> x;
  std::vector<Series> series;

  /// Renders as an aligned text table.
  std::string to_table() const;
  /// Writes CSV (header: xlabel, series names).
  void write_csv(std::ostream& out) const;
};

struct ExperimentConfig {
  cluster::EnvironmentConfig environment =
      cluster::EnvironmentConfig::PalmettoCluster();
  Params params;
  /// Fault-injection model forwarded into every simulation this
  /// experiment runs (inert by default).
  fault::FaultConfig faults;
  std::uint64_t seed = 7;
  /// Jobs in the historical (training) trace.
  std::size_t training_jobs = 200;
  std::int64_t training_horizon_slots = 240;
  /// Arrival horizon of evaluation traces. Dense enough that the 300-job
  /// sweep point loads the cluster heavily (the paper's evaluation runs
  /// its testbeds near saturation at 300 jobs).
  std::int64_t eval_horizon_slots = 20;
  /// Worker threads for sweep parallelism live in params.threads (one knob
  /// shared with the replication harness).
};

/// Everything one (method, workload) run produces.
struct PointResult {
  SimulationResult sim;
  PredictionEvalResult prediction;
};

/// Knob in [0, 1] trading SLO risk for utilization, mapped onto each
/// method's own aggressiveness lever (P_th/confidence for CORP and RCCR,
/// padding scale for CloudScale, entitlement scale for DRA). 0 = most
/// conservative.
SimulationConfig make_simulation_config(const ExperimentConfig& experiment,
                                        Method method,
                                        double aggressiveness = 0.35);

/// Runs one point: builds training + evaluation traces (seeded by
/// `num_jobs` so every method sees identical workloads), trains, runs,
/// and evaluates prediction error. `confidence_override` pins the
/// confidence level eta regardless of the aggressiveness mapping (used by
/// the Fig. 9/13 sweep).
PointResult run_point(const ExperimentConfig& experiment, Method method,
                      std::size_t num_jobs, double aggressiveness = 0.35,
                      std::optional<double> confidence_override = {});

class ExperimentHarness {
 public:
  explicit ExperimentHarness(ExperimentConfig config);

  const ExperimentConfig& config() const { return config_; }

  /// Jobs sweep (50..300 step 50) for every method, parallelized.
  /// Results indexed [method][point].
  std::vector<std::vector<PointResult>> sweep_jobs(
      double aggressiveness = 0.35);

  /// Fig. 6: prediction error rate vs number of jobs.
  Figure figure_prediction_error();

  /// Fig. 7 / 11: one Figure per resource type, utilization vs jobs.
  std::vector<Figure> figure_utilization();

  /// Fig. 8 / 12: overall utilization at target SLO violation rates
  /// (5%..30%), interpolated from an aggressiveness sweep.
  Figure figure_utilization_vs_slo();

  /// Fig. 9 / 13: SLO violation rate vs confidence level (50%..90%).
  Figure figure_slo_vs_confidence();

  /// Fig. 10 / 14: allocation latency for 300 jobs, one value per method.
  Figure figure_overhead();

  /// Number of simulated points this harness has run (cache hits excluded);
  /// the bench timing records divide wall time by this for points/sec.
  std::size_t points_run() const { return points_run_.load(); }

  /// Actual worker-thread count the sweeps use.
  std::size_t sweep_threads() const;

 private:
  std::vector<std::size_t> job_counts() const;

  ExperimentConfig config_;
  /// Cached jobs sweep (figures 6 and 7 share it).
  std::vector<std::vector<PointResult>> cached_sweep_;
  bool sweep_cached_ = false;
  std::atomic<std::size_t> points_run_{0};
};

}  // namespace corp::sim
