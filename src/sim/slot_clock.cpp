#include "sim/slot_clock.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace corp::sim {

std::int64_t EventHorizon::earliest() const {
  return std::min({next_arrival, next_retry_release, next_fault_transition,
                   cutoff});
}

std::int64_t SlotClock::next(std::int64_t now, bool busy,
                             const EventHorizon& horizon) {
  if (mode_ == SlotClockMode::kDense || busy) return now + 1;
  const std::int64_t event = horizon.earliest();
  if (event == kNoEventSlot) return now + 1;
  const std::int64_t next = std::max(now + 1, event);
  skipped_ += next - (now + 1);
  return next;
}

SlotClockMode parse_slot_clock(std::string_view name) {
  if (name == "dense") return SlotClockMode::kDense;
  if (name == "event") return SlotClockMode::kEvent;
  throw std::invalid_argument("unknown slot clock '" + std::string(name) +
                              "' (expected dense|event)");
}

PredictCadence parse_predict_cadence(std::string_view name) {
  if (name == "slot") return PredictCadence::kEverySlot;
  if (name == "window") return PredictCadence::kWindow;
  throw std::invalid_argument("unknown prediction cadence '" +
                              std::string(name) +
                              "' (expected slot|window)");
}

std::string_view to_string(SlotClockMode mode) {
  return mode == SlotClockMode::kDense ? "dense" : "event";
}

std::string_view to_string(PredictCadence cadence) {
  return cadence == PredictCadence::kEverySlot ? "slot" : "window";
}

}  // namespace corp::sim
