#include "sim/params.hpp"

#include "sim/replication.hpp"

namespace corp::sim {

predict::StackConfig Params::stack_config() const {
  predict::StackConfig config;
  config.confidence_level = confidence_max;  // most conservative default
  config.error_tolerance = error_tolerance;
  config.probability_threshold = probability_threshold;
  config.horizon_slots = window_slots;
  return config;
}

predict::StackBuilder Params::stack_builder(predict::Method method) const {
  return predict::StackBuilder(method).config(stack_config());
}

ReplicationConfig Params::replication_config() const {
  ReplicationConfig config;
  config.replications = replications;
  config.confidence = replication_confidence;
  config.threads = threads;
  return config;
}

}  // namespace corp::sim
