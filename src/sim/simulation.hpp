// Discrete-time simulation engine.
//
// Replays a short-lived-job trace against a cluster under one provisioning
// method and measures everything the paper's evaluation reports:
// per-type and overall utilization (Eq. 1-2), wastage (Eq. 3-4), SLO
// violation rate, per-job prediction-error correctness, and allocation
// latency (wall time of the method's decision path plus the environment's
// modeled communication overhead).
//
// Mechanics per 10-second slot:
//   1. arrivals + re-queued jobs are offered to the Scheduler;
//   2. reserved placements commit resources on their VM; opportunistic
//      placements (CORP/RCCR) ride on predicted-unused resource and
//      commit nothing;
//   3. each running job demands its trace usage for its current execution
//      position; reserved jobs receive min(demand, allocation); what
//      remains of the VM's *physical* capacity is split proportionally
//      among opportunistic tenants;
//   4. a job's progress advances by its bottleneck satisfaction ratio, so
//      starved jobs stretch past their SLO response threshold;
//   5. every L slots the method's per-job unused-resource predictions are
//      refreshed (feeding the Eq. 20/21 error trackers), and demand-based
//      methods re-size reservations via Scheduler::reprovision().
//
// The slot loop itself lives in ShardEngine (sim/shard_engine.hpp): VM,
// telemetry and running-job state is partitioned into Params::shards
// contiguous blocks whose per-slot walks fan out on a worker pool, with
// cross-shard effects merged deterministically at slot barriers. Results
// are bit-identical across shard and thread counts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "cluster/slo.hpp"
#include "fault/fault.hpp"
#include "predict/vector_predictor.hpp"
#include "sched/baseline_schedulers.hpp"
#include "sched/corp_scheduler.hpp"
#include "sched/pred_aware_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "sim/job_source.hpp"
#include "sim/params.hpp"
#include "sim/timeline.hpp"
#include "trace/generator.hpp"
#include "util/thread_pool.hpp"

namespace corp::sim {

using predict::Method;

struct SimulationConfig {
  cluster::EnvironmentConfig environment =
      cluster::EnvironmentConfig::PalmettoCluster();
  Method method = Method::kCorp;
  Params params;
  /// Overrides for ablations; when unset, make_scheduler defaults apply.
  std::optional<sched::CorpSchedulerConfig> corp_scheduler;
  std::optional<sched::CloudScaleSchedulerConfig> cloudscale_scheduler;
  std::optional<sched::DraSchedulerConfig> dra_scheduler;
  /// Prediction-aware scheduler knobs (trust λ, adaptive mode). The
  /// simulation overrides the embedded seed with its own run seed so the
  /// tie-break stream hangs off the experiment seed like every other.
  std::optional<sched::PredictionAwareConfig> pred_aware;
  /// Stack overrides (confidence level, P_th, epsilon) for sweeps.
  std::optional<predict::StackConfig> stack;
  /// CORP ablations forwarded into CorpStack.
  bool enable_hmm_correction = true;
  bool enable_confidence_bound = true;
  std::uint64_t seed = 42;
  /// Fault-injection model. All rates zero (the default) keeps the
  /// injector inert: no randomness is drawn and every output is
  /// bit-identical to a fault-free build.
  fault::FaultConfig faults;
  /// Record a per-slot Timeline into the result (costs memory per slot).
  bool record_timeline = false;
  /// Safety valve: stop this many slots past the trace horizon and count
  /// still-running jobs as violated.
  std::int64_t grace_slots = 720;
};

struct SimulationResult {
  Method method = Method::kCorp;
  std::array<double, trace::kNumResources> mean_utilization{};
  double overall_utilization = 0.0;
  std::array<double, trace::kNumResources> mean_wastage{};
  double overall_wastage = 0.0;
  double slo_violation_rate = 0.0;
  double mean_stretch = 0.0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_violated = 0;
  std::size_t jobs_forced = 0;  // still running at the grace cutoff
  std::size_t opportunistic_placements = 0;
  std::size_t reserved_placements = 0;
  /// Opportunistic leases promoted into reservations / preempted.
  std::size_t lease_promotions = 0;
  std::size_t lease_preemptions = 0;
  /// Wall time spent in the method's decision path (placement +
  /// prediction + reprovisioning), milliseconds.
  double compute_latency_ms = 0.0;
  /// compute latency + modeled communication overhead, milliseconds.
  double total_latency_ms = 0.0;
  // --- fault-injection outcomes (all zero when faults are inert) ---
  std::size_t vm_crashes = 0;
  std::size_t vm_recoveries = 0;
  /// Running jobs killed by a VM crash (each kill re-queues or drops).
  std::size_t jobs_killed = 0;
  /// Crash-killed jobs re-queued with capped exponential backoff.
  std::size_t job_retries = 0;
  /// Jobs dropped after exhausting the crash-retry budget; permanent SLO
  /// failures, included in the violation rate.
  std::size_t jobs_dropped = 0;
  /// (job, slot) telemetry gaps injected into predictor histories.
  std::size_t telemetry_gaps = 0;
  /// Predictor degradation tier when the run ended (0 = primary,
  /// 1 = ETS fallback, 2 = reserved-only).
  int degradation_tier = 0;
  /// Trust λ of the prediction-aware scheduler at run end (its adaptive
  /// trajectory's last point; 1.0 for every other method).
  double trust_lambda = 1.0;
  std::int64_t slots_simulated = 0;
  // --- slot-clock diagnostics (sim/slot_clock.hpp). slots_ticked +
  // slots_skipped == slots_simulated; under the dense clock skipped is 0
  // and ticked == simulated. Ticked/skipped differ between clock modes
  // by design (everything else, predictions_amortized included, is
  // mode-invariant); all three are bit-identical across shard/thread
  // counts for a fixed mode.
  /// Slots the engine actually executed (the event clock jumps the rest).
  std::int64_t slots_ticked = 0;
  /// Slots the event clock fast-forwarded over.
  std::int64_t slots_skipped = 0;
  /// Per-(job, slot) forecast refreshes the window cadence skipped.
  std::size_t predictions_amortized = 0;
  /// Populated when SimulationConfig::record_timeline is set.
  Timeline timeline;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig config);

  /// Trains the method's prediction stacks and the scheduler's internal
  /// forecasters on a historical trace (per-job unused-amount series and
  /// utilization-fraction series respectively).
  void train(const trace::Trace& history);

  /// Runs the evaluation trace to completion. train() must have run.
  SimulationResult run(const trace::Trace& trace);

  /// Streaming variant: drives the slot loop from a JobSource (e.g. a
  /// StreamingJobSource wrapping trace::StreamReader) without ever
  /// materializing the full trace. Bit-identical to run(trace) when the
  /// source delivers the same jobs. train() must have run.
  SimulationResult run(JobSource& source);

  const SimulationConfig& config() const { return config_; }

  /// The method's trained prediction stacks (for offline evaluation such
  /// as the Fig. 6 per-job prediction-error protocol).
  predict::VectorPredictor& predictor() { return *predictor_; }

  /// The method's scheduler (exposed for tests).
  sched::Scheduler& scheduler() { return *scheduler_; }

 private:
  SimulationConfig config_;
  std::unique_ptr<predict::VectorPredictor> predictor_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  /// Lazily created worker pool, shared by the sharded slot loop and the
  /// batched-prediction GEMM (behind Params::threads); never built for
  /// runs that stay serial, so small simulations spawn no threads.
  std::unique_ptr<util::ThreadPool> pool_;
  bool trained_ = false;
};

/// Builds a training corpus (per-job unused-amount series) from a trace.
predict::VectorCorpus build_unused_corpus(const trace::Trace& trace);

/// Builds per-job utilization-fraction series (demand / request, averaged
/// over resource types per slot is NOT what we want — each type keeps its
/// own series; this returns the CPU-type series plus the other types
/// appended, which is what the schedulers' scalar forecasters train on).
predict::SeriesCorpus build_utilization_corpus(const trace::Trace& trace);

/// Generator configuration scaled so requests fit the environment's VMs
/// (dominant requests around half a VM, capped at 90% of VM capacity).
trace::GeneratorConfig scaled_generator_config(
    const cluster::EnvironmentConfig& env, std::size_t num_jobs,
    std::int64_t horizon_slots);

}  // namespace corp::sim
