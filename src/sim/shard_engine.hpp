// Sharded slot engine: the simulation core behind Simulation::run().
//
// The original engine walked every VM and every running job in one flat
// loop per 10-second slot, which caps cluster size at the paper's 50
// servers. This engine partitions VM, telemetry and running-job state
// into contiguous per-shard blocks (cluster::ShardPlan) and runs the
// per-slot O(VMs + jobs) work — telemetry updates, execution accounting,
// gate evaluation and per-VM candidate views — on util::ThreadPool
// workers, one shard per task. Cross-shard effects (placement decisions,
// SLO records, requeues, the batched prediction gather, global metric
// sums) are merged at slot barriers with a deterministic sorted gather
// keyed on each running job's admission sequence number.
//
// Determinism contract (the same parallel == serial discipline as the
// replication harness and the batched predictor): the result is a pure
// function of the SimulationConfig and trace — bit-identical across
// `Params::shards` (1 shard IS the serial path: one block holding every
// VM) and across `Params::threads`, including under active fault
// injection. tests/sim/shard_equivalence_test.cpp pins this.
//
// Architectural exemplar: SLURM's slurmctld — centralized scheduling
// decisions over a partitioned node table. Placement itself stays
// centralized (the scheduler sees every VM view each slot); only the
// embarrassingly shard-local state walks fan out.
//
// Time base: a sim::SlotClock (sim/slot_clock.hpp). The default event
// clock jumps spans where no phase can observe anything — no queued
// work, no running jobs — directly to the next arrival, crash-retry
// release, fault-plan transition or grace cutoff; results are
// bit-identical to the dense tick-every-slot reference
// (Params::slot_clock, pinned by tests/sim/event_clock_test.cpp).
#pragma once

#include <memory>

#include "predict/vector_predictor.hpp"
#include "sched/scheduler.hpp"
#include "sim/job_source.hpp"
#include "sim/simulation.hpp"
#include "trace/generator.hpp"
#include "util/thread_pool.hpp"

namespace corp::sim {

class ShardEngine {
 public:
  /// `pool_slot` is the owning Simulation's lazily-created worker pool:
  /// the engine materializes it on first need (sharded slot work or a
  /// batched-prediction window past the GEMM sharding threshold) so it
  /// persists across run() calls, and never spawns threads for runs that
  /// stay serial.
  ShardEngine(const SimulationConfig& config,
              predict::VectorPredictor& predictor,
              sched::Scheduler& scheduler,
              std::unique_ptr<util::ThreadPool>& pool_slot);

  /// Replays the trace to completion. Same semantics as the historical
  /// unsharded loop; see simulation.hpp for the slot mechanics.
  SimulationResult run(const trace::Trace& trace);

  /// Same slot mechanics, but arrivals stream from a JobSource — the
  /// bounded-memory path for multi-GB traces (sim/job_source.hpp). With a
  /// TraceJobSource this is exactly run(trace); with a StreamingJobSource
  /// the result is bit-identical to first materializing the same file.
  SimulationResult run(JobSource& source);

 private:
  const SimulationConfig& config_;
  predict::VectorPredictor& predictor_;
  sched::Scheduler& scheduler_;
  std::unique_ptr<util::ThreadPool>& pool_slot_;
};

}  // namespace corp::sim
