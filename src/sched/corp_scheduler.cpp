#include "sched/corp_scheduler.hpp"

#include "obs/metrics.hpp"
#include "sched/volume.hpp"

namespace corp::sched {

CorpScheduler::CorpScheduler(CorpSchedulerConfig config) : config_(config) {}

std::vector<PlacementDecision> CorpScheduler::place(
    const std::vector<const Job*>& batch, const SchedulerContext& ctx) {
  const obs::ScopedTimer timer("sched.place");
  std::vector<PlacementDecision> decisions;
  if (batch.empty()) return decisions;

  obs::MetricRegistry& reg = obs::registry();
  const bool metrics = reg.enabled();
  obs::Counter* m_pairs =
      metrics ? &reg.counter("sched.packing_pair_matches") : nullptr;
  obs::Counter* m_opp_grants =
      metrics ? &reg.counter("sched.opportunistic_grants") : nullptr;
  obs::Counter* m_opp_fallbacks =
      metrics ? &reg.counter("sched.opportunistic_fallbacks") : nullptr;
  obs::Counter* m_unplaced =
      metrics ? &reg.counter("sched.entities_unplaced") : nullptr;

  const std::vector<JobEntity> entities =
      config_.enable_packing ? pack_jobs(batch) : singleton_entities(batch);
  if (m_pairs != nullptr) {
    for (const JobEntity& entity : entities) {
      if (entity.members.size() > 1) m_pairs->add(1);
    }
  }

  // Tentative availability copies: placements within the batch consume
  // from these so the batch cannot oversubscribe a snapshot.
  std::vector<VmAvailability> opportunistic;
  std::vector<VmAvailability> fresh;
  opportunistic.reserve(ctx.vms.size());
  fresh.reserve(ctx.vms.size());
  for (const VmView& vm : ctx.vms) {
    if (vm.unlocked) {
      opportunistic.push_back(
          {vm.vm_id, vm.predicted_unused * config_.pool_safety});
    }
    // Partition admission caps gate *new* reservations only; the
    // opportunistic pool above stays available on capped partitions.
    if (vm.accepts_reserved) {
      fresh.push_back({vm.vm_id, vm.unallocated});
    }
  }

  for (const JobEntity& entity : entities) {
    PlacementDecision decision;
    decision.batch_indices = entity.members;
    decision.allocated = entity.demand;

    if (config_.enable_opportunistic) {
      const ResourceVector carve =
          entity.demand * config_.opportunistic_sizing;
      const auto slot =
          most_matched(opportunistic, carve, ctx.max_vm_capacity);
      if (slot.has_value()) {
        VmAvailability& vm = opportunistic[*slot];
        decision.vm_id = vm.vm_id;
        decision.kind = AllocationKind::kOpportunistic;
        decision.allocated = carve;
        decision.request_fraction = config_.opportunistic_sizing;
        vm.available -= carve;
        vm.available = vm.available.clamped_non_negative();
        decisions.push_back(std::move(decision));
        if (m_opp_grants != nullptr) m_opp_grants->add(1);
        continue;
      }
      if (m_opp_fallbacks != nullptr) m_opp_fallbacks->add(1);
    }

    const auto slot = most_matched(fresh, entity.demand, ctx.max_vm_capacity);
    if (slot.has_value()) {
      VmAvailability& vm = fresh[*slot];
      decision.vm_id = vm.vm_id;
      decision.kind = AllocationKind::kReserved;
      vm.available -= entity.demand;
      vm.available = vm.available.clamped_non_negative();
      decisions.push_back(std::move(decision));
    } else if (m_unplaced != nullptr) {
      // Unplaced; the simulator re-queues the entity's jobs.
      m_unplaced->add(1);
    }
  }
  return decisions;
}

}  // namespace corp::sched
