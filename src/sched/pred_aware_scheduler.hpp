// Prediction-aware allocation with an explicit consistency–robustness
// trust knob (ROADMAP item 4; Buchbinder et al., "Online Virtual Machine
// Allocation with Predictions").
//
// The scheduler runs CORP's placement loop over CORP's forecasts, but
// scales how much of the predicted temporarily-unused pool it is willing
// to pledge by a trust parameter λ in [0, 1]:
//
//   λ = 1   — follow the forecast exactly like CorpScheduler: identical
//             candidate pools, carve sizing and decisions (the endpoint
//             differential tests EXPECT_EQ every field);
//   λ = 0   — ignore the forecast: every entity takes a demand-based
//             fresh reservation, the worst-case-safe admission rule
//             (bit-identical to CorpScheduler with opportunistic
//             placement disabled);
//   0<λ<1   — blend the admission thresholds: the opportunistic pool
//             shrinks to λ x pool_safety of the predicted unused
//             resource, and carve-outs grow from the trusting
//             opportunistic_sizing toward the full demand as trust falls.
//
// In adaptive mode λ is recomputed before every placement from the
// predictor's observed health (sched/trust.hpp) — a continuous
// degradation path in place of the health-monitor ladder's cliff.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/corp_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "sched/trust.hpp"
#include "util/rng.hpp"

namespace corp::sched {

struct PredictionAwareConfig {
  /// Base placement knobs shared with CorpScheduler (packing, carve
  /// sizing, pool safety). enable_opportunistic=false forces λ=0
  /// behavior regardless of trust.
  CorpSchedulerConfig corp;
  /// Fixed trust λ, clamped to [0, 1]; ignored when `adaptive` is set.
  double trust = 1.0;
  /// Drive λ online from predictor-health signals (SchedulerContext::
  /// trust) instead of the fixed value.
  bool adaptive = false;
  TrustAdaptationConfig adaptation;
  /// Base seed of the tie-breaking stream (seed_stream::kTrustAdaptation);
  /// the simulation threads its run seed through here.
  std::uint64_t seed = 42;
};

class PredictionAwareScheduler final : public Scheduler {
 public:
  explicit PredictionAwareScheduler(PredictionAwareConfig config = {});

  Method method() const override { return Method::kPredAware; }

  std::vector<PlacementDecision> place(const std::vector<const Job*>& batch,
                                       const SchedulerContext& ctx) override;

  const PredictionAwareConfig& config() const { return config_; }

  /// λ used by the most recent place() call (the adaptive trajectory's
  /// latest point; the configured value before any placement).
  double current_trust() const { return lambda_; }

 private:
  PredictionAwareConfig config_;
  TrustController controller_;
  /// Tie-break stream among exactly-equal most-matched volumes, drawn
  /// only at interior λ: uniform λ-scaling of the candidate pools
  /// manufactures exact volume ties that the reference rule would
  /// resolve by VM index forever. The λ∈{0,1} endpoints never draw, so
  /// they stay bit-identical to the reference schedulers.
  util::Rng tie_break_rng_;
  double lambda_ = 1.0;
};

}  // namespace corp::sched
