#include "sched/packing.hpp"

namespace corp::sched {

double demand_deviation(const ResourceVector& a, const ResourceVector& b) {
  double dv = 0.0;
  for (std::size_t k = 0; k < trace::kNumResources; ++k) {
    const double mu = 0.5 * (a[k] + b[k]);
    const double da = a[k] - mu;
    const double db = b[k] - mu;
    dv += da * da + db * db;
  }
  return dv;
}

std::vector<JobEntity> pack_jobs(const std::vector<const Job*>& batch) {
  std::vector<JobEntity> entities;
  std::vector<bool> used(batch.size(), false);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    const Job& ji = *batch[i];
    const trace::ResourceKind dom_i = ji.dominant_resource();

    double best_dv = -1.0;
    std::size_t best_j = batch.size();
    for (std::size_t j = i + 1; j < batch.size(); ++j) {
      if (used[j]) continue;
      const Job& jj = *batch[j];
      if (jj.dominant_resource() == dom_i) continue;
      const double dv = demand_deviation(ji.request, jj.request);
      if (dv > best_dv) {
        best_dv = dv;
        best_j = j;
      }
    }

    JobEntity entity;
    entity.members.push_back(i);
    entity.demand = ji.request;
    if (best_j < batch.size()) {
      used[best_j] = true;
      entity.members.push_back(best_j);
      entity.demand += batch[best_j]->request;
    }
    entities.push_back(std::move(entity));
  }
  return entities;
}

std::vector<JobEntity> singleton_entities(
    const std::vector<const Job*>& batch) {
  std::vector<JobEntity> entities;
  entities.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    JobEntity entity;
    entity.members.push_back(i);
    entity.demand = batch[i]->request;
    entities.push_back(std::move(entity));
  }
  return entities;
}

}  // namespace corp::sched
