// Scheduler interface: how each provisioning method places newly arriving
// jobs and (re)sizes their allocations.
//
// The simulator drives schedulers through two hooks:
//   place()       — batch placement of the jobs arriving in a slot;
//   reprovision() — per-window allocation resizing for demand-based
//                   methods (CloudScale, DRA); identity for CORP/RCCR,
//                   whose reservations stay at the declared request.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "predict/predictor.hpp"
#include "trace/job.hpp"
#include "util/rng.hpp"

namespace corp::sched {

using predict::Method;
using trace::Job;
using trace::kNumResources;
using trace::ResourceVector;

/// How an entity's resources are sourced.
enum class AllocationKind : std::uint8_t {
  /// Fresh reservation committed on the VM (counts toward Eq. 1-4
  /// denominators).
  kReserved = 0,
  /// Rides on other jobs' temporarily-unused allocated resource; commits
  /// nothing (the opportunistic mode of CORP and RCCR).
  kOpportunistic = 1,
};

/// Per-VM availability snapshot handed to place().
struct VmView {
  std::uint32_t vm_id = 0;
  /// Predicted temporarily-unused resource, aggregated over the VM's
  /// reserved jobs (zero when the method does not predict).
  ResourceVector predicted_unused;
  /// Eq. 21 gate: is the predicted unused resource reallocatable?
  bool unlocked = false;
  /// capacity - committed.
  ResourceVector unallocated;
  /// Full VM capacity. Uniform on homogeneous clusters; heterogeneous
  /// node classes give candidate lists mixed sizes.
  ResourceVector capacity;
  /// Whether this VM may host *new* reserved jobs this slot. False when
  /// the VM's partition is at its max_reserved_jobs admission cap.
  /// Opportunistic placement is always allowed.
  bool accepts_reserved = true;
};

struct TrustSignals;

struct SchedulerContext {
  std::span<const VmView> vms;
  /// Component-wise maximum VM capacity (Eq. 22 normalizer).
  ResourceVector max_vm_capacity;
  util::Rng* rng = nullptr;
  /// Predictor-health snapshot for trust-adaptive schedulers (sched/
  /// trust.hpp); null for methods that do not consume it.
  const TrustSignals* trust = nullptr;
};

/// One placement produced by place().
struct PlacementDecision {
  /// Indices into the arrival batch (1 or 2 jobs when packed).
  std::vector<std::size_t> batch_indices;
  std::uint32_t vm_id = 0;
  AllocationKind kind = AllocationKind::kReserved;
  /// Total resources set aside for the entity. For kReserved this is
  /// committed on the VM; for kOpportunistic it is the planned carve-out
  /// of predicted unused resource.
  ResourceVector allocated;
  /// Per-member allocation as a fraction of each member's request.
  /// Opportunistic placements are sized to expected demand plus headroom
  /// rather than the full reservation (Sec. III-B allocates "based on
  /// their resource demands").
  double request_fraction = 1.0;
};

/// Per-job demand history (one scalar series per resource type), used by
/// reprovision().
using DemandHistory = std::array<std::vector<double>, kNumResources>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual Method method() const = 0;

  /// Trains any internal demand predictors on historical *utilization
  /// fraction* series (demand / request in [0, 1]). Default: no-op.
  virtual void train(const predict::SeriesCorpus& utilization_corpus);

  /// Places the batch. Jobs absent from every decision could not be
  /// placed this slot (the simulator re-queues them). Implementations
  /// must not oversubscribe a VM within the batch: the views are
  /// snapshots, so schedulers track their own tentative consumption.
  virtual std::vector<PlacementDecision> place(
      const std::vector<const Job*>& batch, const SchedulerContext& ctx) = 0;

  /// Re-sizes a reserved job's allocation at a window boundary given its
  /// observed demand history. Returns the new target allocation (the
  /// simulator applies the commit/release delta, subject to VM capacity).
  /// Default: keep the current allocation.
  virtual ResourceVector reprovision(const Job& job,
                                     const DemandHistory& history,
                                     const ResourceVector& current);
};

/// Factory with paper-default settings for each method.
std::unique_ptr<Scheduler> make_scheduler(Method method, util::Rng& rng);

}  // namespace corp::sched
