// Complementary job packing (Sec. III-B).
//
// Each job has a dominant resource (largest requested amount). CORP pairs
// jobs with *different* dominant resources, choosing for each job the
// partner maximizing the demand deviation
//   DV(j, i) = sum_k [ (d_jk - mu_k)^2 + (d_ik - mu_k)^2 ],
//   mu_k = (d_jk + d_ik) / 2,
// i.e. the most complementary partner (CPU-high/MEM-low with CPU-low/
// MEM-high). Unpairable jobs become singleton entities.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/job.hpp"

namespace corp::sched {

using trace::Job;
using trace::ResourceVector;

/// A packed allocation unit: one or two complementary jobs.
struct JobEntity {
  /// Indices into the batch passed to pack_jobs (1 or 2 entries).
  std::vector<std::size_t> members;
  /// Component-wise sum of member requests — the amount the entity needs
  /// from its host VM.
  ResourceVector demand;

  bool packed() const { return members.size() == 2; }
};

/// Eq. in Sec. III-B: resource-demand deviation between two jobs.
double demand_deviation(const ResourceVector& a, const ResourceVector& b);

/// Packs a batch of jobs into entities. Greedy, in batch order: each
/// unpaired job takes the highest-deviation partner among later unpaired
/// jobs with a different dominant resource. O(n^2) over the batch, as in
/// the paper.
std::vector<JobEntity> pack_jobs(const std::vector<const Job*>& batch);

/// Convenience: every job as a singleton entity (the no-packing baselines
/// and the packing ablation).
std::vector<JobEntity> singleton_entities(const std::vector<const Job*>& batch);

}  // namespace corp::sched
