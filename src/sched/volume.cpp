#include "sched/volume.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace corp::sched {

double unused_volume(const ResourceVector& available,
                     const ResourceVector& max_capacity) {
  double volume = 0.0;
  for (std::size_t k = 0; k < trace::kNumResources; ++k) {
    const double cap = max_capacity[k];
    if (cap > 0.0) volume += available[k] / cap;
  }
  return volume;
}

std::optional<std::size_t> most_matched(
    std::span<const VmAvailability> candidates, const ResourceVector& demand,
    const ResourceVector& max_capacity) {
  std::optional<std::size_t> best;
  double best_volume = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!demand.fits_within(candidates[i].available)) continue;
    const double volume =
        unused_volume(candidates[i].available, max_capacity);
    if (volume < best_volume) {
      best_volume = volume;
      best = i;
    }
  }
  return best;
}

std::optional<std::size_t> random_feasible(
    std::span<const VmAvailability> candidates, const ResourceVector& demand,
    double pick) {
  std::vector<std::size_t> feasible;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (demand.fits_within(candidates[i].available)) feasible.push_back(i);
  }
  if (feasible.empty()) return std::nullopt;
  const double clamped = std::clamp(pick, 0.0, 1.0 - 1e-12);
  const auto idx = static_cast<std::size_t>(
      clamped * static_cast<double>(feasible.size()));
  return feasible[std::min(idx, feasible.size() - 1)];
}

}  // namespace corp::sched
