// The CORP scheduler (Sec. III-B).
//
// For each slot's arrivals:
//   1. pack complementary jobs into entities (maximizing DV);
//   2. place each entity on the *most-matched* VM — smallest unused
//      resource volume (Eq. 22) — among VMs whose unlocked predicted
//      unused resource satisfies the entity's demand (opportunistic);
//   3. fall back to unallocated VM resources with the same most-matched
//      rule (fresh reservation);
//   4. otherwise the entity waits (the simulator re-queues it).
#pragma once

#include "sched/packing.hpp"
#include "sched/scheduler.hpp"

namespace corp::sched {

struct CorpSchedulerConfig {
  /// Ablation switch: disable complementary packing.
  bool enable_packing = true;
  /// Ablation switch: disable opportunistic placement entirely (entities
  /// then always take fresh reservations).
  bool enable_opportunistic = true;
  /// Opportunistic carve-out as a fraction of the entity's request:
  /// expected demand plus headroom, not the full reservation. CORP can
  /// afford a wider carve than RCCR because its per-donor forecasts are
  /// tighter; the wider carve protects tenants through their own demand
  /// peaks.
  double opportunistic_sizing = 0.9;
  /// CORP only consumes this fraction of a VM's unlocked predicted-unused
  /// pool — the conservative stance of Sec. III (min() corrections, lower
  /// confidence bounds) applied to placement.
  double pool_safety = 0.80;
};

class CorpScheduler final : public Scheduler {
 public:
  explicit CorpScheduler(CorpSchedulerConfig config = {});

  Method method() const override { return Method::kCorp; }

  std::vector<PlacementDecision> place(const std::vector<const Job*>& batch,
                                       const SchedulerContext& ctx) override;

  const CorpSchedulerConfig& config() const { return config_; }

 private:
  CorpSchedulerConfig config_;
};

}  // namespace corp::sched
