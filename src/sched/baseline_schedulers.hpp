// The three baseline schedulers of Sec. IV.
//
// RCCR       — opportunistic reuse of predicted-unused resource like CORP,
//              but a *random* feasible VM and no packing.
// CloudScale — demand-based: allocates a fresh reservation sized from its
//              PRESS/Markov utilization forecast plus adaptive padding;
//              random feasible VM; re-provisions each window.
// DRA        — share-based: each job's allocation is its request capped by
//              its share entitlement (4:2:1 high/medium/low mix); random
//              feasible VM; no opportunistic reuse, no fluctuation
//              handling.
#pragma once

#include <array>

#include "predict/markov_predictor.hpp"
#include "sched/scheduler.hpp"

namespace corp::sched {

class RccrScheduler final : public Scheduler {
 public:
  RccrScheduler() = default;

  Method method() const override { return Method::kRccr; }

  std::vector<PlacementDecision> place(const std::vector<const Job*>& batch,
                                       const SchedulerContext& ctx) override;
};

struct CloudScaleSchedulerConfig {
  /// Padding added to the utilization forecast before the job has enough
  /// history of its own.
  double initial_padding = 0.42;
  /// Fraction of the job's recent utilization range used as padding at
  /// re-provisioning time (the "adaptive padding" of Sec. IV).
  double burst_padding_fraction = 0.30;
  /// Scale on all padding; the SLO-vs-utilization sweep's knob.
  double padding_scale = 1.0;
  /// Allocation floor/ceiling as a fraction of the declared request. The
  /// ceiling sits below 1 — CloudScale sizes to predicted demand, so it
  /// never re-inflates to the full reservation — which pinches jobs
  /// during demand peaks (its SLO cost in Figs. 8-9).
  double min_fraction = 0.30;
  double max_fraction = 0.90;
};

class CloudScaleScheduler final : public Scheduler {
 public:
  explicit CloudScaleScheduler(CloudScaleSchedulerConfig config = {});

  Method method() const override { return Method::kCloudScale; }

  /// Trains the per-type Markov utilization forecasters.
  void train(const predict::SeriesCorpus& utilization_corpus) override;

  std::vector<PlacementDecision> place(const std::vector<const Job*>& batch,
                                       const SchedulerContext& ctx) override;

  ResourceVector reprovision(const Job& job, const DemandHistory& history,
                             const ResourceVector& current) override;

 private:
  double corpus_mean_utilization_ = 0.6;
  CloudScaleSchedulerConfig config_;
  std::array<predict::MarkovChainPredictor, kNumResources> forecasters_;
  bool trained_ = false;
};

struct DraSchedulerConfig {
  /// Allocation entitlement (fraction of request) for high/medium/low
  /// share classes; the paper's 4:2:1 mix maps to indices 0/1/2. High and
  /// medium shares receive their full declared request (DRA's generous
  /// redistribution keeps utilization low), while low-share jobs get
  /// squeezed — the share distortion behind DRA's high violation rate.
  /// High/medium shares can exceed the declared request (bulk capacity
  /// was purchased regardless), which is what keeps DRA's utilization the
  /// lowest of the four methods.
  std::array<double, 3> entitlement{1.35, 1.15, 0.75};
  /// Scale on entitlements; the SLO-vs-utilization sweep's knob.
  double entitlement_scale = 1.0;
};

class DraScheduler final : public Scheduler {
 public:
  explicit DraScheduler(DraSchedulerConfig config = {});

  Method method() const override { return Method::kDra; }

  std::vector<PlacementDecision> place(const std::vector<const Job*>& batch,
                                       const SchedulerContext& ctx) override;

  ResourceVector reprovision(const Job& job, const DemandHistory& history,
                             const ResourceVector& current) override;

  /// Share class of a job (deterministic 4:2:1-style mix by id).
  std::size_t share_class(const Job& job) const;

 private:
  ResourceVector entitled_allocation(const Job& job) const;

  DraSchedulerConfig config_;
};

}  // namespace corp::sched
