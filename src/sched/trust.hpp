// Consistency–robustness trust control for prediction-aware allocation.
//
// Buchbinder et al., "Online Virtual Machine Allocation with Predictions",
// interpolates between an algorithm that follows the forecast (consistency)
// and one with a worst-case guarantee (robustness) through a single trust
// parameter λ in [0, 1]. TrustController computes that λ online from the
// prediction stack's observed health — the continuous counterpart of the
// PredictorHealthMonitor's discrete demote/promote ladder: instead of
// falling off a cliff once `demote_faults` accumulate, trust degrades
// smoothly with the window fault fraction and the Eq. 21 gate margin, and
// recovers as soon as the signals do.
#pragma once

#include "predict/health_monitor.hpp"

namespace corp::sched {

/// Predictor-health signals sampled by the simulation loop right before
/// each placement call (sim/shard_engine.cpp). Every field is a
/// deterministic function of the run so far; the controller draws no
/// randomness, so trust trajectories are bit-identical across shard and
/// thread counts.
struct TrustSignals {
  /// Degradation rung of the health-monitor ladder.
  predict::DegradationTier tier = predict::DegradationTier::kPrimary;
  /// Faulty fraction of the monitor's sliding observation window.
  double window_fault_fraction = 0.0;
  /// Weakest per-resource-type Eq. 21 gate probability
  /// Pr(0 <= delta < eps) — the error tracker's view of recent forecast
  /// error. 1 when no gate has anything to report.
  double min_gate_probability = 1.0;
  /// The P_th the gate probabilities are judged against.
  double probability_threshold = 0.95;
};

struct TrustAdaptationConfig {
  /// Trust ceiling while the ladder sits on the ETS fallback rung: the
  /// fallback forecast is usable but coarse, so at most this much of it
  /// is pledged.
  double fallback_cap = 0.45;
  /// Exponent of the (1 - fault_fraction) penalty; > 1 makes trust fall
  /// faster than the fault rate rises (a 10% poisoned window costs ~19%
  /// trust at the default square).
  double fault_exponent = 2.0;
  /// Lower bound on adaptive trust while the ladder still allows any
  /// opportunistic placement; 0 lets trust collapse to pure demand-based
  /// admission. Reserved-only always maps to 0 regardless.
  double floor = 0.0;
};

/// Maps TrustSignals to λ: tier ceiling x fault penalty x gate margin.
/// Pure between calls except for remembering the last computed value
/// (exposed for diagnostics and the robustness-frontier bench).
///
/// Sampling cadence: the simulation loop samples TrustSignals and calls
/// update() only on placement slots (a non-empty queue), never on idle
/// ones — so the trust trajectory is a pure function of the placement
/// history, and the event-driven slot clock (sim/slot_clock.hpp), which
/// only ever skips idle slots, cannot change it.
class TrustController {
 public:
  explicit TrustController(TrustAdaptationConfig config = {});

  /// Deterministic trust update; returns the new λ in [0, 1].
  double update(const TrustSignals& signals);

  double lambda() const { return lambda_; }

 private:
  TrustAdaptationConfig config_;
  double lambda_ = 1.0;
};

}  // namespace corp::sched
