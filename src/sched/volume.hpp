// Unused-resource volume and most-matched VM selection (Eq. 22).
//
//   volume_j = sum_k r_hat_{jk} / C'_k
//
// where C' is the component-wise maximum VM capacity in the cluster. Among
// the VMs whose available vector satisfies the entity's demand, the one
// with the SMALLEST volume is the "most matched" — it leaves the least
// stranded capacity behind.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "trace/resources.hpp"

namespace corp::sched {

using trace::ResourceVector;

/// One candidate VM's availability snapshot.
struct VmAvailability {
  std::uint32_t vm_id = 0;
  ResourceVector available;
};

/// Eq. 22. `max_capacity` must be strictly positive in every component.
double unused_volume(const ResourceVector& available,
                     const ResourceVector& max_capacity);

/// Index (into `candidates`) of the feasible VM with the smallest volume,
/// or nullopt when no candidate satisfies `demand`. Ties resolve to the
/// first candidate.
std::optional<std::size_t> most_matched(
    std::span<const VmAvailability> candidates, const ResourceVector& demand,
    const ResourceVector& max_capacity);

/// Index of a uniformly random feasible candidate (the RCCR / CloudScale /
/// DRA placement rule: "randomly chose a VM that can satisfy the resource
/// demands"), or nullopt when none fits. `pick` must be a uniform draw in
/// [0, 1).
std::optional<std::size_t> random_feasible(
    std::span<const VmAvailability> candidates, const ResourceVector& demand,
    double pick);

}  // namespace corp::sched
