#include "sched/baseline_schedulers.hpp"
#include "sched/corp_scheduler.hpp"
#include "sched/pred_aware_scheduler.hpp"
#include "sched/scheduler.hpp"

#include <stdexcept>

namespace corp::sched {

std::unique_ptr<Scheduler> make_scheduler(Method method, util::Rng& /*rng*/) {
  switch (method) {
    case Method::kCorp:
      return std::make_unique<CorpScheduler>();
    case Method::kRccr:
      return std::make_unique<RccrScheduler>();
    case Method::kCloudScale:
      return std::make_unique<CloudScaleScheduler>();
    case Method::kDra:
      return std::make_unique<DraScheduler>();
    case Method::kPredAware:
      return std::make_unique<PredictionAwareScheduler>();
  }
  throw std::invalid_argument("make_scheduler: unknown method");
}

}  // namespace corp::sched
