#include "sched/baseline_schedulers.hpp"

#include <algorithm>

#include "sched/volume.hpp"

namespace corp::sched {

namespace {

/// Places each job of the batch individually on a random feasible VM.
/// `use_opportunistic` enables the RCCR-style first attempt against
/// unlocked predicted-unused resource. `allocation_of` sizes the fresh
/// reservation for a job.
template <typename AllocationFn>
std::vector<PlacementDecision> place_randomly(
    const std::vector<const Job*>& batch, const SchedulerContext& ctx,
    bool use_opportunistic, AllocationFn&& allocation_of) {
  std::vector<PlacementDecision> decisions;
  std::vector<VmAvailability> opportunistic;
  std::vector<VmAvailability> fresh;
  fresh.reserve(ctx.vms.size());
  for (const VmView& vm : ctx.vms) {
    if (use_opportunistic && vm.unlocked) {
      opportunistic.push_back({vm.vm_id, vm.predicted_unused});
    }
    // Reserved-admission caps (heterogeneous partitions) exclude a VM
    // from fresh reservations but not from the opportunistic pool.
    if (vm.accepts_reserved) {
      fresh.push_back({vm.vm_id, vm.unallocated});
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Job& job = *batch[i];
    PlacementDecision decision;
    decision.batch_indices = {i};

    if (use_opportunistic) {
      constexpr double kOpportunisticSizing = 0.9;
      const ResourceVector carve = job.request * kOpportunisticSizing;
      const auto slot = random_feasible(opportunistic, carve,
                                        ctx.rng->uniform(0.0, 1.0));
      if (slot.has_value()) {
        VmAvailability& vm = opportunistic[*slot];
        decision.vm_id = vm.vm_id;
        decision.kind = AllocationKind::kOpportunistic;
        decision.allocated = carve;
        decision.request_fraction = kOpportunisticSizing;
        vm.available -= carve;
        vm.available = vm.available.clamped_non_negative();
        decisions.push_back(std::move(decision));
        continue;
      }
    }

    const ResourceVector allocation = allocation_of(job);
    const auto slot =
        random_feasible(fresh, allocation, ctx.rng->uniform(0.0, 1.0));
    if (slot.has_value()) {
      VmAvailability& vm = fresh[*slot];
      decision.vm_id = vm.vm_id;
      decision.kind = AllocationKind::kReserved;
      decision.allocated = allocation;
      vm.available -= allocation;
      vm.available = vm.available.clamped_non_negative();
      decisions.push_back(std::move(decision));
    }
  }
  return decisions;
}

}  // namespace

// ---------------------------------------------------------------- RCCR --

std::vector<PlacementDecision> RccrScheduler::place(
    const std::vector<const Job*>& batch, const SchedulerContext& ctx) {
  return place_randomly(batch, ctx, /*use_opportunistic=*/true,
                        [](const Job& job) { return job.request; });
}

// ---------------------------------------------------------- CloudScale --

CloudScaleScheduler::CloudScaleScheduler(CloudScaleSchedulerConfig config)
    : config_(config) {}

void CloudScaleScheduler::train(
    const predict::SeriesCorpus& utilization_corpus) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& series : utilization_corpus) {
    for (double x : series) {
      sum += x;
      ++n;
    }
  }
  if (n > 0) corpus_mean_utilization_ = sum / static_cast<double>(n);
  for (auto& forecaster : forecasters_) {
    forecaster.train(utilization_corpus);
  }
  trained_ = true;
}

std::vector<PlacementDecision> CloudScaleScheduler::place(
    const std::vector<const Job*>& batch, const SchedulerContext& ctx) {
  const double fraction =
      std::clamp(corpus_mean_utilization_ +
                     config_.initial_padding * config_.padding_scale,
                 config_.min_fraction, config_.max_fraction);
  return place_randomly(
      batch, ctx, /*use_opportunistic=*/false,
      [fraction](const Job& job) { return job.request * fraction; });
}

ResourceVector CloudScaleScheduler::reprovision(
    const Job& job, const DemandHistory& history,
    const ResourceVector& current) {
  if (!trained_) return current;
  ResourceVector target;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const double request = job.request[r];
    if (request <= 0.0) {
      target[r] = 0.0;
      continue;
    }
    // Utilization-fraction history for this resource type.
    std::vector<double> fractions;
    fractions.reserve(history[r].size());
    for (double d : history[r]) fractions.push_back(d / request);
    double forecast = corpus_mean_utilization_;
    double burst = 0.0;
    if (!fractions.empty()) {
      // One-step forecast: the signature/Markov model extrapolates the
      // *recent* level across the whole window — the lag the paper
      // faults CloudScale for ("the correlation between the resource
      // prediction model and the actual resource demand becomes
      // weaker"). After a valley it under-provisions into the rebound.
      forecast = forecasters_[r].predict(predict::PredictionQuery{
          .entity = job.id, .horizon = 1, .history = fractions});
      const auto [lo, hi] =
          std::minmax_element(fractions.begin(), fractions.end());
      burst = (*hi - *lo) * config_.burst_padding_fraction;
    }
    const double padding =
        std::max(burst, config_.initial_padding) * config_.padding_scale;
    const double fraction = std::clamp(
        forecast + padding, config_.min_fraction, config_.max_fraction);
    target[r] = request * fraction;
  }
  return target;
}

// ----------------------------------------------------------------- DRA --

DraScheduler::DraScheduler(DraSchedulerConfig config) : config_(config) {}

std::size_t DraScheduler::share_class(const Job& job) const {
  return static_cast<std::size_t>(job.id % 3);
}

ResourceVector DraScheduler::entitled_allocation(const Job& job) const {
  const double entitlement =
      std::clamp(config_.entitlement[share_class(job)] *
                     config_.entitlement_scale,
                 0.1, 1.5);
  return job.request * entitlement;
}

std::vector<PlacementDecision> DraScheduler::place(
    const std::vector<const Job*>& batch, const SchedulerContext& ctx) {
  return place_randomly(
      batch, ctx, /*use_opportunistic=*/false,
      [this](const Job& job) { return entitled_allocation(job); });
}

ResourceVector DraScheduler::reprovision(const Job& job,
                                         const DemandHistory& /*history*/,
                                         const ResourceVector& /*current*/) {
  // DRA periodically redistributes purchased capacity by share; with
  // stable shares the target allocation is the static entitlement.
  return entitled_allocation(job);
}

// ------------------------------------------------------------- factory --

void Scheduler::train(const predict::SeriesCorpus& /*utilization_corpus*/) {}

ResourceVector Scheduler::reprovision(const Job& /*job*/,
                                      const DemandHistory& /*history*/,
                                      const ResourceVector& current) {
  return current;
}

}  // namespace corp::sched
