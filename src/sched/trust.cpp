#include "sched/trust.hpp"

#include <algorithm>
#include <cmath>

namespace corp::sched {

TrustController::TrustController(TrustAdaptationConfig config)
    : config_(config) {}

double TrustController::update(const TrustSignals& signals) {
  double cap = 1.0;
  switch (signals.tier) {
    case predict::DegradationTier::kPrimary:
      cap = 1.0;
      break;
    case predict::DegradationTier::kFallback:
      cap = std::clamp(config_.fallback_cap, 0.0, 1.0);
      break;
    case predict::DegradationTier::kReservedOnly:
      cap = 0.0;
      break;
  }
  if (cap <= 0.0) {
    // Reserved-only: the ladder has withdrawn every forecast, so there is
    // nothing left to trust — the floor does not apply.
    lambda_ = 0.0;
    return lambda_;
  }
  const double fault_fraction =
      std::clamp(signals.window_fault_fraction, 0.0, 1.0);
  const double penalty =
      std::pow(1.0 - fault_fraction, std::max(1.0, config_.fault_exponent));
  double gate_margin = 1.0;
  if (signals.probability_threshold > 0.0) {
    gate_margin = std::clamp(
        signals.min_gate_probability / signals.probability_threshold, 0.0,
        1.0);
  }
  lambda_ = std::clamp(cap * penalty * gate_margin,
                       std::clamp(config_.floor, 0.0, 1.0), 1.0);
  return lambda_;
}

}  // namespace corp::sched
