#include "sched/pred_aware_scheduler.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <optional>

#include "obs/metrics.hpp"
#include "sched/packing.hpp"
#include "sched/volume.hpp"
#include "util/seed_streams.hpp"

namespace corp::sched {

namespace {

/// Eq. 22 selection with uniform tie-breaking: when several feasible
/// candidates share the exactly-smallest unused volume, one of them is
/// picked uniformly from `rng` (one draw per tied selection). With
/// rng == nullptr this is plain most_matched (first candidate wins).
std::optional<std::size_t> most_matched_tiebreak(
    std::span<const VmAvailability> candidates, const ResourceVector& demand,
    const ResourceVector& max_capacity, util::Rng* rng,
    obs::Counter* tie_counter) {
  const auto best = most_matched(candidates, demand, max_capacity);
  if (!best.has_value() || rng == nullptr) return best;
  const double best_volume =
      unused_volume(candidates[*best].available, max_capacity);
  std::vector<std::size_t> ties;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!demand.fits_within(candidates[i].available)) continue;
    if (unused_volume(candidates[i].available, max_capacity) == best_volume) {
      ties.push_back(i);
    }
  }
  if (ties.size() <= 1) return best;
  if (tie_counter != nullptr) tie_counter->add(1);
  const double pick = rng->uniform(0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::clamp(pick, 0.0, 1.0 - 1e-12) * static_cast<double>(ties.size()));
  return ties[std::min(idx, ties.size() - 1)];
}

}  // namespace

PredictionAwareScheduler::PredictionAwareScheduler(PredictionAwareConfig config)
    : config_(config),
      controller_(config.adaptation),
      tie_break_rng_(util::derive_seed(config.seed,
                                       util::seed_stream::kTrustAdaptation)),
      lambda_(config.adaptive ? 1.0 : std::clamp(config.trust, 0.0, 1.0)) {}

std::vector<PlacementDecision> PredictionAwareScheduler::place(
    const std::vector<const Job*>& batch, const SchedulerContext& ctx) {
  const obs::ScopedTimer timer("sched.place");
  std::vector<PlacementDecision> decisions;
  if (batch.empty()) return decisions;

  lambda_ = config_.adaptive
                ? controller_.update(ctx.trust != nullptr ? *ctx.trust
                                                          : TrustSignals{})
                : std::clamp(config_.trust, 0.0, 1.0);
  const double lambda = lambda_;
  // Blended admission thresholds. Both expressions are algebraically
  // exact at the endpoints — λ=1 reproduces CorpScheduler's knobs bit
  // for bit, λ=0 sizes every admission at the full demand — so the
  // endpoint differential tests can EXPECT_EQ doubles.
  const double pool_scale = lambda * config_.corp.pool_safety;
  const double carve_sizing =
      lambda * config_.corp.opportunistic_sizing + (1.0 - lambda) * 1.0;
  const bool opportunistic =
      config_.corp.enable_opportunistic && lambda > 0.0;

  obs::MetricRegistry& reg = obs::registry();
  const bool metrics = reg.enabled();
  obs::Counter* m_pairs =
      metrics ? &reg.counter("sched.packing_pair_matches") : nullptr;
  obs::Counter* m_opp_grants =
      metrics ? &reg.counter("sched.opportunistic_grants") : nullptr;
  obs::Counter* m_opp_fallbacks =
      metrics ? &reg.counter("sched.opportunistic_fallbacks") : nullptr;
  obs::Counter* m_unplaced =
      metrics ? &reg.counter("sched.entities_unplaced") : nullptr;
  obs::Counter* m_ties =
      metrics ? &reg.counter("sched.pred_aware.tie_breaks") : nullptr;
  if (metrics) obs::set_gauge("sched.pred_aware.trust", lambda);

  const std::vector<JobEntity> entities = config_.corp.enable_packing
                                              ? pack_jobs(batch)
                                              : singleton_entities(batch);
  if (m_pairs != nullptr) {
    for (const JobEntity& entity : entities) {
      if (entity.members.size() > 1) m_pairs->add(1);
    }
  }

  // Tentative availability copies, exactly as CorpScheduler keeps them:
  // placements within the batch consume from these so the batch cannot
  // oversubscribe a snapshot.
  std::vector<VmAvailability> pool;   // λ-scaled unlocked predicted-unused
  std::vector<VmAvailability> fresh;  // unallocated, admission-capped
  pool.reserve(ctx.vms.size());
  fresh.reserve(ctx.vms.size());
  for (const VmView& vm : ctx.vms) {
    if (opportunistic && vm.unlocked) {
      pool.push_back({vm.vm_id, vm.predicted_unused * pool_scale});
    }
    if (vm.accepts_reserved) {
      fresh.push_back({vm.vm_id, vm.unallocated});
    }
  }

  // Stochastic tie-breaking engages only at interior trust; see the
  // header. Fresh reservations keep the deterministic first-candidate
  // rule at every λ — only the scaled opportunistic pool manufactures
  // artificial ties.
  util::Rng* tie_rng =
      (lambda > 0.0 && lambda < 1.0) ? &tie_break_rng_ : nullptr;

  for (const JobEntity& entity : entities) {
    PlacementDecision decision;
    decision.batch_indices = entity.members;
    decision.allocated = entity.demand;

    if (opportunistic) {
      const ResourceVector carve = entity.demand * carve_sizing;
      const auto slot = most_matched_tiebreak(pool, carve,
                                              ctx.max_vm_capacity, tie_rng,
                                              m_ties);
      if (slot.has_value()) {
        VmAvailability& vm = pool[*slot];
        decision.vm_id = vm.vm_id;
        decision.kind = AllocationKind::kOpportunistic;
        decision.allocated = carve;
        decision.request_fraction = carve_sizing;
        vm.available -= carve;
        vm.available = vm.available.clamped_non_negative();
        decisions.push_back(std::move(decision));
        if (m_opp_grants != nullptr) m_opp_grants->add(1);
        continue;
      }
      if (m_opp_fallbacks != nullptr) m_opp_fallbacks->add(1);
    }

    const auto slot = most_matched(fresh, entity.demand, ctx.max_vm_capacity);
    if (slot.has_value()) {
      VmAvailability& vm = fresh[*slot];
      decision.vm_id = vm.vm_id;
      decision.kind = AllocationKind::kReserved;
      vm.available -= entity.demand;
      vm.available = vm.available.clamped_non_negative();
      decisions.push_back(std::move(decision));
    } else if (m_unplaced != nullptr) {
      m_unplaced->add(1);
    }
  }
  return decisions;
}

}  // namespace corp::sched
