#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"
#include "util/seed_streams.hpp"

namespace corp::fault {

namespace {

// Stream tags separating the fault stream families live in the central
// registry (util/seed_streams.hpp), which static_asserts they are
// pairwise distinct across the whole process.
using util::seed_stream::kFaultPredictor;
using util::seed_stream::kFaultStraggler;
using util::seed_stream::kFaultTelemetryGap;
using util::seed_stream::kFaultVm;

/// Uniform double in [0, 1) from a mixed 64-bit hash (53-bit mantissa).
double uniform01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Stateless keyed hash: one derived stream per (seed, stream, key), then
/// one more avalanche over the sub-key. Pure function — the fault pattern
/// cannot depend on evaluation order or thread schedule.
std::uint64_t hash_sub(std::uint64_t seed, std::uint64_t stream,
                       std::uint64_t key, std::uint64_t sub) {
  return util::splitmix64_mix(util::derive_seed(seed, stream, key) +
                              sub * util::kSplitMix64Gamma);
}

/// Gap length in slots for a gap opening at (job, slot): exponential with
/// the configured mean, at least 1, capped at 4x mean so the stateless
/// membership scan stays bounded.
std::int64_t gap_length(const FaultConfig& config, std::uint64_t h) {
  const double u = uniform01(util::splitmix64_mix(h + 1));
  const double mean = std::max(1.0, config.telemetry_gap_mean_slots);
  const double len = -mean * std::log(std::max(1e-12, 1.0 - u));
  return std::clamp<std::int64_t>(static_cast<std::int64_t>(len) + 1, 1,
                                  static_cast<std::int64_t>(4.0 * mean) + 1);
}

}  // namespace

FaultConfig scaled_fault_config(double intensity) {
  const double a = std::clamp(intensity, 0.0, 1.0);
  FaultConfig config;
  if (a <= 0.0) return config;  // inert
  // At full intensity a VM fails every ~400 slots (about 1.1 hours of
  // 10-second slots) and stays down ~24 slots; 4% of telemetry slots open
  // a gap; 10% of jobs straggle at 1.8x demand; 5% of raw forecasts are
  // poisoned. Rates scale linearly, MTTF inversely (rarer faults at lower
  // intensity).
  config.vm_mttf_slots = 400.0 / a;
  config.vm_mttr_slots = 24.0;
  config.telemetry_gap_rate = 0.04 * a;
  config.telemetry_gap_mean_slots = 3.0;
  config.straggler_rate = 0.10 * a;
  config.straggler_demand_factor = 1.8;
  config.predictor_fault_rate = 0.05 * a;
  return config;
}

FaultPlan::FaultPlan(const FaultConfig& config, std::uint64_t seed,
                     std::size_t num_vms, std::int64_t horizon_slots) {
  if (config.vm_mttf_slots <= 0.0 || horizon_slots <= 0) return;
  const double fail_rate = 1.0 / config.vm_mttf_slots;
  const double recover_rate =
      1.0 / std::max(1.0, config.vm_mttr_slots);
  for (std::size_t v = 0; v < num_vms; ++v) {
    // A dedicated generator per VM: the schedule of VM k is invariant to
    // the cluster size and to the other VMs' schedules.
    util::Rng rng(util::derive_seed(seed, kFaultVm,
                                    static_cast<std::uint64_t>(v)));
    std::int64_t t = 0;
    while (true) {
      const auto ttf = static_cast<std::int64_t>(
          std::ceil(rng.exponential(fail_rate)));
      const std::int64_t down_at = t + std::max<std::int64_t>(1, ttf);
      if (down_at >= horizon_slots) break;
      transitions_.push_back(
          {down_at, static_cast<std::uint32_t>(v), /*up=*/false});
      ++crash_count_;
      const auto ttr = static_cast<std::int64_t>(
          std::ceil(rng.exponential(recover_rate)));
      const std::int64_t up_at = down_at + std::max<std::int64_t>(1, ttr);
      if (up_at >= horizon_slots) break;
      transitions_.push_back(
          {up_at, static_cast<std::uint32_t>(v), /*up=*/true});
      t = up_at;
    }
  }
  std::sort(transitions_.begin(), transitions_.end(),
            [](const VmTransition& a, const VmTransition& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              if (a.vm_id != b.vm_id) return a.vm_id < b.vm_id;
              return a.up < b.up;
            });
}

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t seed,
                             std::size_t num_vms,
                             std::int64_t horizon_slots)
    : config_(config),
      seed_(seed),
      enabled_(config.any()),
      plan_(config, seed, num_vms, horizon_slots) {
  if (config_.telemetry_gap_rate > 0.0) {
    max_gap_slots_ =
        static_cast<std::int64_t>(
            4.0 * std::max(1.0, config_.telemetry_gap_mean_slots)) +
        1;
  }
}

std::span<const VmTransition> FaultInjector::transitions_at(std::int64_t t) {
  const auto& all = plan_.transitions();
  while (cursor_ < all.size() && all[cursor_].slot < t) ++cursor_;
  const std::size_t begin = cursor_;
  while (cursor_ < all.size() && all[cursor_].slot == t) ++cursor_;
  return {all.data() + begin, cursor_ - begin};
}

std::int64_t FaultInjector::next_transition_slot(std::int64_t t) const {
  const auto& all = plan_.transitions();
  // The cursor already sits past every slot < the last transitions_at(t),
  // so scanning from it is exact for the engine's non-decreasing queries;
  // the plan is sorted by (slot, vm_id), so the first hit is the minimum.
  for (std::size_t i = cursor_; i < all.size(); ++i) {
    if (all[i].slot >= t) return all[i].slot;
  }
  return std::numeric_limits<std::int64_t>::max();
}

bool FaultInjector::telemetry_gap(std::uint64_t job_id,
                                  std::int64_t slot) const {
  if (config_.telemetry_gap_rate <= 0.0) return false;
  // A gap covering `slot` must have opened within the last max_gap_slots_
  // slots; check each candidate opening slot.
  const std::int64_t first = std::max<std::int64_t>(0, slot - max_gap_slots_ + 1);
  for (std::int64_t s = first; s <= slot; ++s) {
    const std::uint64_t h = hash_sub(seed_, kFaultTelemetryGap, job_id,
                                     static_cast<std::uint64_t>(s));
    if (uniform01(h) >= config_.telemetry_gap_rate) continue;
    if (s + gap_length(config_, h) > slot) return true;
  }
  return false;
}

bool FaultInjector::is_straggler(std::uint64_t job_id) const {
  if (config_.straggler_rate <= 0.0) return false;
  return uniform01(util::derive_seed(seed_, kFaultStraggler, job_id)) <
         config_.straggler_rate;
}

double FaultInjector::demand_multiplier(std::uint64_t job_id) const {
  return is_straggler(job_id) ? config_.straggler_demand_factor : 1.0;
}

PredictorFaultKind FaultInjector::predictor_fault(std::uint64_t job_id,
                                                  std::int64_t slot,
                                                  std::size_t resource) const {
  if (config_.predictor_fault_rate <= 0.0) return PredictorFaultKind::kNone;
  const std::uint64_t h = hash_sub(
      seed_, kFaultPredictor, job_id,
      static_cast<std::uint64_t>(slot) * 8 + static_cast<std::uint64_t>(resource));
  if (uniform01(h) >= config_.predictor_fault_rate) {
    return PredictorFaultKind::kNone;
  }
  return (h & 1) != 0 ? PredictorFaultKind::kNan
                      : PredictorFaultKind::kExplode;
}

std::int64_t FaultInjector::retry_backoff(std::size_t attempt) const {
  const std::int64_t base = std::max<std::int64_t>(1, config_.retry_backoff_base_slots);
  std::int64_t delay = base;
  for (std::size_t i = 1; i < attempt && delay < config_.retry_backoff_cap_slots;
       ++i) {
    delay *= 2;
  }
  return std::min(delay, std::max<std::int64_t>(base, config_.retry_backoff_cap_slots));
}

}  // namespace corp::fault
