// Deterministic fault injection for the simulation engine.
//
// The paper evaluates a fault-free cluster; opportunistic provisioning is
// exactly the regime where failures hurt most (a crashed VM kills both the
// reserved tenants and the opportunistic jobs riding their unused
// resource, and a misbehaving predictor silently converts "unused" into
// SLO violations). This subsystem gives the reproduction a first-class
// fault model:
//
//   * VM crash/recovery  — per-VM alternating MTTF/MTTR exponentials,
//                          pre-computed into a sorted FaultPlan;
//   * telemetry gaps     — missing slots in the Delta-history fed to the
//                          predictors (bursty: a gap opens with some
//                          per-slot probability and persists for an
//                          exponential number of slots);
//   * demand stragglers  — a fraction of jobs demand a multiple of their
//                          trace usage, stretching everything near them;
//   * predictor faults   — a fraction of raw forecasts are poisoned
//                          (NaN or exploding magnitude) before the health
//                          monitor sees them.
//
// Determinism contract: every decision is a pure function of
// (seed, stream tag, entity id, slot) through SplitMix64 avalanche mixing
// (util::derive_seed / splitmix64_mix) — no shared mutable RNG — so the
// injected fault pattern is independent of thread count, iteration order,
// and of how much randomness the rest of the simulation consumes.
// Parallel replicated runs therefore stay bit-identical to serial, and a
// config with every rate at zero is inert (enabled() == false and no code
// path draws randomness).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace corp::fault {

/// All fault-model knobs. Rates of zero disable the corresponding fault
/// class; an all-zero config makes the injector inert.
struct FaultConfig {
  /// Mean slots between failures of one VM (exponential); 0 = no crashes.
  double vm_mttf_slots = 0.0;
  /// Mean slots a crashed VM stays down (exponential).
  double vm_mttr_slots = 18.0;
  /// Per-(job, slot) probability that a telemetry gap *opens*.
  double telemetry_gap_rate = 0.0;
  /// Mean length in slots of one telemetry gap (exponential, >= 1).
  double telemetry_gap_mean_slots = 3.0;
  /// Per-job probability of being a demand-spike straggler.
  double straggler_rate = 0.0;
  /// Demand multiplier applied to straggler jobs (capped at the request).
  double straggler_demand_factor = 1.6;
  /// Per-(job, slot, resource) probability a raw forecast is poisoned.
  double predictor_fault_rate = 0.0;

  // --- resilience response knobs (consumed by the simulation loop) ---
  /// Crash-kill retries allowed per job before it is dropped as a
  /// permanent SLO failure.
  std::size_t retry_budget = 4;
  /// First retry delay; doubles per attempt (capped). Retries still count
  /// against the job's response-time SLO threshold.
  std::int64_t retry_backoff_base_slots = 2;
  std::int64_t retry_backoff_cap_slots = 48;

  /// True when any fault class is active.
  bool any() const {
    return vm_mttf_slots > 0.0 || telemetry_gap_rate > 0.0 ||
           straggler_rate > 0.0 || predictor_fault_rate > 0.0;
  }
};

/// Canonical fault mix at a given intensity in [0, 1], used by the
/// resilience sweeps so "fault intensity" means the same thing across
/// benches, tests, and the CLI. Intensity 0 is the inert config.
FaultConfig scaled_fault_config(double intensity);

/// How a raw forecast is poisoned before the health monitor sees it.
enum class PredictorFaultKind : std::uint8_t {
  kNone = 0,
  kNan = 1,        // forecast becomes NaN
  kExplode = 2,    // forecast magnitude explodes (sigma-blowup analogue)
};

/// One VM up/down edge.
struct VmTransition {
  std::int64_t slot = 0;
  std::uint32_t vm_id = 0;
  bool up = false;  // false = crash, true = recovery
};

/// Pre-computed VM crash/recovery schedule over a horizon: per-VM
/// alternating exponential MTTF/MTTR draws from a dedicated derived
/// stream, merged and sorted by (slot, vm_id).
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultConfig& config, std::uint64_t seed,
            std::size_t num_vms, std::int64_t horizon_slots);

  const std::vector<VmTransition>& transitions() const {
    return transitions_;
  }
  std::size_t crash_count() const { return crash_count_; }

 private:
  std::vector<VmTransition> transitions_;
  std::size_t crash_count_ = 0;
};

/// Run-time fault oracle the simulation loop queries each slot. Holds the
/// FaultPlan plus the stateless per-entity hash streams.
class FaultInjector {
 public:
  /// An inert injector (enabled() == false).
  FaultInjector() = default;
  FaultInjector(const FaultConfig& config, std::uint64_t seed,
                std::size_t num_vms, std::int64_t horizon_slots);

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return config_; }
  const FaultPlan& plan() const { return plan_; }

  /// VM transitions scheduled for slot `t`. Must be called with
  /// non-decreasing `t` (internal cursor). Empty when inert.
  std::span<const VmTransition> transitions_at(std::int64_t t);

  /// Earliest plan transition at slot >= t, or max int64 when none remain
  /// — the fault-plan event horizon of the event-driven slot clock
  /// (sim/slot_clock.hpp), which must land ON every transition slot:
  /// transitions_at() advances past anything a jump would fly over.
  /// Pure (does not move the cursor); max int64 when inert.
  std::int64_t next_transition_slot(std::int64_t t) const;

  /// Is (job, slot) inside a telemetry gap? Stateless: scans the bounded
  /// window of slots whose gap could still cover `slot`.
  bool telemetry_gap(std::uint64_t job_id, std::int64_t slot) const;

  /// Is this job a demand-spike straggler?
  bool is_straggler(std::uint64_t job_id) const;

  /// Demand multiplier for the job (1.0 for non-stragglers).
  double demand_multiplier(std::uint64_t job_id) const;

  /// Poisoning applied to the raw forecast for (job, slot, resource).
  PredictorFaultKind predictor_fault(std::uint64_t job_id, std::int64_t slot,
                                     std::size_t resource) const;

  /// Capped exponential retry backoff for the given crash-kill attempt
  /// (attempt >= 1): base * 2^(attempt-1), capped.
  std::int64_t retry_backoff(std::size_t attempt) const;

 private:
  FaultConfig config_;
  std::uint64_t seed_ = 0;
  bool enabled_ = false;
  FaultPlan plan_;
  std::size_t cursor_ = 0;
  /// Longest telemetry gap considered by the stateless scan, in slots.
  std::int64_t max_gap_slots_ = 0;
};

}  // namespace corp::fault
