// Robustness frontier: how the prediction-aware scheduler's trust knob
// trades consistency (following the forecast like CORP when predictions
// are good) against robustness (worst-case demand-based admission when
// they are not). Sweeps trust λ x fault intensity on a poisoned-forecast-
// forward fault mix — the canonical resilience mix with the predictor
// fault rate cranked, since trusting forecasts is exactly what a poisoned
// predictor punishes — alongside CORP, RCCR and pred-aware(auto) as
// references, and reports the utilization-vs-SLO frontier per intensity.
//
// Two properties anchor the sweep (both printed and exported as robust.*
// metrics for the CI bench-smoke gate):
//   1. fault-free, full trust wins: at intensity 0 the λ=1 endpoint has
//      the best utilization of the λ grid (consistency);
//   2. poisoned, adaptive trust saves the SLO: at max intensity
//      pred-aware(auto) has a lower SLO violation rate than CORP, which
//      keeps trusting the forecast until the degradation ladder demotes
//      (robustness).
#include <algorithm>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "figure_common.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace corp;

constexpr std::size_t kJobs = 160;

const std::vector<double>& lambdas() {
  static const std::vector<double> kLambdas{0.0, 0.25, 0.5, 0.75, 1.0};
  return kLambdas;
}

const std::vector<double>& intensities() {
  static const std::vector<double> kIntensities{0.0, 0.5, 1.0};
  return kIntensities;
}

/// Poisoned-forecast-forward fault mix. Differs from the canonical
/// resilience mix in two deliberate ways. No VM crashes: crash plans
/// derive from the per-method simulation seed, so they are pure
/// cross-method noise on this sweep, and a crash-killed job violates its
/// SLO no matter what the trust knob did. And the poison rate tops out
/// *below* the health monitor's demotion cliff (4 faults per 48-sample
/// window = 8.3%): past the cliff every method retreats to reserved-only
/// within the first refresh window and the λ axis collapses. Just below
/// it is the regime the trust knob exists for — the ladder never fires,
/// CORP keeps full confidence in the forecast, while the stragglers that
/// ride along eat the pooled unused resource that forecast promised.
fault::FaultConfig poisoned_config(double intensity) {
  const double a = std::clamp(intensity, 0.0, 1.0);
  fault::FaultConfig config;
  if (a <= 0.0) return config;  // inert
  config.telemetry_gap_rate = 0.04 * a;
  config.telemetry_gap_mean_slots = 3.0;
  config.straggler_rate = 0.25 * a;
  config.straggler_demand_factor = 2.0;
  config.predictor_fault_rate = 0.07 * a;
  return config;
}

/// One sweep cell. `trust` empty means adaptive (λ driven online by the
/// predictor-health signals); ignored unless method is kPredAware.
struct Cell {
  predict::Method method = predict::Method::kCorp;
  std::optional<double> trust;
  double intensity = 0.0;
};

std::string cell_label(const Cell& cell) {
  std::ostringstream label;
  label << predict::method_name(cell.method);
  if (cell.method == predict::Method::kPredAware) {
    if (cell.trust) {
      label << "(l=" << *cell.trust << ")";
    } else {
      label << "(auto)";
    }
  }
  label << " @ " << cell.intensity;
  return label.str();
}

sim::PointResult run_cell(const sim::ExperimentConfig& base,
                          const Cell& cell) {
  sim::ExperimentConfig experiment = base;
  experiment.faults = poisoned_config(cell.intensity);
  if (cell.trust) {
    experiment.params.trust = *cell.trust;
  } else {
    experiment.params.trust_adaptive = true;
  }
  return sim::run_point(experiment, cell.method, kJobs);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  const bench::BenchTimer timer;
  const sim::ExperimentConfig experiment = bench::cluster_experiment(opts);

  const auto& ls = lambdas();
  const auto& xs = intensities();
  std::vector<Cell> cells;
  for (const double intensity : xs) {
    for (const double lambda : ls) {
      cells.push_back({predict::Method::kPredAware, lambda, intensity});
    }
    cells.push_back({predict::Method::kPredAware, std::nullopt, intensity});
    cells.push_back({predict::Method::kCorp, std::nullopt, intensity});
    cells.push_back({predict::Method::kRccr, std::nullopt, intensity});
  }

  std::vector<sim::PointResult> results(cells.size());
  util::ThreadPool pool(opts.threads);
  pool.parallel_for(cells.size(), [&](std::size_t task) {
    results[task] = run_cell(experiment, cells[task]);
    obs::count("robust.frontier.cells");
  });
  const std::size_t stride = ls.size() + 3;  // λ grid + auto + corp + rccr
  const auto cell_at = [&](std::size_t xi,
                           std::size_t offset) -> const sim::SimulationResult& {
    return results[xi * stride + offset].sim;
  };

  // Frontier figures: per intensity, one (utilization, SLO) series over
  // the λ grid — the consistency-robustness tradeoff curve.
  sim::Figure util_fig;
  util_fig.id = "robustness_frontier_util";
  util_fig.title = "overall utilization vs trust lambda";
  util_fig.xlabel = "trust lambda";
  util_fig.ylabel = "overall utilization";
  util_fig.x = ls;
  sim::Figure slo_fig;
  slo_fig.id = "robustness_frontier_slo";
  slo_fig.title = "SLO violation rate vs trust lambda";
  slo_fig.xlabel = "trust lambda";
  slo_fig.ylabel = "slo violation rate";
  slo_fig.x = ls;
  for (std::size_t xi = 0; xi < xs.size(); ++xi) {
    std::ostringstream name;
    name << "intensity " << xs[xi];
    sim::Series util_series{name.str(), {}};
    sim::Series slo_series{name.str(), {}};
    for (std::size_t li = 0; li < ls.size(); ++li) {
      util_series.y.push_back(cell_at(xi, li).overall_utilization);
      slo_series.y.push_back(cell_at(xi, li).slo_violation_rate);
    }
    util_fig.series.push_back(std::move(util_series));
    slo_fig.series.push_back(std::move(slo_series));
  }

  std::cout << "== robustness frontier (" << experiment.environment.name
            << ", " << kJobs
            << " jobs, poisoned-forecast-forward fault mix) ==\n";
  bench::emit(util_fig, opts);
  bench::emit(slo_fig, opts);

  util::TextTable table(
      {"cell", "util", "slo viol", "trust", "tier", "opportunistic"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& r = results[i].sim;
    table.add_row(cell_label(cells[i]),
                  {r.overall_utilization, r.slo_violation_rate,
                   r.trust_lambda, static_cast<double>(r.degradation_tier),
                   static_cast<double>(r.opportunistic_placements)});
  }
  std::cout << "== frontier accounting ==\n" << table.to_string() << '\n';

  // Property 1: fault-free, the λ=1 endpoint tops the λ grid on
  // utilization (no robustness tax when the forecast is good).
  const std::size_t full_trust = ls.size() - 1;
  const double util_at_one = cell_at(0, full_trust).overall_utilization;
  bool full_trust_best = true;
  for (std::size_t li = 0; li < ls.size(); ++li) {
    if (cell_at(0, li).overall_utilization > util_at_one + 1e-12) {
      full_trust_best = false;
    }
  }
  // Property 2: at max intensity adaptive trust beats CORP's
  // trust-until-demoted policy on SLO violations. The CORP policy is
  // represented by the λ=1 endpoint (pinned bit-identical to
  // CorpScheduler by the differential tests), which shares the adaptive
  // cell's simulation seed and therefore its exact fault realization —
  // the raw CORP row in the table sees a different straggler draw, so
  // comparing against it would measure seed noise, not the trust knob.
  const std::size_t max_xi = xs.size() - 1;
  const auto& auto_cell = cell_at(max_xi, ls.size());
  const auto& corp_cell = cell_at(max_xi, full_trust);
  const double slo_margin =
      corp_cell.slo_violation_rate - auto_cell.slo_violation_rate;
  const bool auto_beats_corp = slo_margin > 0.0;

  obs::set_gauge("robust.frontier.full_trust_best_util",
                 full_trust_best ? 1.0 : 0.0);
  obs::set_gauge("robust.frontier.util_at_full_trust", util_at_one);
  obs::set_gauge("robust.frontier.auto_slo_margin_max_fault", slo_margin);
  obs::set_gauge("robust.frontier.auto_beats_corp_slo",
                 auto_beats_corp ? 1.0 : 0.0);
  obs::set_gauge("robust.frontier.auto_trust_max_fault",
                 auto_cell.trust_lambda);
  obs::count("robust.frontier.checks_passed",
             (full_trust_best ? 1u : 0u) + (auto_beats_corp ? 1u : 0u));
  if (!full_trust_best || !auto_beats_corp) {
    obs::count("robust.frontier.checks_failed");
  }

  std::cout << "check: fault-free best utilization at lambda=1: "
            << (full_trust_best ? "yes" : "NO") << " (util " << util_at_one
            << ")\n"
            << "check: max-fault pred-aware(auto) beats corp on SLO: "
            << (auto_beats_corp ? "yes" : "NO") << " (auto "
            << auto_cell.slo_violation_rate << " vs corp "
            << corp_cell.slo_violation_rate << ", auto trust ended at "
            << auto_cell.trust_lambda << ")\n"
            << "Expected: both checks yes — trusting the forecast is free "
               "when it is clean and the adaptive knob sheds that trust "
               "before a poisoned forecast converts into SLO debt.\n";
  bench::finish(opts, "robustness_frontier", timer, results.size(),
                pool.size());
  return (full_trust_best && auto_beats_corp) ? 0 : 1;
}
