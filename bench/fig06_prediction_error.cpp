// Figure 6: prediction error rate of the four methods vs the number of
// jobs, on the cluster testbed. Expected shape (Sec. IV-A):
// CORP < RCCR < CloudScale < DRA at every job count.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  sim::ExperimentHarness harness(bench::cluster_experiment());
  sim::Figure figure = harness.figure_prediction_error();
  figure.id = "fig06";
  bench::emit(figure, bench::csv_prefix(argc, argv));
  return 0;
}
