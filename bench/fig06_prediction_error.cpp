// Figure 6: prediction error rate of the four methods vs the number of
// jobs, on the cluster testbed. Expected shape (Sec. IV-A):
// CORP < RCCR < CloudScale < DRA at every job count.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  sim::ExperimentHarness harness(bench::cluster_experiment(opts));
  const bench::BenchTimer timer;
  sim::Figure figure = harness.figure_prediction_error();
  figure.id = "fig06";
  bench::emit(figure, opts);
  bench::finish(opts, "fig06", timer, harness);
  return 0;
}
