// Figure 7(a)-(c): per-type resource utilization (Eq. 1) vs the number of
// jobs, on the cluster testbed. Expected shape (Sec. IV-A):
// CORP > RCCR > CloudScale > DRA, utilization rising with job count.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  sim::ExperimentHarness harness(bench::cluster_experiment(opts));
  const bench::BenchTimer timer;
  const char* sub = "abc";
  auto figures = harness.figure_utilization();
  for (std::size_t i = 0; i < figures.size(); ++i) {
    figures[i].id = std::string("fig07") + sub[i];
    bench::emit(figures[i], opts);
  }
  bench::finish(opts, "fig07", timer, harness);
  return 0;
}
