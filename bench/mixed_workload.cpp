// Extension experiment (the paper's future work, Sec. VI: "we will
// consider both short-lived and long-lived jobs"): a workload mixing
// short-lived tasks with long-lived, pattern-carrying service jobs.
//
// Long-lived services have periodic utilization — exactly what RCCR's
// time-series forecaster assumes — so the gap between CORP and RCCR
// should NARROW as the long-lived fraction grows, while CORP stays ahead
// overall (it handles both regimes).
#include <iostream>

#include "figure_common.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace corp;

sim::PointResult run_mix(const sim::ExperimentConfig& experiment,
                         predict::Method method, double long_fraction,
                         std::size_t num_jobs) {
  trace::GeneratorConfig train_config = sim::scaled_generator_config(
      experiment.environment, experiment.training_jobs,
      experiment.training_horizon_slots);
  train_config.long_job_fraction = long_fraction;
  trace::GoogleTraceGenerator train_gen(train_config);
  util::Rng train_rng(sim::training_seed(experiment.seed));
  const trace::Trace training = train_gen.generate(train_rng);

  trace::GeneratorConfig eval_config = sim::scaled_generator_config(
      experiment.environment, num_jobs, experiment.eval_horizon_slots);
  eval_config.long_job_fraction = long_fraction;
  trace::GoogleTraceGenerator eval_gen(eval_config);
  util::Rng eval_rng(sim::evaluation_seed(experiment.seed, num_jobs));
  const trace::Trace evaluation = eval_gen.generate(eval_rng);

  sim::SimulationConfig config =
      sim::make_simulation_config(experiment, method);
  // Long-lived services can run for an hour; give the engine room.
  config.grace_slots = 1200;
  sim::Simulation simulation(std::move(config));
  simulation.train(training);
  sim::PointResult result;
  result.prediction =
      sim::evaluate_prediction_error(simulation.predictor(), evaluation);
  result.sim = simulation.run(evaluation);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  const bench::BenchTimer timer;
  const sim::ExperimentConfig experiment = bench::cluster_experiment(opts);
  constexpr std::size_t kJobs = 150;
  const std::vector<double> fractions{0.0, 0.15, 0.3};

  std::vector<std::vector<sim::PointResult>> grid(
      std::size(predict::kAllMethods),
      std::vector<sim::PointResult>(fractions.size()));
  util::ThreadPool pool(opts.threads);
  pool.parallel_for(grid.size() * fractions.size(), [&](std::size_t task) {
    const std::size_t mi = task / fractions.size();
    const std::size_t fi = task % fractions.size();
    grid[mi][fi] = run_mix(experiment, predict::kAllMethods[mi],
                           fractions[fi], kJobs);
  });

  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    std::cout << "== mixed workload: " << fractions[fi] * 100
              << "% long-lived service jobs (" << kJobs
              << " jobs, cluster) ==\n";
    util::TextTable table(
        {"method", "overall util", "slo violation", "pred error"});
    for (std::size_t mi = 0; mi < grid.size(); ++mi) {
      const auto& r = grid[mi][fi];
      table.add_row(
          std::string(predict::method_name(predict::kAllMethods[mi])),
          {r.sim.overall_utilization, r.sim.slo_violation_rate,
           r.prediction.error_rate});
    }
    std::cout << table.to_string() << '\n';
  }
  std::cout << "Expected: the CORP-RCCR prediction gap narrows as the "
               "patterned long-lived fraction grows (time-series "
               "forecasting works on patterns), while CORP keeps the "
               "overall lead.\n";
  bench::finish(opts, "mixed_workload", timer,
                grid.size() * fractions.size(), pool.size());
  return 0;
}
