// Micro-benchmarks over the hot kernels behind the per-decision latency
// budget of Figs. 10/14, centred on the batched prediction engine: the
// same trained DNN is timed one row at a time (the pre-batching call
// pattern) and through predict_batch's blocked GEMM at the batch sizes
// the simulator actually gathers, alongside the raw Matrix kernels and
// the baseline predictors. Every batched result is checked bit-identical
// to the scalar sweep before it is timed.
//
// Emits the standard bench JSON record (schema in docs/observability.md)
// with the obs snapshot nested, so the CI bench-smoke job can assert the
// predict.batch.* counters move; the per-size speedup lands in the
// predict.batch.speedup.b<N> gauges.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "dnn/matrix.hpp"
#include "figure_common.hpp"
#include "obs/metrics.hpp"
#include "predict/dnn_predictor.hpp"
#include "predict/ets_predictor.hpp"
#include "predict/markov_predictor.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace corp;

predict::SeriesCorpus sine_corpus(std::size_t series_count,
                                  std::size_t length, std::uint64_t seed) {
  util::Rng rng(seed);
  predict::SeriesCorpus corpus;
  for (std::size_t s = 0; s < series_count; ++s) {
    std::vector<double> series;
    for (std::size_t i = 0; i < length; ++i) {
      series.push_back(0.5 +
                       0.3 * std::sin(0.25 * static_cast<double>(i + s * 3)) +
                       rng.normal(0.0, 0.02));
    }
    corpus.push_back(std::move(series));
  }
  return corpus;
}

std::vector<std::vector<double>> make_histories(std::size_t rows,
                                                std::size_t length,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> histories(rows);
  for (auto& h : histories) {
    for (std::size_t i = 0; i < length; ++i) {
      h.push_back(rng.uniform(0.0, 1.0));
    }
  }
  return histories;
}

/// Rows per second, guarded against a sub-tick elapsed time.
double rate(std::size_t rows, double ms) {
  return static_cast<double>(rows) * 1e3 / std::max(ms, 1e-6);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::parse_options(argc, argv);
  bench::BenchTimer total;
  std::size_t points = 0;
  double sink = 0.0;  // keeps the timed kernels observable

  // --- DNN forward: scalar call pattern vs one blocked GEMM -------------
  util::Rng rng(opts.seed);
  predict::DnnPredictorConfig dnn_config;  // Table II: 12 -> 4x50 -> 1
  dnn_config.trainer.max_epochs = 6;
  dnn_config.trainer.pretrain_epochs = 1;
  predict::DnnPredictor dnn(dnn_config, rng);
  dnn.train(sine_corpus(3, 120, opts.seed + 1));

  constexpr std::size_t kBatchSizes[] = {1, 16, 64, 256};
  constexpr std::size_t kRowsPerSize = 2048;
  constexpr std::size_t kRounds = 5;
  const std::vector<std::vector<double>> histories =
      make_histories(256, 24, opts.seed + 2);

  util::TextTable table(
      {"kernel", "batch", "scalar rows/s", "batch rows/s", "speedup"});
  for (std::size_t batch : kBatchSizes) {
    predict::BatchRequest request;
    for (std::size_t i = 0; i < batch; ++i) {
      request.queries.push_back(predict::PredictionQuery{
          .entity = i, .horizon = dnn_config.horizon_slots,
          .history = histories[i]});
    }
    // Contract check before timing: the GEMM path must be bit-identical.
    const predict::BatchResult check = dnn.predict_batch(request);
    for (std::size_t i = 0; i < batch; ++i) {
      if (check.values[i] != dnn.predict(request.queries[i])) {
        throw std::logic_error("micro_kernels: batch/scalar divergence");
      }
    }

    // Best-of-kRounds per side: single-shot timings on shared hosts pick
    // up transient contention spikes; the minimum over a few rounds
    // recovers the uncontended rate for both paths alike.
    const std::size_t reps = kRowsPerSize / batch;
    double scalar_ms = std::numeric_limits<double>::infinity();
    {
      obs::ScopedTimer timer("bench.dnn_forward_scalar");
      for (std::size_t round = 0; round < kRounds; ++round) {
        bench::BenchTimer t;
        for (std::size_t rep = 0; rep < reps; ++rep) {
          for (const predict::PredictionQuery& query : request.queries) {
            sink += dnn.predict(query);
          }
        }
        scalar_ms = std::min(scalar_ms, t.elapsed_ms());
      }
    }
    double batch_ms = std::numeric_limits<double>::infinity();
    {
      obs::ScopedTimer timer("bench.dnn_forward_batch");
      for (std::size_t round = 0; round < kRounds; ++round) {
        bench::BenchTimer t;
        for (std::size_t rep = 0; rep < reps; ++rep) {
          sink += dnn.predict_batch(request).values.front();
        }
        batch_ms = std::min(batch_ms, t.elapsed_ms());
      }
    }

    const std::size_t rows = reps * batch;
    const double speedup = scalar_ms / std::max(batch_ms, 1e-6);
    obs::set_gauge(
        ("predict.batch.speedup.b" + std::to_string(batch)).c_str(), speedup);
    table.add_row("dnn_forward",
                  {static_cast<double>(batch), rate(rows, scalar_ms),
                   rate(rows, batch_ms), speedup});
    ++points;
  }

  // --- raw GEMM kernel: multiply row-by-row vs multiply_batch -----------
  {
    util::Rng mrng(opts.seed + 3);
    const dnn::Matrix weights = dnn::Matrix::xavier(50, 50, mrng);
    dnn::Matrix inputs(64, 50);
    for (std::size_t n = 0; n < inputs.rows(); ++n) {
      for (std::size_t c = 0; c < inputs.cols(); ++c) {
        inputs(n, c) = mrng.uniform(-1.0, 1.0);
      }
    }
    constexpr std::size_t kReps = 64;
    double scalar_ms = std::numeric_limits<double>::infinity();
    {
      obs::ScopedTimer timer("bench.matrix_multiply");
      for (std::size_t round = 0; round < kRounds; ++round) {
        bench::BenchTimer t;
        for (std::size_t rep = 0; rep < kReps; ++rep) {
          for (std::size_t n = 0; n < inputs.rows(); ++n) {
            sink += weights.multiply(inputs.row(n)).front();
          }
        }
        scalar_ms = std::min(scalar_ms, t.elapsed_ms());
      }
    }
    double batch_ms = std::numeric_limits<double>::infinity();
    {
      obs::ScopedTimer timer("bench.matrix_multiply_batch");
      for (std::size_t round = 0; round < kRounds; ++round) {
        bench::BenchTimer t;
        for (std::size_t rep = 0; rep < kReps; ++rep) {
          sink += weights.multiply_batch(inputs)(0, 0);
        }
        batch_ms = std::min(batch_ms, t.elapsed_ms());
      }
    }
    const std::size_t rows = kReps * inputs.rows();
    table.add_row("matrix_50x50",
                  {static_cast<double>(inputs.rows()), rate(rows, scalar_ms),
                   rate(rows, batch_ms),
                   scalar_ms / std::max(batch_ms, 1e-6)});
    ++points;
  }

  // --- baseline predictors (scalar-only; the default batch adapter) -----
  {
    const predict::SeriesCorpus corpus = sine_corpus(3, 200, opts.seed + 4);
    predict::EtsPredictor ets;
    ets.train(corpus);
    predict::MarkovChainPredictor markov;
    markov.train(corpus);
    const predict::PredictionQuery query{
        .entity = 0, .horizon = 6, .history = corpus.front()};
    constexpr std::size_t kReps = 2048;
    double ets_ms = 0.0;
    {
      obs::ScopedTimer timer("bench.ets_predict");
      bench::BenchTimer t;
      for (std::size_t rep = 0; rep < kReps; ++rep) sink += ets.predict(query);
      ets_ms = t.elapsed_ms();
    }
    double markov_ms = 0.0;
    {
      obs::ScopedTimer timer("bench.markov_predict");
      bench::BenchTimer t;
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        sink += markov.predict(query);
      }
      markov_ms = t.elapsed_ms();
    }
    table.add_row("ets_predict", {1.0, rate(kReps, ets_ms), 0.0, 0.0});
    table.add_row("markov_predict", {1.0, rate(kReps, markov_ms), 0.0, 0.0});
    points += 2;
  }

  std::cout << table.to_string() << "checksum " << sink << "\n\n";
  bench::finish(opts, "micro_kernels", total, points, /*threads=*/1);
  return 0;
}
