// google-benchmark micro-suite over the hot kernels: DNN inference and
// training steps, HMM recursions, the packing and volume-matching
// algorithms, trace generation and the baseline predictors. These bound
// the per-decision latency budget behind Figs. 10/14.
#include <benchmark/benchmark.h>

#include <vector>

#include "dnn/network.hpp"
#include "dnn/optimizer.hpp"
#include "hmm/hmm.hpp"
#include "predict/ets_predictor.hpp"
#include "predict/markov_predictor.hpp"
#include "sched/packing.hpp"
#include "sched/volume.hpp"
#include "trace/generator.hpp"

namespace {

using namespace corp;

dnn::Network make_paper_network(util::Rng& rng) {
  dnn::NetworkConfig config;  // defaults = Table II (12 -> 4x50 -> 1)
  return dnn::Network(config, rng);
}

void BM_DnnForward(benchmark::State& state) {
  util::Rng rng(1);
  dnn::Network net = make_paper_network(rng);
  const std::vector<double> input(12, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.predict(input));
  }
}
BENCHMARK(BM_DnnForward);

void BM_DnnTrainSample(benchmark::State& state) {
  util::Rng rng(1);
  dnn::Network net = make_paper_network(rng);
  dnn::SgdOptimizer opt(0.05);
  opt.bind(net.layer_pointers());
  const std::vector<double> input(12, 0.5);
  const std::vector<double> target{0.4};
  for (auto _ : state) {
    net.zero_grad();
    benchmark::DoNotOptimize(net.train_sample(input, target));
    opt.step();
  }
}
BENCHMARK(BM_DnnTrainSample);

std::vector<std::size_t> synthetic_observations(std::size_t length) {
  std::vector<std::size_t> obs(length);
  for (std::size_t i = 0; i < length; ++i) obs[i] = (i / 5) % 3;
  return obs;
}

void BM_HmmForward(benchmark::State& state) {
  util::Rng rng(2);
  hmm::DiscreteHmm model(3, 3, rng);
  const auto obs = synthetic_observations(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.log_likelihood(obs));
  }
}
BENCHMARK(BM_HmmForward)->Arg(32)->Arg(256);

void BM_HmmViterbi(benchmark::State& state) {
  util::Rng rng(2);
  hmm::DiscreteHmm model(3, 3, rng);
  const auto obs = synthetic_observations(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.viterbi(obs));
  }
}
BENCHMARK(BM_HmmViterbi)->Arg(32)->Arg(256);

void BM_HmmBaumWelchIteration(benchmark::State& state) {
  util::Rng rng(2);
  const auto obs = synthetic_observations(256);
  for (auto _ : state) {
    state.PauseTiming();
    hmm::DiscreteHmm model(3, 3, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(model.baum_welch(obs, 1, 0.0));
  }
}
BENCHMARK(BM_HmmBaumWelchIteration);

std::vector<trace::Job> batch_jobs(std::size_t n) {
  trace::GeneratorConfig config;
  config.num_jobs = n;
  config.horizon_slots = 1;
  trace::GoogleTraceGenerator gen(config);
  util::Rng rng(3);
  return gen.generate(rng).jobs();
}

void BM_PackJobs(benchmark::State& state) {
  const auto jobs = batch_jobs(static_cast<std::size_t>(state.range(0)));
  std::vector<const trace::Job*> batch;
  for (const auto& j : jobs) batch.push_back(&j);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::pack_jobs(batch));
  }
  state.SetComplexityN(static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_PackJobs)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_MostMatched(benchmark::State& state) {
  std::vector<sched::VmAvailability> vms;
  util::Rng rng(4);
  for (int i = 0; i < state.range(0); ++i) {
    vms.push_back({static_cast<std::uint32_t>(i),
                   trace::ResourceVector(rng.uniform(0, 4),
                                         rng.uniform(0, 16),
                                         rng.uniform(0, 180))});
  }
  const trace::ResourceVector demand(1.0, 2.0, 10.0);
  const trace::ResourceVector max_cap(4.0, 16.0, 180.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::most_matched(vms, demand, max_cap));
  }
}
BENCHMARK(BM_MostMatched)->Arg(100)->Arg(400);

void BM_TraceGeneration(benchmark::State& state) {
  trace::GeneratorConfig config;
  config.num_jobs = static_cast<std::size_t>(state.range(0));
  config.horizon_slots = 60;
  trace::GoogleTraceGenerator gen(config);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    util::Rng rng(++seed);
    benchmark::DoNotOptimize(gen.generate(rng));
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(50)->Arg(300);

void BM_EtsPredict(benchmark::State& state) {
  predict::EtsPredictor ets;
  std::vector<double> series;
  for (int i = 0; i < 200; ++i) series.push_back(0.5 + 0.01 * (i % 13));
  ets.train({series});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ets.predict(series, 6));
  }
}
BENCHMARK(BM_EtsPredict);

void BM_MarkovPredict(benchmark::State& state) {
  predict::MarkovChainPredictor markov;
  std::vector<double> series;
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) series.push_back(rng.uniform(0.0, 1.0));
  markov.train({series});
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov.predict(series, 6));
  }
}
BENCHMARK(BM_MarkovPredict);

}  // namespace
