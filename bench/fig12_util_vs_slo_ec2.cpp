// Figure 12: overall utilization vs SLO violation rate on the EC2 testbed.
// Mirrors Fig. 8.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  sim::ExperimentHarness harness(bench::ec2_experiment());
  sim::Figure figure = harness.figure_utilization_vs_slo();
  figure.id = "fig12";
  bench::emit(figure, bench::csv_prefix(argc, argv));
  return 0;
}
