// Figure 12: overall utilization vs SLO violation rate on the EC2 testbed.
// Mirrors Fig. 8.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  sim::ExperimentHarness harness(bench::ec2_experiment(opts));
  const bench::BenchTimer timer;
  sim::Figure figure = harness.figure_utilization_vs_slo();
  figure.id = "fig12";
  bench::emit(figure, opts);
  bench::finish(opts, "fig12", timer, harness);
  return 0;
}
