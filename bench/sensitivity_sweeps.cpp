// Sensitivity of CORP to the Table II parameter ranges the paper lists
// but does not plot: the probability threshold P_th, the number of VMs
// N_v (100-400), and the prediction window L. Each sweep holds everything
// else at the defaults and reports CORP's utilization/SLO tradeoff.
#include <iostream>

#include "figure_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace corp;

sim::PointResult run_with(sim::ExperimentConfig experiment,
                          sim::SimulationConfig config,
                          std::size_t num_jobs) {
  trace::GoogleTraceGenerator train_gen(sim::scaled_generator_config(
      experiment.environment, experiment.training_jobs,
      experiment.training_horizon_slots));
  util::Rng train_rng(sim::training_seed(experiment.seed));
  const trace::Trace training = train_gen.generate(train_rng);
  trace::GoogleTraceGenerator eval_gen(sim::scaled_generator_config(
      experiment.environment, num_jobs, experiment.eval_horizon_slots));
  util::Rng eval_rng(sim::evaluation_seed(experiment.seed, num_jobs));
  const trace::Trace evaluation = eval_gen.generate(eval_rng);

  sim::Simulation simulation(std::move(config));
  simulation.train(training);
  sim::PointResult result;
  result.prediction =
      sim::evaluate_prediction_error(simulation.predictor(), evaluation);
  result.sim = simulation.run(evaluation);
  return result;
}

void row(util::TextTable& table, const std::string& label,
         const sim::PointResult& r) {
  table.add_row(label,
                {r.sim.overall_utilization, r.sim.slo_violation_rate,
                 static_cast<double>(r.sim.opportunistic_placements),
                 r.prediction.error_rate});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  const bench::BenchTimer timer;
  const sim::ExperimentConfig experiment = bench::cluster_experiment(opts);
  constexpr std::size_t kJobs = 200;
  std::size_t points_run = 0;
  util::ThreadPool pool(opts.threads);

  // --- P_th sweep (Eq. 21 gate) ------------------------------------------
  {
    const std::vector<double> thresholds{0.5, 0.7, 0.8, 0.9, 0.95};
    std::vector<sim::PointResult> results(thresholds.size());
    pool.parallel_for(thresholds.size(), [&](std::size_t i) {
      sim::SimulationConfig config = sim::make_simulation_config(
          experiment, predict::Method::kCorp);
      config.stack->probability_threshold = thresholds[i];
      results[i] = run_with(experiment, std::move(config), kJobs);
    });
    points_run += thresholds.size();
    std::cout << "== sensitivity: probability threshold P_th (Eq. 21) ==\n";
    util::TextTable table(
        {"P_th", "overall util", "slo violation", "opportunistic",
         "pred error"});
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      row(table, util::format_double(thresholds[i], 3), results[i]);
    }
    std::cout << table.to_string()
              << "(higher P_th -> fewer unlocked pools -> less "
                 "opportunistic reuse, fewer violations)\n\n";
  }

  // --- N_v sweep (Table II: 100-400 VMs) -----------------------------------
  // Traces are generated against the BASE environment so job sizes stay
  // fixed while the same 50 PMs are carved into more, smaller VMs.
  {
    const std::vector<std::size_t> vms_per_pm{2, 4, 8};
    std::vector<sim::PointResult> results(vms_per_pm.size());
    pool.parallel_for(vms_per_pm.size(), [&](std::size_t i) {
      sim::SimulationConfig config =
          sim::make_simulation_config(experiment, predict::Method::kCorp);
      config.environment.vms_per_pm = vms_per_pm[i];
      results[i] = run_with(experiment, std::move(config), kJobs);
    });
    points_run += vms_per_pm.size();
    std::cout << "== sensitivity: number of VMs N_v (50 PMs) ==\n";
    util::TextTable table({"N_v", "overall util", "slo violation",
                           "opportunistic", "pred error"});
    for (std::size_t i = 0; i < vms_per_pm.size(); ++i) {
      row(table, std::to_string(50 * vms_per_pm[i]), results[i]);
    }
    std::cout << table.to_string()
              << "(smaller VMs host fewer donor jobs each, shrinking the "
                 "per-VM unused pool opportunistic placements draw on)\n\n";
  }

  // --- window L sweep -----------------------------------------------------
  {
    const std::vector<std::size_t> windows{3, 6, 12};
    std::vector<sim::PointResult> results(windows.size());
    pool.parallel_for(windows.size(), [&](std::size_t i) {
      sim::ExperimentConfig exp = experiment;
      exp.params.window_slots = windows[i];
      sim::SimulationConfig config =
          sim::make_simulation_config(exp, predict::Method::kCorp);
      config.stack->horizon_slots = windows[i];
      results[i] = run_with(exp, std::move(config), kJobs);
    });
    points_run += windows.size();
    std::cout << "== sensitivity: prediction window L (slots of 10 s) ==\n";
    util::TextTable table({"L", "overall util", "slo violation",
                           "opportunistic", "pred error"});
    for (std::size_t i = 0; i < windows.size(); ++i) {
      row(table, std::to_string(windows[i]), results[i]);
    }
    std::cout << table.to_string()
              << "(the paper chose L = 6 slots = 1 minute because "
                 "short-lived jobs typically run minutes)\n";
  }
  bench::finish(opts, "sensitivity_sweeps", timer, points_run, pool.size());
  return 0;
}
