// Figure 10: latency for allocating resources to 300 jobs on the cluster
// testbed. Expected shape: CORP slightly above the baselines (the DNN's
// computation buys its accuracy).
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  sim::ExperimentHarness harness(bench::cluster_experiment(opts));
  const bench::BenchTimer timer;
  sim::Figure figure = harness.figure_overhead();
  figure.id = "fig10";
  bench::emit(figure, opts);
  bench::finish(opts, "fig10", timer, harness);
  return 0;
}
