// Figure 11(a)-(c): per-type resource utilization vs number of jobs on the
// Amazon EC2 testbed (30 single-VM nodes). Mirrors Fig. 7; storage
// utilization sits below CPU/MEM (it is not the bottleneck resource).
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  sim::ExperimentHarness harness(bench::ec2_experiment(opts));
  const bench::BenchTimer timer;
  const char* sub = "abc";
  auto figures = harness.figure_utilization();
  for (std::size_t i = 0; i < figures.size(); ++i) {
    figures[i].id = std::string("fig11") + sub[i];
    bench::emit(figures[i], opts);
  }
  bench::finish(opts, "fig11", timer, harness);
  return 0;
}
