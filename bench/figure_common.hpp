// Shared scaffolding for the figure-regeneration binaries. Each binary
// reproduces one table/figure of the paper's evaluation (Sec. IV): it runs
// the relevant sweep via ExperimentHarness, prints the series table to
// stdout, optionally writes the series as CSV, and emits a JSON run record
// (wall time, points simulated, throughput, thread count, plus the obs
// metrics snapshot) so the harness's performance trajectory is tracked run
// over run. The record follows the schema in docs/observability.md
// (schema_version, run_id, nested "metrics" object); the CI bench-smoke
// job validates it with tools/validate_metrics.py.
//
// CLI: [CSV_PREFIX] [--csv PREFIX] [--json PATH] [--metrics-out PATH]
//      [--threads N] [--shards K] [--seed S] [--no-metrics]
//   CSV_PREFIX / --csv   write each figure as <prefix><id>.csv
//   --json PATH          append the run record to PATH (JSON lines);
//                        the record is always printed to stdout too
//   --metrics-out PATH   append the standalone metrics snapshot to PATH
//                        (same JSON-lines schema as corpsim --metrics-out)
//   --threads N          worker threads for the point sweeps (0 = all cores)
//   --shards K           slot-engine shards per simulation (default 1;
//                        0 = one per worker thread; bit-identical for all K)
//   --seed S             base experiment seed (default 7)
//   --no-metrics 1       disable metric collection (overhead A/B runs)
#pragma once

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "util/cli.hpp"

namespace corp::bench {

struct BenchOptions {
  std::string csv_prefix;   // empty = no CSV output
  std::string json_path;    // empty = stdout only
  std::string metrics_out;  // empty = no standalone metrics file
  std::size_t threads = 0;
  /// Slot-engine shards (Params::shards): 0 = one per worker thread.
  std::size_t shards = 1;
  std::uint64_t seed = 7;
};

inline BenchOptions parse_options(int argc, char** argv) try {
  const util::ArgParser args(
      argc, argv, 1,
      {"csv", "json", "metrics-out", "threads", "shards", "seed",
       "no-metrics"});
  BenchOptions opts;
  // Back-compat: the original binaries took the CSV prefix positionally.
  if (!args.positional().empty()) opts.csv_prefix = args.positional().front();
  opts.csv_prefix = args.get("csv", opts.csv_prefix);
  opts.json_path = args.get("json", "");
  opts.metrics_out = args.get("metrics-out", "");
  opts.threads = args.get_size("threads", 0);
  opts.shards = args.get_size("shards", 1);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  // Collection is on by default: the run record's "metrics" object is part
  // of the bench contract, and the disabled-path cost is what --no-metrics
  // exists to measure. ArgParser flags always take a value, so spell the
  // opt-out as `--no-metrics 1`.
  obs::set_enabled(!args.has("no-metrics"));
  return opts;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n'
            << "usage: " << (argc > 0 ? argv[0] : "bench")
            << " [CSV_PREFIX] [--csv PREFIX] [--json PATH]"
               " [--metrics-out PATH] [--threads N] [--seed S]"
               " [--no-metrics]\n";
  std::exit(2);
}

inline sim::ExperimentConfig cluster_experiment(const BenchOptions& opts) {
  sim::ExperimentConfig experiment;
  experiment.environment = cluster::EnvironmentConfig::PalmettoCluster();
  experiment.seed = opts.seed;
  experiment.params.threads = opts.threads;
  experiment.params.shards = opts.shards;
  return experiment;
}

inline sim::ExperimentConfig ec2_experiment(const BenchOptions& opts) {
  sim::ExperimentConfig experiment;
  experiment.environment = cluster::EnvironmentConfig::AmazonEc2();
  experiment.seed = opts.seed;
  experiment.params.threads = opts.threads;
  experiment.params.shards = opts.shards;
  return experiment;
}

/// Prints the figure and optionally writes `<csv_prefix><id>.csv`.
inline void emit(const sim::Figure& figure, const BenchOptions& opts) {
  std::cout << figure.to_table() << '\n';
  if (!opts.csv_prefix.empty()) {
    const std::string path = opts.csv_prefix + figure.id + ".csv";
    std::ofstream out(path);
    if (out) {
      figure.write_csv(out);
      std::cout << "wrote " << path << '\n';
    } else {
      std::cerr << "could not open " << path << '\n';
    }
  }
}

/// Wall-clock timer started at construction.
class BenchTimer {
 public:
  double elapsed_ms() const {
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - start_;
    return wall.count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Stable identifier for one bench invocation: `<bench>-seed<seed>`.
inline std::string run_id(const std::string& bench, std::uint64_t seed) {
  return bench + "-seed" + std::to_string(seed);
}

/// Formats the per-run record as a single JSON object following the bench
/// record schema (docs/observability.md): envelope fields plus the nested
/// obs metrics snapshot.
inline std::string timing_record_json(const std::string& bench,
                                      std::uint64_t seed, double wall_ms,
                                      std::size_t points,
                                      std::size_t threads) {
  const double per_sec =
      wall_ms > 0.0 ? static_cast<double>(points) * 1e3 / wall_ms : 0.0;
  std::ostringstream os;
  os << "{\"schema_version\":" << obs::kSchemaVersion
     << ",\"run_id\":\"" << obs::json_escape(run_id(bench, seed)) << "\""
     << ",\"bench\":\"" << obs::json_escape(bench) << "\""
     << ",\"wall_ms\":" << wall_ms
     << ",\"points\":" << points
     << ",\"points_per_sec\":" << per_sec
     << ",\"threads\":" << threads
     << ",\"metrics\":" << obs::metrics_json(obs::registry().snapshot())
     << "}";
  return os.str();
}

/// Emits the run record: to stdout always, appended to --json PATH when
/// given; also writes the standalone snapshot to --metrics-out when given.
inline void finish(const BenchOptions& opts, const std::string& bench,
                   const BenchTimer& timer, std::size_t points,
                   std::size_t threads) {
  const std::string record = timing_record_json(bench, opts.seed,
                                                timer.elapsed_ms(), points,
                                                threads);
  std::cout << "timing " << record << '\n';
  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path, std::ios::app);
    if (out) {
      out << record << '\n';
    } else {
      std::cerr << "could not open " << opts.json_path << '\n';
    }
  }
  if (!opts.metrics_out.empty()) {
    try {
      obs::append_jsonl(opts.metrics_out, obs::registry().snapshot(),
                        run_id(bench, opts.seed));
    } catch (const std::exception& e) {
      std::cerr << "could not write " << opts.metrics_out << ": " << e.what()
                << '\n';
    }
  }
}

/// Overload for harness-driven bench runs.
inline void finish(const BenchOptions& opts, const std::string& bench,
                   const BenchTimer& timer,
                   const sim::ExperimentHarness& harness) {
  finish(opts, bench, timer, harness.points_run(), harness.sweep_threads());
}

}  // namespace corp::bench
