// Shared scaffolding for the figure-regeneration binaries. Each binary
// reproduces one table/figure of the paper's evaluation (Sec. IV): it runs
// the relevant sweep via ExperimentHarness, prints the series table to
// stdout, optionally writes the series as CSV, and emits a JSON timing
// record (wall time, points simulated, throughput, thread count) so the
// harness's performance trajectory is tracked run over run.
//
// CLI: [CSV_PREFIX] [--csv PREFIX] [--json PATH] [--threads N] [--seed S]
//   CSV_PREFIX / --csv   write each figure as <prefix><id>.csv
//   --json PATH          append the timing record to PATH (JSON lines);
//                        the record is always printed to stdout too
//   --threads N          worker threads for the point sweeps (0 = all cores)
//   --seed S             base experiment seed (default 7)
#pragma once

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "util/cli.hpp"

namespace corp::bench {

struct BenchOptions {
  std::string csv_prefix;  // empty = no CSV output
  std::string json_path;   // empty = stdout only
  std::size_t threads = 0;
  std::uint64_t seed = 7;
};

inline BenchOptions parse_options(int argc, char** argv) try {
  const util::ArgParser args(argc, argv, 1,
                             {"csv", "json", "threads", "seed"});
  BenchOptions opts;
  // Back-compat: the original binaries took the CSV prefix positionally.
  if (!args.positional().empty()) opts.csv_prefix = args.positional().front();
  opts.csv_prefix = args.get("csv", opts.csv_prefix);
  opts.json_path = args.get("json", "");
  opts.threads = args.get_size("threads", 0);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  return opts;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n'
            << "usage: " << (argc > 0 ? argv[0] : "bench")
            << " [CSV_PREFIX] [--csv PREFIX] [--json PATH]"
               " [--threads N] [--seed S]\n";
  std::exit(2);
}

inline sim::ExperimentConfig cluster_experiment(const BenchOptions& opts) {
  sim::ExperimentConfig experiment;
  experiment.environment = cluster::EnvironmentConfig::PalmettoCluster();
  experiment.seed = opts.seed;
  experiment.params.threads = opts.threads;
  return experiment;
}

inline sim::ExperimentConfig ec2_experiment(const BenchOptions& opts) {
  sim::ExperimentConfig experiment;
  experiment.environment = cluster::EnvironmentConfig::AmazonEc2();
  experiment.seed = opts.seed;
  experiment.params.threads = opts.threads;
  return experiment;
}

/// Prints the figure and optionally writes `<csv_prefix><id>.csv`.
inline void emit(const sim::Figure& figure, const BenchOptions& opts) {
  std::cout << figure.to_table() << '\n';
  if (!opts.csv_prefix.empty()) {
    const std::string path = opts.csv_prefix + figure.id + ".csv";
    std::ofstream out(path);
    if (out) {
      figure.write_csv(out);
      std::cout << "wrote " << path << '\n';
    } else {
      std::cerr << "could not open " << path << '\n';
    }
  }
}

/// Wall-clock timer started at construction.
class BenchTimer {
 public:
  double elapsed_ms() const {
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - start_;
    return wall.count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Formats the per-run timing/throughput record as a single JSON object.
inline std::string timing_record_json(const std::string& bench,
                                      double wall_ms, std::size_t points,
                                      std::size_t threads) {
  const double per_sec =
      wall_ms > 0.0 ? static_cast<double>(points) * 1e3 / wall_ms : 0.0;
  std::ostringstream os;
  os << "{\"bench\":\"" << bench << "\""
     << ",\"wall_ms\":" << wall_ms
     << ",\"points\":" << points
     << ",\"points_per_sec\":" << per_sec
     << ",\"threads\":" << threads << "}";
  return os.str();
}

/// Emits the timing record for a harness-driven bench run: to stdout
/// always, appended to --json PATH when given.
inline void emit_timing(const BenchOptions& opts, const std::string& bench,
                        const BenchTimer& timer,
                        const sim::ExperimentHarness& harness) {
  const std::string record = timing_record_json(
      bench, timer.elapsed_ms(), harness.points_run(),
      harness.sweep_threads());
  std::cout << "timing " << record << '\n';
  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path, std::ios::app);
    if (out) {
      out << record << '\n';
    } else {
      std::cerr << "could not open " << opts.json_path << '\n';
    }
  }
}

}  // namespace corp::bench
