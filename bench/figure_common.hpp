// Shared scaffolding for the figure-regeneration binaries. Each binary
// reproduces one table/figure of the paper's evaluation (Sec. IV): it runs
// the relevant sweep via ExperimentHarness, prints the series table to
// stdout, and (optionally, first CLI argument) writes the series as CSV.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace corp::bench {

inline sim::ExperimentConfig cluster_experiment(std::uint64_t seed = 7) {
  sim::ExperimentConfig experiment;
  experiment.environment = cluster::EnvironmentConfig::PalmettoCluster();
  experiment.seed = seed;
  return experiment;
}

inline sim::ExperimentConfig ec2_experiment(std::uint64_t seed = 7) {
  sim::ExperimentConfig experiment;
  experiment.environment = cluster::EnvironmentConfig::AmazonEc2();
  experiment.seed = seed;
  return experiment;
}

/// Prints the figure and optionally writes `<csv_prefix><id>.csv`.
inline void emit(const sim::Figure& figure, const char* csv_prefix) {
  std::cout << figure.to_table() << '\n';
  if (csv_prefix != nullptr) {
    const std::string path = std::string(csv_prefix) + figure.id + ".csv";
    std::ofstream out(path);
    if (out) {
      figure.write_csv(out);
      std::cout << "wrote " << path << '\n';
    } else {
      std::cerr << "could not open " << path << '\n';
    }
  }
}

/// Standard main body: argv[1] (optional) is a CSV output prefix.
inline const char* csv_prefix(int argc, char** argv) {
  return argc > 1 ? argv[1] : nullptr;
}

}  // namespace corp::bench
