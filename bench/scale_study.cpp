// Scale study of the sharded slot engine: the same CORP workload replayed
// on clusters of 1k, 10k and 100k VMs — two orders of magnitude past the
// paper's 50-server testbed — once with the serial single-shard layout and
// once sharded across all cores. Arrivals are spread over the whole
// horizon so the placement path rebuilds its O(VMs) candidate views nearly
// every slot; that walk is exactly the wall the sharded engine fans out.
//
// The headline gauge is sim.slots_per_second (sharded rate at the largest
// size); per-point rates land in scale.slots_per_second.v<VMS>.s<SHARDS>
// and per-size speedups in scale.speedup.v<VMS>. The CI bench-smoke job
// gates on the headline gauge via tools/validate_metrics.py. Serial and
// sharded runs must agree bit-for-bit (the shard-equivalence contract);
// this harness re-checks it before timing is trusted, micro_kernels-style.
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "figure_common.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace corp;

/// A Palmetto-grade cluster scaled to `vms` virtual machines (4 per PM).
cluster::EnvironmentConfig scaled_env(std::size_t vms) {
  cluster::EnvironmentConfig env =
      cluster::EnvironmentConfig::PalmettoCluster();
  env.name = "scaled-" + std::to_string(vms);
  env.vms_per_pm = 4;
  env.num_pms = std::max<std::size_t>(1, vms / env.vms_per_pm);
  return env;
}

trace::Trace make_trace(const cluster::EnvironmentConfig& env,
                        std::size_t jobs, std::int64_t horizon,
                        std::uint64_t seed) {
  trace::GoogleTraceGenerator gen(
      sim::scaled_generator_config(env, jobs, horizon));
  util::Rng rng(seed);
  return gen.generate(rng);
}

struct TimedRun {
  sim::SimulationResult result;
  double run_ms = 0.0;
};

TimedRun run_point(const cluster::EnvironmentConfig& env, std::size_t shards,
                   std::size_t threads, std::uint64_t seed,
                   const trace::Trace& training, const trace::Trace& eval) {
  sim::SimulationConfig config;
  config.environment = env;
  config.method = sim::Method::kCorp;
  config.seed = seed;
  config.params.shards = shards;
  config.params.threads = threads;
  sim::Simulation simulation(std::move(config));
  simulation.train(training);
  TimedRun timed;
  const bench::BenchTimer timer;
  timed.result = simulation.run(eval);
  timed.run_ms = timer.elapsed_ms();
  return timed;
}

double slots_per_second(const TimedRun& run) {
  return static_cast<double>(run.result.slots_simulated) * 1e3 /
         std::max(run.run_ms, 1e-6);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  const bench::BenchTimer total;
  std::size_t points = 0;

  // Steady arrivals: ~10 jobs per slot across the horizon keep the queue
  // non-empty nearly every slot, so every slot pays the O(VMs) view walk.
  constexpr std::size_t kJobs = 600;
  constexpr std::int64_t kHorizon = 60;
  constexpr std::size_t kVmSweep[] = {1'000, 10'000, 100'000};

  util::TextTable table(
      {"vms", "slots", "serial slots/s", "sharded slots/s", "speedup"});
  double headline = 0.0;
  for (const std::size_t vms : kVmSweep) {
    const cluster::EnvironmentConfig env = scaled_env(vms);
    const trace::Trace training = make_trace(env, 400, 10, opts.seed + 1);
    const trace::Trace eval = make_trace(env, kJobs, kHorizon, opts.seed + 2);

    const TimedRun serial =
        run_point(env, /*shards=*/1, /*threads=*/1, opts.seed, training, eval);
    const TimedRun sharded = run_point(env, /*shards=*/0, opts.threads,
                                       opts.seed, training, eval);
    // Contract check before the timing is trusted: sharded == serial.
    if (serial.result.overall_utilization !=
            sharded.result.overall_utilization ||
        serial.result.jobs_completed != sharded.result.jobs_completed ||
        serial.result.slots_simulated != sharded.result.slots_simulated) {
      throw std::logic_error("scale_study: shard/serial divergence at " +
                             std::to_string(vms) + " VMs");
    }

    const double serial_rate = slots_per_second(serial);
    const double sharded_rate = slots_per_second(sharded);
    const double speedup = sharded_rate / std::max(serial_rate, 1e-6);
    const std::string tag = "v" + std::to_string(vms);
    obs::set_gauge(("scale.slots_per_second." + tag + ".s1").c_str(),
                   serial_rate);
    obs::set_gauge(("scale.slots_per_second." + tag + ".auto").c_str(),
                   sharded_rate);
    obs::set_gauge(("scale.speedup." + tag).c_str(), speedup);
    headline = sharded_rate;
    table.add_row(std::to_string(vms),
                  {static_cast<double>(serial.result.slots_simulated),
                   serial_rate, sharded_rate, speedup});
    points += 2;
  }
  // Headline: the sharded rate at the largest size — the number ROADMAP
  // tracks and bench-smoke gates on.
  obs::set_gauge("sim.slots_per_second", headline);

  std::cout << table.to_string() << '\n';
  bench::finish(opts, "scale_study", total, points,
                util::ThreadPool::resolve(opts.threads));
  return 0;
}
