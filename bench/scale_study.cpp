// Scale study of the sharded slot engine: the same CORP workload replayed
// on clusters of 1k, 10k and 100k VMs — two orders of magnitude past the
// paper's 50-server testbed — once with the serial single-shard layout and
// once sharded across all cores. Arrivals are spread over the whole
// horizon so the placement path rebuilds its O(VMs) candidate views nearly
// every slot; that walk is exactly the wall the sharded engine fans out.
//
// A second, sparse phase exercises the event-driven slot clock
// (sim/slot_clock.hpp) at one million VMs — the point PR 6 left open:
// a few job bursts separated by multi-million-slot idle valleys, replayed
// once under the dense tick-every-slot clock and once under the event
// clock (window prediction cadence on both sides). The runs must agree
// bit-for-bit, the event run must actually skip slots and amortize
// forecasts, and its slots/s must beat the dense-tick baseline by at
// least 5x — all hard-asserted here, so CI fails on any regression.
//
// The headline gauge is sim.slots_per_second (the event-clock rate at the
// 1M-VM sparse point); per-point rates of the dense sweep land in
// scale.slots_per_second.v<VMS>.s<SHARDS>, per-size speedups in
// scale.speedup.v<VMS>, and the sparse phase publishes
// scale.sparse.slots_per_second.{dense,event} plus scale.sparse.speedup.
// The CI bench-smoke job gates the headline, scale.*, and event.*
// metrics via tools/validate_metrics.py. Serial and sharded runs must
// agree bit-for-bit (the shard-equivalence contract); this harness
// re-checks it before timing is trusted, micro_kernels-style.
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "figure_common.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace corp;

/// A Palmetto-grade cluster scaled to `vms` virtual machines (4 per PM).
cluster::EnvironmentConfig scaled_env(std::size_t vms) {
  cluster::EnvironmentConfig env =
      cluster::EnvironmentConfig::PalmettoCluster();
  env.name = "scaled-" + std::to_string(vms);
  env.vms_per_pm = 4;
  env.num_pms = std::max<std::size_t>(1, vms / env.vms_per_pm);
  return env;
}

trace::Trace make_trace(const cluster::EnvironmentConfig& env,
                        std::size_t jobs, std::int64_t horizon,
                        std::uint64_t seed) {
  trace::GoogleTraceGenerator gen(
      sim::scaled_generator_config(env, jobs, horizon));
  util::Rng rng(seed);
  return gen.generate(rng);
}

struct TimedRun {
  sim::SimulationResult result;
  double run_ms = 0.0;
};

TimedRun run_point(const cluster::EnvironmentConfig& env, std::size_t shards,
                   std::size_t threads, std::uint64_t seed,
                   const trace::Trace& training, const trace::Trace& eval) {
  sim::SimulationConfig config;
  config.environment = env;
  config.method = sim::Method::kCorp;
  config.seed = seed;
  config.params.shards = shards;
  config.params.threads = threads;
  sim::Simulation simulation(std::move(config));
  simulation.train(training);
  TimedRun timed;
  const bench::BenchTimer timer;
  timed.result = simulation.run(eval);
  timed.run_ms = timer.elapsed_ms();
  return timed;
}

double slots_per_second(const TimedRun& run) {
  return static_cast<double>(run.result.slots_simulated) * 1e3 /
         std::max(run.run_ms, 1e-6);
}

/// `bursts` job waves separated by `gap`-slot idle valleys: the arrival
/// shape of a real trace's night stretches, distilled. The generator
/// spreads submissions over [0, bursts); remapping slot k to k * gap
/// keeps every per-burst ordering intact while opening the valleys.
trace::Trace make_sparse_trace(const cluster::EnvironmentConfig& env,
                               std::size_t jobs, std::int64_t bursts,
                               std::int64_t gap, std::uint64_t seed) {
  trace::Trace t = make_trace(env, jobs, bursts, seed);
  for (trace::Job& job : t.jobs()) {
    job.submit_slot = (job.submit_slot % bursts) * gap;
  }
  t.sort();
  return t;
}

TimedRun run_sparse_point(const cluster::EnvironmentConfig& env,
                          sim::SlotClockMode clock, std::uint64_t seed,
                          const trace::Trace& training,
                          const trace::Trace& eval) {
  sim::SimulationConfig config;
  config.environment = env;
  config.method = sim::Method::kCorp;
  config.seed = seed;
  // Serial on both sides so the clock is the only variable; the dense
  // sweep above already covers shard scaling. Window cadence on both
  // sides amortizes forecasts across unchanged telemetry windows.
  config.params.shards = 1;
  config.params.threads = 1;
  config.params.slot_clock = clock;
  config.params.predict_cadence = sim::PredictCadence::kWindow;
  sim::Simulation simulation(std::move(config));
  simulation.train(training);
  TimedRun timed;
  const bench::BenchTimer timer;
  timed.result = simulation.run(eval);
  timed.run_ms = timer.elapsed_ms();
  return timed;
}

/// Clock-mode differential: every result field must match bit for bit
/// except the clock diagnostics (ticked/skipped differ by design) and
/// wall-clock latencies.
void check_clock_identity(const sim::SimulationResult& dense,
                          const sim::SimulationResult& event) {
  const bool identical =
      dense.overall_utilization == event.overall_utilization &&
      dense.overall_wastage == event.overall_wastage &&
      dense.slo_violation_rate == event.slo_violation_rate &&
      dense.mean_stretch == event.mean_stretch &&
      dense.jobs_completed == event.jobs_completed &&
      dense.jobs_violated == event.jobs_violated &&
      dense.jobs_forced == event.jobs_forced &&
      dense.opportunistic_placements == event.opportunistic_placements &&
      dense.reserved_placements == event.reserved_placements &&
      dense.lease_promotions == event.lease_promotions &&
      dense.lease_preemptions == event.lease_preemptions &&
      dense.predictions_amortized == event.predictions_amortized &&
      dense.slots_simulated == event.slots_simulated;
  if (!identical) {
    throw std::logic_error(
        "scale_study: dense/event clock divergence at the sparse point");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  const bench::BenchTimer total;
  std::size_t points = 0;

  // Steady arrivals: ~10 jobs per slot across the horizon keep the queue
  // non-empty nearly every slot, so every slot pays the O(VMs) view walk.
  constexpr std::size_t kJobs = 600;
  constexpr std::int64_t kHorizon = 60;
  constexpr std::size_t kVmSweep[] = {1'000, 10'000, 100'000};

  util::TextTable table(
      {"vms", "slots", "serial slots/s", "sharded slots/s", "speedup"});
  for (const std::size_t vms : kVmSweep) {
    const cluster::EnvironmentConfig env = scaled_env(vms);
    const trace::Trace training = make_trace(env, 400, 10, opts.seed + 1);
    const trace::Trace eval = make_trace(env, kJobs, kHorizon, opts.seed + 2);

    const TimedRun serial =
        run_point(env, /*shards=*/1, /*threads=*/1, opts.seed, training, eval);
    const TimedRun sharded = run_point(env, /*shards=*/0, opts.threads,
                                       opts.seed, training, eval);
    // Contract check before the timing is trusted: sharded == serial.
    if (serial.result.overall_utilization !=
            sharded.result.overall_utilization ||
        serial.result.jobs_completed != sharded.result.jobs_completed ||
        serial.result.slots_simulated != sharded.result.slots_simulated) {
      throw std::logic_error("scale_study: shard/serial divergence at " +
                             std::to_string(vms) + " VMs");
    }

    const double serial_rate = slots_per_second(serial);
    const double sharded_rate = slots_per_second(sharded);
    const double speedup = sharded_rate / std::max(serial_rate, 1e-6);
    const std::string tag = "v" + std::to_string(vms);
    obs::set_gauge(("scale.slots_per_second." + tag + ".s1").c_str(),
                   serial_rate);
    obs::set_gauge(("scale.slots_per_second." + tag + ".auto").c_str(),
                   sharded_rate);
    obs::set_gauge(("scale.speedup." + tag).c_str(), speedup);
    table.add_row(std::to_string(vms),
                  {static_cast<double>(serial.result.slots_simulated),
                   serial_rate, sharded_rate, speedup});
    points += 2;
  }
  std::cout << table.to_string() << '\n';

  // --- sparse event-clock phase: the 1M-VM point ------------------------
  // Three 16-job bursts separated by 100M-slot idle valleys (a
  // deliberately extreme night stretch). The dense clock must tick every
  // valley slot; the event clock jumps them, so the wall-clock difference
  // IS the tentpole win, asserted below. The busy slots — placement's
  // O(VMs) candidate walk at a million VMs — cost the same under both
  // clocks, which is why the valleys must dwarf them.
  constexpr std::size_t kSparseVms = 1'000'000;
  constexpr std::size_t kSparseJobs = 48;
  constexpr std::int64_t kBursts = 3;
  constexpr std::int64_t kGapSlots = 100'000'000;
  const cluster::EnvironmentConfig sparse_env = scaled_env(kSparseVms);
  const trace::Trace sparse_training =
      make_trace(sparse_env, 400, 10, opts.seed + 3);
  const trace::Trace sparse_eval = make_sparse_trace(
      sparse_env, kSparseJobs, kBursts, kGapSlots, opts.seed + 4);

  const TimedRun dense = run_sparse_point(
      sparse_env, sim::SlotClockMode::kDense, opts.seed, sparse_training,
      sparse_eval);
  const TimedRun sparse = run_sparse_point(
      sparse_env, sim::SlotClockMode::kEvent, opts.seed, sparse_training,
      sparse_eval);
  const double dense_rate = slots_per_second(dense);
  const double event_rate = slots_per_second(sparse);
  const double sparse_speedup = event_rate / std::max(dense_rate, 1e-6);

  // Diagnostics first, asserts second: a CI failure should come with the
  // numbers that explain it.
  util::TextTable sparse_table({"vms", "slots", "ticked", "skipped",
                                "dense ms", "event ms", "speedup"});
  sparse_table.add_row(
      std::to_string(kSparseVms),
      {static_cast<double>(sparse.result.slots_simulated),
       static_cast<double>(sparse.result.slots_ticked),
       static_cast<double>(sparse.result.slots_skipped), dense.run_ms,
       sparse.run_ms, sparse_speedup});
  std::cout << sparse_table.to_string() << '\n';

  check_clock_identity(dense.result, sparse.result);
  if (sparse.result.slots_skipped <= 0) {
    throw std::logic_error("scale_study: event clock skipped no slots");
  }
  if (sparse.result.predictions_amortized == 0) {
    throw std::logic_error("scale_study: window cadence amortized nothing");
  }
  // The acceptance gate: event-driven replay of a sparse trace must beat
  // the dense-tick baseline by at least 5x. Locally the margin is an
  // order of magnitude; machine load moves numerator and denominator
  // together, so the floor is safe to hard-assert in CI.
  if (sparse_speedup < 5.0) {
    throw std::logic_error(
        "scale_study: sparse event-clock speedup below 5x: " +
        std::to_string(sparse_speedup));
  }
  obs::set_gauge("scale.sparse.slots_per_second.dense", dense_rate);
  obs::set_gauge("scale.sparse.slots_per_second.event", event_rate);
  obs::set_gauge("scale.sparse.speedup", sparse_speedup);
  points += 2;

  // Headline: the event-clock rate at the 1M-VM sparse point — the
  // number ROADMAP tracks and bench-smoke gates on. The dense sweep's
  // busy-slot rates stay in the scale.slots_per_second.* gauges.
  obs::set_gauge("sim.slots_per_second", event_rate);

  bench::finish(opts, "scale_study", total, points,
                util::ThreadPool::resolve(opts.threads));
  return 0;
}
