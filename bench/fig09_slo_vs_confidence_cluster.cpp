// Figure 9: SLO violation rate vs confidence level eta (50%-90%), on the
// cluster testbed. Expected shape: the rate decreases as the confidence
// level rises for the confidence-interval methods (CORP, RCCR), with
// CORP < RCCR < CloudScale < DRA throughout.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  sim::ExperimentHarness harness(bench::cluster_experiment(opts));
  const bench::BenchTimer timer;
  sim::Figure figure = harness.figure_slo_vs_confidence();
  figure.id = "fig09";
  bench::emit(figure, opts);
  bench::finish(opts, "fig09", timer, harness);
  return 0;
}
