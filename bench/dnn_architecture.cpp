// DNN architecture ablation: the paper fixes h = 4 hidden layers of
// N_n = 50 units (Table II, citing Lv et al.'s traffic-prediction work).
// This bench sweeps depth and width on the unused-resource prediction
// task and reports accuracy and training/inference cost, plus the
// speedup of the data-parallel trainer (the paper's future work).
#include <chrono>
#include <iostream>

#include "dnn/parallel_trainer.hpp"
#include "figure_common.hpp"
#include "util/table.hpp"

namespace {

using namespace corp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  const bench::BenchTimer timer;
  const sim::ExperimentConfig experiment = bench::cluster_experiment(opts);
  trace::GoogleTraceGenerator gen(sim::scaled_generator_config(
      experiment.environment, experiment.training_jobs,
      experiment.training_horizon_slots));
  util::Rng trace_rng(31);
  const trace::Trace history = gen.generate(trace_rng);
  const predict::VectorCorpus corpus = sim::build_unused_corpus(history);

  // One pooled dataset (CPU type), windowed like the predictor does.
  dnn::Dataset data;
  for (const auto& series : corpus.per_type[0]) {
    dnn::Dataset part = dnn::make_windowed_dataset(series, 12, 6);
    for (auto& in : part.inputs) data.inputs.push_back(std::move(in));
    for (auto& tg : part.targets) data.targets.push_back(std::move(tg));
  }
  std::cout << "dataset: " << data.size()
            << " windows of unused-CPU history\n\n";

  struct Arch {
    std::string name;
    std::size_t layers;
    std::size_t units;
  };
  const std::vector<Arch> archs{
      {"2 x 25", 2, 25},  {"2 x 50", 2, 50},   {"4 x 50 (paper)", 4, 50},
      {"4 x 100", 4, 100}, {"6 x 50", 6, 50},
  };

  std::cout << "== architecture sweep (serial trainer) ==\n";
  util::TextTable table({"architecture", "params", "val loss", "epochs",
                         "train ms", "infer us"});
  for (const Arch& arch : archs) {
    util::Rng rng(91);
    dnn::NetworkConfig net_config;
    net_config.input_size = 12;
    net_config.hidden_layers = arch.layers;
    net_config.hidden_units = arch.units;
    dnn::Network net(net_config, rng);
    dnn::SgdOptimizer opt(0.05);
    dnn::TrainerConfig trainer_config;
    trainer_config.max_epochs = 25;
    trainer_config.patience = 3;
    trainer_config.pretrain_epochs = 2;
    dnn::Trainer trainer(trainer_config, rng);

    const auto t0 = Clock::now();
    const dnn::TrainReport report = trainer.fit(net, opt, data);
    const double train_ms = ms_since(t0);

    const std::vector<double> probe(12, 0.5);
    const auto t1 = Clock::now();
    constexpr int kReps = 2000;
    for (int i = 0; i < kReps; ++i) net.predict(probe);
    const double infer_us = ms_since(t1) * 1000.0 / kReps;

    table.add_row(arch.name,
                  {static_cast<double>(net.parameter_count()),
                   report.best_validation_loss,
                   static_cast<double>(report.epochs_run), train_ms,
                   infer_us});
  }
  std::cout << table.to_string() << '\n';

  std::cout << "== data-parallel training (paper future work, Sec. VI) ==\n";
  util::TextTable par({"workers", "val loss", "train ms"});
  for (std::size_t workers : {1u, 2u, 4u}) {
    util::Rng rng(91);
    dnn::NetworkConfig net_config;
    net_config.input_size = 12;
    dnn::Network net(net_config, rng);
    dnn::SgdOptimizer opt(0.3);
    dnn::ParallelTrainerConfig config;
    config.workers = workers;
    config.max_epochs = 25;
    util::Rng trainer_rng(17);
    dnn::ParallelTrainer trainer(config, trainer_rng);
    const auto t0 = Clock::now();
    const dnn::TrainReport report = trainer.fit(net, opt, data);
    par.add_row(std::to_string(workers),
                {report.best_validation_loss, ms_since(t0)});
  }
  std::cout << par.to_string()
            << "(speedup requires multiple cores; on one core the "
               "synchronization overhead shows instead)\n";
  bench::finish(opts, "dnn_architecture", timer, archs.size() + 3,
                opts.threads == 0 ? 1 : opts.threads);
  return 0;
}
