// Resilience study: how gracefully each provisioning method degrades as
// fault intensity rises. Sweeps the canonical fault mix
// (fault::scaled_fault_config) from a fault-free cluster to the full mix —
// VM crash/recovery, telemetry gaps, demand-spike stragglers, poisoned
// forecasts — and reports utilization, SLO violation rate and the fault
// accounting per (method, intensity) point. CORP's prediction stack rides
// on the graceful-degradation ladder (health monitor + ETS fallback +
// reserved-only), so the interesting question is whether its utilization
// advantage survives faults without the SLO curve blowing up.
#include <iostream>
#include <vector>

#include "figure_common.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace corp;

constexpr std::size_t kJobs = 200;

const std::vector<double>& intensities() {
  static const std::vector<double> kIntensities{0.0, 0.35, 0.7, 1.0};
  return kIntensities;
}

const std::vector<predict::Method>& methods() {
  static const std::vector<predict::Method> kMethods{
      predict::Method::kCorp, predict::Method::kRccr,
      predict::Method::kCloudScale, predict::Method::kDra};
  return kMethods;
}

sim::PointResult run_cell(const sim::ExperimentConfig& base,
                          predict::Method method, double intensity) {
  sim::ExperimentConfig experiment = base;
  experiment.faults = fault::scaled_fault_config(intensity);
  return sim::run_point(experiment, method, kJobs);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  const bench::BenchTimer timer;
  const sim::ExperimentConfig experiment = bench::cluster_experiment(opts);

  const auto& xs = intensities();
  const auto& ms = methods();
  std::vector<sim::PointResult> results(ms.size() * xs.size());
  util::ThreadPool pool(opts.threads);
  pool.parallel_for(results.size(), [&](std::size_t task) {
    const std::size_t mi = task / xs.size();
    const std::size_t xi = task % xs.size();
    results[task] = run_cell(experiment, ms[mi], xs[xi]);
  });

  // Figure tables: utilization and SLO violation vs fault intensity, one
  // series per method (the resilience analogue of Fig. 8's tradeoff).
  sim::Figure util_fig;
  util_fig.id = "resilience_util";
  util_fig.title = "overall utilization vs fault intensity";
  util_fig.xlabel = "fault intensity";
  util_fig.ylabel = "overall utilization";
  util_fig.x = xs;
  sim::Figure slo_fig;
  slo_fig.id = "resilience_slo";
  slo_fig.title = "SLO violation rate vs fault intensity";
  slo_fig.xlabel = "fault intensity";
  slo_fig.ylabel = "slo violation rate";
  slo_fig.x = xs;
  for (std::size_t mi = 0; mi < ms.size(); ++mi) {
    sim::Series util_series{std::string(predict::method_name(ms[mi])), {}};
    sim::Series slo_series{std::string(predict::method_name(ms[mi])), {}};
    for (std::size_t xi = 0; xi < xs.size(); ++xi) {
      const auto& r = results[mi * xs.size() + xi];
      util_series.y.push_back(r.sim.overall_utilization);
      slo_series.y.push_back(r.sim.slo_violation_rate);
    }
    util_fig.series.push_back(std::move(util_series));
    slo_fig.series.push_back(std::move(slo_series));
  }

  std::cout << "== resilience study (" << experiment.environment.name << ", "
            << kJobs << " jobs, canonical fault mix) ==\n";
  bench::emit(util_fig, opts);
  bench::emit(slo_fig, opts);

  util::TextTable table({"method @ intensity", "util", "slo viol", "crashes",
                         "killed", "retries", "dropped", "gaps", "tier"});
  for (std::size_t mi = 0; mi < ms.size(); ++mi) {
    for (std::size_t xi = 0; xi < xs.size(); ++xi) {
      const auto& r = results[mi * xs.size() + xi].sim;
      std::ostringstream label;
      label << predict::method_name(ms[mi]) << " @ " << xs[xi];
      table.add_row(label.str(),
                    {r.overall_utilization, r.slo_violation_rate,
                     static_cast<double>(r.vm_crashes),
                     static_cast<double>(r.jobs_killed),
                     static_cast<double>(r.job_retries),
                     static_cast<double>(r.jobs_dropped),
                     static_cast<double>(r.telemetry_gaps),
                     static_cast<double>(r.degradation_tier)});
    }
  }
  std::cout << "== fault accounting ==\n"
            << table.to_string()
            << "\nExpected: utilization and SLO compliance degrade "
               "smoothly with intensity; every kill is accounted as a "
               "retry or a drop; CORP stays ahead of the reservation "
               "baselines while degraded.\n";
  bench::finish(opts, "resilience_study", timer, results.size(), pool.size());
  return 0;
}
