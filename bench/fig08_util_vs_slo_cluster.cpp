// Figure 8: overall resource utilization (Eq. 2, weights 0.4/0.4/0.2) at
// target SLO violation rates 5%-30%, on the cluster testbed. Each method's
// own aggressiveness lever is swept and utilization is interpolated at the
// target rates. Expected shape: utilization rises with the permitted SLO
// violation rate, and CORP dominates at every rate.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  sim::ExperimentHarness harness(bench::cluster_experiment(opts));
  const bench::BenchTimer timer;
  sim::Figure figure = harness.figure_utilization_vs_slo();
  figure.id = "fig08";
  bench::emit(figure, opts);
  bench::finish(opts, "fig08", timer, harness);
  return 0;
}
