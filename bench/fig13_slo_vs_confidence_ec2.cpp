// Figure 13: SLO violation rate vs confidence level on the EC2 testbed.
// Mirrors Fig. 9.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  sim::ExperimentHarness harness(bench::ec2_experiment());
  sim::Figure figure = harness.figure_slo_vs_confidence();
  figure.id = "fig13";
  bench::emit(figure, bench::csv_prefix(argc, argv));
  return 0;
}
