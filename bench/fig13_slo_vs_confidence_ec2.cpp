// Figure 13: SLO violation rate vs confidence level on the EC2 testbed.
// Mirrors Fig. 9.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  sim::ExperimentHarness harness(bench::ec2_experiment(opts));
  const bench::BenchTimer timer;
  sim::Figure figure = harness.figure_slo_vs_confidence();
  figure.id = "fig13";
  bench::emit(figure, opts);
  bench::finish(opts, "fig13", timer, harness);
  return 0;
}
