// Packing study: when does complementary packing (Sec. III-B, Figs. 1/4/5)
// pay off?
//
// On an amply-provisioned cluster the component ablation shows packing is
// nearly neutral — there is no fragmentation to avoid. This study
// reproduces the paper's *argument* instead: on a small, tight cluster,
// sweeping load, packing keeps complementary jobs co-located so fewer
// entities fail placement, queues stay shorter and utilization holds up.
#include <iostream>

#include "figure_common.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace corp;

struct StudyResult {
  sim::SimulationResult sim;
  std::size_t peak_queue = 0;
};

StudyResult run_study(bool packing, std::size_t num_jobs,
                      std::uint64_t seed) {
  // A deliberately tight cluster: 6 PMs -> 12 VMs.
  cluster::EnvironmentConfig env =
      cluster::EnvironmentConfig::PalmettoCluster();
  env.num_pms = 6;

  sim::ExperimentConfig experiment;
  experiment.environment = env;
  experiment.seed = seed;

  trace::GoogleTraceGenerator train_gen(sim::scaled_generator_config(
      env, experiment.training_jobs, experiment.training_horizon_slots));
  util::Rng train_rng(sim::training_seed(seed));
  const trace::Trace training = train_gen.generate(train_rng);

  trace::GeneratorConfig eval_config =
      sim::scaled_generator_config(env, num_jobs, 20);
  trace::GoogleTraceGenerator eval_gen(eval_config);
  util::Rng eval_rng(sim::evaluation_seed(seed, num_jobs));
  const trace::Trace evaluation = eval_gen.generate(eval_rng);

  sim::SimulationConfig config =
      sim::make_simulation_config(experiment, predict::Method::kCorp);
  sched::CorpSchedulerConfig scheduler =
      config.corp_scheduler.value_or(sched::CorpSchedulerConfig{});
  scheduler.enable_packing = packing;
  config.corp_scheduler = scheduler;
  config.record_timeline = true;
  config.grace_slots = 1500;

  sim::Simulation simulation(std::move(config));
  simulation.train(training);
  StudyResult result;
  result.sim = simulation.run(evaluation);
  result.peak_queue = result.sim.timeline.peak_queue();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  const bench::BenchTimer timer;
  const std::vector<std::size_t> loads{60, 120, 180};
  std::vector<StudyResult> with(loads.size()), without(loads.size());
  util::ThreadPool pool(opts.threads);
  pool.parallel_for(loads.size() * 2, [&](std::size_t task) {
    const std::size_t li = task / 2;
    const bool packing = task % 2 == 0;
    (packing ? with : without)[li] = run_study(packing, loads[li], opts.seed);
  });

  std::cout << "== packing study: CORP with/without complementary packing "
               "(6 PMs / 12 VMs, rising load) ==\n";
  util::TextTable table({"jobs", "packing", "overall util", "slo violation",
                         "peak queue", "opportunistic"});
  for (std::size_t li = 0; li < loads.size(); ++li) {
    for (const bool packing : {true, false}) {
      const StudyResult& r = packing ? with[li] : without[li];
      table.add_row(std::to_string(loads[li]) +
                        (packing ? " / on" : " / off"),
                    {packing ? 1.0 : 0.0, r.sim.overall_utilization,
                     r.sim.slo_violation_rate,
                     static_cast<double>(r.peak_queue),
                     static_cast<double>(r.sim.opportunistic_placements)});
    }
  }
  std::cout << table.to_string()
            << "\nExpected: packing's complementary entities fit the VMs' "
               "unused pools better (the Fig. 1/4 effect), so utilization "
               "is markedly higher while the cluster still has headroom; "
               "under extreme overload both variants saturate and the gap "
               "narrows.\n";
  bench::finish(opts, "packing_study", timer, loads.size() * 2, pool.size());
  return 0;
}
