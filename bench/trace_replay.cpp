// Streaming-ingest benchmark and conformance harness: pushes a real-trace
// CSV file (Google cluster-usage v2 or Azure VM schema) through
// trace::StreamReader and — optionally — on into the sharded slot engine
// via sim::StreamingJobSource, without ever materializing the trace.
//
// Three phases, each feeding the metrics record bench-smoke-style:
//   1. ingest   — timed full-file streaming parse; publishes the
//                 trace.* counters and the trace.rows_per_second gauge;
//   2. differential — re-ingests the file serially with different chunk
//                 boundaries and compares a running hash of the emitted
//                 job stream against phase 1 (the parallel==serial
//                 determinism contract, re-checked on the real input
//                 before any timing is trusted, scale_study-style);
//   3. replay   — trains on a synthetic corpus (generated once, before
//                 any replay run — fixture metadata is CLI-independent
//                 and must not be re-derived per run), then streams the
//                 file into Simulation::run(JobSource&); publishes
//                 sim.slots_per_second. With --clock both the file is
//                 replayed under the dense tick-every-slot clock and the
//                 event-driven clock (sim/slot_clock.hpp) from the same
//                 hoisted training corpus, and the two results must
//                 match bit for bit; --require-skips N additionally
//                 demands the event run skipped at least N slots (the
//                 CI sparse-fixture gate).
//
// The CI trace-ingest job runs this under an address-space ceiling
// (ulimit -v) against a ~100 MiB generated fixture: the run only fits if
// the reader honours its bounded-memory contract, and the job then gates
// the trace.* counters with tools/validate_metrics.py.
//
// CLI: --trace PATH [--schema google-v2|azure-vm] [--long-tasks drop|segment]
//      [--chunk-kb K] [--threads N] [--seed S] [--replay 0|1]
//      [--clock dense|event|both] [--predict-cadence slot|window]
//      [--require-skips N] [--env cluster|ec2|slurm-het] [--json PATH]
//      [--metrics-out PATH] [--no-metrics 1]
#include <bit>
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "figure_common.hpp"
#include "obs/metrics.hpp"
#include "sim/job_source.hpp"
#include "sim/simulation.hpp"
#include "sim/slot_clock.hpp"
#include "sim/workloads.hpp"
#include "trace/generator.hpp"
#include "trace/stream_reader.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace corp;

struct Options {
  std::string trace_path;
  trace::StreamReaderConfig stream;
  cluster::EnvironmentConfig environment =
      cluster::EnvironmentConfig::PalmettoCluster();
  bool replay = true;
  bool replay_dense = false;
  bool replay_event = true;
  sim::PredictCadence cadence = sim::PredictCadence::kEverySlot;
  std::int64_t require_skips = 0;
  bench::BenchOptions bench;
};

Options parse(int argc, char** argv) try {
  const util::ArgParser args(
      argc, argv, 1,
      {"trace", "schema", "long-tasks", "chunk-kb", "threads", "seed",
       "replay", "clock", "predict-cadence", "require-skips", "env", "json",
       "metrics-out", "no-metrics"});
  Options opts;
  opts.trace_path = args.get("trace", "");
  if (opts.trace_path.empty()) {
    throw std::invalid_argument("--trace PATH is required");
  }
  opts.stream.schema =
      trace::parse_schema_name(args.get("schema", "google-v2"));
  const std::string long_tasks = args.get("long-tasks", "drop");
  if (long_tasks == "drop") {
    opts.stream.long_tasks = trace::LongTaskPolicy::kDrop;
  } else if (long_tasks == "segment") {
    opts.stream.long_tasks = trace::LongTaskPolicy::kSegment;
  } else {
    throw std::invalid_argument("unknown --long-tasks " + long_tasks);
  }
  const std::size_t chunk_kb = args.get_size("chunk-kb", 4096);
  if (chunk_kb == 0) throw std::invalid_argument("--chunk-kb must be >= 1");
  opts.stream.chunk_bytes = chunk_kb * 1024;
  opts.replay = args.get_int("replay", 1) != 0;
  const std::string clock = args.get("clock", "event");
  if (clock == "both") {
    opts.replay_dense = true;
    opts.replay_event = true;
  } else {
    const sim::SlotClockMode mode = sim::parse_slot_clock(clock);
    opts.replay_dense = mode == sim::SlotClockMode::kDense;
    opts.replay_event = mode == sim::SlotClockMode::kEvent;
  }
  opts.cadence =
      sim::parse_predict_cadence(args.get("predict-cadence", "slot"));
  opts.require_skips = args.get_int("require-skips", 0);
  if (opts.require_skips < 0) {
    throw std::invalid_argument("--require-skips must be >= 0");
  }
  if (opts.require_skips > 0 && !opts.replay_event) {
    throw std::invalid_argument(
        "--require-skips needs an event-clock replay (--clock event|both)");
  }
  const std::string env = args.get("env", "cluster");
  if (env == "cluster") {
    opts.environment = cluster::EnvironmentConfig::PalmettoCluster();
  } else if (env == "ec2") {
    opts.environment = cluster::EnvironmentConfig::AmazonEc2();
  } else if (env == "slurm-het") {
    opts.environment = cluster::EnvironmentConfig::SlurmHeterogeneous();
  } else {
    throw std::invalid_argument("unknown --env " + env);
  }
  opts.bench.json_path = args.get("json", "");
  opts.bench.metrics_out = args.get("metrics-out", "");
  opts.bench.threads = args.get_size("threads", 0);
  opts.bench.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  opts.stream.seed = opts.bench.seed;
  obs::set_enabled(!args.has("no-metrics"));
  return opts;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n'
            << "usage: trace_replay --trace PATH [--schema S]"
               " [--long-tasks drop|segment] [--chunk-kb K] [--threads N]"
               " [--seed S] [--replay 0|1] [--clock dense|event|both]"
               " [--predict-cadence slot|window] [--require-skips N]"
               " [--env E] [--json PATH] [--metrics-out PATH]"
               " [--no-metrics 1]\n";
  std::exit(2);
}

/// Order-sensitive running hash of an emitted job stream: any divergence
/// in job identity, timing, request sizing or resampled usage between two
/// ingest configurations changes the digest. Keeps the differential check
/// O(1) in memory — the jobs themselves are discarded batch by batch.
class JobStreamHash {
 public:
  void absorb(const trace::Job& job) {
    mix(job.id);
    mix(static_cast<std::uint64_t>(job.submit_slot));
    mix(job.duration_slots);
    mix_double(job.slo_stretch);
    mix_vector(job.request);
    for (const trace::ResourceVector& u : job.usage) mix_vector(u);
  }

  std::uint64_t digest() const { return state_; }
  std::uint64_t jobs() const { return jobs_; }

  void count_job() { ++jobs_; }

 private:
  void mix(std::uint64_t v) {
    state_ = util::splitmix64_mix(state_ ^ (v + util::kSplitMix64Gamma));
  }
  void mix_double(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
  void mix_vector(const trace::ResourceVector& v) {
    for (std::size_t r = 0; r < trace::kNumResources; ++r) {
      mix_double(v[r]);
    }
  }

  std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
  std::uint64_t jobs_ = 0;
};

struct IngestResult {
  trace::StreamStats stats;
  std::uint64_t digest = 0;
  std::uint64_t jobs = 0;
  double wall_ms = 0.0;
};

struct ReplayOutcome {
  sim::SimulationResult result;
  double run_ms = 0.0;
  std::size_t peak_live_jobs = 0;
};

/// One streamed replay of the trace under the given clock mode. The
/// training corpus is hoisted by the caller — it depends only on the
/// seed and environment, never on the clock — so every mode trains an
/// identical predictor stack from the same trace.
ReplayOutcome run_replay(const Options& opts, util::ThreadPool* pool,
                         const sim::ExperimentConfig& experiment,
                         const trace::Trace& training,
                         sim::SlotClockMode clock) {
  sim::SimulationConfig config = sim::make_simulation_config(
      experiment, sim::Method::kCorp, /*aggressiveness=*/0.35);
  config.params.slot_clock = clock;
  config.params.predict_cadence = opts.cadence;
  sim::Simulation simulation(std::move(config));
  simulation.train(training);

  trace::StreamReader reader(opts.trace_path, opts.stream, pool);
  sim::StreamingJobSource source(reader);
  ReplayOutcome outcome;
  const bench::BenchTimer replay_wall;
  outcome.result = simulation.run(source);
  outcome.run_ms = replay_wall.elapsed_ms();
  outcome.peak_live_jobs = source.peak_live_jobs();
  return outcome;
}

/// Clock-mode differential for --clock both: every result field must
/// match bit for bit except the clock diagnostics (ticked/skipped differ
/// by design) and wall-clock latencies.
void check_clock_identity(const ReplayOutcome& dense,
                          const ReplayOutcome& event) {
  const sim::SimulationResult& d = dense.result;
  const sim::SimulationResult& e = event.result;
  const bool identical =
      d.overall_utilization == e.overall_utilization &&
      d.overall_wastage == e.overall_wastage &&
      d.slo_violation_rate == e.slo_violation_rate &&
      d.mean_stretch == e.mean_stretch &&
      d.jobs_completed == e.jobs_completed &&
      d.jobs_violated == e.jobs_violated && d.jobs_forced == e.jobs_forced &&
      d.opportunistic_placements == e.opportunistic_placements &&
      d.reserved_placements == e.reserved_placements &&
      d.lease_promotions == e.lease_promotions &&
      d.lease_preemptions == e.lease_preemptions &&
      d.predictions_amortized == e.predictions_amortized &&
      d.slots_simulated == e.slots_simulated &&
      dense.peak_live_jobs == event.peak_live_jobs;
  if (!identical) {
    throw std::logic_error(
        "trace_replay: dense/event clock divergence on streamed replay");
  }
}

IngestResult ingest(const Options& opts,
                    const trace::StreamReaderConfig& config,
                    util::ThreadPool* pool, const char* phase) {
  const obs::ScopedTimer timer(phase);
  const bench::BenchTimer wall;
  trace::StreamReader reader(opts.trace_path, config, pool);
  JobStreamHash hash;
  do {
    reader.advance();
    for (const trace::Job& job : reader.take_ready()) {
      hash.absorb(job);
      hash.count_job();
    }
  } while (!reader.exhausted());
  IngestResult result;
  result.stats = reader.stats();
  result.digest = hash.digest();
  result.jobs = hash.jobs();
  result.wall_ms = wall.elapsed_ms();
  return result;
}

void publish_trace_metrics(const trace::StreamStats& stats, double rows_per_sec) {
  obs::MetricRegistry& reg = obs::registry();
  if (!reg.enabled()) return;
  reg.counter("trace.bytes_read").add(stats.bytes_read);
  reg.counter("trace.rows_parsed").add(stats.rows_parsed);
  reg.counter("trace.lines_seen").add(stats.lines_seen);
  reg.counter("trace.chunks_parsed").add(stats.chunks_parsed);
  reg.counter("trace.batches_mapped").add(stats.batches_mapped);
  reg.counter("trace.tasks_opened").add(stats.tasks_opened);
  reg.counter("trace.jobs_emitted").add(stats.jobs_emitted);
  reg.counter("trace.jobs_dropped_long").add(stats.jobs_dropped_long);
  reg.counter("trace.jobs_segmented").add(stats.jobs_segmented);
  reg.counter("trace.gap_fills").add(stats.gap_fills);
  obs::set_gauge("trace.peak_open_tasks",
                 static_cast<double>(stats.peak_open_tasks));
  obs::set_gauge("trace.rows_per_second", rows_per_sec);
}

}  // namespace

int main(int argc, char** argv) try {
  const Options opts = parse(argc, argv);
  const bench::BenchTimer total;

  const std::size_t workers = util::ThreadPool::resolve(opts.bench.threads);
  std::unique_ptr<util::ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<util::ThreadPool>(workers);

  // --- 1. timed ingest ---------------------------------------------------
  const IngestResult primary =
      ingest(opts, opts.stream, pool.get(), "trace.ingest");
  const double rows_per_sec =
      static_cast<double>(primary.stats.rows_parsed) * 1e3 /
      std::max(primary.wall_ms, 1e-6);
  publish_trace_metrics(primary.stats, rows_per_sec);

  // --- 2. differential: serial, different chunk boundaries ---------------
  // A third of the chunk width misaligns every boundary relative to phase
  // 1, and the serial path exercises the no-pool merge. Identical digests
  // on the real input re-pin the parallel==serial contract end to end.
  trace::StreamReaderConfig alt = opts.stream;
  alt.chunk_bytes = std::max<std::size_t>(4096, opts.stream.chunk_bytes / 3);
  alt.chunks_per_batch = 2;
  const IngestResult shuffled =
      ingest(opts, alt, nullptr, "trace.ingest_differential");
  if (shuffled.digest != primary.digest || shuffled.jobs != primary.jobs) {
    throw std::logic_error(
        "trace_replay: job stream diverged between chunkings (" +
        std::to_string(primary.jobs) + " vs " +
        std::to_string(shuffled.jobs) + " jobs)");
  }

  util::TextTable ingest_table({"phase", "rows", "jobs", "dropped",
                                "peak open", "rows/s"});
  ingest_table.add_row(
      "ingest", {static_cast<double>(primary.stats.rows_parsed),
                 static_cast<double>(primary.jobs),
                 static_cast<double>(primary.stats.jobs_dropped_long),
                 static_cast<double>(primary.stats.peak_open_tasks),
                 rows_per_sec});
  std::cout << ingest_table.to_string();
  std::cout << "differential: serial re-ingest matched (digest "
            << primary.digest << ", " << primary.jobs << " jobs)\n";

  std::size_t points = 2;

  // --- 3. streamed replay ------------------------------------------------
  if (opts.replay) {
    // Hoisted fixture metadata: the experiment shape and the synthetic
    // training corpus depend only on CLI seed/environment, so they are
    // derived exactly once here — never re-parsed or re-generated per
    // replay run, even when --clock both replays the file twice.
    sim::ExperimentConfig experiment;
    experiment.environment = opts.environment;
    experiment.seed = opts.bench.seed;
    experiment.params.threads = opts.bench.threads;
    trace::GoogleTraceGenerator train_gen(sim::scaled_generator_config(
        experiment.environment, experiment.training_jobs,
        experiment.training_horizon_slots));
    util::Rng train_rng(sim::training_seed(experiment.seed));
    const trace::Trace training = train_gen.generate(train_rng);

    util::TextTable replay_table({"phase", "slots", "ticked", "skipped",
                                  "slots/s", "completed", "overall util",
                                  "peak live"});
    const auto report = [&replay_table, &points](const char* phase,
                                                 const ReplayOutcome& run) {
      const double slots_per_sec =
          static_cast<double>(run.result.slots_simulated) * 1e3 /
          std::max(run.run_ms, 1e-6);
      replay_table.add_row(
          phase, {static_cast<double>(run.result.slots_simulated),
                  static_cast<double>(run.result.slots_ticked),
                  static_cast<double>(run.result.slots_skipped),
                  slots_per_sec,
                  static_cast<double>(run.result.jobs_completed),
                  run.result.overall_utilization,
                  static_cast<double>(run.peak_live_jobs)});
      ++points;
      return slots_per_sec;
    };

    std::optional<ReplayOutcome> dense;
    if (opts.replay_dense) {
      dense = run_replay(opts, pool.get(), experiment, training,
                         sim::SlotClockMode::kDense);
      const double rate = report("replay.dense", *dense);
      obs::set_gauge("trace.replay.slots_per_second.dense", rate);
    }
    std::optional<ReplayOutcome> event;
    if (opts.replay_event) {
      event = run_replay(opts, pool.get(), experiment, training,
                         sim::SlotClockMode::kEvent);
      const double rate = report("replay.event", *event);
      obs::set_gauge("trace.replay.slots_per_second.event", rate);
    }
    std::cout << replay_table.to_string();

    if (dense.has_value() && event.has_value()) {
      check_clock_identity(*dense, *event);
      std::cout << "clock differential: dense and event replays matched ("
                << event->result.slots_skipped << " slots skipped)\n";
    }
    if (opts.require_skips > 0 &&
        event->result.slots_skipped < opts.require_skips) {
      throw std::logic_error(
          "trace_replay: event clock skipped " +
          std::to_string(event->result.slots_skipped) + " slots, required " +
          std::to_string(opts.require_skips));
    }

    const ReplayOutcome& headline = event.has_value() ? *event : *dense;
    obs::set_gauge("sim.slots_per_second",
                   static_cast<double>(headline.result.slots_simulated) *
                       1e3 / std::max(headline.run_ms, 1e-6));
    obs::set_gauge("trace.peak_live_jobs",
                   static_cast<double>(headline.peak_live_jobs));
  }

  bench::finish(opts.bench, "trace_replay", total, points, workers);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
