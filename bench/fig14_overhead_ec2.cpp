// Figure 14: latency for allocating resources to 300 jobs on the EC2
// testbed. Mirrors Fig. 10, shifted upward by EC2's higher communication
// overhead.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  sim::ExperimentHarness harness(bench::ec2_experiment());
  sim::Figure figure = harness.figure_overhead();
  figure.id = "fig14";
  bench::emit(figure, bench::csv_prefix(argc, argv));
  return 0;
}
