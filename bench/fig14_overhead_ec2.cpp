// Figure 14: latency for allocating resources to 300 jobs on the EC2
// testbed. Mirrors Fig. 10, shifted upward by EC2's higher communication
// overhead.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace corp;
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  sim::ExperimentHarness harness(bench::ec2_experiment(opts));
  const bench::BenchTimer timer;
  sim::Figure figure = harness.figure_overhead();
  figure.id = "fig14";
  bench::emit(figure, opts);
  bench::finish(opts, "fig14", timer, harness);
  return 0;
}
