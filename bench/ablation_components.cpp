// Component ablation: how much of CORP's advantage comes from each design
// choice DESIGN.md calls out — complementary packing, the HMM fluctuation
// correction, the confidence lower bound (Eq. 19), and opportunistic
// reallocation itself. Each variant disables one component; "none" is
// reservation-only CORP.
#include <iostream>
#include <vector>

#include "figure_common.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace corp;

struct Variant {
  std::string name;
  bool packing = true;
  bool opportunistic = true;
  bool hmm = true;
  bool confidence = true;
};

sim::PointResult run_variant(const sim::ExperimentConfig& experiment,
                             const Variant& variant, std::size_t num_jobs) {
  // Rebuild the run_point pipeline with the CORP ablation switches set.
  const std::uint64_t train_seed = sim::training_seed(experiment.seed);
  const std::uint64_t eval_seed =
      sim::evaluation_seed(experiment.seed, num_jobs);

  trace::GoogleTraceGenerator train_gen(sim::scaled_generator_config(
      experiment.environment, experiment.training_jobs,
      experiment.training_horizon_slots));
  util::Rng train_rng(train_seed);
  const trace::Trace training = train_gen.generate(train_rng);

  trace::GoogleTraceGenerator eval_gen(sim::scaled_generator_config(
      experiment.environment, num_jobs, experiment.eval_horizon_slots));
  util::Rng eval_rng(eval_seed);
  const trace::Trace evaluation = eval_gen.generate(eval_rng);

  sim::SimulationConfig config =
      sim::make_simulation_config(experiment, predict::Method::kCorp);
  sched::CorpSchedulerConfig scheduler;
  scheduler.enable_packing = variant.packing;
  scheduler.enable_opportunistic = variant.opportunistic;
  config.corp_scheduler = scheduler;
  config.enable_hmm_correction = variant.hmm;
  config.enable_confidence_bound = variant.confidence;

  sim::Simulation simulation(std::move(config));
  simulation.train(training);
  sim::PointResult result;
  result.prediction =
      sim::evaluate_prediction_error(simulation.predictor(), evaluation);
  result.sim = simulation.run(evaluation);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_options(argc, argv);
  const bench::BenchTimer timer;
  const sim::ExperimentConfig experiment = bench::cluster_experiment(opts);
  constexpr std::size_t kJobs = 300;

  const std::vector<Variant> variants{
      {"full CORP", true, true, true, true},
      {"no packing", false, true, true, true},
      {"no HMM correction", true, true, false, true},
      {"no confidence bound", true, true, true, false},
      {"no opportunistic", true, false, true, true},
  };

  std::vector<sim::PointResult> results(variants.size());
  util::ThreadPool pool(opts.threads);
  pool.parallel_for(variants.size(), [&](std::size_t i) {
    results[i] = run_variant(experiment, variants[i], kJobs);
  });

  std::cout << "== ablation: CORP component contributions ("
            << experiment.environment.name << ", " << kJobs << " jobs) ==\n";
  util::TextTable table({"variant", "overall util", "slo violation",
                         "pred error", "opportunistic", "latency ms"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = results[i];
    table.add_row(variants[i].name,
                  {r.sim.overall_utilization, r.sim.slo_violation_rate,
                   r.prediction.error_rate,
                   static_cast<double>(r.sim.opportunistic_placements),
                   r.sim.total_latency_ms});
  }
  std::cout << table.to_string()
            << "\nExpected: every ablation loses utilization or SLO "
               "compliance relative to full CORP; 'no opportunistic' "
               "drops utilization to the reservation baseline.\n";
  bench::finish(opts, "ablation_components", timer, variants.size(),
                pool.size());
  return 0;
}
