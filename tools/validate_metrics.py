#!/usr/bin/env python3
"""Validate metrics JSON emitted by the obs subsystem (schema version 1).

Accepts JSON-lines files produced either by `corpsim --metrics-out` /
bench `--metrics-out` (standalone snapshots: the phase/counter maps at
top level next to the envelope) or by bench `--json` (run records with
the snapshot nested under "metrics"). Both shapes share the schema
documented in docs/observability.md and src/obs/export.hpp.

The CI bench-smoke job runs this against fresh bench output and fails
the build on schema drift:

    python3 tools/validate_metrics.py --require-phases dnn.,hmm.,sim.,sched. \
        build/fig10_timing.json

Checks per record:
  * schema_version == 1, run_id a non-empty string
  * phases non-empty; every phase has integer calls >= 1 and
    non-negative total_ms / mean_ms / max_ms
  * counters are non-negative integers
  * gauges are numbers (or null for non-finite values)
  * histogram `le` bounds strictly increase; `cum` has one extra
    (overflow) entry, is monotone non-decreasing, and ends at `count`
  * --require-phases: each comma-separated prefix matches >= 1 phase
  * --require-counters: each comma-separated prefix matches >= 1 counter
    or gauge (float-valued headline metrics such as sim.slots_per_second
    live in the gauges map; the gate treats both maps as one namespace)

Only the Python standard library is used.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from typing import NoReturn

SCHEMA_VERSION = 1
METRIC_KEYS = ("phases", "counters", "gauges", "histograms")


class SchemaError(Exception):
    pass


def fail(where: str, message: str) -> NoReturn:
    raise SchemaError(f"{where}: {message}")


def check_number(where: str, value: object,
                 allow_null: bool = False) -> None:
    if value is None and allow_null:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        fail(where, f"expected a number, got {value!r}")


def check_non_negative(where: str, value: object) -> None:
    check_number(where, value)
    assert isinstance(value, (int, float))  # narrowed by check_number
    if value < 0:
        fail(where, f"expected >= 0, got {value!r}")


def check_phases(where: str, phases: object) -> None:
    if not isinstance(phases, dict):
        fail(where, "phases is not an object")
    if not phases:
        fail(where, "phases is empty — instrumentation did not run")
    for name, phase in phases.items():
        pwhere = f"{where}.phases[{name}]"
        if not isinstance(phase, dict):
            fail(pwhere, "not an object")
        calls = phase.get("calls")
        if isinstance(calls, bool) or not isinstance(calls, int) or calls < 1:
            fail(pwhere, f"calls must be a positive integer, got {calls!r}")
        for field in ("total_ms", "mean_ms", "max_ms"):
            if field not in phase:
                fail(pwhere, f"missing {field}")
            check_non_negative(f"{pwhere}.{field}", phase[field])


def check_counters(where: str, counters: object) -> None:
    if not isinstance(counters, dict):
        fail(where, "counters is not an object")
    for name, value in counters.items():
        cwhere = f"{where}.counters[{name}]"
        if isinstance(value, bool) or not isinstance(value, int):
            fail(cwhere, f"counter must be an integer, got {value!r}")
        if value < 0:
            fail(cwhere, f"counter must be non-negative, got {value!r}")


def check_gauges(where: str, gauges: object) -> None:
    if not isinstance(gauges, dict):
        fail(where, "gauges is not an object")
    for name, value in gauges.items():
        check_number(f"{where}.gauges[{name}]", value, allow_null=True)


def check_histograms(where: str, histograms: object) -> None:
    if not isinstance(histograms, dict):
        fail(where, "histograms is not an object")
    for name, hist in histograms.items():
        hwhere = f"{where}.histograms[{name}]"
        if not isinstance(hist, dict):
            fail(hwhere, "not an object")
        for field in ("count", "sum", "min", "max", "p50", "p90", "p99"):
            if field not in hist:
                fail(hwhere, f"missing {field}")
        count = hist["count"]
        if isinstance(count, bool) or not isinstance(count, int) or count < 0:
            fail(hwhere,
                 f"count must be a non-negative integer, got {count!r}")
        bounds = hist.get("le")
        cum = hist.get("cum")
        if not isinstance(bounds, list) or not isinstance(cum, list):
            fail(hwhere, "le/cum must be arrays")
        if len(cum) != len(bounds) + 1:
            fail(hwhere,
                 f"cum must have one overflow entry beyond le "
                 f"({len(cum)} vs {len(bounds)} bounds)")
        for i, bound in enumerate(bounds):
            check_number(f"{hwhere}.le[{i}]", bound)
            if i > 0 and bound <= bounds[i - 1]:
                fail(hwhere, f"le not strictly increasing at index {i}")
        previous = 0
        for i, value in enumerate(cum):
            cwhere = f"{hwhere}.cum[{i}]"
            if isinstance(value, bool) or not isinstance(value, int):
                fail(cwhere, f"must be an integer, got {value!r}")
            if value < previous:
                fail(cwhere,
                     f"cumulative counts decreased ({previous} -> {value})")
            previous = value
        if cum and cum[-1] != count:
            fail(hwhere, f"cum[-1] ({cum[-1]}) != count ({count})")


def check_record(where: str, record: object,
                 require_phases: Sequence[str],
                 require_counters: Sequence[str]) -> None:
    if not isinstance(record, dict):
        fail(where, "record is not a JSON object")
    version = record.get("schema_version")
    if version != SCHEMA_VERSION:
        fail(where, f"schema_version {version!r} != {SCHEMA_VERSION}")
    run_id = record.get("run_id")
    if not isinstance(run_id, str) or not run_id:
        fail(where, f"run_id must be a non-empty string, got {run_id!r}")
    # Bench records nest the snapshot under "metrics"; standalone
    # snapshots keep the maps at top level.
    metrics = record.get("metrics", record)
    if not isinstance(metrics, dict):
        fail(where, "metrics is not an object")
    for key in METRIC_KEYS:
        if key not in metrics:
            fail(where, f"missing metrics key {key!r}")
    check_phases(where, metrics["phases"])
    check_counters(where, metrics["counters"])
    check_gauges(where, metrics["gauges"])
    check_histograms(where, metrics["histograms"])
    phases = metrics["phases"]
    assert isinstance(phases, dict)  # narrowed by check_phases
    phase_names = [str(name) for name in phases]
    for prefix in require_phases:
        if not any(name.startswith(prefix) for name in phase_names):
            fail(where, f"no phase matches required prefix {prefix!r} "
                        f"(have: {', '.join(sorted(phase_names))})")
    counters = metrics["counters"]
    gauges = metrics["gauges"]
    assert isinstance(counters, dict)  # narrowed by check_counters
    assert isinstance(gauges, dict)  # narrowed by check_gauges
    # Counters and gauges share one name namespace for gating purposes:
    # integer tallies land in counters, float headline metrics (rates,
    # speedups) in gauges, and a gate prefix may match either.
    metric_names = [str(name) for name in counters]
    metric_names += [str(name) for name in gauges]
    for prefix in require_counters:
        if not any(name.startswith(prefix) for name in metric_names):
            fail(where, f"no counter or gauge matches required prefix "
                        f"{prefix!r} "
                        f"(have: {', '.join(sorted(metric_names))})")


def validate_file(path: str, require_phases: Sequence[str],
                  require_counters: Sequence[str]) -> int:
    records = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                record: object = json.loads(line)
            except json.JSONDecodeError as err:
                fail(where, f"invalid JSON: {err}")
            check_record(where, record, require_phases, require_counters)
            records += 1
    if records == 0:
        fail(path, "no records found")
    return records


def main() -> int:
    doc = __doc__ or ""
    parser = argparse.ArgumentParser(description=doc.splitlines()[0])
    parser.add_argument("files", nargs="+", help="JSON-lines metrics files")
    parser.add_argument(
        "--require-phases", default="",
        help="comma-separated phase-name prefixes each record must cover")
    parser.add_argument(
        "--require-counters", default="",
        help="comma-separated counter/gauge-name prefixes each record "
             "must cover")
    args = parser.parse_args()
    require_phases = [p for p in args.require_phases.split(",") if p]
    require_counters = [p for p in args.require_counters.split(",") if p]

    status = 0
    for path in args.files:
        try:
            records = validate_file(path, require_phases, require_counters)
            print(f"ok: {path} ({records} record(s))")
        except (OSError, SchemaError) as err:
            print(f"FAIL: {err}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
