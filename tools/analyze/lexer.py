"""C++ token stream for the analyzer's micro frontend.

A richer cousin of corp_lint's tokenizer: compound assignment operators
are single tokens (the lint layer never needed them; write detection
does), and the lambda capture-list parser here is shared with the clang
frontend, which re-lexes the capture list from the source slice at the
lambda's begin location (clang's JSON dump does not serialize capture
modes).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<string>L?R?"(?:\\.|[^"\\\n])*"|L?'(?:\\.|[^'\\\n])*')
    | (?P<number>(?:0[xX][0-9a-fA-F']+|\d[\d']*(?:\.\d*)?(?:[eE][-+]?\d+)?)
                 [uUlLfF]*)
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<punct><<=|>>=|\+=|-=|\*=|/=|%=|&=|\|=|\^=
                |::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|
                |[-+*/%&|^~!<>=?:;,.(){}\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)

#: Compound assignment operators (always a write to their left operand).
COMPOUND_ASSIGN = frozenset(
    {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "punct" | "string"
    text: str
    line: int


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    pos = 0
    for match in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, match.start())
        pos = match.start()
        kind = match.lastgroup
        if kind == "comment" or kind is None:
            continue
        tokens.append(Token(kind, match.group(), line))
    return tokens


_CLOSER = {"(": ")", "[": "]", "{": "}"}


def match_forward(tokens: list[Token], open_idx: int) -> int:
    """Index of the token closing the bracket at `open_idx` (or len)."""
    closer = _CLOSER[tokens[open_idx].text]
    opener = tokens[open_idx].text
    depth = 0
    for i in range(open_idx, len(tokens)):
        text = tokens[i].text
        if text == opener:
            depth += 1
        elif text == closer:
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)


def match_backward(tokens: list[Token], close_idx: int) -> int:
    """Index of the token opening the bracket closed at `close_idx`."""
    closer = tokens[close_idx].text
    opener = {v: k for k, v in _CLOSER.items()}[closer]
    depth = 0
    for i in range(close_idx, -1, -1):
        text = tokens[i].text
        if text == closer:
            depth += 1
        elif text == opener:
            depth -= 1
            if depth == 0:
                return i
    return 0


@dataclass(frozen=True)
class Capture:
    name: str  # "" for capture defaults, "this" for this captures
    by_ref: bool


@dataclass
class CaptureList:
    default: str  # "&", "=", or ""
    captures: list[Capture]

    def is_shared(self, name: str, member_like: bool) -> bool:
        """True when writing `name` inside the lambda mutates state the
        enclosing scope (and sibling iterations) can observe.

        Explicit by-value captures are private copies. A `=` default
        copies locals but still shares members reached through the
        copied this pointer, so member-like names stay shared.
        """
        for cap in self.captures:
            if cap.name == name:
                return cap.by_ref
        if member_like and any(c.name == "this" for c in self.captures):
            return True
        if self.default == "&":
            return True
        if self.default == "=":
            return member_like  # [=] copies this — members are shared
        # No default, not captured: only globals/statics are reachable,
        # and writing those from a parallel region is exactly the hazard.
        return True


def parse_capture_list(text: str) -> CaptureList:
    """Parses the `[...]` lambda introducer at the start of `text`.

    Tolerant: unknown shapes degrade to the hazard-prone reading (shared
    by reference) rather than failing, so a frontend can feed it a
    source slice without pre-validating.
    """
    parsed = CaptureList(default="", captures=[])
    tokens = tokenize(text)
    if not tokens or tokens[0].text != "[":
        return CaptureList(default="&", captures=[])
    end = match_forward(tokens, 0)
    entries: list[list[Token]] = [[]]
    depth = 0
    for tok in tokens[1:end]:
        if tok.text in ("(", "[", "{", "<"):
            depth += 1
        elif tok.text in (")", "]", "}", ">"):
            depth -= 1
        if tok.text == "," and depth == 0:
            entries.append([])
        else:
            entries[-1].append(tok)
    for entry in entries:
        if not entry:
            continue
        if len(entry) == 1 and entry[0].text in ("&", "="):
            parsed.default = entry[0].text
            continue
        if entry[0].text == "this":
            parsed.captures.append(Capture("this", True))
            continue
        if entry[0].text == "*" and len(entry) > 1 and \
                entry[1].text == "this":
            parsed.captures.append(Capture("this", False))
            continue
        by_ref = entry[0].text == "&"
        name_tok = entry[1] if by_ref and len(entry) > 1 else entry[0]
        if name_tok.kind == "ident":
            # Init captures (`x = expr`) bind the name either way.
            parsed.captures.append(Capture(name_tok.text, by_ref))
    return parsed


def looks_member(name: str) -> bool:
    """Repo convention: members are `name_`; used when no decl is
    visible to decide whether a `=`-default capture still shares."""
    return name.endswith("_")
