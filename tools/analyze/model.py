"""Frontend-agnostic facts, findings and helpers for corp_analyze.

Both frontends (the clang AST-JSON lowering and the micro fallback
parser) reduce a translation unit to the same small ``TUFacts`` record;
the rules in ``rules.py`` only ever see that record, so a rule fires
identically no matter which frontend produced the facts. TUFacts is
round-trippable through JSON — that is what the analyzer caches per
file, keyed on (source hash, flags hash).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

#: Bump when the fact schema or the lowering semantics change: stale
#: cache entries must not satisfy a newer analyzer.
FACTS_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class ParallelWrite:
    """A hazardous write inside a parallel-region lambda.

    Frontends only emit writes that are already classified as hazardous:
    the target is captured by reference (or is reachable shared state),
    is not declared inside the lambda, and no subscript on the access
    path involves the loop/shard variable or a value derived from it.
    """

    file: str
    line: int
    var: str  # base identifier of the written lvalue chain
    op: str  # "=", "+=", "++", "push_back", ...
    fp_accum: bool  # compound +=/-= with a floating-point target
    region_entry: str  # "parallel_for", "submit", or a wrapper name
    region_line: int


@dataclass(frozen=True)
class SeedSite:
    """One util::derive_seed call site."""

    file: str
    line: int
    function: str  # qualified enclosing function ("" when unknown)
    base_text: str  # source text of the base-seed argument
    tag_name: str  # named stream constant ("" for literals/expressions)
    substream_text: str  # source text of the substream argument, or ""


@dataclass(frozen=True)
class MetricSite:
    """One obs::MetricRegistry name registration/emission site."""

    file: str
    line: int
    kind: str  # "counter" | "gauge" | "histogram" | "phase"
    name: str  # the literal metric name


@dataclass(frozen=True)
class RegistryTag:
    """One named constant in the seed_stream registry header."""

    name: str
    line: int


@dataclass
class TUFacts:
    """Everything one translation unit contributes to the rules."""

    source: str
    writes: list[ParallelWrite] = field(default_factory=list)
    seeds: list[SeedSite] = field(default_factory=list)
    metrics: list[MetricSite] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": FACTS_SCHEMA_VERSION,
            "source": self.source,
            "writes": [asdict(w) for w in self.writes],
            "seeds": [asdict(s) for s in self.seeds],
            "metrics": [asdict(m) for m in self.metrics],
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> TUFacts | None:
        """None when the payload is from a different schema version."""
        if data.get("schema") != FACTS_SCHEMA_VERSION:
            return None
        try:
            return TUFacts(
                source=str(data["source"]),
                writes=[ParallelWrite(**w) for w in data["writes"]],
                seeds=[SeedSite(**s) for s in data["seeds"]],
                metrics=[MetricSite(**m) for m in data["metrics"]],
            )
        except (KeyError, TypeError):
            return None


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def merge_facts(per_tu: list[TUFacts]) -> TUFacts:
    """Union of facts across TUs, deduplicated by site.

    Facts discovered in headers are re-seen from every TU that includes
    them (and template bodies from every instantiating TU); a site is
    identified by its (file, line, payload) so the merge is stable no
    matter how many TUs report it.
    """
    merged = TUFacts(source="<merged>")
    merged.writes = sorted(
        {w for facts in per_tu for w in facts.writes},
        key=lambda w: (w.file, w.line, w.var, w.op))
    merged.seeds = sorted(
        {s for facts in per_tu for s in facts.seeds},
        key=lambda s: (s.file, s.line, s.tag_name))
    merged.metrics = sorted(
        {m for facts in per_tu for m in facts.metrics},
        key=lambda m: (m.file, m.line, m.kind, m.name))
    return merged


def subsystem_of(path: str) -> str:
    """Publication scope for CORP-OBS-002.

    src/<dir> files map to that subsystem directory; anything else maps
    to its immediate parent directory (bench/, tools/, fixture dirs).
    Two files in the same subsystem may legitimately publish the same
    metric (e.g. the serial and parallel DNN trainers); two different
    subsystems silently double-publishing is the hazard.
    """
    parts = Path(path).parts
    if "src" in parts:
        i = parts.index("src")
        if i + 2 < len(parts):  # src/<dir>/file
            return "/".join(parts[i:i + 2])
        return "src"
    if len(parts) >= 2:
        return parts[-2]
    return "."


class SuppressionIndex:
    """Per-rule `// lint: <tag>` suppressions, same scheme as corp_lint.

    A justification comment on the finding line or the line directly
    above silences the rule; the tag is rule-specific so the comment
    documents *why* the pattern is safe.
    """

    def __init__(self) -> None:
        self._lines: dict[str, list[str]] = {}

    def _file_lines(self, path: str) -> list[str]:
        cached = self._lines.get(path)
        if cached is not None:
            return cached
        try:
            text = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            text = ""
        lines = text.splitlines()
        self._lines[path] = lines
        return lines

    def justified(self, path: str, line: int, tag: str) -> bool:
        lines = self._file_lines(path)
        for probe in (line, line - 1):
            if 1 <= probe <= len(lines):
                text = lines[probe - 1]
                if f"lint: {tag}" in text or f"lint:{tag}" in text:
                    return True
        return False
