"""Scope-aware fallback frontend (no clang required).

Lowers one C++ file to ``TUFacts`` using a token-level parse that
understands just enough structure for the Layer-3 rules: function and
namespace scopes, lambda introducers (capture defaults, explicit
captures, parameters), declaration vs. assignment, postfix lvalue
chains, and one-hop forwarding wrappers around
``util::ThreadPool::parallel_for``/``submit`` (the `for_each_shard`
idiom in sim::ShardEngine).

The clang frontend sees real types and real name lookup; this one
approximates both from token context. Where it cannot decide it errs
toward the *hazardous* reading for capture modes (so fixtures fire
without type info) and toward silence for write shapes it cannot parse
(so the tree scan does not drown in noise). The differential fixture
corpus pins both frontends to the same verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from analyze.lexer import (
    COMPOUND_ASSIGN,
    CaptureList,
    Token,
    looks_member,
    match_forward,
    parse_capture_list,
    tokenize,
)
from analyze.model import MetricSite, ParallelWrite, SeedSite, TUFacts

#: Entry points that hand a callable to other threads.
ENTRY_NAMES = frozenset({"parallel_for", "submit"})

#: Container/member mutations that count as writes to their object.
#: Atomic RMW members (fetch_add, store) are deliberately absent: atomic
#: integer accumulation is commutative and is the sanctioned way to
#: share a counter across shards.
MUTATORS = frozenset({
    "push_back", "emplace_back", "insert", "emplace", "erase",
    "clear", "resize", "assign", "pop_back",
})

_CONTROL = frozenset({"if", "for", "while", "switch", "catch"})
_TYPEISH = frozenset({"&", "*", ">", "const", "auto"})
_QUALS = frozenset({"const", "noexcept", "override", "final", "mutable"})


@dataclass
class LambdaInfo:
    intro_idx: int
    intro_end: int
    params: list[str]
    body_open: int
    body_close: int
    line: int
    captures: CaptureList
    var_name: str = ""  # `auto name = [...]` when bound to a local


@dataclass
class FuncSpan:
    name: str  # qualified with enclosing namespaces/classes
    params: list[str]
    open: int
    close: int


@dataclass
class _Region:
    lam: LambdaInfo
    entry: str
    entry_line: int


def _param_names(tokens: list[Token], open_paren: int,
                 close_paren: int) -> list[str]:
    """Rightmost-identifier heuristic over a parameter list."""
    names: list[str] = []
    part: list[Token] = []
    depth = 0
    for i in range(open_paren + 1, close_paren):
        tok = tokens[i]
        if tok.text in ("(", "[", "{", "<"):
            depth += 1
        elif tok.text in (")", "]", "}", ">"):
            depth -= 1
        if tok.text == "," and depth == 0:
            names.extend(_part_name(part))
            part = []
        else:
            part.append(tok)
    names.extend(_part_name(part))
    return names


def _part_name(part: list[Token]) -> list[str]:
    # Truncate at a default argument, then take the rightmost ident.
    cut = len(part)
    depth = 0
    for i, tok in enumerate(part):
        if tok.text in ("(", "[", "{", "<"):
            depth += 1
        elif tok.text in (")", "]", "}", ">"):
            depth -= 1
        elif tok.text == "=" and depth == 0:
            cut = i
            break
    for tok in reversed(part[:cut]):
        if tok.kind == "ident" and tok.text not in ("const", "auto"):
            return [tok.text]
    return []


class MicroFrontend:
    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.tokens = tokenize(text)
        self.lambdas: list[LambdaInfo] = []
        self.lambda_vars: dict[str, LambdaInfo] = {}
        self.functions: list[FuncSpan] = []
        self._intro_ranges: list[tuple[int, int]] = []

    # -- structure discovery ---------------------------------------------

    def _scan_lambdas(self) -> None:
        toks = self.tokens
        i = 0
        while i < len(toks):
            if toks[i].text != "[":
                i += 1
                continue
            if i + 1 < len(toks) and toks[i + 1].text == "[":
                i += 2  # [[attribute]]
                continue
            prev = toks[i - 1] if i > 0 else None
            if prev is not None and (
                    prev.kind in ("ident", "number", "string")
                    and prev.text not in ("return", "case", "co_return",
                                          "co_yield", "else", "do")
                    or prev.text in (")", "]")):
                i += 1  # subscript `a[i]` / `f(x)[k]`
                continue
            intro_end = match_forward(toks, i)
            if intro_end >= len(toks) - 1:
                break
            nxt = toks[intro_end + 1].text
            if nxt not in ("(", "{", "mutable", "->", "<"):
                i = intro_end + 1
                continue
            params: list[str] = []
            j = intro_end + 1
            if toks[j].text == "<":  # template lambda
                j = match_forward(toks, j) + 1
            if j < len(toks) and toks[j].text == "(":
                close = match_forward(toks, j)
                params = _param_names(toks, j, close)
                j = close + 1
            while j < len(toks) and toks[j].text != "{":
                if toks[j].text in (";", ")"):
                    break  # declaration-ish, not a lambda body
                j += 1
            if j >= len(toks) or toks[j].text != "{":
                i = intro_end + 1
                continue
            body_close = match_forward(toks, j)
            intro_text = " ".join(
                t.text for t in toks[i:intro_end + 1])
            lam = LambdaInfo(
                intro_idx=i, intro_end=intro_end, params=params,
                body_open=j, body_close=body_close, line=toks[i].line,
                captures=parse_capture_list(intro_text))
            if i >= 2 and toks[i - 1].text == "=" and \
                    toks[i - 2].kind == "ident":
                lam.var_name = toks[i - 2].text
                self.lambda_vars[lam.var_name] = lam
            self.lambdas.append(lam)
            self._intro_ranges.append((i, intro_end))
            i = intro_end + 1

    def _scan_functions(self) -> None:
        toks = self.tokens
        scope_stack: list[tuple[str, str, int]] = []  # kind, name, open
        name_stack: list[str] = []
        closes: dict[int, int] = {}
        opens: list[int] = []
        for i, tok in enumerate(toks):
            if tok.text == "{":
                opens.append(i)
            elif tok.text == "}" and opens:
                closes[opens.pop()] = i
        for i, tok in enumerate(toks):
            if tok.text == "}":
                while scope_stack and closes.get(scope_stack[-1][2], -1) == i:
                    kind, _name, _open = scope_stack.pop()
                    if kind in ("namespace", "class"):
                        if name_stack:
                            name_stack.pop()
                continue
            if tok.text != "{":
                continue
            kind, name, params = self._classify_open(i)
            scope_stack.append((kind, name, i))
            if kind in ("namespace", "class"):
                name_stack.append(name)
            elif kind == "function":
                qualified = "::".join([*name_stack, name]) if name_stack \
                    else name
                self.functions.append(
                    FuncSpan(qualified, params, i, closes.get(i, len(toks))))

    def _classify_open(
            self, idx: int) -> tuple[str, str, list[str]]:
        toks = self.tokens
        j = idx - 1
        if j < 0:
            return "block", "", []
        # namespace NAME { / namespace {
        if toks[j].text == "namespace":
            return "namespace", "<anon>", []
        if j >= 1 and toks[j].kind == "ident" and \
                toks[j - 1].text == "namespace":
            return "namespace", toks[j].text, []
        # Find a `)` closing a parameter list, allowing qualifiers and a
        # trailing return type between it and the `{`.
        close_paren = -1
        k = j
        floor = max(0, idx - 40)
        while k >= floor:
            text = toks[k].text
            if text == ")":
                close_paren = k
                break
            if text in _QUALS or text == "->" or text in ("::", "<", ">",
                                                          "&", "*", ",") \
                    or toks[k].kind in ("ident", "number"):
                k -= 1
                continue
            break
        if close_paren < 0:
            # class/struct NAME ... {
            k = j
            while k >= floor and toks[k].text not in (";", "{", "}", ")"):
                if toks[k].text in ("class", "struct", "union", "enum"):
                    name = toks[k + 1].text if k + 1 <= j and \
                        toks[k + 1].kind == "ident" else "<anon>"
                    return "class", name, []
                k -= 1
            return "block", "", []
        open_paren = self._match_back(close_paren)
        h = open_paren - 1
        if h < 0:
            return "block", "", []
        if toks[h].text == "]":
            return "lambda", "", []
        if toks[h].kind != "ident":
            if toks[h].kind == "punct" and h >= 1 and \
                    toks[h - 1].text == "operator":
                return "function", f"operator{toks[h].text}", \
                    _param_names(toks, open_paren, close_paren)
            return "block", "", []
        if toks[h].text in _CONTROL:
            return "block", "", []
        name = toks[h].text
        while h >= 2 and toks[h - 1].text == "::" and \
                toks[h - 2].kind == "ident":
            h -= 2
            name = f"{toks[h].text}::{name}"
        return "function", name, _param_names(toks, open_paren, close_paren)

    def _match_back(self, close_idx: int) -> int:
        depth = 0
        for i in range(close_idx, -1, -1):
            text = self.tokens[i].text
            if text == ")":
                depth += 1
            elif text == "(":
                depth -= 1
                if depth == 0:
                    return i
        return 0

    def _enclosing_function(self, idx: int) -> FuncSpan | None:
        best: FuncSpan | None = None
        for span in self.functions:
            if span.open < idx < span.close:
                if best is None or span.open > best.open:
                    best = span
        return best

    def _enclosing_lambda(self, idx: int) -> LambdaInfo | None:
        best: LambdaInfo | None = None
        for lam in self.lambdas:
            if lam.body_open < idx < lam.body_close:
                if best is None or lam.body_open > best.body_open:
                    best = lam
        return best

    # -- parallel regions --------------------------------------------------

    def _call_args(self, open_paren: int) -> list[tuple[int, int]]:
        """Top-level comma-separated arg token ranges [begin, end)."""
        toks = self.tokens
        close = match_forward(toks, open_paren)
        args: list[tuple[int, int]] = []
        begin = open_paren + 1
        depth = 0
        for i in range(open_paren + 1, close):
            text = toks[i].text
            if text in ("(", "[", "{"):
                depth += 1
            elif text in (")", "]", "}"):
                depth -= 1
            elif text == "," and depth == 0:
                args.append((begin, i))
                begin = i + 1
        if close > begin:
            args.append((begin, close))
        return args

    def _regions(self) -> list[_Region]:
        toks = self.tokens
        regions: list[_Region] = []
        wrappers: set[str] = set()
        lambda_at = {lam.intro_idx: lam for lam in self.lambdas}

        def scan(entries: frozenset[str] | set[str],
                 collect_wrappers: bool) -> None:
            for i, tok in enumerate(toks):
                if tok.kind != "ident" or tok.text not in entries:
                    continue
                if i + 1 >= len(toks) or toks[i + 1].text != "(":
                    continue
                if i >= 1 and toks[i - 1].text in ("::",) and \
                        tok.text not in ENTRY_NAMES:
                    continue
                for begin, end in self._call_args(i + 1):
                    lam: LambdaInfo | None = None
                    if begin < len(toks) and toks[begin].text == "[" and \
                            begin in lambda_at:
                        lam = lambda_at[begin]
                    elif end - begin == 1 and toks[begin].kind == "ident":
                        name = toks[begin].text
                        lam = self.lambda_vars.get(name)
                        if lam is None and collect_wrappers:
                            # Forwarded parameter: the enclosing callable
                            # is a one-hop wrapper around the pool.
                            encl = self._enclosing_lambda(i)
                            if encl is not None and name in encl.params \
                                    and encl.var_name:
                                wrappers.add(encl.var_name)
                            else:
                                span = self._enclosing_function(i)
                                if span is not None and \
                                        name in span.params:
                                    wrappers.add(
                                        span.name.rsplit("::", 1)[-1])
                    if lam is not None:
                        regions.append(_Region(lam, tok.text, tok.line))

        scan(ENTRY_NAMES, collect_wrappers=True)
        # Direct self-recursion guard: a wrapper named like an entry point
        # is already covered by the first pass.
        wrappers -= set(ENTRY_NAMES)
        if wrappers:
            scan(wrappers, collect_wrappers=False)
        # One region per lambda: a lambda both named and forwarded would
        # otherwise be analyzed twice.
        unique: dict[int, _Region] = {}
        for region in regions:
            unique.setdefault(region.lam.intro_idx, region)
        return list(unique.values())

    # -- declarations and writes -------------------------------------------

    def _collect_decls(
            self, begin: int, end: int,
            derived: set[str] | None = None,
    ) -> tuple[set[str], dict[str, str], dict[str, str]]:
        """Scan [begin, end) for declarations.

        Returns (local names, name -> type text, reference aliases
        name -> aliased base). When `derived` is given, declarations
        whose initializer mentions a derived name are added to it.
        """
        toks = self.tokens
        locals_: set[str] = set()
        types: dict[str, str] = {}
        aliases: dict[str, str] = {}
        i = begin
        while i < end:
            tok = toks[i]
            if tok.kind != "ident" or i == 0:
                i += 1
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            prev = toks[i - 1]
            # `:` admits range-for bindings (`for (auto& rj : xs)`);
            # `case`/labels/access specifiers are rejected by the prev
            # checks below, and bitfields are harmless as locals.
            is_decl = (
                nxt in ("=", ";", "{", "(", ",", ":")
                and (prev.kind == "ident" and prev.text not in
                     ("return", "co_return", "case", "else", "do",
                      "throw", "new", "delete", "operator")
                     or prev.text in _TYPEISH)
                and (prev.kind != "ident" or i < 2
                     or toks[i - 2].text not in (".", "->"))
            )
            if not is_decl:
                i += 1
                continue
            # Reconstruct the type text to the left of the name.
            t = i - 1
            floor = max(begin, i - 16)
            while t >= floor and (
                    toks[t].kind == "ident"
                    or toks[t].text in ("::", "<", ">", "&", "*",
                                        "const", ",")):
                if toks[t].text in (";", "{", "}"):
                    break
                t -= 1
            type_text = " ".join(x.text for x in toks[t + 1:i])
            name = tok.text
            locals_.add(name)
            types[name] = type_text
            # Initializer scan.
            init_begin = i + 1
            init_end = init_begin
            if nxt in ("=", ":"):
                init_end = init_begin + 1
                depth = 0
                while init_end < end:
                    text = toks[init_end].text
                    if text in ("(", "[", "{"):
                        depth += 1
                    elif text in (")", "]", "}"):
                        if depth == 0:
                            break
                        depth -= 1
                    elif text in (";", ",") and depth == 0:
                        break
                    init_end += 1
            elif nxt in ("(", "{"):
                init_end = match_forward(toks, i + 1) + 1
            init_idents = [
                x.text for x in toks[init_begin:init_end]
                if x.kind == "ident"]
            if derived is not None and any(
                    x in derived for x in init_idents):
                derived.add(name)
            elif type_text.rstrip().endswith("&") and init_idents:
                aliases[name] = init_idents[0]
            i = max(i + 1, init_end)
        return locals_, types, aliases

    def _lvalue_chain(
            self, op_idx: int) -> tuple[str, set[str], int] | None:
        """Parse the postfix chain ending just before `op_idx`.

        Returns (base identifier, identifiers appearing in subscripts or
        call arguments along the chain, line) — or None when the shape
        is not a recognizable lvalue chain.
        """
        toks = self.tokens
        j = op_idx - 1
        subscripts: set[str] = set()
        while j >= 0:
            text = toks[j].text
            if text in ("]", ")"):
                open_idx = self._match_back(j) if text == ")" else \
                    self._match_back_square(j)
                for t in toks[open_idx + 1:j]:
                    if t.kind == "ident":
                        subscripts.add(t.text)
                j = open_idx - 1
                continue
            if toks[j].kind == "ident":
                if j >= 1 and toks[j - 1].text in (".", "->"):
                    j -= 2
                    continue
                if j >= 1 and toks[j - 1].text == "::":
                    j -= 2
                    continue
                return toks[j].text, subscripts, toks[j].line
            return None
        return None

    def _match_back_square(self, close_idx: int) -> int:
        depth = 0
        for i in range(close_idx, -1, -1):
            text = self.tokens[i].text
            if text == "]":
                depth += 1
            elif text == "[":
                depth -= 1
                if depth == 0:
                    return i
        return 0

    def _analyze_region(self, region: _Region,
                        facts: TUFacts) -> None:
        toks = self.tokens
        lam = region.lam
        derived = set(lam.params)
        # Nested lambdas run on the same worker: their parameters also
        # index iteration-owned state.
        nested_intros: list[tuple[int, int]] = []
        for other in self.lambdas:
            if lam.body_open < other.intro_idx < lam.body_close:
                derived.update(other.params)
                nested_intros.append((other.intro_idx, other.intro_end))
        locals_, types, aliases = self._collect_decls(
            lam.body_open + 1, lam.body_close, derived)
        outer_types: dict[str, str] = {}
        span = self._enclosing_function(lam.intro_idx)
        if span is not None:
            _, outer_types, _ = self._collect_decls(
                span.open + 1, lam.intro_idx)

        def in_nested_intro(idx: int) -> bool:
            return any(b <= idx <= e for b, e in nested_intros)

        for i in range(lam.body_open + 1, lam.body_close):
            tok = toks[i]
            op = ""
            chain: tuple[str, set[str], int] | None = None
            if tok.text == "=" or tok.text in COMPOUND_ASSIGN:
                if in_nested_intro(i):
                    continue  # init capture `[acc = 0.0]`
                chain = self._lvalue_chain(i)
                op = tok.text
                if chain is not None and tok.text == "=":
                    # `type name = ...` is a declaration, not a write.
                    base_idx = i - 1
                    # Cheap re-test: the token before a one-token chain
                    # that looks like a type marks a declaration; longer
                    # chains (a.b, a[i]) are never declarators.
                    if toks[base_idx].kind == "ident" and base_idx >= 1:
                        before = toks[base_idx - 1]
                        if before.kind == "ident" or \
                                before.text in _TYPEISH:
                            continue
            elif tok.text in ("++", "--"):
                chain = self._lvalue_chain(i)
                if chain is None and i + 1 < len(toks) and \
                        toks[i + 1].kind == "ident":
                    nxt = toks[i + 1]
                    chain = (nxt.text, set(), nxt.line)
                op = tok.text
            elif tok.kind == "ident" and tok.text in MUTATORS and \
                    i >= 1 and toks[i - 1].text in (".", "->") and \
                    i + 1 < len(toks) and toks[i + 1].text == "(":
                chain = self._lvalue_chain(i - 1)
                op = tok.text
            if chain is None:
                continue
            base, subscripts, line = chain
            if base in derived:
                continue
            if base in aliases:
                base = aliases[base]
                if base in derived:
                    continue
            elif base in locals_:
                continue
            if subscripts & derived:
                continue
            if not lam.captures.is_shared(base, looks_member(base)):
                continue
            type_text = types.get(base, outer_types.get(base, ""))
            is_fp = "double" in type_text or "float" in type_text
            if "atomic" in type_text and not is_fp:
                continue  # commutative integer accumulation
            fp_accum = op in ("+=", "-=") and is_fp
            facts.writes.append(ParallelWrite(
                file=self.path, line=line, var=base, op=op,
                fp_accum=fp_accum, region_entry=region.entry,
                region_line=region.entry_line))

    # -- cross-TU facts ----------------------------------------------------

    def _scan_seeds(self, facts: TUFacts) -> None:
        toks = self.tokens
        for i, tok in enumerate(toks):
            if tok.kind != "ident" or tok.text != "derive_seed":
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            args = self._call_args(i + 1)
            if len(args) < 2:
                continue
            base_text = " ".join(
                t.text for t in toks[args[0][0]:args[0][1]])
            tag_name = ""
            for t in toks[args[1][0]:args[1][1]]:
                if t.kind == "ident" and t.text.startswith("k"):
                    tag_name = t.text
            if not tag_name:
                continue  # literal tags are CORP-SEED-001's domain
            substream = ""
            if len(args) > 2:
                substream = ", ".join(
                    " ".join(t.text for t in toks[b:e])
                    for b, e in args[2:])
            span = self._enclosing_function(i)
            facts.seeds.append(SeedSite(
                file=self.path, line=tok.line,
                function=span.name if span else "",
                base_text=base_text, tag_name=tag_name,
                substream_text=substream))

    _FREE_METRIC_KINDS = {
        "count": "counter", "set_gauge": "gauge", "observe": "histogram"}
    _MEMBER_METRIC_KINDS = {
        "counter": "counter", "gauge": "gauge", "histogram": "histogram"}

    def _scan_metrics(self, facts: TUFacts) -> None:
        toks = self.tokens

        def literal_arg(open_paren: int) -> str | None:
            args = self._call_args(open_paren)
            if not args:
                return None
            b, e = args[0]
            if e - b == 1 and toks[b].kind == "string" and \
                    toks[b].text.startswith('"'):
                return toks[b].text[1:-1]
            return None

        for i, tok in enumerate(toks):
            if tok.kind != "ident":
                continue
            kind = ""
            open_paren = -1
            if tok.text in self._FREE_METRIC_KINDS:
                if i >= 2 and toks[i - 1].text == "::" and \
                        toks[i - 2].text == "obs" and \
                        i + 1 < len(toks) and toks[i + 1].text == "(":
                    kind = self._FREE_METRIC_KINDS[tok.text]
                    open_paren = i + 1
            elif tok.text in self._MEMBER_METRIC_KINDS:
                if i >= 1 and toks[i - 1].text in (".", "->") and \
                        i + 1 < len(toks) and toks[i + 1].text == "(":
                    kind = self._MEMBER_METRIC_KINDS[tok.text]
                    open_paren = i + 1
            elif tok.text == "ScopedTimer":
                if i + 1 < len(toks) and toks[i + 1].text == "(":
                    kind, open_paren = "phase", i + 1
                elif i + 2 < len(toks) and toks[i + 1].kind == "ident" \
                        and toks[i + 2].text == "(":
                    kind, open_paren = "phase", i + 2
            if not kind or open_paren < 0:
                continue
            name = literal_arg(open_paren)
            if name is None:
                continue
            facts.metrics.append(MetricSite(
                file=self.path, line=tok.line, kind=kind, name=name))

    # -- driver ------------------------------------------------------------

    def lower(self) -> TUFacts:
        facts = TUFacts(source=self.path)
        self._scan_lambdas()
        self._scan_functions()
        for region in self._regions():
            self._analyze_region(region, facts)
        self._scan_seeds(facts)
        self._scan_metrics(facts)
        return facts


@dataclass
class MicroResult:
    facts: TUFacts
    errors: list[str] = field(default_factory=list)


def lower_file(path: str, text: str) -> TUFacts:
    return MicroFrontend(path, text).lower()
