#!/usr/bin/env python3
"""Layer-3 AST-level determinism analyzer for the CORP tree.

Whole-program, scope-aware checks that the token-level linter
(tools/lint/corp_lint.py) cannot express:

  CORP-PAR-001  a lambda handed to util::ThreadPool::parallel_for /
                submit writes captured shared state not indexed by the
                loop/shard variable (a determinism race)
  CORP-PAR-002  floating-point `+=`/`-=` accumulation into captured
                shared state inside a parallel region (order-dependent)
  CORP-SEED-002 cross-TU audit of util::derive_seed call sites against
                the seed_stream registry: unused tags, (base, tag,
                substream) collisions, tags re-derived along one path
  CORP-OBS-002  one obs metric name published from two different
                subsystem directories

Two interchangeable frontends lower each translation unit to the same
facts record: `clang` drives `clang -Xclang -ast-dump=json` over
compile_commands.json (CI), `micro` is a dependency-free scope-aware
parser (local fallback; also what CTest pins). Lowered facts are cached
per file keyed on (schema, frontend, flags hash, file hash) — raw AST
dumps are ~100 MB per TU and are never kept.

Exit codes follow the corpsim convention: 0 clean, 1 findings (or
--expect mismatch), 2 usage/environment errors.

Fixture mode (CTest):

    python3 tools/analyze/corp_analyze.py --frontend micro \
        --expect CORP-PAR-001 fixtures/bad/corp_par_001_shared_write.cpp
"""

from __future__ import annotations

import argparse
import hashlib
import json
import shutil
import sys
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

if __package__ in (None, ""):  # executed as a script, not a module
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from analyze.clang_frontend import (
    AnalyzeError,
    CompileEntry,
    load_compile_db,
    lower_ast,
    parse_ast_json,
    run_clang,
)
from analyze.micro_frontend import lower_file
from analyze.model import (
    FACTS_SCHEMA_VERSION,
    Finding,
    SuppressionIndex,
    TUFacts,
    merge_facts,
)
from analyze.rules import (
    RULES,
    RuleContext,
    count_tag_uses,
    load_registry,
    run_rules,
)

DEFAULT_ROOTS = ("src", "bench", "tools")
_CPP_EXTS = {".cpp", ".cc", ".cxx", ".hpp", ".h"}
_REGISTRY_REL = Path("src/util/seed_streams.hpp")


def find_repo_root(start: Path) -> Path:
    for candidate in (start, *start.parents):
        if (candidate / "CMakeLists.txt").is_file() and \
                (candidate / "src").is_dir():
            return candidate
    return start


def iter_cpp_files(roots: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*"))
                if p.suffix in _CPP_EXTS and p.is_file())
    return files


# --------------------------------------------------------------------------
# Fact cache
# --------------------------------------------------------------------------


def _cache_key(frontend: str, flags: tuple[str, ...],
               payload: bytes) -> str:
    h = hashlib.sha256()
    h.update(f"{FACTS_SCHEMA_VERSION}|{frontend}|".encode())
    h.update("\x1f".join(flags).encode())
    h.update(b"|")
    h.update(hashlib.sha256(payload).digest())
    return h.hexdigest()


class FactCache:
    def __init__(self, cache_dir: Path | None) -> None:
        self.dir = cache_dir
        self.hits = 0
        self.misses = 0
        if cache_dir is not None:
            try:
                cache_dir.mkdir(parents=True, exist_ok=True)
            except OSError:
                self.dir = None  # degrade to uncached

    def load(self, key: str) -> TUFacts | None:
        if self.dir is None:
            return None
        path = self.dir / f"{key}.json"
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        facts = TUFacts.from_json(data)
        if facts is not None:
            self.hits += 1
        return facts

    def store(self, key: str, facts: TUFacts) -> None:
        self.misses += 1
        if self.dir is None:
            return
        path = self.dir / f"{key}.json"
        try:
            path.write_text(json.dumps(facts.to_json(), sort_keys=True),
                            encoding="utf-8")
        except OSError:
            pass


# --------------------------------------------------------------------------
# Frontend drivers
# --------------------------------------------------------------------------


def lower_micro(files: list[Path], cache: FactCache) -> list[TUFacts]:
    per_tu: list[TUFacts] = []
    for path in files:
        try:
            payload = path.read_bytes()
        except OSError as err:
            raise AnalyzeError(f"cannot read {path}: {err}") from err
        key = _cache_key("micro", (), payload)
        facts = cache.load(key)
        if facts is None:
            facts = lower_file(
                str(path), payload.decode("utf-8", errors="replace"))
            cache.store(key, facts)
        per_tu.append(facts)
    return per_tu


def lower_clang(entries: list[CompileEntry], clang: str,
                cache: FactCache, jobs: int,
                in_repo_paths: set[Path]) -> list[TUFacts]:
    def in_repo(path: str) -> bool:
        try:
            resolved = Path(path).resolve()
        except OSError:
            return False
        return resolved in in_repo_paths

    def one(entry: CompileEntry) -> TUFacts:
        try:
            payload = Path(entry.file).read_bytes()
        except OSError as err:
            raise AnalyzeError(
                f"cannot read {entry.file}: {err}") from err
        key = _cache_key("clang", entry.flags, payload)
        facts = cache.load(key)
        if facts is None:
            root = run_clang(clang, entry)
            facts = lower_ast(root, entry.file, in_repo)
            cache.store(key, facts)
        return facts

    if jobs <= 1 or len(entries) <= 1:
        return [one(e) for e in entries]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(one, entries))


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="corp_analyze",
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: src/ bench/ "
             "tools/ under the repo root)")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repo root (default: autodetected from this script)")
    parser.add_argument(
        "--frontend", choices=("auto", "clang", "micro"),
        default="auto",
        help="auto picks clang when the binary and compile database "
             "are both available, micro otherwise")
    parser.add_argument(
        "--compile-db", type=Path, default=None,
        help="compile_commands.json (default: <root>/build/"
             "compile_commands.json; required by the clang frontend)")
    parser.add_argument(
        "--clang", default="clang",
        help="clang binary for the clang frontend (default: clang)")
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="lowered-facts cache directory (default: <root>/build/"
             "analyze-cache; pass an empty string to disable)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the lowered-facts cache")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel clang invocations (default: 1)")
    parser.add_argument(
        "--rule", action="append", metavar="RULE_ID", default=None,
        help="only evaluate this rule (repeatable)")
    parser.add_argument(
        "--expect", metavar="RULE_ID", default=None,
        help="fixture mode: exit 0 iff at least one finding of exactly "
             "this rule fires and no other rule does")
    parser.add_argument(
        "--ast-json", type=Path, default=None, metavar="DUMP",
        help="lower a pre-dumped clang AST JSON file instead of "
             "invoking clang (exercises the clang-frontend walker)")
    parser.add_argument(
        "--json", type=Path, default=None, metavar="OUT",
        help="also write findings as JSON (CI artifact)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit")
    return parser


def _select_files(args: argparse.Namespace,
                  root: Path) -> tuple[list[Path], bool]:
    """(files, full_tree). Fixture corpora are excluded from default
    tree scans, mirroring corp_lint."""
    if args.paths:
        return iter_cpp_files(args.paths), False
    roots = [root / name for name in DEFAULT_ROOTS]
    missing = [r for r in roots if not r.is_dir()]
    if missing:
        raise AnalyzeError(
            "scan roots not found: " + ", ".join(map(str, missing)))
    files = [p for p in iter_cpp_files(roots)
             if "fixtures" not in p.parts]
    return files, True


def _write_json(out: Path, findings: list[Finding],
                frontend: str, cache: FactCache) -> None:
    payload = {
        "schema": FACTS_SCHEMA_VERSION,
        "frontend": frontend,
        "cache": {"hits": cache.hits, "misses": cache.misses},
        "findings": [
            {"path": f.path, "line": f.line, "rule": f.rule,
             "message": f.message}
            for f in findings
        ],
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n",
                   encoding="utf-8")


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for rule_id, (tag, summary) in RULES.items():
            print(f"{rule_id}  {summary}  (suppress: // lint: {tag})")
        return 0

    for rule_id in [*(args.rule or []),
                    *([args.expect] if args.expect else [])]:
        if rule_id not in RULES:
            print(f"corp_analyze: unknown rule id {rule_id!r}",
                  file=sys.stderr)
            return 2

    root = (args.root or
            find_repo_root(Path(__file__).resolve().parent)).resolve()

    cache_dir: Path | None
    if args.no_cache or (args.cache_dir is not None and
                         str(args.cache_dir) == ""):
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = root / "build" / "analyze-cache"
    cache = FactCache(cache_dir)

    try:
        files, full_tree = _select_files(args, root)

        if args.ast_json is not None:
            frontend = "clang"
            try:
                text = args.ast_json.read_text(encoding="utf-8")
            except OSError as err:
                print(f"corp_analyze: cannot read AST dump "
                      f"{args.ast_json}: {err}", file=sys.stderr)
                return 2
            ast_root = parse_ast_json(text, source=str(args.ast_json))
            per_tu = [lower_ast(ast_root, str(args.ast_json),
                                lambda _p: True)]
            full_tree = False
        else:
            frontend = args.frontend
            compile_db = args.compile_db or \
                root / "build" / "compile_commands.json"
            if frontend == "auto":
                frontend = "clang" if (
                    shutil.which(args.clang) and compile_db.is_file()
                ) else "micro"
            if frontend == "clang":
                by_file: dict[Path, CompileEntry] = {}
                if compile_db.is_file():
                    by_file = {Path(e.file).resolve(): e
                               for e in load_compile_db(compile_db)}
                elif full_tree:
                    raise AnalyzeError(
                        f"compile database not found: {compile_db}; "
                        f"configure with -DCMAKE_EXPORT_COMPILE_"
                        f"COMMANDS=ON or use --frontend micro")
                if shutil.which(args.clang) is None:
                    print(f"corp_analyze: clang binary not found "
                          f"({args.clang!r}); pass --clang or use "
                          f"--frontend micro", file=sys.stderr)
                    return 2
                wanted = {p.resolve() for p in files}
                entries: list[CompileEntry] = []
                for path in files:
                    if path.suffix in (".hpp", ".h"):
                        continue
                    resolved = path.resolve()
                    entry = by_file.get(resolved)
                    if entry is None and not full_tree:
                        # Fixtures and ad-hoc files are not built:
                        # parse them standalone.
                        entry = CompileEntry(file=str(resolved),
                                             flags=("-std=c++20",))
                    if entry is not None:
                        entries.append(entry)
                per_tu = lower_clang(
                    entries, args.clang, cache, max(1, args.jobs),
                    wanted)
                # Headers are only seen through the TUs that include
                # them; still scan them with the micro frontend so
                # header-only facts (metric names, seed helpers) are
                # not silently dropped when no TU in the compile DB
                # pulls them in.
                headers = [p for p in files
                           if p.suffix in (".hpp", ".h")]
                per_tu.extend(lower_micro(headers, cache))
            else:
                per_tu = lower_micro(files, cache)

        merged = merge_facts(per_tu)

        registry_path = root / _REGISTRY_REL
        registry = load_registry(registry_path)
        sources: dict[str, str] = {}
        for path in files:
            try:
                sources[str(path)] = path.read_text(
                    encoding="utf-8", errors="replace")
            except OSError:
                continue
        ctx = RuleContext(
            facts=merged,
            registry=registry,
            registry_path=str(registry_path),
            tag_uses=count_tag_uses(registry, sources,
                                    str(registry_path)),
            full_tree=full_tree,
            suppressions=SuppressionIndex(),
        )
        only = frozenset(args.rule) if args.rule else None
        findings = run_rules(ctx, only)
    except AnalyzeError as err:
        print(f"corp_analyze: {err}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.render())
    if args.json is not None:
        _write_json(args.json, findings, frontend, cache)

    if args.expect is not None:
        fired = {f.rule for f in findings}
        if fired == {args.expect}:
            print(f"ok: fixture trips exactly {args.expect} "
                  f"({len(findings)} finding(s))")
            return 0
        print(f"FAIL: expected exactly {{{args.expect}}}, got "
              f"{sorted(fired) or '{}'}", file=sys.stderr)
        return 1

    if findings:
        print(f"corp_analyze: {len(findings)} finding(s) "
              f"[frontend={frontend}, cache {cache.hits} hit(s) / "
              f"{cache.misses} miss(es)]", file=sys.stderr)
        return 1
    print(f"corp_analyze: clean ({len(per_tu)} unit(s), "
          f"frontend={frontend}, cache {cache.hits} hit(s) / "
          f"{cache.misses} miss(es))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
