"""Rule evaluation over merged TUFacts.

Rules never look at source syntax — frontends already reduced each TU
to facts — so every rule fires identically under the clang and micro
frontends. Suppression (`// lint: <tag>`) is applied here because one
rule (CORP-OBS-002) has group semantics: a justification at any site of
a shared metric documents the sharing decision for the whole group.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

from analyze.model import (
    Finding,
    RegistryTag,
    SuppressionIndex,
    TUFacts,
    subsystem_of,
)

#: Rule id -> (suppression tag, one-line summary).
RULES: dict[str, tuple[str, str]] = {
    "CORP-PAR-001": (
        "par-staged",
        "parallel-region lambda writes shared state not indexed by the "
        "loop/shard variable",
    ),
    "CORP-PAR-002": (
        "par-reduction",
        "floating-point accumulation into captured shared state inside "
        "a parallel region",
    ),
    "CORP-SEED-002": (
        "seed-audit",
        "cross-TU seed-stream audit: unused registry tag, (base, tag, "
        "substream) collision, or re-derived tag",
    ),
    "CORP-OBS-002": (
        "metric-shared",
        "one metric name published from two different subsystem "
        "directories",
    ),
}

_REGISTRY_RE = re.compile(
    r"inline\s+constexpr\s+std::uint64_t\s+(k\w+)\s*=")


def load_registry(path: Path) -> list[RegistryTag]:
    """Named stream constants in the seed_stream registry header.

    Returns [] when the header does not exist (fixture corpora declare
    their own constants and skip the registry-coverage check).
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return []
    tags: list[RegistryTag] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _REGISTRY_RE.finditer(line):
            tags.append(RegistryTag(name=match.group(1), line=lineno))
    return tags


def count_tag_uses(registry: list[RegistryTag],
                   sources: dict[str, str],
                   registry_path: str) -> dict[str, int]:
    """References to each registry tag name outside the registry header.

    Textual on purpose: tags legitimately reach derive_seed through
    helper functions (`hash_sub(seed, kFaultVm, key)`), so counting
    derive_seed call sites alone would report live tags as unused.
    """
    uses: dict[str, int] = {tag.name: 0 for tag in registry}
    if not uses:
        return uses
    pattern = re.compile(
        r"\b(" + "|".join(re.escape(t.name) for t in registry) + r")\b")
    for path, text in sources.items():
        if Path(path).resolve() == Path(registry_path).resolve():
            continue
        for match in pattern.finditer(text):
            uses[match.group(1)] += 1
    return uses


@dataclass
class RuleContext:
    facts: TUFacts
    registry: list[RegistryTag] = field(default_factory=list)
    registry_path: str = ""
    tag_uses: dict[str, int] = field(default_factory=dict)
    #: Registry-coverage check only makes sense over the whole tree;
    #: explicit-path / fixture runs see a slice of the call sites.
    full_tree: bool = False
    suppressions: SuppressionIndex = field(
        default_factory=SuppressionIndex)


def _suppressed(ctx: RuleContext, finding: Finding) -> bool:
    tag = RULES[finding.rule][0]
    return ctx.suppressions.justified(finding.path, finding.line, tag)


def _par_rules(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for w in ctx.facts.writes:
        if w.fp_accum:
            findings.append(Finding(
                path=w.file, line=w.line, rule="CORP-PAR-002",
                message=(
                    f"floating-point accumulation `{w.var} {w.op} ...` "
                    f"inside a {w.region_entry} region (entered at line "
                    f"{w.region_line}): summation order follows the "
                    f"thread schedule, so parallel != serial bit-for-"
                    f"bit. Accumulate into a per-shard slot and reduce "
                    f"serially, or justify with `// lint: "
                    f"par-reduction`."),
            ))
        else:
            findings.append(Finding(
                path=w.file, line=w.line, rule="CORP-PAR-001",
                message=(
                    f"`{w.var} {w.op}` inside a {w.region_entry} region "
                    f"(entered at line {w.region_line}) writes captured "
                    f"shared state not indexed by the loop/shard "
                    f"variable: iterations race and the winner depends "
                    f"on the thread schedule. Index the write by the "
                    f"loop variable, make it shard-local, or justify "
                    f"with `// lint: par-staged`."),
            ))
    return [f for f in findings if not _suppressed(ctx, f)]


def _seed_rules(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []

    # (a) Registry coverage: every registered tag referenced somewhere.
    if ctx.full_tree:
        for tag in ctx.registry:
            if ctx.tag_uses.get(tag.name, 0) == 0:
                findings.append(Finding(
                    path=ctx.registry_path, line=tag.line,
                    rule="CORP-SEED-002",
                    message=(
                        f"registry tag `{tag.name}` is never referenced "
                        f"outside the registry: dead tags hide which "
                        f"streams are actually drawn. Remove it or wire "
                        f"up the call site (suppress with `// lint: "
                        f"seed-audit`)."),
                ))

    # (b) Collisions: two sites deriving the same (base, tag, substream)
    # produce byte-identical streams without either site knowing.
    groups: dict[tuple[str, str, str], list[tuple[str, int]]] = \
        defaultdict(list)
    for s in ctx.facts.seeds:
        site = (s.file, s.line)
        key = (s.base_text, s.tag_name, s.substream_text)
        if site not in groups[key]:
            groups[key].append(site)
    for (base, tag, substream), sites in sorted(groups.items()):
        if len(sites) < 2:
            continue
        where = ", ".join(f"{f}:{line}" for f, line in sites)
        for file, line in sites:
            findings.append(Finding(
                path=file, line=line, rule="CORP-SEED-002",
                message=(
                    f"derive_seed({base}, {tag}"
                    + (f", {substream}" if substream else "")
                    + f") is derived at {len(sites)} distinct call "
                    f"sites ({where}): both draw the identical stream. "
                    f"Give each context its own tag or substream "
                    f"(suppress with `// lint: seed-audit`)."),
            ))

    # (c) Re-derivation: the base argument is itself derived with the
    # same tag — `derive_seed(derive_seed(s, kX), kX)` aliases streams
    # along one call path.
    for s in ctx.facts.seeds:
        if s.tag_name and s.tag_name in s.base_text:
            findings.append(Finding(
                path=s.file, line=s.line, rule="CORP-SEED-002",
                message=(
                    f"tag `{s.tag_name}` is re-derived from a base that "
                    f"was already derived with the same tag: the stream "
                    f"aliases its own parent. Use a distinct tag for "
                    f"the inner derivation (suppress with `// lint: "
                    f"seed-audit`)."),
            ))

    return [f for f in findings if not _suppressed(ctx, f)]


def _obs_rules(ctx: RuleContext) -> list[Finding]:
    by_name: dict[str, list[tuple[str, int, str]]] = defaultdict(list)
    for m in ctx.facts.metrics:
        site = (m.file, m.line, subsystem_of(m.file))
        if site not in by_name[m.name]:
            by_name[m.name].append(site)
    findings: list[Finding] = []
    for name, sites in sorted(by_name.items()):
        subsystems = sorted({s[2] for s in sites})
        if len(subsystems) < 2:
            continue
        # Group suppression: one justification documents the sharing
        # decision for every publisher of the name.
        tag = RULES["CORP-OBS-002"][0]
        if any(ctx.suppressions.justified(file, line, tag)
               for file, line, _ in sites):
            continue
        where = ", ".join(f"{f}:{line}" for f, line, _ in sites)
        for file, line, _sub in sites:
            findings.append(Finding(
                path=file, line=line, rule="CORP-OBS-002",
                message=(
                    f"metric `{name}` is published from "
                    f"{len(subsystems)} subsystems "
                    f"({', '.join(subsystems)}; sites: {where}): "
                    f"cross-subsystem double publication silently sums "
                    f"unrelated counters. Namespace the metric per "
                    f"subsystem or justify once with `// lint: "
                    f"metric-shared`."),
            ))
    return findings


def run_rules(ctx: RuleContext,
              only: frozenset[str] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    findings.extend(_par_rules(ctx))
    findings.extend(_seed_rules(ctx))
    findings.extend(_obs_rules(ctx))
    if only is not None:
        findings = [f for f in findings if f.rule in only]
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.rule, f.message))
