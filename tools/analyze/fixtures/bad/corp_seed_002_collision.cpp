// Fixture: CORP-SEED-002 must fire — two flavors of cross-TU seed
// misuse the registry's static_assert cannot see:
//
//   * two distinct call sites derive the identical (base, tag,
//     substream) triple, so "independent" streams are byte-identical;
//   * a tag is re-derived from a base that was already derived with
//     the same tag, aliasing the stream with its own parent.
#include <cstdint>

namespace corp::util {
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream,
                          std::uint64_t substream);

namespace seed_stream {
inline constexpr std::uint64_t kFixtureWorkload = 0x57524b4cULL;
}  // namespace seed_stream
}  // namespace corp::util

namespace corp::fixture {

using util::seed_stream::kFixtureWorkload;

std::uint64_t training_stream(std::uint64_t base) {
  // violation (collision, site 1 of 2)
  return util::derive_seed(base, kFixtureWorkload);
}

std::uint64_t evaluation_stream(std::uint64_t base) {
  // violation (collision, site 2 of 2): same base text, same tag, no
  // distinguishing substream — draws training_stream's exact stream.
  return util::derive_seed(base, kFixtureWorkload);
}

std::uint64_t replica_stream(std::uint64_t seed, std::uint64_t replica) {
  // violation (re-derivation): the inner derive already consumed
  // kFixtureWorkload; deriving with it again aliases parent and child.
  return util::derive_seed(
      util::derive_seed(seed, kFixtureWorkload), kFixtureWorkload,
      replica);
}

}  // namespace corp::fixture
