// Fixture: CORP-PAR-001 must fire — a lambda handed to
// util::ThreadPool::parallel_for writes captured shared state that is
// not indexed by the loop variable, so iterations race and the final
// value depends on the thread schedule.
//
// Self-contained stub of the pool API: the analyzer keys on the call
// shape (`.parallel_for(n, [..](std::size_t i) {..})`), not on the
// real header.
#include <cstddef>
#include <functional>
#include <vector>

namespace corp::util {
class ThreadPool {
 public:
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);
};
}  // namespace corp::util

namespace corp::fixture {

std::size_t count_positive(corp::util::ThreadPool& pool,
                           const std::vector<int>& xs) {
  std::size_t hits = 0;
  std::vector<int> order;
  pool.parallel_for(xs.size(), [&](std::size_t i) {
    if (xs[i] > 0) {
      hits += 1;               // violation: racy shared counter
      order.push_back(xs[i]);  // violation: container mutation races
    }
  });
  return hits + order.size();
}

}  // namespace corp::fixture
