// Fixture: CORP-PAR-002 must fire — floating-point `+=` accumulation
// into a captured shared double inside a parallel region. Even if the
// individual adds were synchronized, the summation ORDER follows the
// thread schedule, and floating-point addition is not associative, so
// parallel != serial bit-for-bit.
#include <cstddef>
#include <functional>
#include <vector>

namespace corp::util {
class ThreadPool {
 public:
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);
};
}  // namespace corp::util

namespace corp::fixture {

double total_usage(corp::util::ThreadPool& pool,
                   const std::vector<double>& usage) {
  double sum = 0.0;
  pool.parallel_for(usage.size(), [&](std::size_t i) {
    sum += usage[i];  // violation: order-dependent fp reduction
  });
  return sum;
}

}  // namespace corp::fixture
