// Fixture: CORP-OBS-002 must fire — see sim_side/publish.cpp; this is
// the second subsystem publishing the same metric name.
namespace corp::obs {
void count(const char* name);
}  // namespace corp::obs

namespace corp::fixture_sched {

void on_job_admitted() {
  obs::count("fixture.jobs_admitted");  // violation: also published by
                                        // sim_side/publish.cpp
}

}  // namespace corp::fixture_sched
