// Fixture: CORP-OBS-002 must fire — this subsystem and sched_side/
// both publish `fixture.jobs_admitted`, so the registry silently sums
// two unrelated counters and the per-subsystem dashboards double-count.
namespace corp::obs {
void count(const char* name);
}  // namespace corp::obs

namespace corp::fixture_sim {

void on_job_admitted() {
  obs::count("fixture.jobs_admitted");  // violation: also published by
                                        // sched_side/publish.cpp
}

}  // namespace corp::fixture_sim
