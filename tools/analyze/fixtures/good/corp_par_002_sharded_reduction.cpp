// Fixture: must stay silent — the deterministic reduction idiom. Each
// worker accumulates into its own slot of a pre-sized partial-sums
// table (indexed by the loop variable), and the cross-slot reduction
// happens serially after the parallel region, so the summation order
// is fixed no matter how iterations interleave.
#include <cstddef>
#include <functional>
#include <vector>

namespace corp::util {
class ThreadPool {
 public:
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);
};
}  // namespace corp::util

namespace corp::fixture {

double total_usage(corp::util::ThreadPool& pool,
                   const std::vector<double>& usage) {
  std::vector<double> partial(usage.size(), 0.0);
  pool.parallel_for(usage.size(), [&](std::size_t i) {
    partial[i] += usage[i];  // per-iteration slot: no shared order
  });
  double sum = 0.0;  // serial reduction in index order
  for (std::size_t i = 0; i < partial.size(); ++i) sum += partial[i];
  return sum;
}

}  // namespace corp::fixture
