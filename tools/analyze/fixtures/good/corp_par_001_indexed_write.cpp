// Fixture: must stay silent — every parallel-region write is either
// indexed by the loop variable (each iteration owns its slot), local
// to the iteration, derived from the loop variable through a local, an
// atomic integer (commutative, order-free), or a private by-value
// copy.
#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

namespace corp::util {
class ThreadPool {
 public:
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);
};
}  // namespace corp::util

namespace corp::fixture {

struct Row {
  std::vector<double> cells;
};

void transform(corp::util::ThreadPool& pool, const std::vector<int>& xs,
               std::vector<double>& out, std::vector<Row>& rows,
               std::atomic<std::size_t>& progress) {
  pool.parallel_for(xs.size(), [&](std::size_t i) {
    double scratch = 0.0;           // iteration-local accumulator
    scratch += static_cast<double>(xs[i]);
    const std::size_t slot = i / 2;  // derived from the loop variable
    Row& row = rows[i];              // reference alias to an owned slot
    row.cells.push_back(scratch);
    out[slot] = scratch;             // indexed by a derived value
    progress.fetch_add(1);           // commutative atomic integer
  });
}

void private_copy(corp::util::ThreadPool& pool, std::size_t n,
                  std::vector<double>& out) {
  std::size_t cursor = 0;
  pool.parallel_for(n, [&out, cursor](std::size_t i) mutable {
    cursor += i;       // by-value capture: a private copy per closure
    out[i] = static_cast<double>(cursor);
  });
}

}  // namespace corp::fixture
