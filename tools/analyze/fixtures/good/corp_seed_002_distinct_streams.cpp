// Fixture: must stay silent — every derive_seed call site draws a
// distinct stream: different tags for different contexts, and the two
// sites sharing a tag are distinguished by a substream argument.
#include <cstdint>

namespace corp::util {
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream,
                          std::uint64_t substream);

namespace seed_stream {
inline constexpr std::uint64_t kFixtureTraining = 0x4654524eULL;
inline constexpr std::uint64_t kFixtureReplica = 0x4652504cULL;
}  // namespace seed_stream
}  // namespace corp::util

namespace corp::fixture {

using util::seed_stream::kFixtureReplica;
using util::seed_stream::kFixtureTraining;

std::uint64_t training_stream(std::uint64_t base) {
  return util::derive_seed(base, kFixtureTraining);
}

std::uint64_t replica_stream(std::uint64_t base, std::uint64_t replica) {
  return util::derive_seed(base, kFixtureReplica, replica);
}

std::uint64_t replica_fault_stream(std::uint64_t base,
                                   std::uint64_t replica) {
  // Same tag as replica_stream but a different substream expression:
  // the (base, tag, substream) triple stays unique.
  return util::derive_seed(base, kFixtureReplica, replica * 2 + 1);
}

}  // namespace corp::fixture
