// Fixture: must stay silent — metric names are namespaced per
// subsystem, and the one name published twice (`fixture.sim.ticks`)
// stays within this directory, which is legitimate (two entry points
// of one subsystem feeding one counter).
namespace corp::obs {
void count(const char* name);
void set_gauge(const char* name, double value);
}  // namespace corp::obs

namespace corp::fixture_sim {

void on_tick() { obs::count("fixture.sim.ticks"); }

void on_replay_tick() {
  obs::count("fixture.sim.ticks");  // same subsystem: allowed
  obs::set_gauge("fixture.sim.depth", 1.0);
}

}  // namespace corp::fixture_sim
