// Fixture: must stay silent — this subsystem publishes its own
// namespaced names; nothing collides with sim_side/.
namespace corp::obs {
void count(const char* name);
}  // namespace corp::obs

namespace corp::fixture_sched {

void on_place() { obs::count("fixture.sched.placements"); }

}  // namespace corp::fixture_sched
