"""Layer-3 AST-level determinism analyzer for the CORP tree.

`corp_analyze.py` is the entry point; see docs/static_analysis.md for
the rule contract. The package splits along the pipeline:

    lexer.py          token stream + lambda capture-list parsing
    model.py          frontend-agnostic facts and findings
    micro_frontend.py scope-aware fallback parser (no clang needed)
    clang_frontend.py clang -Xclang -ast-dump=json lowering
    rules.py          CORP-PAR-001/002, CORP-SEED-002, CORP-OBS-002
"""
