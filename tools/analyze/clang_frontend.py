"""clang AST-JSON frontend: drives `clang -Xclang -ast-dump=json` over
compile_commands.json entries and lowers the dump to TUFacts.

The JSON dump serializes source locations differentially: `file` and
`line` appear only when they change relative to the previously printed
location, in document order (a node's `loc`, then `range.begin`, then
`range.end`, then its children). The visitor threads that sticky state
through the whole traversal — getting this wrong silently attributes
facts to the wrong file, so the hand-written AST fixtures under
fixtures/astjson pin it.

Lambda capture modes are not serialized in the JSON dump, so the
frontend re-lexes the capture list from the source slice at the
lambda's begin offset (shared parser in lexer.py). When the source file
cannot be read the capture list degrades to the hazard-prone reading
(capture-default `&`).
"""

from __future__ import annotations

import json
import shlex
import subprocess
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from analyze.lexer import CaptureList, looks_member, parse_capture_list
from analyze.micro_frontend import ENTRY_NAMES, MUTATORS
from analyze.model import MetricSite, ParallelWrite, SeedSite, TUFacts

Node = dict[str, Any]


class AnalyzeError(Exception):
    """Environment/usage failure: missing clang, bad compile DB,
    malformed AST JSON. The CLI maps this to exit 2."""


# --------------------------------------------------------------------------
# compile_commands.json handling
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CompileEntry:
    file: str  # absolute path
    flags: tuple[str, ...]  # normalized flags relevant to parsing


#: Flag prefixes that affect the AST; everything else (warnings,
#: optimization, output, sanitizers) is dropped so gcc-specific flags
#: never reach clang and the flags hash stays stable across builds.
_KEPT_PREFIXES = ("-std=", "-I", "-D", "-U")
_KEPT_WITH_ARG = ("-isystem", "-include", "-iquote")


def _normalize_flags(argv: list[str], directory: str) -> tuple[str, ...]:
    kept: list[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in _KEPT_WITH_ARG and i + 1 < len(argv):
            kept.append(arg)
            kept.append(_absolutize(argv[i + 1], directory))
            i += 2
            continue
        if arg.startswith(_KEPT_PREFIXES):
            if arg.startswith("-I"):
                kept.append("-I" + _absolutize(arg[2:], directory))
            else:
                kept.append(arg)
        i += 1
    return tuple(kept)


def _absolutize(path: str, directory: str) -> str:
    p = Path(path)
    return str(p if p.is_absolute() else Path(directory) / p)


def load_compile_db(db_path: Path) -> list[CompileEntry]:
    try:
        raw = json.loads(db_path.read_text(encoding="utf-8"))
    except OSError as err:
        raise AnalyzeError(
            f"cannot read compile database {db_path}: {err}") from err
    except json.JSONDecodeError as err:
        raise AnalyzeError(
            f"malformed compile database {db_path}: {err}") from err
    if not isinstance(raw, list):
        raise AnalyzeError(
            f"malformed compile database {db_path}: expected a JSON array")
    entries: list[CompileEntry] = []
    for item in raw:
        if not isinstance(item, dict) or "file" not in item:
            continue
        directory = str(item.get("directory", "."))
        if "arguments" in item:
            argv = [str(a) for a in item["arguments"]]
        else:
            argv = shlex.split(str(item.get("command", "")))
        file = _absolutize(str(item["file"]), directory)
        entries.append(
            CompileEntry(file=file, flags=_normalize_flags(argv, directory)))
    return entries


def run_clang(clang: str, entry: CompileEntry) -> Node:
    """Invokes clang and returns the parsed TranslationUnitDecl node."""
    command = [
        clang, "-fsyntax-only", "-w", "-Wno-everything",
        "-Xclang", "-ast-dump=json", *entry.flags, entry.file,
    ]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, check=False)
    except OSError as err:
        raise AnalyzeError(f"cannot run clang ({clang}): {err}") from err
    if proc.returncode != 0 and not proc.stdout:
        tail = proc.stderr.strip().splitlines()[-3:]
        raise AnalyzeError(
            f"clang failed on {entry.file}: " + " | ".join(tail))
    return parse_ast_json(proc.stdout, source=entry.file)


def parse_ast_json(text: str, source: str) -> Node:
    try:
        root = json.loads(text)
    except json.JSONDecodeError as err:
        raise AnalyzeError(
            f"malformed AST JSON for {source}: {err}") from err
    if not isinstance(root, dict) or "kind" not in root:
        raise AnalyzeError(
            f"malformed AST JSON for {source}: no root node kind")
    return root


# --------------------------------------------------------------------------
# Lowering
# --------------------------------------------------------------------------

_FUNCTION_KINDS = frozenset({
    "FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
    "CXXDestructorDecl", "CXXConversionDecl",
})
_SCOPE_KINDS = frozenset({"NamespaceDecl", "CXXRecordDecl"})
_WRITE_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                        "^=", "<<=", ">>="})
_WRAPPER_EXPRS = frozenset({
    "ImplicitCastExpr", "ParenExpr", "ExprWithCleanups",
    "MaterializeTemporaryExpr", "CXXBindTemporaryExpr", "ConstantExpr",
    "CXXConstructExpr", "CXXFunctionalCastExpr", "CXXStaticCastExpr",
    "CXXDefaultArgExpr",
})

_FREE_METRIC_KINDS = {
    "count": "counter", "set_gauge": "gauge", "observe": "histogram"}
_MEMBER_METRIC_KINDS = {
    "counter": "counter", "gauge": "gauge", "histogram": "histogram"}


@dataclass
class _RegionCall:
    lam: Node
    entry: str
    line: int
    file: str


@dataclass
class _Lowering:
    source: str
    facts: TUFacts
    cur_file: str = ""
    cur_line: int = 0
    #: decl id -> (name, qualType)
    decls: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: var decl id -> LambdaExpr node (for `auto f = [..]{..};`)
    lambda_vars: dict[str, Node] = field(default_factory=dict)
    #: lambda node id -> binding var id
    lambda_binding: dict[str, str] = field(default_factory=dict)
    #: lambda node id -> (file, line) at visit time
    lambda_locs: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: param decl id -> owner key ("fn:<name>" or "var:<id>")
    param_owner: dict[str, str] = field(default_factory=dict)
    regions: list[_RegionCall] = field(default_factory=list)
    #: candidate wrapper calls: (callee_key, lambda node, file, line)
    wrapper_calls: list[tuple[str, Node, str, int]] = \
        field(default_factory=list)
    wrappers: set[str] = field(default_factory=set)
    func_stack: list[str] = field(default_factory=list)
    lambda_stack: list[Node] = field(default_factory=list)
    #: >0 while inside a lambda's closure CXXRecordDecl, whose subtree
    #: duplicates the lambda body — visited for location/decl tracking
    #: only, never for fact extraction.
    closure_depth: int = 0
    call_sites: list[Node] = field(default_factory=list)
    member_call_sites: list[Node] = field(default_factory=list)
    construct_sites: list[Node] = field(default_factory=list)
    _sources: dict[str, str] = field(default_factory=dict)

    # -- location tracking -------------------------------------------------

    def _apply_loc(self, loc: Node | None) -> tuple[str, int, int, int]:
        """Updates sticky state; returns (file, line, offset, tokLen)."""
        if not isinstance(loc, dict):
            return self.cur_file, self.cur_line, -1, 0
        if "expansionLoc" in loc or "spellingLoc" in loc:
            # Macro expansion: the expansion side carries the position
            # in the including file; both sides advance the sticky
            # state in print order (spelling first).
            self._apply_loc(loc.get("spellingLoc"))
            return self._apply_loc(loc.get("expansionLoc"))
        file = loc.get("file")
        if isinstance(file, str):
            self.cur_file = file
        line = loc.get("line")
        if isinstance(line, int):
            self.cur_line = line
        offset = loc.get("offset")
        tok_len = loc.get("tokLen")
        return (self.cur_file, self.cur_line,
                offset if isinstance(offset, int) else -1,
                tok_len if isinstance(tok_len, int) else 0)

    def enter_node(self, node: Node) -> tuple[str, int, int, int]:
        """Processes loc/range.begin in print order; returns the node's
        (file, line, begin_offset, end_offset_past_token)."""
        file, line, off, _ = self._apply_loc(node.get("loc"))
        rng = node.get("range")
        begin_off = -1
        end_off = -1
        if isinstance(rng, dict):
            bfile, bline, boff, _ = self._apply_loc(rng.get("begin"))
            _, _, eoff, etok = self._apply_loc(rng.get("end"))
            begin_off = boff
            if eoff >= 0:
                end_off = eoff + etok
            if "loc" not in node:
                file, line = bfile, bline
        if begin_off < 0:
            begin_off = off
        return file, line, begin_off, end_off

    # -- source access -----------------------------------------------------

    def _source_text(self, file: str) -> str:
        cached = self._sources.get(file)
        if cached is not None:
            return cached
        try:
            text = Path(file).read_text(encoding="utf-8", errors="replace")
        except OSError:
            text = ""
        self._sources[file] = text
        return text

    def slice(self, file: str, begin: int, end: int) -> str:
        if begin < 0 or end < begin:
            return ""
        text = self._source_text(file)
        if not text or end > len(text):
            return ""
        return text[begin:end]

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def inner(node: Node) -> list[Node]:
        children = node.get("inner")
        if not isinstance(children, list):
            return []
        return [c for c in children if isinstance(c, dict)]

    @staticmethod
    def qual_type(node: Node) -> str:
        t = node.get("type")
        if isinstance(t, dict):
            qt = t.get("qualType")
            if isinstance(qt, str):
                return qt
        return ""

    def ref_decl(self, node: Node) -> tuple[str, str, str]:
        """(decl id, name, qualType) of a DeclRefExpr's referenced decl."""
        ref = node.get("referencedDecl")
        if not isinstance(ref, dict):
            return "", "", ""
        return (str(ref.get("id", "")), str(ref.get("name", "")),
                self.qual_type(ref))

    def strip_wrappers(self, node: Node) -> Node:
        cur = node
        guard = 0
        while cur.get("kind") in _WRAPPER_EXPRS and guard < 32:
            children = self.inner(cur)
            if not children:
                return cur
            cur = children[0]
            guard += 1
        return cur

    def find_lambda(self, node: Node) -> Node | None:
        """First LambdaExpr in the subtree (the callable argument)."""
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur.get("kind") == "LambdaExpr":
                return cur
            stack.extend(reversed(self.inner(cur)))
        return None

    def subtree_ref_ids(self, node: Node) -> set[str]:
        ids: set[str] = set()
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur.get("kind") == "DeclRefExpr":
                decl_id, _, _ = self.ref_decl(cur)
                if decl_id:
                    ids.add(decl_id)
            stack.extend(self.inner(cur))
        return ids

    # -- main traversal ----------------------------------------------------

    def visit(self, node: Node) -> None:
        kind = str(node.get("kind", ""))
        file, line, begin_off, end_off = self.enter_node(node)
        # Stamp the resolved location on the node: deferred passes
        # (region write analysis, site extraction) must not re-run the
        # differential-location algorithm out of print order.
        node["__file"] = file
        node["__line"] = line
        node["__begin"] = begin_off
        node["__end"] = end_off
        children = self.inner(node)

        if kind in ("VarDecl", "ParmVarDecl", "FieldDecl"):
            decl_id = str(node.get("id", ""))
            name = str(node.get("name", ""))
            if decl_id and name:
                self.decls[decl_id] = (name, self.qual_type(node))
            if kind == "ParmVarDecl" and decl_id:
                owner = self._current_owner()
                if owner:
                    self.param_owner.setdefault(decl_id, owner)
            if kind == "VarDecl" and decl_id:
                lam = self._direct_lambda_init(node)
                if lam is not None:
                    self.lambda_vars[decl_id] = lam
                    lam_id = str(lam.get("id", ""))
                    if lam_id:
                        self.lambda_binding[lam_id] = decl_id

        if kind == "LambdaExpr":
            lam_id = str(node.get("id", ""))
            if lam_id:
                self.lambda_locs[lam_id] = (file, line)

        if self.closure_depth == 0:
            if kind in ("CallExpr", "CXXMemberCallExpr",
                        "CXXOperatorCallExpr"):
                self._record_call(kind, node, file, line)
            if kind == "CallExpr":
                node["__fn"] = "::".join(self.func_stack)
                self.call_sites.append(node)
            elif kind == "CXXMemberCallExpr":
                self.member_call_sites.append(node)
            elif kind in ("CXXConstructExpr", "CXXTemporaryObjectExpr"):
                self.construct_sites.append(node)

        push_fn = False
        push_scope = False
        if kind in _FUNCTION_KINDS and not node.get("isImplicit", False):
            name = str(node.get("name", ""))
            if name:
                self.func_stack.append(name)
                push_fn = True
        elif kind in _SCOPE_KINDS:
            name = str(node.get("name", ""))
            if name:
                self.func_stack.append(name)
                push_scope = True

        in_lambda = kind == "LambdaExpr"
        if in_lambda:
            self.lambda_stack.append(node)
        for child in children:
            # The closure CXXRecordDecl duplicates the lambda's
            # operator() (params + body). It must still be walked — its
            # differential locations advance the sticky state, and the
            # lambda's ParmVarDecls only appear there — but facts from
            # it would double-count, hence the closure_depth guard.
            if in_lambda and child.get("kind") == "CXXRecordDecl":
                self.closure_depth += 1
                self.visit(child)
                self.closure_depth -= 1
            else:
                self.visit(child)
        if in_lambda:
            self.lambda_stack.pop()
        if push_fn or push_scope:
            self.func_stack.pop()

    def extract_sites(self) -> None:
        """Deferred seed/metric extraction (after all nodes are
        location-stamped, so argument source slices resolve)."""
        for node in self.call_sites:
            file = str(node.get("__file", ""))
            line = int(node.get("__line", 0))
            self._maybe_seed_site(node, file, line)
            self._maybe_free_metric(node, file, line)
        for node in self.member_call_sites:
            self._maybe_member_metric(
                node, str(node.get("__file", "")),
                int(node.get("__line", 0)))
        for node in self.construct_sites:
            self._maybe_phase_timer(
                node, str(node.get("__file", "")),
                int(node.get("__line", 0)))

    def _current_owner(self) -> str:
        if self.lambda_stack:
            return "lam:" + str(self.lambda_stack[-1].get("id", ""))
        if self.func_stack:
            return "fn:" + self.func_stack[-1]
        return ""

    def _direct_lambda_init(self, var: Node) -> Node | None:
        for child in self.inner(var):
            candidate = self.strip_wrappers(child)
            if candidate.get("kind") == "LambdaExpr":
                return candidate
        return None

    # -- call-site handling ------------------------------------------------

    def _callee_member_name(self, node: Node) -> str:
        children = self.inner(node)
        if not children:
            return ""
        callee = children[0]
        if callee.get("kind") == "MemberExpr":
            return str(callee.get("name", ""))
        return ""

    def _callee_ref(self, node: Node) -> tuple[str, str]:
        """(name, decl id) for CallExpr/CXXOperatorCallExpr callees."""
        children = self.inner(node)
        if not children:
            return "", ""
        callee = self.strip_wrappers(children[0])
        if callee.get("kind") == "DeclRefExpr":
            decl_id, name, _ = self.ref_decl(callee)
            return name, decl_id
        return "", ""

    def _record_call(self, kind: str, node: Node, file: str,
                     line: int) -> None:
        children = self.inner(node)
        if not children:
            return
        entry_name = ""
        args: list[Node] = []
        callee_key = ""
        if kind == "CXXMemberCallExpr":
            entry_name = self._callee_member_name(node)
            args = children[1:]
        elif kind == "CallExpr":
            entry_name, _decl_id = self._callee_ref(node)
            args = children[1:]
            callee_key = "fn:" + entry_name if entry_name else ""
        else:  # CXXOperatorCallExpr — calling a lambda object
            name, _ = self._callee_ref(node)
            if name != "operator()" or len(children) < 2:
                return
            target = self.strip_wrappers(children[1])
            if target.get("kind") == "DeclRefExpr":
                decl_id, _, _ = self.ref_decl(target)
                callee_key = "var:" + decl_id
            args = children[2:]
            entry_name = self._wrapper_display_name(callee_key)

        if entry_name in ENTRY_NAMES:
            for arg in args:
                lam = self.find_lambda(arg)
                if lam is not None:
                    self.regions.append(_RegionCall(lam, entry_name,
                                                    line, file))
                    continue
                stripped = self.strip_wrappers(arg)
                if stripped.get("kind") == "DeclRefExpr":
                    decl_id, _name, _ = self.ref_decl(stripped)
                    if decl_id in self.lambda_vars:
                        self.regions.append(_RegionCall(
                            self.lambda_vars[decl_id], entry_name,
                            line, file))
                    elif decl_id in self.param_owner:
                        owner = self.param_owner[decl_id]
                        if owner.startswith("lam:"):
                            bound = self.lambda_binding.get(owner[4:])
                            if bound:
                                self.wrappers.add("var:" + bound)
                        else:
                            self.wrappers.add(owner)
        elif callee_key:
            for arg in args:
                lam = self.find_lambda(arg)
                if lam is None:
                    stripped = self.strip_wrappers(arg)
                    if stripped.get("kind") == "DeclRefExpr":
                        decl_id, _, _ = self.ref_decl(stripped)
                        lam = self.lambda_vars.get(decl_id)
                if lam is not None:
                    self.wrapper_calls.append((callee_key, lam, file, line))

    def _wrapper_display_name(self, callee_key: str) -> str:
        if callee_key.startswith("var:"):
            name, _ = self.decls.get(callee_key[4:], ("", ""))
            return name
        return callee_key[3:] if callee_key.startswith("fn:") else ""

    def resolve_wrapper_regions(self) -> None:
        for callee_key, lam, file, line in self.wrapper_calls:
            if callee_key in self.wrappers:
                entry = self._wrapper_display_name(callee_key) or "wrapper"
                self.regions.append(_RegionCall(lam, entry, line, file))

    # -- region analysis ---------------------------------------------------

    def analyze_regions(self, in_repo: Callable[[str], bool]) -> None:
        seen: set[str] = set()
        for region in self.regions:
            lam_id = str(region.lam.get("id", ""))
            if lam_id and lam_id in seen:
                continue
            seen.add(lam_id)
            if region.file and not in_repo(region.file):
                continue
            self._analyze_region(region)

    def _lambda_captures(self, lam: Node) -> CaptureList:
        file = str(lam.get("__file", ""))
        begin = lam.get("__begin", -1)
        if isinstance(begin, int) and begin >= 0 and file:
            text = self._source_text(file)
            if text and begin < len(text):
                return parse_capture_list(text[begin:begin + 512])
        return CaptureList(default="&", captures=[])

    def _lambda_params(self, lam: Node) -> list[Node]:
        """The lambda's ParmVarDecls live inside the closure record's
        operator(), not as direct LambdaExpr children."""
        for child in self.inner(lam):
            if child.get("kind") != "CXXRecordDecl":
                continue
            for member in self.inner(child):
                if member.get("kind") == "CXXMethodDecl" and \
                        member.get("name") == "operator()":
                    return [p for p in self.inner(member)
                            if p.get("kind") == "ParmVarDecl"]
        return [p for p in self.inner(lam)
                if p.get("kind") == "ParmVarDecl"]

    def _analyze_region(self, region: _RegionCall) -> None:
        lam = region.lam
        children = self.inner(lam)
        params = self._lambda_params(lam)
        body = children[-1] if children else None
        if body is None or body.get("kind") != "CompoundStmt":
            body = next((c for c in reversed(children)
                         if c.get("kind") == "CompoundStmt"), None)
        if body is None:
            return
        captures = self._lambda_captures(lam)

        derived: set[str] = set()
        locals_: set[str] = set()
        aliases: dict[str, str] = {}  # ref decl id -> aliased base id
        for p in params:
            pid = str(p.get("id", ""))
            if pid:
                derived.add(pid)

        # First pass over the body: declarations (locals, derived
        # propagation, reference aliases) and nested lambda params.
        def collect_decls(node: Node) -> None:
            kind = node.get("kind")
            if kind == "VarDecl":
                decl_id = str(node.get("id", ""))
                if decl_id:
                    locals_.add(decl_id)
                    init_ids = self.subtree_ref_ids(node)
                    if init_ids & derived:
                        derived.add(decl_id)
                    elif self.qual_type(node).rstrip().endswith("&"):
                        base = self._init_chain_base(node)
                        if base:
                            aliases[decl_id] = base
            if kind == "LambdaExpr":
                for p in self._lambda_params(node):
                    pid = str(p.get("id", ""))
                    if pid:
                        derived.add(pid)
            for c in self.inner(node):
                collect_decls(c)

        collect_decls(body)
        self._find_writes(body, region, captures, derived, locals_,
                          aliases)

    def _init_chain_base(self, var: Node) -> str:
        for child in self.inner(var):
            chain = self._chain(self.strip_wrappers(child))
            if chain is not None:
                return chain[0]
        return ""

    def _chain(
            self, node: Node) -> tuple[str, set[str], bool] | None:
        """(base decl id, subscript/arg ref ids, is_this_member) of a
        postfix lvalue chain, or None."""
        subscripts: set[str] = set()
        cur = node
        guard = 0
        while guard < 64:
            guard += 1
            cur = self.strip_wrappers(cur)
            kind = cur.get("kind")
            children = self.inner(cur)
            if kind == "DeclRefExpr":
                decl_id, _, _ = self.ref_decl(cur)
                return (decl_id, subscripts, False) if decl_id else None
            if kind == "MemberExpr":
                if not children:
                    return None
                base = self.strip_wrappers(children[0])
                if base.get("kind") == "CXXThisExpr":
                    member = str(cur.get("name", "member"))
                    return f"this.{member}", subscripts, True
                cur = children[0]
                continue
            if kind == "ArraySubscriptExpr":
                if len(children) < 2:
                    return None
                subscripts |= self.subtree_ref_ids(children[1])
                cur = children[0]
                continue
            if kind == "CXXOperatorCallExpr":
                name, _ = self._callee_ref(cur)
                if name in ("operator[]", "operator*") and \
                        len(children) >= 2:
                    for arg in children[2:]:
                        subscripts |= self.subtree_ref_ids(arg)
                    cur = children[1]
                    continue
                return None
            if kind in ("CXXMemberCallExpr", "CallExpr"):
                # .at(i) / .row(n) style access on the path: the call
                # arguments act as subscripts.
                if not children:
                    return None
                callee = children[0]
                for arg in children[1:]:
                    subscripts |= self.subtree_ref_ids(arg)
                cur = callee
                continue
            if kind == "UnaryOperator" and \
                    cur.get("opcode") in ("*", "&"):
                if not children:
                    return None
                cur = children[0]
                continue
            return None
        return None

    def _find_writes(self, node: Node, region: _RegionCall,
                     captures: CaptureList, derived: set[str],
                     locals_: set[str], aliases: dict[str, str]) -> None:
        kind = str(node.get("kind", ""))
        file = str(node.get("__file", ""))
        line = int(node.get("__line", 0))
        children = self.inner(node)

        target: Node | None = None
        op = ""
        fp_hint = False
        if kind == "BinaryOperator" and node.get("opcode") == "=":
            target, op = (children[0] if children else None), "="
        elif kind == "CompoundAssignOperator":
            op = str(node.get("opcode", "?="))
            target = children[0] if children else None
            fp_hint = any(t in self.qual_type(node)
                          for t in ("double", "float"))
        elif kind == "UnaryOperator" and \
                node.get("opcode") in ("++", "--"):
            op = str(node.get("opcode"))
            target = children[0] if children else None
        elif kind == "CXXOperatorCallExpr":
            name, _ = self._callee_ref(node)
            if name.startswith("operator") and \
                    name[len("operator"):] in _WRITE_OPS and \
                    len(children) >= 2:
                op = name[len("operator"):]
                target = children[1]
        elif kind == "CXXMemberCallExpr":
            member = self._callee_member_name(node)
            if member in MUTATORS and children:
                callee = children[0]
                base_children = self.inner(callee)
                if base_children:
                    op = member
                    target = base_children[0]

        if target is not None and op:
            self._classify_write(target, op, fp_hint, region, captures,
                                 derived, locals_, aliases, file, line)

        for child in children:
            if kind == "LambdaExpr" and \
                    child.get("kind") == "CXXRecordDecl":
                continue
            self._find_writes(child, region, captures, derived, locals_,
                              aliases)

    def _classify_write(self, target: Node, op: str, fp_hint: bool,
                        region: _RegionCall, captures: CaptureList,
                        derived: set[str], locals_: set[str],
                        aliases: dict[str, str], file: str,
                        line: int) -> None:
        chain = self._chain(target)
        if chain is None:
            return
        base, subscripts, is_this_member = chain
        if base in derived:
            return
        if base in aliases:
            base = aliases[base]
            if base in derived:
                return
        elif base in locals_:
            return
        if subscripts & derived:
            return
        if is_this_member:
            name = base.split(".", 1)[1]
            qual = ""
            shared = captures.is_shared("this", True) or \
                captures.is_shared(name, True)
        else:
            name, qual = self.decls.get(base, (base, ""))
            shared = captures.is_shared(name, looks_member(name))
        if not shared:
            return
        is_fp = fp_hint or "double" in qual or "float" in qual
        if "atomic" in qual and not is_fp:
            return
        fp_accum = op in ("+=", "-=") and is_fp
        self.facts.writes.append(ParallelWrite(
            file=file, line=line, var=name, op=op, fp_accum=fp_accum,
            region_entry=region.entry, region_line=region.line))

    # -- cross-TU fact extraction -----------------------------------------

    def _arg_text(self, arg: Node, file: str) -> str:
        begin = arg.get("__begin", -1)
        end = arg.get("__end", -1)
        if isinstance(begin, int) and isinstance(end, int):
            text = self.slice(file, begin, end)
            if text:
                return " ".join(text.split())
        return f"<arg@{arg.get('__line', 0)}>"

    def _maybe_seed_site(self, node: Node, file: str, line: int) -> None:
        name, _ = self._callee_ref(node)
        if name != "derive_seed":
            return
        args = self.inner(node)[1:]
        if len(args) < 2:
            return
        tag_name = ""
        for ref in self._subtree_ref_names(args[1]):
            if ref.startswith("k"):
                tag_name = ref
        if not tag_name:
            return
        base_text = self._arg_text(args[0], file)
        substream = ", ".join(
            self._arg_text(a, file) for a in args[2:]) if len(args) > 2 \
            else ""
        self.facts.seeds.append(SeedSite(
            file=file, line=line,
            function=str(node.get("__fn", "")),
            base_text=base_text, tag_name=tag_name,
            substream_text=substream))

    def _subtree_ref_names(self, node: Node) -> list[str]:
        names: list[str] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur.get("kind") == "DeclRefExpr":
                _, name, _ = self.ref_decl(cur)
                if name:
                    names.append(name)
            stack.extend(self.inner(cur))
        return names

    def _string_literal(self, node: Node) -> str | None:
        stack = [node]
        guard = 0
        while stack and guard < 64:
            guard += 1
            cur = self.strip_wrappers(stack.pop())
            if cur.get("kind") == "StringLiteral":
                value = str(cur.get("value", ""))
                if len(value) >= 2 and value.startswith('"'):
                    return value[1:-1]
                return value
            stack.extend(self.inner(cur))
        return None

    def _maybe_free_metric(self, node: Node, file: str,
                           line: int) -> None:
        name, _ = self._callee_ref(node)
        kind = _FREE_METRIC_KINDS.get(name)
        if kind is None:
            return
        args = self.inner(node)[1:]
        if not args:
            return
        metric = self._string_literal(args[0])
        if metric is None:
            return
        self.facts.metrics.append(MetricSite(
            file=file, line=line, kind=kind, name=metric))

    def _maybe_member_metric(self, node: Node, file: str,
                             line: int) -> None:
        member = self._callee_member_name(node)
        kind = _MEMBER_METRIC_KINDS.get(member)
        if kind is None:
            return
        args = self.inner(node)[1:]
        if not args:
            return
        metric = self._string_literal(args[0])
        if metric is None:
            return
        self.facts.metrics.append(MetricSite(
            file=file, line=line, kind=kind, name=metric))

    def _maybe_phase_timer(self, node: Node, file: str,
                           line: int) -> None:
        if "ScopedTimer" not in self.qual_type(node):
            return
        args = self.inner(node)
        if not args:
            return
        metric = self._string_literal(args[0])
        if metric is None:
            return
        self.facts.metrics.append(MetricSite(
            file=file, line=line, kind="phase", name=metric))


def lower_ast(root: Node, source: str,
              in_repo: Callable[[str], bool]) -> TUFacts:
    """Lowers a TranslationUnitDecl JSON node to TUFacts.

    `in_repo` is a predicate over file paths: facts located outside the
    repository (system headers) are dropped, facts in repo headers are
    kept and attributed to the header.
    """
    lowering = _Lowering(source=source, facts=TUFacts(source=source))
    lowering.visit(root)
    lowering.extract_sites()
    lowering.resolve_wrapper_regions()
    lowering.analyze_regions(in_repo)
    facts = lowering.facts
    facts.writes = [w for w in facts.writes if in_repo(w.file)]
    facts.seeds = [s for s in facts.seeds if in_repo(s.file)]
    facts.metrics = [m for m in facts.metrics if in_repo(m.file)]
    return facts

