#!/usr/bin/env python3
"""Deterministic trace-fixture generator for the streaming ingester.

Writes a synthetic-but-schema-faithful trace CSV in either the Google
cluster-usage v2 ``task_usage`` shape or the Azure VM CPU-readings
shape, sized to a byte target, so CI can exercise
``trace::StreamReader`` (bench/trace_replay, the trace-ingest job) at
production volume without shipping gigabytes of real trace data.

Layout mirrors what the reader has to cope with in the real downloads:

* rows sorted by start timestamp, many tasks interleaved per 5-minute
  window;
* mostly single-window short tasks (kept by the paper's short-job
  filter), a slice of multi-window tasks (dropped under the default
  ``drop`` policy), including split sub-window records and skipped
  windows (gap fills);
* a ``#corp-trace schema=...`` directive as line 1 so the file is
  self-describing.

``--sparsity F`` (default 0) carves idle valleys into the arrival
stream: windows are grouped into fixed periods of ``SPARSITY_PERIOD``
and the trailing ``F`` fraction of each period emits no fresh work —
the night stretches of a real trace, distilled. Multi-window tasks
started before a valley still drain into it, so the reader sees
trailing rows before the silence; the deep valley interior is genuinely
row-free, which is what lets the event-driven slot clock
(``trace_replay --clock event``) skip slots during replay.

Output is a pure function of (--schema, --mb, --seed, --sparsity,
generator version): the CI job caches the fixture keyed on this
script's hash and re-generates only when the generator changes. The
SHA-256 of the written file is always printed for cache/audit trails.

Only the Python standard library is used.
"""

from __future__ import annotations

import argparse
import hashlib
import random
import sys
from pathlib import Path

WINDOW_US = 300_000_000  # 5-minute usage window, microseconds
EPOCH_US = 600_000_000  # arbitrary non-zero trace start
SPARSITY_PERIOD = 20  # windows per active/idle duty cycle under --sparsity


def active_windows_per_period(sparsity: float) -> int:
    """Windows of each SPARSITY_PERIOD that emit fresh work (>= 1)."""
    return max(1, round(SPARSITY_PERIOD * (1.0 - sparsity)))


def format_google_row(start_us: int, end_us: int, job_id: int,
                      task_index: int, machine: int, cpu: float,
                      mem: float, disk: float) -> str:
    # task_usage columns: start, end, job_id, task_index, machine_id,
    # mean_cpu, canonical_mem, assigned_mem, unmapped_cache, page_cache,
    # max_mem, mean_disk_io, mean_disk_space.
    return (f"{start_us},{end_us},{job_id},{task_index},{machine},"
            f"{cpu:.6f},{mem:.6f},0,0,0,0,0,{disk:.6f}\n")


def generate_google(out: Path, target_bytes: int, seed: int,
                    sparsity: float) -> int:
    """Writes a task_usage-shaped fixture; returns rows written."""
    rng = random.Random(seed)
    active_per_period = active_windows_per_period(sparsity)
    rows = 0
    bytes_written = 0
    next_job_id = 1
    # Active multi-window tasks: (job_id, windows_left, skip_window,
    # cpu, mem, disk). skip_window counts down to one deliberately
    # omitted window (a gap the reader must fill).
    active: list[list[float]] = []
    window = 0
    draining = False
    with out.open("w", encoding="ascii", newline="\n") as handle:
        def emit(line: str) -> None:
            nonlocal rows, bytes_written
            handle.write(line)
            rows += 1
            bytes_written += len(line)

        handle.write("#corp-trace schema=google-v2\n")
        while not draining or active:
            start = EPOCH_US + window * WINDOW_US
            buffered: list[tuple[int, str]] = []
            # Continue active multi-window tasks.
            for task in active:
                job_id = int(task[0])
                task[1] -= 1
                if task[2] == 1:
                    task[2] = 0
                    continue  # skipped window -> reader gap-fills
                if task[2] > 0:
                    task[2] -= 1
                buffered.append((start, format_google_row(
                    start, start + WINDOW_US, job_id, 0, job_id % 997,
                    task[3], task[4], task[5])))
            active = [t for t in active if t[1] > 0]
            if not draining and window % SPARSITY_PERIOD < active_per_period:
                # Fresh single-window tasks: 90% whole-window rows, 10%
                # split into two half-window records the reader must
                # merge into one coarse window.
                for _ in range(1080):
                    cpu = rng.uniform(0.004, 0.022)
                    mem = rng.uniform(0.003, 0.016)
                    disk = rng.uniform(0.0002, 0.0012)
                    job_id = next_job_id
                    next_job_id += 1
                    if rng.random() < 0.10:
                        half = WINDOW_US // 2
                        buffered.append((start, format_google_row(
                            start, start + half, job_id, 0, job_id % 997,
                            cpu, mem, disk)))
                        buffered.append((start + half, format_google_row(
                            start + half, start + WINDOW_US, job_id, 0,
                            job_id % 997, cpu * 1.1, mem, disk)))
                    else:
                        buffered.append((start, format_google_row(
                            start, start + WINDOW_US, job_id, 0,
                            job_id % 997, cpu, mem, disk)))
                # Fresh multi-window tasks (dropped by the short-job
                # filter; they exercise assembly, drops and gap fills).
                for _ in range(40):
                    windows = rng.randint(2, 4)
                    skip = 0
                    if windows >= 3 and rng.random() < 0.25:
                        # Omit the second window: the reader must
                        # gap-fill before the drop policy can trigger.
                        skip = 1
                    job_id = next_job_id
                    next_job_id += 1
                    task = [float(job_id), float(windows), float(skip),
                            rng.uniform(0.004, 0.02),
                            rng.uniform(0.003, 0.012),
                            rng.uniform(0.0002, 0.001)]
                    task[1] -= 1
                    buffered.append((start, format_google_row(
                        start, start + WINDOW_US, job_id, 0, job_id % 997,
                        task[3], task[4], task[5])))
                    if task[1] > 0:
                        active.append(task)
            buffered.sort(key=lambda item: item[0])
            for _, line in buffered:
                emit(line)
            window += 1
            if bytes_written >= target_bytes:
                draining = True
    return rows


def generate_azure(out: Path, target_bytes: int, seed: int,
                   sparsity: float) -> int:
    """Writes an Azure vm_cpu_readings-shaped fixture; returns rows."""
    rng = random.Random(seed)
    active_per_period = active_windows_per_period(sparsity)
    rows = 0
    bytes_written = 0
    # Fleet of VMs, each reporting once per window for a random
    # lifetime; expired VMs are replaced so row volume stays steady.
    names: list[str] = [f"vm-{seed}-{i:06d}" for i in range(1200)]
    lives: list[int] = [rng.randint(3, 40) for _ in names]
    next_vm = len(names)
    window = 0
    with out.open("w", encoding="ascii", newline="\n") as handle:
        handle.write("#corp-trace schema=azure-vm\n")
        while bytes_written < target_bytes:
            if window % SPARSITY_PERIOD >= active_per_period:
                # Idle valley: the whole fleet goes silent this window.
                window += 1
                continue
            ts = (EPOCH_US // 1_000_000) + window * 300
            for i, name in enumerate(names):
                avg = rng.uniform(1.0, 35.0)
                low = avg * rng.uniform(0.3, 0.9)
                high = min(100.0, avg * rng.uniform(1.1, 2.5))
                line = f"{ts},{name},{low:.4f},{high:.4f},{avg:.4f}\n"
                handle.write(line)
                rows += 1
                bytes_written += len(line)
                lives[i] -= 1
            for i, life in enumerate(lives):
                if life <= 0:
                    names[i] = f"vm-{seed}-{next_vm:06d}"
                    lives[i] = rng.randint(3, 40)
                    next_vm += 1
            window += 1
    return rows


def sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def main() -> int:
    doc = __doc__ or ""
    parser = argparse.ArgumentParser(description=doc.splitlines()[0])
    parser.add_argument("--out", required=True, help="output CSV path")
    parser.add_argument("--schema", default="google-v2",
                        choices=("google-v2", "azure-vm"))
    parser.add_argument("--mb", type=float, default=100.0,
                        help="target size in MiB (default 100)")
    parser.add_argument("--seed", type=int, default=1337)
    parser.add_argument("--sparsity", type=float, default=0.0,
                        help=f"fraction of each {SPARSITY_PERIOD}-window"
                             " period left as an idle valley (default 0)")
    args = parser.parse_args()
    if args.mb <= 0:
        print("error: --mb must be positive", file=sys.stderr)
        return 2
    if not 0.0 <= args.sparsity < 1.0:
        print("error: --sparsity must be in [0, 1)", file=sys.stderr)
        return 2

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    target_bytes = int(args.mb * (1 << 20))
    if args.schema == "google-v2":
        rows = generate_google(out, target_bytes, args.seed, args.sparsity)
    else:
        rows = generate_azure(out, target_bytes, args.seed, args.sparsity)
    size = out.stat().st_size
    print(f"wrote {out} ({rows} rows, {size} bytes, schema {args.schema}, "
          f"seed {args.seed}, sparsity {args.sparsity})")
    print(f"sha256 {sha256_of(out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
