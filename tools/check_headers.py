#!/usr/bin/env python3
"""Header self-containment check for the CORP tree.

Every public header under src/ — plus the helper headers under bench/
and tools/ — must compile as the first (and only) include of a
translation unit — i.e. it pulls in everything it uses and leans on no
accidental include order. For each header this script writes a one-line
TU:

    #include "dnn/matrix.hpp"

and compiles it with ``$CXX -std=c++20 -fsyntax-only -I src`` (headers
outside src/ get their own scan root appended to the include path, so
``bench/figure_common.hpp`` resolves both its siblings and src/
headers). A header that only compiles when someone else included
<vector> first breaks the next refactor in a different TU — exactly the
class of rot a growing tree accumulates silently. Analyzer fixtures
under tools/analyze/fixtures/ are deliberately broken code and are
skipped.

Runs as a CTest (``headers_selfcontained``) and in the static-analysis
CI job. Exit status: 0 when every header compiles, 1 otherwise, 2 on
usage errors. Only the Python standard library is used.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from collections.abc import Sequence
from pathlib import Path


def find_headers(scan_root: Path) -> list[Path]:
    headers = []
    for path in sorted(scan_root.rglob("*.hpp")):
        if not path.is_file():
            continue
        # Fixture code is intentionally non-compiling lint bait.
        if "fixtures" in path.relative_to(scan_root).parts:
            continue
        headers.append(path)
    return headers


def check_header(
        compiler: str, src_root: Path, scan_root: Path, header: Path,
        extra_flags: Sequence[str]) -> subprocess.CompletedProcess[str]:
    rel = header.relative_to(scan_root).as_posix()
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cpp", prefix="corp_header_tu_",
            delete=False) as handle:
        handle.write(f'#include "{rel}"\n')
        tu_path = Path(handle.name)
    try:
        command = [compiler, "-std=c++20", "-fsyntax-only", f"-I{src_root}"]
        if scan_root != src_root:
            command.append(f"-I{scan_root}")
        command += [*extra_flags, str(tu_path)]
        return subprocess.run(
            command, capture_output=True, text=True, check=False)
    finally:
        tu_path.unlink(missing_ok=True)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--compiler", default="c++",
        help="C++ compiler to invoke (default: c++)")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repo root containing src/ (default: this script's "
             "grandparent directory)")
    parser.add_argument(
        "--flag", action="append", default=[], dest="flags",
        help="extra compiler flag (repeatable)")
    args = parser.parse_args(argv)

    root = args.root if args.root is not None else \
        Path(__file__).resolve().parent.parent
    src_root = root / "src"
    if not src_root.is_dir():
        print(f"check_headers: no src/ under {root}", file=sys.stderr)
        return 2

    scan_roots = [src_root]
    for extra in ("bench", "tools"):
        extra_root = root / extra
        if extra_root.is_dir():
            scan_roots.append(extra_root)

    headers = [(scan_root, header)
               for scan_root in scan_roots
               for header in find_headers(scan_root)]
    if not headers:
        print(f"check_headers: no headers found under {src_root}",
              file=sys.stderr)
        return 2

    failures = 0
    for scan_root, header in headers:
        result = check_header(
            args.compiler, src_root, scan_root, header, args.flags)
        rel = header.relative_to(root).as_posix()
        if result.returncode == 0:
            print(f"ok: {rel}")
        else:
            failures += 1
            print(f"FAIL: {rel} is not self-contained:", file=sys.stderr)
            sys.stderr.write(result.stderr)

    if failures:
        print(f"check_headers: {failures}/{len(headers)} header(s) not "
              f"self-contained", file=sys.stderr)
        return 1
    print(f"check_headers: all {len(headers)} header(s) self-contained")
    return 0


if __name__ == "__main__":
    sys.exit(main())
