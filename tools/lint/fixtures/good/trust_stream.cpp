// Clean corpus: the blessed spelling of the trust-adaptation stream —
// the registry-named kTrustAdaptation tag, never its literal value
// (fixtures/bad/corp_seed_001_trust_literal.cpp is the mirror image).
#include <cstdint>

namespace corp::util {
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);
}  // namespace corp::util

namespace corp::fixture {

// Mirrors util::seed_stream::kTrustAdaptation ("TRST"): defining a named
// constant from a literal is fine — only a bare literal at the
// derive_seed call site can silently collide streams.
inline constexpr std::uint64_t kTrustAdaptation = 0x54525354ULL;

std::uint64_t trust_tie_break_seed(std::uint64_t base) {
  return util::derive_seed(base, kTrustAdaptation);
}

}  // namespace corp::fixture
