// Clean corpus: near-miss patterns that must NOT trip any corp_lint rule.
// The linter's CTest entry runs this directory and requires exit 0.
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace corp::util {
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);
}  // namespace corp::util

namespace corp::fixture {

inline constexpr std::uint64_t kCleanStream = 5;

// Named stream tags and derived expressions are the blessed pattern.
std::uint64_t seed_for_replica(std::uint64_t base, std::uint64_t replica) {
  return util::derive_seed(base, kCleanStream) + replica;
}

// Identifiers that merely *contain* banned substrings must not trip:
struct RandomizedBackoff {
  int srand_count = 0;  // field named like srand, never called
  std::uint64_t mt19937_lookalike = 0;  // not std::-qualified
};

// steady_clock is the sanctioned clock for phase timing.
double phase_ms(std::chrono::steady_clock::time_point begin,
                std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

// Strings and comments mentioning banned constructs are fine:
// std::random_device, rand(), time(nullptr)
inline const std::string kBannedList =
    "std::random_device rand() srand() time(nullptr) system_clock";

// Keyed access into an unordered container never leaks hash order.
double lookup_only(const std::string& key) {
  std::unordered_map<std::string, double> cache;
  cache["k"] = 2.0;
  return cache.count(key) != 0U ? cache.at(key) : 0.0;
}

// Ordered containers iterate deterministically — no justification needed.
double ordered_total(const std::map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& [name, w] : weights) {
    total += w + static_cast<double>(name.size());
  }
  return total;
}

// `float` is allowed outside dnn/hmm/predict paths (this file lives in
// fixtures/good/, none of those path components).
float display_ratio(float hits, float total) {
  return total > 0.0f ? hits / total : 0.0f;
}

// Naming a prediction-stack type is fine — CORP-API-001 only fires on
// construction. Scope access, references, and smart-pointer storage are
// all near-misses that must stay clean.
class CorpStack;
struct RccrStack {
  struct Options {
    int horizon = 6;
  };
};

int stack_scope_access_only(const CorpStack& stack,
                            std::vector<CorpStack*>& registry) {
  RccrStack::Options options;
  registry.push_back(nullptr);
  (void)stack;
  return options.horizon;
}

}  // namespace corp::fixture
