// Fixture: must trip exactly CORP-TIME-001.
// Wall-clock time in result-affecting code makes outputs depend on when
// the experiment ran, not only on the seed.
#include <chrono>
#include <ctime>

namespace corp::fixture {

long jitter_from_clock() {
  // violation: system_clock feeds a result
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long seed_from_time() {
  return static_cast<long>(std::time(nullptr));  // violation: time()
}

// steady_clock is fine (phase timing, monotonic durations):
double elapsed_ms(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// Display-only uses can be justified:
long banner_timestamp() {
  return static_cast<long>(std::time(nullptr));  // lint: wall-clock -- log banner only
}

struct Timeline {
  long time() const { return 7; }
};

long not_a_violation(const Timeline& timeline) {
  return timeline.time();  // member call: must NOT trip the rule
}

}  // namespace corp::fixture
