// Fixture: must trip exactly CORP-ORD-001.
// Hash-bucket order is implementation-defined; iterating an unordered
// container into a result makes the answer depend on libstdc++ internals.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace corp::fixture {

double total_load(const std::unordered_map<std::uint32_t, double>& ignored) {
  std::unordered_map<std::uint32_t, double> vm_load;
  vm_load[1] = 0.5;
  double total = 0.0;
  for (const auto& [vm, load] : vm_load) {  // violation: hash-order scan
    total += load * static_cast<double>(vm);
  }
  return total + (ignored.empty() ? 0.0 : 1.0);
}

std::vector<std::uint64_t> gather_ids(
    const std::unordered_set<std::uint64_t>& pending_ids) {
  std::vector<std::uint64_t> out;
  // lint: sorted-gather -- caller sorts before use; order-insensitive
  for (std::uint64_t id : pending_ids) {
    out.push_back(id);
  }
  return out;
}

int keyed_lookup_only() {
  std::unordered_map<int, int> cache;
  cache[3] = 9;
  // Keyed access must NOT trip the rule; only iteration leaks order.
  return cache[3];
}

}  // namespace corp::fixture
