// Fixture: must trip exactly CORP-FLT-001.
// Lives under a `predict/` path component so the double-only rule applies
// (the fixture directory name below stands in for src/predict).
#include <cstddef>
#include <vector>

namespace corp::predict_fixture {

double forecast_error(const std::vector<double>& errors) {
  float acc = 0.0f;  // violation x2: float accumulator + float literal
  for (double e : errors) {
    acc += static_cast<float>(e);  // violation: narrowing into the pipeline
  }
  return acc;
}

double justified_quantization(double value) {
  // lint: float-ok -- deliberate fp32 quantization experiment
  const float quantized = static_cast<float>(value);  // lint: float-ok
  return quantized;
}

}  // namespace corp::predict_fixture
