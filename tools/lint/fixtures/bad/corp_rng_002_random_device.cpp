// Fixture: must trip exactly CORP-RNG-002.
// std::random_device makes a run unreproducible: no seed can replay it.
#include <random>

namespace corp::fixture {

unsigned nondeterministic_seed() {
  std::random_device device;  // violation: nondeterministic entropy
  return device();
}

// Commented-out code must not trip:
// std::random_device old_device;

}  // namespace corp::fixture
