// Fixture: must trip exactly CORP-RNG-003.
// C rand()/srand() share one hidden global stream: any library call that
// also draws from it silently perturbs every downstream sample.
#include <cstdlib>

namespace corp::fixture {

void reseed_global(unsigned seed) {
  srand(seed);  // violation: global generator
}

int sample_percent() {
  return rand() % 100;  // violation: global generator
}

struct Sampler {
  int rand() const { return 4; }
};

int not_a_violation(const Sampler& sampler) {
  return sampler.rand();  // member call: must NOT trip the rule
}

}  // namespace corp::fixture
