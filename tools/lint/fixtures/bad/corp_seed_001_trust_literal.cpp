// Fixture: must trip exactly CORP-SEED-001.
// The trust-adaptation tie-break stream has a registered tag
// (util::seed_stream::kTrustAdaptation = 0x54525354, "TRST"). Spelling
// its value as a bare hex literal at the call site bypasses the
// registry's compile-time distinctness proof: a second subsystem could
// pick the same constant and silently share the stream.
#include <cstdint>

namespace corp::util {
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);
}  // namespace corp::util

namespace corp::fixture {

std::uint64_t bad_inline_trust_tag(std::uint64_t base) {
  // violation: the registry tag's *value*, not its name
  return util::derive_seed(base, 0x54525354);
}

}  // namespace corp::fixture
