// Fixture: must trip exactly CORP-SEED-001.
// Bare literal stream tags collide silently: two call sites both passing
// `1` share a stream without either knowing about the other.
#include <cstdint>

namespace corp::util {
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream,
                          std::uint64_t substream);
}  // namespace corp::util

namespace corp::fixture {

inline constexpr std::uint64_t kWorkloadStream = 12;

std::uint64_t bad_literal_stream(std::uint64_t base) {
  return util::derive_seed(base, 7);  // violation: bare literal stream
}

std::uint64_t bad_literal_substream(std::uint64_t base) {
  // Named stream but literal substream: still a violation.
  return util::derive_seed(base, kWorkloadStream, 3);
}

std::uint64_t good_named_stream(std::uint64_t base, std::uint64_t replica) {
  // Named tag + derived expression: must NOT trip the rule.
  return util::derive_seed(base, kWorkloadStream, replica + 1);
}

std::uint64_t justified_literal(std::uint64_t base) {
  return util::derive_seed(base, 99);  // lint: literal-stream -- fixture probe
}

}  // namespace corp::fixture
