// Fixture: must trip exactly CORP-RNG-001.
// A raw std:: engine constructed outside util/rng bypasses the seeded
// derivation chain; two call sites seeding "independently" can collide.
#include <random>

namespace corp::fixture {

double sample_demand(unsigned seed) {
  std::mt19937_64 engine(seed);  // violation: raw engine outside util/rng
  return static_cast<double>(engine()) / 2.0;
}

// The string below must NOT trip the rule: the tokenizer sees a string
// literal, not an identifier.
inline const char* kDoc = "std::mt19937 is banned outside util/rng";

// A justified use is allowed through:
inline unsigned legacy_bridge(unsigned seed) {
  std::mt19937 engine(seed);  // lint: raw-engine -- interop shim for tests
  return engine();
}

}  // namespace corp::fixture
