// Fixture: must trip exactly CORP-API-001.
// Hand-rolled stack construction bypasses StackBuilder's option
// validation and the Table II defaults baked into build().
#include <memory>

namespace corp::predict {

class CorpStack;
class DraStack;

std::unique_ptr<CorpStack> assemble_by_hand() {
  return std::make_unique<CorpStack>();  // violation: direct construction
}

int temporary_stack() {
  DraStack local{};  // violation: local stack built outside the builder
  (void)local;
  return 0;
}

// Commented-out code must not trip:
// auto old = std::make_unique<RccrStack>(options);

}  // namespace corp::predict
