// Fixture: must trip exactly CORP-IO-001.
// A getline loop that push_backs every row materializes O(file) state —
// an unbounded whole-file read. Production traces are multi-GB, so
// trace-ingest code must stream (trace::StreamReader) instead.
#include <istream>
#include <string>
#include <vector>

namespace corp::fixture {

std::vector<std::string> read_whole_trace(std::istream& in) {
  std::vector<std::string> rows;
  std::string line;
  while (std::getline(in, line)) {  // violation: unbounded accumulation
    rows.push_back(line);
  }
  return rows;
}

std::size_t count_rows(std::istream& in) {
  std::string line;
  std::size_t rows = 0;
  // O(1) state: counting lines must NOT trip the rule.
  while (std::getline(in, line)) {
    ++rows;
  }
  return rows;
}

std::vector<std::string> read_bounded_header(std::istream& in) {
  std::vector<std::string> header;
  std::string line;
  // lint: streaming-io -- bounded: stops after the fixed-size preamble
  while (std::getline(in, line) && header.size() < 4) {
    header.push_back(line);
  }
  return header;
}

}  // namespace corp::fixture
