#!/usr/bin/env python3
"""corp_lint: determinism lint for the CORP C++ tree.

The repo's core contract — parallel replication is bit-identical to
serial, and all-zero fault configs are inert — is enforced at runtime by
tests, but a single stray ``std::random_device``, unordered-container
iteration, or silent float/double mixing in the prediction pipeline can
break Fig.-level reproduction without any test noticing until a replica
diverges.  This linter catches those project invariants statically, at
the token level (it is not fooled by string literals or comments).

Rules (see docs/static_analysis.md for the full contract):

  CORP-RNG-001  raw std:: random engine construction outside util/rng
  CORP-RNG-002  std::random_device (nondeterministic entropy source)
  CORP-RNG-003  C rand()/srand() (hidden global generator)
  CORP-TIME-001 wall-clock time in result-affecting code
  CORP-ORD-001  iteration over an unordered container (hash order leaks
                into results) without a sorted-gather justification
  CORP-FLT-001  `float` in the dnn/hmm/predict numeric pipeline, which
                is double-only by design (silent precision loss)
  CORP-SEED-001 util::derive_seed called with a bare integer literal as
                the stream tag instead of a named stream constant
  CORP-API-001  direct construction of a prediction stack outside
                predict/stacks + StackBuilder (bypasses option
                validation and the Table II defaults)
  CORP-IO-001   getline loop accumulating rows into a container in
                trace-ingest code (unbounded whole-file read; production
                traces are multi-GB and must stream)

Suppressions are per-rule comments on the offending line or the line
directly above it, e.g. ``// lint: sorted-gather``.  Each rule names its
own justification tag so a suppression documents *why* the pattern is
safe, not just that the linter should be quiet.

Exit status: 0 when clean, 1 on violations, 2 on usage errors.

Usage:
    python3 tools/lint/corp_lint.py                 # scan src/ bench/ tools/
    python3 tools/lint/corp_lint.py path1 path2 ...  # scan specific paths
    python3 tools/lint/corp_lint.py --expect CORP-RNG-002 fixture.cpp
    python3 tools/lint/corp_lint.py --list-rules

Only the Python standard library is used.
"""

from __future__ import annotations

import argparse
import re
import sys
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

#: Token kinds: identifiers, numbers, punctuation, string/char literals.
#: Comments are not emitted as tokens; their text is collected per line so
#: rules can look up justification tags.
_TOKEN_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<string>L?R?"(?:\\.|[^"\\\n])*"|L?'(?:\\.|[^'\\\n])*')
    | (?P<number>(?:0[xX][0-9a-fA-F']+|\d[\d']*(?:\.\d*)?(?:[eE][-+]?\d+)?)
                 [uUlLfF]*)
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<punct>::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|
                |[-+*/%&|^~!<>=?:;,.(){}\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)

# Raw strings with custom delimiters are rare in this tree; the plain
# string branch above covers every literal the code base uses.


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "punct" | "string"
    text: str
    line: int


@dataclass
class SourceFile:
    path: Path
    tokens: list[Token] = field(default_factory=list)
    #: line -> concatenated comment text ending on that line
    comments: dict[int, str] = field(default_factory=dict)

    def justified(self, line: int, tag: str) -> bool:
        """True if `// lint: <tag>` appears on `line` or the line above."""
        for probe in (line, line - 1):
            text = self.comments.get(probe, "")
            if f"lint: {tag}" in text or f"lint:{tag}" in text:
                return True
        return False


def tokenize(path: Path, text: str) -> SourceFile:
    src = SourceFile(path)
    line = 1
    pos = 0
    for match in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, match.start())
        pos = match.start()
        kind = match.lastgroup
        value = match.group()
        if kind == "comment":
            end_line = line + value.count("\n")
            src.comments[end_line] = src.comments.get(end_line, "") + value
        elif kind is not None:
            src.tokens.append(Token(kind, value, line))
    return src


# --------------------------------------------------------------------------
# Rule infrastructure
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    path: Path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


RuleFn = Callable[[SourceFile], Iterator[Violation]]


@dataclass(frozen=True)
class Rule:
    rule_id: str
    summary: str
    tag: str  # justification tag accepted by this rule
    check: RuleFn


def _seq(tokens: Sequence[Token], i: int, *texts: str) -> bool:
    """True if tokens[i:] begin with the given texts."""
    if i + len(texts) > len(tokens):
        return False
    return all(tokens[i + k].text == t for k, t in enumerate(texts))


#: Keywords after which `name(` is an expression, not a declarator.
_EXPR_KEYWORDS = frozenset(
    {"return", "throw", "co_return", "co_yield", "case", "else", "do"})


def _is_call(tokens: Sequence[Token], i: int) -> bool:
    """True if the identifier at `i` looks like a free-function call.

    Filters two non-call shapes that share the `name(` spelling: member
    access (`obj.time()`) and declarations (`long time() const`), where
    the preceding token is a type name rather than an operator/keyword.
    """
    if not _seq(tokens, i + 1, "("):
        return False
    if i == 0:
        return True
    prev = tokens[i - 1]
    if prev.text in (".", "->"):
        return False
    if prev.kind == "ident" and prev.text not in _EXPR_KEYWORDS:
        return False  # `long time()` — a declarator, not a call
    return True


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

_RAW_ENGINES = (
    "mt19937",
    "mt19937_64",
    "minstd_rand",
    "minstd_rand0",
    "default_random_engine",
    "ranlux24",
    "ranlux48",
    "knuth_b",
)

#: The one module allowed to own raw engines.
_RNG_HOME = ("util/rng.hpp", "util/rng.cpp")


def _in_rng_home(path: Path) -> bool:
    text = str(path)
    return any(text.endswith(suffix) for suffix in _RNG_HOME)


def check_raw_engine(src: SourceFile) -> Iterator[Violation]:
    if _in_rng_home(src.path):
        return
    for i, tok in enumerate(src.tokens):
        if tok.kind != "ident" or tok.text not in _RAW_ENGINES:
            continue
        # Only std:: engines count; a project type named e.g. mt19937
        # elsewhere would be its own design problem but not this rule.
        if i >= 2 and _seq(src.tokens, i - 2, "std", "::"):
            if src.justified(tok.line, "raw-engine"):
                continue
            yield Violation(
                src.path, tok.line, "CORP-RNG-001",
                f"raw std::{tok.text} outside util/rng — all stochastic "
                "code must draw from util::Rng / util::derive_seed "
                "(justify with `// lint: raw-engine`)")


def check_random_device(src: SourceFile) -> Iterator[Violation]:
    for i, tok in enumerate(src.tokens):
        if tok.kind == "ident" and tok.text == "random_device":
            if i >= 2 and not _seq(src.tokens, i - 2, "std", "::"):
                continue
            if src.justified(tok.line, "entropy-source"):
                continue
            yield Violation(
                src.path, tok.line, "CORP-RNG-002",
                "std::random_device is nondeterministic — experiments "
                "must be replayable from an explicit seed (justify with "
                "`// lint: entropy-source`)")


def check_c_rand(src: SourceFile) -> Iterator[Violation]:
    for i, tok in enumerate(src.tokens):
        if tok.kind != "ident" or tok.text not in ("rand", "srand"):
            continue
        if not _is_call(src.tokens, i):
            continue
        if src.justified(tok.line, "c-rand"):
            continue
        yield Violation(
            src.path, tok.line, "CORP-RNG-003",
            f"C {tok.text}() uses a hidden global generator — draw from "
            "util::Rng instead (justify with `// lint: c-rand`)")


_WALL_CLOCK_IDENTS = ("system_clock", "gettimeofday", "localtime", "gmtime",
                      "localtime_r", "gmtime_r", "strftime")


def check_wall_clock(src: SourceFile) -> Iterator[Violation]:
    for i, tok in enumerate(src.tokens):
        if tok.kind != "ident":
            continue
        hit = None
        if tok.text in _WALL_CLOCK_IDENTS:
            hit = tok.text
        elif tok.text in ("time", "clock") and _is_call(src.tokens, i):
            # std::time(...) / time(nullptr) / clock() — but not member
            # calls like timeline.time(), declarations like
            # `long time() const`, or chrono's .time_since_epoch().
            hit = f"{tok.text}()"
        if hit is None:
            continue
        if src.justified(tok.line, "wall-clock"):
            continue
        yield Violation(
            src.path, tok.line, "CORP-TIME-001",
            f"wall-clock source `{hit}` in result-affecting code — results "
            "must be a function of the seed only; steady_clock is fine for "
            "phase timing (justify display-only uses with "
            "`// lint: wall-clock`)")


_UNORDERED = ("unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset")


def _unordered_names(src: SourceFile) -> set[str]:
    """Names of variables/members declared with an unordered container type.

    Recognizes `std::unordered_map<...> name` declarations by skipping the
    balanced template argument list after the container keyword.
    """
    names: set[str] = set()
    toks = src.tokens
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text not in _UNORDERED:
            continue
        j = i + 1
        if not _seq(toks, j, "<"):
            continue
        depth = 0
        while j < len(toks):
            if toks[j].text == "<":
                depth += 1
            elif toks[j].text == ">":
                depth -= 1
                if depth == 0:
                    break
            elif toks[j].text == ">>":
                depth -= 2
                if depth <= 0:
                    break
            j += 1
        j += 1
        # Skip refs/pointers/cv.
        while j < len(toks) and toks[j].text in ("&", "*", "const"):
            j += 1
        if j < len(toks) and toks[j].kind == "ident":
            names.add(toks[j].text)
    return names


def check_unordered_iteration(src: SourceFile) -> Iterator[Violation]:
    names = _unordered_names(src)
    if not names:
        return
    toks = src.tokens
    for i, tok in enumerate(toks):
        if tok.text != "for" or not _seq(toks, i + 1, "("):
            continue
        # Find the `:` of a range-for at paren depth 1, then the iterated
        # expression up to the closing paren.
        depth = 0
        colon = None
        j = i + 1
        while j < len(toks):
            if toks[j].text == "(":
                depth += 1
            elif toks[j].text == ")":
                depth -= 1
                if depth == 0:
                    break
            elif toks[j].text == ":" and depth == 1 and colon is None:
                colon = j
            elif toks[j].text == ";" and depth == 1:
                colon = None  # classic for loop
                break
            j += 1
        if colon is None:
            continue
        range_names = {t.text for t in toks[colon + 1:j] if t.kind == "ident"}
        iterated = sorted(range_names & names)
        if not iterated:
            continue
        if src.justified(tok.line, "sorted-gather"):
            continue
        yield Violation(
            src.path, tok.line, "CORP-ORD-001",
            f"iteration over unordered container `{iterated[0]}` — hash "
            "order is implementation-defined and leaks into results; sort "
            "keys first or switch to std::map (justify display-only / "
            "order-insensitive gathers with `// lint: sorted-gather`)")


#: Directories whose numeric pipeline is double-only by design.
_DOUBLE_ONLY_DIRS = ("dnn", "hmm", "predict")


def _in_double_only_dir(path: Path) -> bool:
    parts = path.parts
    return any(d in parts for d in _DOUBLE_ONLY_DIRS)


def check_float_in_pipeline(src: SourceFile) -> Iterator[Violation]:
    if not _in_double_only_dir(src.path):
        return
    for i, tok in enumerate(src.tokens):
        is_float_kw = tok.kind == "ident" and tok.text == "float"
        is_float_lit = tok.kind == "number" and tok.text[-1] in "fF" and \
            not tok.text.lower().startswith("0x")
        if not (is_float_kw or is_float_lit):
            continue
        if src.justified(tok.line, "float-ok"):
            continue
        what = "`float`" if is_float_kw else f"float literal {tok.text}"
        yield Violation(
            src.path, tok.line, "CORP-FLT-001",
            f"{what} in the double-only prediction pipeline — mixed "
            "float/double accumulators silently lose precision and break "
            "bit-identical replication (justify with `// lint: float-ok`)")


def check_seed_stream_tag(src: SourceFile) -> Iterator[Violation]:
    if _in_rng_home(src.path):
        return  # the implementation composes itself with raw integers
    toks = src.tokens
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text != "derive_seed":
            continue
        if not _seq(toks, i + 1, "("):
            continue
        # Split the argument list at top-level commas.
        depth = 0
        args: list[list[Token]] = [[]]
        j = i + 1
        while j < len(toks):
            t = toks[j]
            if t.text in ("(", "[", "{"):
                depth += 1
                if depth > 1:
                    args[-1].append(t)
            elif t.text in (")", "]", "}"):
                depth -= 1
                if depth == 0:
                    break
                args[-1].append(t)
            elif t.text == "," and depth == 1:
                args.append([])
            elif depth >= 1:
                args[-1].append(t)
            j += 1
        # Stream tags are argument 2 (and 3 when present).
        for arg in args[1:]:
            if len(arg) == 1 and arg[0].kind == "number":
                if src.justified(arg[0].line, "literal-stream"):
                    continue
                yield Violation(
                    src.path, arg[0].line, "CORP-SEED-001",
                    f"derive_seed stream tag is a bare literal "
                    f"`{arg[0].text}` — use a named stream constant "
                    "(e.g. seed_stream::kTraining) so streams cannot "
                    "silently collide across call sites (justify with "
                    "`// lint: literal-stream`)")


_STACK_TYPES = ("CorpStack", "RccrStack", "CloudScaleStack", "DraStack")

#: The construction home: the stacks module itself plus the one factory
#: allowed to assemble options (StackBuilder).
_STACK_HOME = ("predict/stacks.hpp", "predict/stacks.cpp",
               "predict/stack_builder.hpp", "predict/stack_builder.cpp")


def _in_stack_home(path: Path) -> bool:
    text = str(path)
    return any(text.endswith(suffix) for suffix in _STACK_HOME)


def check_direct_stack_construction(src: SourceFile) -> Iterator[Violation]:
    if _in_stack_home(src.path):
        return
    toks = src.tokens
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text not in _STACK_TYPES:
            continue
        if _seq(toks, i + 1, "::"):
            continue  # scope access (CorpStack::Options) — not a build
        if i >= 1 and toks[i - 1].text in ("struct", "class"):
            continue  # a declaration, not a construction
        constructed = False
        if i >= 1 and toks[i - 1].text == "new":
            constructed = True
        elif i >= 2 and toks[i - 1].text == "<" and \
                toks[i - 2].text in ("make_unique", "make_shared"):
            constructed = True
        elif _seq(toks, i + 1, "(") or _seq(toks, i + 1, "{"):
            constructed = True  # temporary: CorpStack(...) / CorpStack{...}
        elif i + 2 < len(toks) and toks[i + 1].kind == "ident" and \
                toks[i + 2].text in ("(", "{", ";", "="):
            constructed = True  # local/member: CorpStack stack(...)
        if not constructed:
            continue
        if src.justified(tok.line, "stack-direct"):
            continue
        yield Violation(
            src.path, tok.line, "CORP-API-001",
            f"direct {tok.text} construction — build stacks through "
            "predict::StackBuilder (or make_stack) so options are "
            "validated and Table II defaults apply (justify with "
            "`// lint: stack-direct`)")


#: Directories whose readers face production-size (multi-GB) inputs.
_STREAMING_IO_DIRS = ("trace",)


def _in_streaming_io_dir(path: Path) -> bool:
    return any(d in path.parts for d in _STREAMING_IO_DIRS)


def check_whole_file_read(src: SourceFile) -> Iterator[Violation]:
    """CORP-IO-001: `while (getline(...))` growing a container.

    The classic whole-file reader — read every line, push_back every
    row — materializes O(file) state. Fine for configs; fatal for the
    multi-GB Google/Azure traces, whose bounded-memory path is
    trace::StreamReader. The rule only watches trace-ingest directories
    and only fires when the loop body actually accumulates
    (push_back/emplace_back), so keyed lookups and line counting stay
    legal.
    """
    if not _in_streaming_io_dir(src.path):
        return
    toks = src.tokens
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text != "while":
            continue
        if not _seq(toks, i + 1, "("):
            continue
        # Scan the loop condition for a getline call.
        depth = 0
        j = i + 1
        saw_getline = False
        while j < len(toks):
            t = toks[j]
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    break
            elif t.kind == "ident" and t.text == "getline":
                saw_getline = True
            j += 1
        if not saw_getline or j >= len(toks):
            continue
        # Walk the loop body — a brace block or a single statement.
        k = j + 1
        if k < len(toks) and toks[k].text == "{":
            depth = 0
            body_end = k
            while body_end < len(toks):
                t = toks[body_end]
                if t.text == "{":
                    depth += 1
                elif t.text == "}":
                    depth -= 1
                    if depth == 0:
                        break
                body_end += 1
        else:
            body_end = k
            while body_end < len(toks) and toks[body_end].text != ";":
                body_end += 1
        grows = any(
            t.kind == "ident" and t.text in ("push_back", "emplace_back")
            for t in toks[k:body_end + 1])
        if not grows:
            continue
        if src.justified(tok.line, "streaming-io"):
            continue
        yield Violation(
            src.path, tok.line, "CORP-IO-001",
            "getline loop accumulating rows into a container — an "
            "unbounded whole-file read; production traces are multi-GB, "
            "so stream them through trace::StreamReader (justify "
            "bounded-input readers with `// lint: streaming-io`)")


RULES: tuple[Rule, ...] = (
    Rule("CORP-RNG-001", "raw std:: random engine outside util/rng",
         "raw-engine", check_raw_engine),
    Rule("CORP-RNG-002", "std::random_device nondeterministic entropy",
         "entropy-source", check_random_device),
    Rule("CORP-RNG-003", "C rand()/srand() hidden global generator",
         "c-rand", check_c_rand),
    Rule("CORP-TIME-001", "wall-clock time in result-affecting code",
         "wall-clock", check_wall_clock),
    Rule("CORP-ORD-001", "iteration over unordered container",
         "sorted-gather", check_unordered_iteration),
    Rule("CORP-FLT-001", "float in the double-only prediction pipeline",
         "float-ok", check_float_in_pipeline),
    Rule("CORP-SEED-001", "derive_seed stream tag is a bare literal",
         "literal-stream", check_seed_stream_tag),
    Rule("CORP-API-001", "direct prediction-stack construction",
         "stack-direct", check_direct_stack_construction),
    Rule("CORP-IO-001", "whole-file getline read in trace-ingest code",
         "streaming-io", check_whole_file_read),
)

#: Default scan roots, relative to the repo root (tests/ is exempt: test
#: code legitimately pokes raw engines and literal streams at the API).
DEFAULT_ROOTS = ("src", "bench", "tools")

_CPP_SUFFIXES = (".cpp", ".hpp", ".h", ".cc", ".cxx")


def iter_cpp_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix in _CPP_SUFFIXES:
                yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*")):
                if sub.is_file() and sub.suffix in _CPP_SUFFIXES:
                    yield sub


def lint_file(path: Path) -> list[Violation]:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [Violation(path, 0, "CORP-IO-000", f"unreadable: {err}")]
    src = tokenize(path, text)
    found: list[Violation] = []
    for rule in RULES:
        found.extend(rule.check(src))
    found.sort(key=lambda v: (str(v.path), v.line, v.rule))
    return found


def find_repo_root(start: Path) -> Path:
    for candidate in (start, *start.parents):
        if (candidate / "CMakeLists.txt").is_file() and \
                (candidate / "src").is_dir():
            return candidate
    return start


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to scan (default: src/ bench/ tools/ "
             "under the repo root)")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repo root for the default scan set (default: autodetected "
             "from this script's location)")
    parser.add_argument(
        "--expect", metavar="RULE_ID", default=None,
        help="fixture mode: exit 0 iff at least one violation of exactly "
             "this rule fires and no other rule does")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}  {rule.summary}  "
                  f"(suppress: // lint: {rule.tag})")
        return 0

    if args.expect is not None and args.expect not in \
            {rule.rule_id for rule in RULES}:
        print(f"corp_lint: unknown rule id {args.expect!r}",
              file=sys.stderr)
        return 2

    if args.paths:
        roots = list(args.paths)
    else:
        base = args.root if args.root is not None else \
            find_repo_root(Path(__file__).resolve().parent)
        roots = [base / name for name in DEFAULT_ROOTS]
        missing = [r for r in roots if not r.is_dir()]
        if missing:
            print(f"corp_lint: scan roots not found: "
                  f"{', '.join(map(str, missing))}", file=sys.stderr)
            return 2

    violations: list[Violation] = []
    files = 0
    for path in iter_cpp_files(roots):
        # Never lint the fixture corpus during a default tree scan.
        if not args.paths and "fixtures" in path.parts:
            continue
        files += 1
        violations.extend(lint_file(path))

    for violation in violations:
        print(violation.render())

    if args.expect is not None:
        fired = {v.rule for v in violations}
        if fired == {args.expect}:
            print(f"ok: fixture trips exactly {args.expect} "
                  f"({len(violations)} violation(s))")
            return 0
        print(f"FAIL: expected exactly {{{args.expect}}}, got "
              f"{sorted(fired) or '{}'}", file=sys.stderr)
        return 1

    if violations:
        print(f"corp_lint: {len(violations)} violation(s) in {files} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"corp_lint: clean ({files} file(s) scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
