// corpsim — the command-line driver for the CORP reproduction.
//
//   corpsim run        run one method on one workload, print metrics
//   corpsim compare    run all four methods on the same workload
//   corpsim replicate  multi-seed replication with confidence intervals
//   corpsim trace-gen  synthesize a workload trace to CSV
//   corpsim convert    convert Google clusterdata-2011 extracts to CSV
//   corpsim help       this text
//
// Common flags: --env cluster|ec2, --jobs N, --seed S, --threads T,
//               --shards K (slot-engine shards; 0 = one per thread,
//               bit-identical for every value),
//               --workload paper-sweep|burst|trickle|heavy-tail|mixed-services,
//               --aggressiveness A (0..1), --method corp|rccr|cloudscale|dra,
//               --metrics-out PATH (append obs snapshot as JSON lines),
//               --metrics-csv PATH (write obs snapshot as flat CSV),
//               --no-metrics 1 (disable collection)
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "fault/fault.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "predict/backtest.hpp"
#include "predict/stack_builder.hpp"
#include "sim/job_source.hpp"
#include "sim/replication.hpp"
#include "sim/slot_clock.hpp"
#include "sim/workloads.hpp"
#include "trace/google_format.hpp"
#include "trace/stats.hpp"
#include "trace/stream_reader.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace corp;

int usage() {
  std::cout <<
      R"(corpsim — CORP (CLUSTER 2016) reproduction driver

subcommands:
  run        --method corp|rccr|cloudscale|dra|pred-aware [--jobs N]
             [--env cluster|ec2|slurm-het] [--workload KIND]
             [--aggressiveness A] [--seed S] [--timeline out.csv]
             [--trace-file trace.csv --trace-schema google-v2|azure-vm]
             [--long-tasks drop|segment] [--chunk-kb K]
  compare    like run, but all four methods side by side
  replicate  --method M [--reps R] [--threads T] [--jobs N] ... adds
             confidence intervals; replicas run in parallel on T threads
             (0 = all cores) with bit-identical results to serial
  trace-gen  --out trace.csv [--jobs N] [--workload KIND] [--seed S]
  stats      --trace trace.csv | [--jobs N --workload KIND --seed S]
  backtest   --method M [--jobs N] ... walk-forward forecast scoring
  convert    --events task_events.csv --usage task_usage.csv --out trace.csv
  help

workload kinds: paper-sweep (default), burst, trickle, heavy-tail,
                mixed-services

real traces (docs/traces.md): run accepts
  --trace-file PATH    stream a real trace (Google cluster-usage v2 task_usage
                       or Azure VM 5-minute CPU readings) through the
                       bounded-memory ingester instead of a synthetic workload
  --trace-schema S     google-v2 (default) | azure-vm
  --long-tasks P       drop (default: paper's short-job filter) | segment
  --chunk-kb K         ingest chunk size in KiB (throughput knob; results
                       are bit-identical for every K)

environments: cluster (Palmetto, default), ec2 (Amazon EC2),
              slurm-het (mixed node classes with a capped burst partition)

scaling (docs/scaling.md): run/compare/replicate/backtest accept
  --shards K           slot-engine shards (default 1; 0 = one shard per
                       worker thread); results are bit-identical for
                       every K, so this is purely a throughput knob
  --slot-clock C       dense | event (default): 'event' jumps over slots
                       where nothing can change (no queued or running
                       work) instead of ticking them; results are
                       bit-identical for both, so this too is purely a
                       throughput knob
  --predict-cadence C  slot (default) | window: 'window' re-runs the
                       batched prediction stack only when a job's
                       telemetry window watermark moves or the health
                       monitor changes tier — a documented semantic
                       change (a coarser forecast-refresh schedule),
                       itself bit-identical across shards/threads/clock

prediction-aware allocation (docs/resilience.md): run/replicate/backtest
  --sched NAME         alias of --method (pred-aware is a scheduler
                       policy over CORP's forecasts, not a new forecaster)
  --trust L|auto       trust λ of the pred-aware scheduler, in [0, 1]:
                       1 follows the forecast like CORP, 0 is demand-based
                       worst-case admission, intermediate values blend the
                       admission thresholds; 'auto' drives λ online from
                       predictor health (degradation tier, window fault
                       fraction, Eq. 21 gate margin)

fault injection (docs/resilience.md): run/compare/replicate accept
  --fault-intensity A  canonical fault mix at intensity A in [0, 1]
                       (VM crashes, telemetry gaps, stragglers, poisoned
                       forecasts; 0 = fault-free, bit-identical to omitting
                       every fault flag)
  --vm-mttf S / --vm-mttr S            mean slots to VM failure / repair
  --gap-rate P / --gap-mean S          telemetry-gap open rate and length
  --straggler-rate P / --straggler-factor F   demand-spike stragglers
  --predictor-fault-rate P             poisoned raw forecasts
  --retry-budget N                     crash retries before a job is dropped
  individual knobs override the --fault-intensity mix; probabilities must
  lie in [0, 1]

observability (docs/observability.md): any subcommand accepts
  --metrics-out PATH   append the run's metrics snapshot to PATH as one
                       JSON line (schema_version/run_id/phases/counters/
                       gauges/histograms)
  --metrics-csv PATH   write the snapshot as flat CSV
                       (run_id,kind,name,field,value)
  --no-metrics 1       disable metric collection entirely
)";
  return 0;
}

/// Flags every subcommand understands.
const std::vector<std::string> kCommonFlags{
    "env",          "jobs",        "seed",
    "threads",      "shards",      "workload",
    "aggressiveness", "trust",     "slot-clock",
    "predict-cadence",
    "metrics-out",  "metrics-csv", "no-metrics",
    "fault-intensity", "vm-mttf",  "vm-mttr",
    "gap-rate",     "gap-mean",    "straggler-rate",
    "straggler-factor", "predictor-fault-rate", "retry-budget"};

/// Known-flag list for one subcommand: the common set plus its extras.
/// Unknown subcommands get an empty optional (caller prints usage).
std::optional<std::vector<std::string>> known_flags(
    const std::string& command) {
  std::vector<std::string> flags = kCommonFlags;
  auto add = [&flags](std::initializer_list<const char*> extra) {
    flags.insert(flags.end(), extra.begin(), extra.end());
    return flags;
  };
  if (command == "run") {
    return add({"method", "sched", "timeline", "trace-file", "trace-schema",
                "long-tasks", "chunk-kb"});
  }
  if (command == "compare") return add({});
  if (command == "replicate") return add({"method", "sched", "reps"});
  if (command == "trace-gen") return add({"out"});
  if (command == "stats") return add({"trace"});
  if (command == "backtest") return add({"method", "sched"});
  if (command == "convert") return add({"events", "usage", "out"});
  return std::nullopt;
}

/// A probability flag; throws when outside [0, 1].
double get_probability(const util::ArgParser& args, const std::string& flag,
                       double fallback) {
  const double p = args.get_double(flag, fallback);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("--" + flag + " must be in [0, 1], got " +
                                std::to_string(p));
  }
  return p;
}

/// A non-negative magnitude flag; throws on negative values.
double get_non_negative(const util::ArgParser& args, const std::string& flag,
                        double fallback) {
  const double v = args.get_double(flag, fallback);
  if (v < 0.0) {
    throw std::invalid_argument("--" + flag + " must be >= 0, got " +
                                std::to_string(v));
  }
  return v;
}

/// Builds the fault model from the CLI: --fault-intensity selects the
/// canonical mix, individual knobs override on top.
fault::FaultConfig faults_from(const util::ArgParser& args) {
  fault::FaultConfig faults;
  if (args.has("fault-intensity")) {
    faults = fault::scaled_fault_config(
        get_probability(args, "fault-intensity", 0.0));
  }
  faults.vm_mttf_slots =
      get_non_negative(args, "vm-mttf", faults.vm_mttf_slots);
  faults.vm_mttr_slots =
      get_non_negative(args, "vm-mttr", faults.vm_mttr_slots);
  faults.telemetry_gap_rate =
      get_probability(args, "gap-rate", faults.telemetry_gap_rate);
  faults.telemetry_gap_mean_slots =
      get_non_negative(args, "gap-mean", faults.telemetry_gap_mean_slots);
  faults.straggler_rate =
      get_probability(args, "straggler-rate", faults.straggler_rate);
  faults.straggler_demand_factor = get_non_negative(
      args, "straggler-factor", faults.straggler_demand_factor);
  faults.predictor_fault_rate = get_probability(
      args, "predictor-fault-rate", faults.predictor_fault_rate);
  faults.retry_budget = args.get_size("retry-budget", faults.retry_budget);
  return faults;
}

cluster::EnvironmentConfig env_from(const util::ArgParser& args) {
  const std::string name = args.get("env", "cluster");
  if (name == "cluster") return cluster::EnvironmentConfig::PalmettoCluster();
  if (name == "ec2") return cluster::EnvironmentConfig::AmazonEc2();
  if (name == "slurm-het") {
    return cluster::EnvironmentConfig::SlurmHeterogeneous();
  }
  throw std::invalid_argument("unknown --env " + name +
                              " (cluster|ec2|slurm-het)");
}

predict::Method method_from(const std::string& name,
                            const std::string& flag = "--method") {
  if (name == "corp") return predict::Method::kCorp;
  if (name == "rccr") return predict::Method::kRccr;
  if (name == "cloudscale") return predict::Method::kCloudScale;
  if (name == "dra") return predict::Method::kDra;
  if (name == "pred-aware") return predict::Method::kPredAware;
  throw std::invalid_argument("unknown " + flag + " " + name);
}

/// Resolves --method with its scheduler-centric alias --sched (the
/// prediction-aware strategy is a scheduler policy, so `--sched
/// pred-aware` reads naturally); passing both is ambiguous.
predict::Method method_arg(const util::ArgParser& args) {
  if (args.has("sched") && args.has("method")) {
    throw std::invalid_argument(
        "--sched is an alias of --method; pass only one");
  }
  if (args.has("sched")) {
    return method_from(args.get("sched", "corp"), "--sched");
  }
  return method_from(args.get("method", "corp"));
}

/// Parses --trust into the params' (trust, trust_adaptive) pair. Rejects
/// anything that is not a full numeric literal in [0, 1] or the word
/// 'auto' — a silent clamp would turn a typo into a different experiment.
void apply_trust_flag(const util::ArgParser& args, sim::Params& params) {
  if (!args.has("trust")) return;
  const std::string text = args.get("trust", "1");
  if (text == "auto") {
    params.trust_adaptive = true;
    return;
  }
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != text.size() || !(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(
        "--trust must be a number in [0, 1] or 'auto', got " + text);
  }
  params.trust = value;
}

sim::WorkloadKind workload_from(const std::string& name) {
  for (sim::WorkloadKind kind : sim::kAllWorkloads) {
    if (sim::workload_name(kind) == name) return kind;
  }
  throw std::invalid_argument("unknown --workload " + name);
}

struct RunSetup {
  sim::ExperimentConfig experiment;
  sim::WorkloadKind workload = sim::WorkloadKind::kPaperSweep;
  std::size_t jobs = 150;
  double aggressiveness = 0.35;
};

RunSetup setup_from(const util::ArgParser& args) {
  RunSetup setup;
  setup.experiment.environment = env_from(args);
  setup.experiment.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7));
  setup.workload = workload_from(args.get("workload", "paper-sweep"));
  const std::int64_t jobs = args.get_int("jobs", 150);
  if (jobs < 1 || jobs > 1'000'000) {
    throw std::invalid_argument("--jobs must be in [1, 1000000], got " +
                                std::to_string(jobs));
  }
  setup.jobs = static_cast<std::size_t>(jobs);
  setup.aggressiveness = get_probability(args, "aggressiveness", 0.35);
  setup.experiment.params.threads = args.get_size("threads", 0);
  setup.experiment.params.shards = args.get_size("shards", 1);
  if (args.has("slot-clock")) {
    setup.experiment.params.slot_clock =
        sim::parse_slot_clock(args.get("slot-clock", "event"));
  }
  if (args.has("predict-cadence")) {
    setup.experiment.params.predict_cadence =
        sim::parse_predict_cadence(args.get("predict-cadence", "slot"));
  }
  apply_trust_flag(args, setup.experiment.params);
  setup.experiment.faults = faults_from(args);
  return setup;
}

/// Runs one method on the setup's workload (bypasses run_point so the
/// workload kind is honoured).
sim::PointResult run_method(const RunSetup& setup, predict::Method method,
                            const std::string& timeline_path) {
  const auto& experiment = setup.experiment;
  trace::GoogleTraceGenerator train_gen(sim::scaled_generator_config(
      experiment.environment, experiment.training_jobs,
      experiment.training_horizon_slots));
  util::Rng train_rng(sim::training_seed(experiment.seed));
  const trace::Trace training = train_gen.generate(train_rng);

  trace::GoogleTraceGenerator eval_gen(sim::workload_config(
      setup.workload, experiment.environment, setup.jobs));
  util::Rng eval_rng(sim::evaluation_seed(experiment.seed, setup.jobs));
  const trace::Trace evaluation = eval_gen.generate(eval_rng);

  sim::SimulationConfig config = sim::make_simulation_config(
      experiment, method, setup.aggressiveness);
  config.record_timeline = !timeline_path.empty();
  config.grace_slots = 1200;  // room for mixed-services workloads
  sim::Simulation simulation(std::move(config));
  simulation.train(training);
  sim::PointResult result;
  result.prediction =
      sim::evaluate_prediction_error(simulation.predictor(), evaluation);
  result.sim = simulation.run(evaluation);

  if (!timeline_path.empty()) {
    std::ofstream out(timeline_path);
    if (!out) throw std::runtime_error("cannot open " + timeline_path);
    result.sim.timeline.write_csv(out);
    std::cout << "timeline written to " << timeline_path << '\n';
  }
  return result;
}

void print_results(const std::vector<predict::Method>& methods,
                   const std::vector<sim::PointResult>& results,
                   bool faults_active) {
  util::TextTable table({"method", "overall util", "slo violation",
                         "pred error", "opportunistic", "latency ms"});
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const auto& r = results[i];
    table.add_row(std::string(predict::method_name(methods[i])),
                  {r.sim.overall_utilization, r.sim.slo_violation_rate,
                   r.prediction.error_rate,
                   static_cast<double>(r.sim.opportunistic_placements),
                   r.sim.total_latency_ms});
  }
  std::cout << table.to_string();
  if (!faults_active) return;
  // Fault accounting is printed only when injection is active, so
  // fault-free invocations stay byte-identical to earlier releases.
  util::TextTable faults({"method", "crashes", "killed", "retries",
                          "dropped", "gaps", "degrade tier"});
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const auto& r = results[i].sim;
    faults.add_row(std::string(predict::method_name(methods[i])),
                   {static_cast<double>(r.vm_crashes),
                    static_cast<double>(r.jobs_killed),
                    static_cast<double>(r.job_retries),
                    static_cast<double>(r.jobs_dropped),
                    static_cast<double>(r.telemetry_gaps),
                    static_cast<double>(r.degradation_tier)});
  }
  std::cout << "fault accounting:\n" << faults.to_string();
}

/// Streams a real trace file through the bounded-memory ingester into the
/// slot engine (no full-trace materialization). Training still uses the
/// synthetic corpus: real traces carry no ground-truth unused series for
/// the paper's training protocol.
int run_trace_stream(const util::ArgParser& args, const RunSetup& setup,
                     predict::Method method) {
  const std::string path = args.get("trace-file", "");
  trace::StreamReaderConfig stream;
  stream.schema =
      trace::parse_schema_name(args.get("trace-schema", "google-v2"));
  const std::string long_tasks = args.get("long-tasks", "drop");
  if (long_tasks == "drop") {
    stream.long_tasks = trace::LongTaskPolicy::kDrop;
  } else if (long_tasks == "segment") {
    stream.long_tasks = trace::LongTaskPolicy::kSegment;
  } else {
    throw std::invalid_argument("unknown --long-tasks " + long_tasks +
                                " (drop|segment)");
  }
  const std::size_t chunk_kb = args.get_size(
      "chunk-kb", setup.experiment.params.ingest_chunk_kb);
  if (chunk_kb == 0) {
    throw std::invalid_argument("--chunk-kb must be >= 1");
  }
  stream.chunk_bytes = chunk_kb * 1024;
  stream.seed = setup.experiment.seed;

  const auto& experiment = setup.experiment;
  trace::GoogleTraceGenerator train_gen(sim::scaled_generator_config(
      experiment.environment, experiment.training_jobs,
      experiment.training_horizon_slots));
  util::Rng train_rng(sim::training_seed(experiment.seed));
  const trace::Trace training = train_gen.generate(train_rng);

  sim::SimulationConfig config = sim::make_simulation_config(
      experiment, method, setup.aggressiveness);
  sim::Simulation simulation(std::move(config));
  simulation.train(training);

  std::cout << "streaming " << path << " ("
            << trace::schema_name(stream.schema) << ") into "
            << predict::method_name(method) << " on "
            << experiment.environment.name << "\n";
  trace::StreamReader reader(path, stream);
  sim::StreamingJobSource source(reader);
  const sim::SimulationResult result = simulation.run(source);

  const trace::StreamStats& stats = reader.stats();
  util::TextTable ingest({"phase", "rows", "jobs", "dropped long",
                          "segmented", "peak open", "peak live"});
  ingest.add_row("ingest",
                 {static_cast<double>(stats.rows_parsed),
                  static_cast<double>(stats.jobs_emitted),
                  static_cast<double>(stats.jobs_dropped_long),
                  static_cast<double>(stats.jobs_segmented),
                  static_cast<double>(stats.peak_open_tasks),
                  static_cast<double>(source.peak_live_jobs())});
  std::cout << ingest.to_string();
  util::TextTable table({"method", "overall util", "slo violation",
                         "completed", "opportunistic", "latency ms"});
  table.add_row(std::string(predict::method_name(method)),
                {result.overall_utilization, result.slo_violation_rate,
                 static_cast<double>(result.jobs_completed),
                 static_cast<double>(result.opportunistic_placements),
                 result.total_latency_ms});
  std::cout << table.to_string();
  return 0;
}

int cmd_run(const util::ArgParser& args) {
  const RunSetup setup = setup_from(args);
  const predict::Method method = method_arg(args);
  if (args.has("trace-file")) return run_trace_stream(args, setup, method);
  std::cout << "running " << predict::method_name(method) << " on "
            << sim::workload_name(setup.workload) << " (" << setup.jobs
            << " jobs, " << setup.experiment.environment.name << ")\n";
  const auto result = run_method(setup, method, args.get("timeline", ""));
  print_results({method}, {result}, setup.experiment.faults.any());
  return 0;
}

int cmd_compare(const util::ArgParser& args) {
  const RunSetup setup = setup_from(args);
  std::cout << "comparing all methods on "
            << sim::workload_name(setup.workload) << " (" << setup.jobs
            << " jobs, " << setup.experiment.environment.name << ")\n";
  std::vector<predict::Method> methods(std::begin(predict::kAllMethods),
                                       std::end(predict::kAllMethods));
  std::vector<sim::PointResult> results;
  for (predict::Method m : methods) {
    results.push_back(run_method(setup, m, ""));
  }
  print_results(methods, results, setup.experiment.faults.any());
  return 0;
}

int cmd_replicate(const util::ArgParser& args) {
  const RunSetup setup = setup_from(args);
  const predict::Method method = method_arg(args);
  sim::ReplicationConfig replication =
      setup.experiment.params.replication_config();
  replication.replications = args.get_size("reps", replication.replications);
  std::cout << "replicating " << predict::method_name(method) << " x"
            << replication.replications << " (" << setup.jobs
            << " jobs)\n";
  const sim::ReplicatedPoint point = sim::run_replicated_point(
      setup.experiment, method, setup.jobs, replication,
      setup.aggressiveness);
  util::TextTable table({"metric", "mean", "95% half-width", "min", "max"});
  auto row = [&](const char* name, const sim::MetricEstimate& m) {
    table.add_row(name, {m.mean, m.half_width, m.min, m.max});
  };
  row("overall utilization", point.overall_utilization);
  row("slo violation rate", point.slo_violation_rate);
  row("prediction error rate", point.prediction_error_rate);
  row("opportunistic placements", point.opportunistic_placements);
  std::cout << table.to_string();
  std::cout << "timing: " << point.timing.wall_ms << " ms wall, "
            << point.timing.replicas_per_sec << " replicas/sec on "
            << point.timing.threads << " thread(s)\n";
  return 0;
}

int cmd_trace_gen(const util::ArgParser& args) {
  const RunSetup setup = setup_from(args);
  const std::string out = args.get("out", "trace.csv");
  trace::GoogleTraceGenerator gen(sim::workload_config(
      setup.workload, setup.experiment.environment, setup.jobs));
  util::Rng rng(setup.experiment.seed);
  const trace::Trace trace = gen.generate(rng);
  trace::write_trace_csv_file(trace, out);
  std::cout << "wrote " << trace.size() << " tasks ("
            << sim::workload_name(setup.workload) << ") to " << out << '\n';
  return 0;
}

int cmd_stats(const util::ArgParser& args) {
  trace::Trace trace;
  if (args.has("trace")) {
    trace = trace::read_trace_csv_file(args.get("trace", ""));
    std::cout << "trace " << args.get("trace", "") << ":\n\n";
  } else {
    const RunSetup setup = setup_from(args);
    trace::GoogleTraceGenerator gen(sim::workload_config(
        setup.workload, setup.experiment.environment, setup.jobs));
    util::Rng rng(setup.experiment.seed);
    trace = gen.generate(rng);
    std::cout << "synthetic " << sim::workload_name(setup.workload)
              << " workload:\n\n";
  }
  trace::print_stats(trace::compute_stats(trace), std::cout);
  return 0;
}

int cmd_backtest(const util::ArgParser& args) {
  const RunSetup setup = setup_from(args);
  const predict::Method method = method_arg(args);
  const auto& experiment = setup.experiment;

  trace::GoogleTraceGenerator train_gen(sim::scaled_generator_config(
      experiment.environment, experiment.training_jobs,
      experiment.training_horizon_slots));
  util::Rng train_rng(sim::training_seed(experiment.seed));
  const trace::Trace training = train_gen.generate(train_rng);
  trace::GoogleTraceGenerator eval_gen(sim::workload_config(
      setup.workload, experiment.environment, setup.jobs));
  util::Rng eval_rng(sim::evaluation_seed(experiment.seed, setup.jobs));
  const trace::Trace evaluation = eval_gen.generate(eval_rng);

  const predict::VectorCorpus train_corpus =
      sim::build_unused_corpus(training);
  const predict::VectorCorpus eval_corpus =
      sim::build_unused_corpus(evaluation);

  const predict::StackConfig stack_config =
      *sim::make_simulation_config(experiment, method,
                                   setup.aggressiveness)
           .stack;
  util::Rng rng(sim::simulation_seed(experiment.seed, method));
  auto stack = predict::StackBuilder(method).config(stack_config).build(rng);
  std::cout << "backtesting " << predict::method_name(method)
            << " on unused-CPU (request-normalized)...\n";
  stack->train(train_corpus.per_type[0]);
  const predict::BacktestReport report =
      predict::backtest(*stack, eval_corpus.per_type[0]);

  util::TextTable table({"metric", "value"});
  table.add_row("forecasts", {static_cast<double>(report.forecasts)});
  table.add_row("rmse", {report.rmse});
  table.add_row("mae", {report.mae});
  table.add_row("bias (actual - predicted)", {report.bias});
  table.add_row("coverage P(delta >= 0)", {report.coverage});
  table.add_row("band rate P(0 <= delta < eps)", {report.band_rate});
  std::cout << table.to_string();
  return 0;
}

int cmd_convert(const util::ArgParser& args) {
  const std::string events = args.get("events", "");
  const std::string usage_path = args.get("usage", "");
  const std::string out = args.get("out", "trace.csv");
  if (events.empty() || usage_path.empty()) {
    std::cerr << "convert requires --events and --usage\n";
    return 2;
  }
  trace::GoogleFormatConfig config;
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
  const trace::Trace trace =
      trace::load_google_trace(events, usage_path, config, rng);
  trace::write_trace_csv_file(trace, out);
  std::cout << "converted " << trace.size() << " short-lived tasks to "
            << out << '\n';
  return 0;
}

int dispatch(const std::string& command, const util::ArgParser& args) {
  if (command == "run") return cmd_run(args);
  if (command == "compare") return cmd_compare(args);
  if (command == "replicate") return cmd_replicate(args);
  if (command == "trace-gen") return cmd_trace_gen(args);
  if (command == "stats") return cmd_stats(args);
  if (command == "backtest") return cmd_backtest(args);
  if (command == "convert") return cmd_convert(args);
  return 2;  // unreachable: main rejects unknown subcommands first
}

/// Exports the accumulated snapshot after a successful subcommand when
/// --metrics-out / --metrics-csv were given.
void export_metrics(const std::string& command,
                    const util::ArgParser& args) {
  const std::string jsonl_path = args.get("metrics-out", "");
  const std::string csv_path = args.get("metrics-csv", "");
  if (jsonl_path.empty() && csv_path.empty()) return;
  const std::string run_id =
      "corpsim-" + command + "-seed" +
      std::to_string(args.get_int("seed", 7));
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  if (!jsonl_path.empty()) {
    obs::append_jsonl(jsonl_path, snapshot, run_id);
    std::cout << "metrics appended to " << jsonl_path << '\n';
  }
  if (!csv_path.empty()) {
    obs::write_csv_file(csv_path, snapshot, run_id);
    std::cout << "metrics written to " << csv_path << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help") return usage();
  const std::optional<std::vector<std::string>> known = known_flags(command);
  if (!known.has_value()) {
    std::cerr << "error: unknown subcommand '" << command << "'\n\n";
    usage();
    return 2;
  }
  try {
    // ArgParser rejects flags outside the subcommand's known list, so a
    // typo'd or misplaced flag dies here with a diagnostic instead of
    // being silently ignored.
    const util::ArgParser args(argc, argv, 2, *known);
    obs::set_enabled(!args.has("no-metrics"));
    const int rc = dispatch(command, args);
    if (rc == 0) export_metrics(command, args);
    return rc;
  } catch (const std::invalid_argument& e) {
    // Bad invocation (unknown flag, out-of-range or malformed value):
    // diagnose, point at help, exit nonzero.
    std::cerr << "error: " << e.what() << '\n'
              << "run 'corpsim help' for usage\n";
    return 2;
  } catch (const std::exception& e) {
    // Runtime failure (unreadable trace, malformed input file, ...).
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
