// Differential pin of the sharded slot engine's determinism contract:
// sharded == unsharded, bit for bit. Params::shards = 1 is the serial
// reference layout (one block holding every VM); every other shard and
// thread count must reproduce its SimulationResult exactly — including
// under active fault injection (VM crashes scrambling rosters, telemetry
// gaps, stragglers) and for the methods that exercise the reprovision
// barrier. Mirrors tests/predict/batch_equivalence_test.cpp, one layer up.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace corp::sim {
namespace {

trace::Trace tiny_trace(const cluster::EnvironmentConfig& env,
                        std::size_t jobs, std::uint64_t seed) {
  trace::GoogleTraceGenerator gen(scaled_generator_config(env, jobs, 10));
  util::Rng rng(seed);
  return gen.generate(rng);
}

/// Heavy fault mix that is certain to fire on a short run.
fault::FaultConfig heavy_faults() {
  fault::FaultConfig faults;
  faults.vm_mttf_slots = 15.0;
  faults.vm_mttr_slots = 6.0;
  faults.telemetry_gap_rate = 0.10;
  faults.straggler_rate = 0.25;
  faults.predictor_fault_rate = 0.10;
  return faults;
}

/// Every result field except the wall-clock latencies, which legitimately
/// vary run to run. Doubles compare exactly: the contract is bit
/// identity, not tolerance.
void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  for (std::size_t r = 0; r < trace::kNumResources; ++r) {
    EXPECT_EQ(a.mean_utilization[r], b.mean_utilization[r]) << "resource " << r;
    EXPECT_EQ(a.mean_wastage[r], b.mean_wastage[r]) << "resource " << r;
  }
  EXPECT_EQ(a.overall_utilization, b.overall_utilization);
  EXPECT_EQ(a.overall_wastage, b.overall_wastage);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_violated, b.jobs_violated);
  EXPECT_EQ(a.jobs_forced, b.jobs_forced);
  EXPECT_EQ(a.opportunistic_placements, b.opportunistic_placements);
  EXPECT_EQ(a.reserved_placements, b.reserved_placements);
  EXPECT_EQ(a.lease_promotions, b.lease_promotions);
  EXPECT_EQ(a.lease_preemptions, b.lease_preemptions);
  EXPECT_EQ(a.vm_crashes, b.vm_crashes);
  EXPECT_EQ(a.vm_recoveries, b.vm_recoveries);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.job_retries, b.job_retries);
  EXPECT_EQ(a.jobs_dropped, b.jobs_dropped);
  EXPECT_EQ(a.telemetry_gaps, b.telemetry_gaps);
  EXPECT_EQ(a.degradation_tier, b.degradation_tier);
  EXPECT_EQ(a.slots_simulated, b.slots_simulated);
}

SimulationResult run_with(const cluster::EnvironmentConfig& env,
                          Method method, const fault::FaultConfig& faults,
                          std::size_t shards, std::size_t threads,
                          const trace::Trace& training,
                          const trace::Trace& eval) {
  SimulationConfig config;
  config.environment = env;
  config.method = method;
  config.seed = 5;
  config.faults = faults;
  config.params.shards = shards;
  config.params.threads = threads;
  Simulation sim(std::move(config));
  sim.train(training);
  return sim.run(eval);
}

TEST(ShardEquivalenceTest, ShardAndThreadCountsAreBitIdenticalUnderFaults) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 11);
  const trace::Trace eval = tiny_trace(env, 40, 12);
  const fault::FaultConfig faults = heavy_faults();

  const SimulationResult serial =
      run_with(env, Method::kCorp, faults, 1, 1, training, eval);
  EXPECT_GT(serial.vm_crashes, 0u);
  EXPECT_GT(serial.telemetry_gaps, 0u);
  for (const std::size_t shards : {4UL, 16UL}) {
    for (const std::size_t threads : {1UL, 4UL}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      const SimulationResult sharded =
          run_with(env, Method::kCorp, faults, shards, threads, training, eval);
      expect_identical(serial, sharded);
    }
  }
}

TEST(ShardEquivalenceTest, FaultFreeRunsMatchAcrossShardCounts) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 21);
  const trace::Trace eval = tiny_trace(env, 30, 22);

  const SimulationResult serial = run_with(env, Method::kCorp, {}, 1, 1,
                                           training, eval);
  const SimulationResult sharded = run_with(env, Method::kCorp, {}, 16, 4,
                                            training, eval);
  expect_identical(serial, sharded);
  EXPECT_EQ(serial.vm_crashes, 0u);
}

TEST(ShardEquivalenceTest, ReprovisioningMethodsMatchAcrossShardCounts) {
  // CloudScale/DRA run the serial seq-ordered reprovision barrier every
  // window; RCCR takes the opportunistic path with a different gate.
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 31);
  const trace::Trace eval = tiny_trace(env, 30, 32);
  const fault::FaultConfig faults = heavy_faults();

  for (const Method method :
       {Method::kRccr, Method::kCloudScale, Method::kDra}) {
    SCOPED_TRACE(static_cast<int>(method));
    const SimulationResult serial =
        run_with(env, method, faults, 1, 1, training, eval);
    const SimulationResult sharded =
        run_with(env, method, faults, 8, 4, training, eval);
    expect_identical(serial, sharded);
  }
}

TEST(ShardEquivalenceTest, ShardRequestsPastVmCountClampToVmCount) {
  const auto env = cluster::EnvironmentConfig::AmazonEc2();  // 30 VMs
  const trace::Trace training = tiny_trace(env, 50, 41);
  const trace::Trace eval = tiny_trace(env, 25, 42);

  const SimulationResult serial = run_with(env, Method::kCorp, heavy_faults(),
                                           1, 1, training, eval);
  const SimulationResult clamped = run_with(env, Method::kCorp, heavy_faults(),
                                            64, 4, training, eval);
  expect_identical(serial, clamped);
}

TEST(ShardEquivalenceTest, AutoShardCountMatchesSerial) {
  // shards = 0 resolves to one shard per worker thread.
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 50, 51);
  const trace::Trace eval = tiny_trace(env, 25, 52);

  const SimulationResult serial = run_with(env, Method::kCorp, {}, 1, 1,
                                           training, eval);
  const SimulationResult auto_sharded = run_with(env, Method::kCorp, {}, 0, 3,
                                                 training, eval);
  expect_identical(serial, auto_sharded);
}

}  // namespace
}  // namespace corp::sim
