#include "sim/params.hpp"

#include <gtest/gtest.h>

namespace corp::sim {
namespace {

// Table II of the paper, asserted literally so drift is caught.
TEST(ParamsTest, TableIIDefaults) {
  const Params p;
  EXPECT_EQ(p.num_servers_cluster, 50u);           // N_p (cluster)
  EXPECT_EQ(p.num_servers_ec2, 30u);               // N_p (EC2)
  EXPECT_EQ(p.jobs_min, 50u);                      // |J| from 50
  EXPECT_EQ(p.jobs_max, 300u);                     // ... to 300
  EXPECT_EQ(p.jobs_step, 50u);                     // step 50
  EXPECT_EQ(Params::kResourceTypes, 3u);           // l = 3
  EXPECT_DOUBLE_EQ(p.probability_threshold, 0.95); // P_th
  EXPECT_EQ(p.dnn_layers, 4u);                     // h = 4
  EXPECT_EQ(p.dnn_units, 50u);                     // N_n = 50
  EXPECT_EQ(p.hmm_states, 3u);                     // H = 3
  EXPECT_DOUBLE_EQ(p.significance_min, 0.05);      // theta 5%-30%
  EXPECT_DOUBLE_EQ(p.significance_max, 0.30);
  EXPECT_DOUBLE_EQ(p.confidence_min, 0.50);        // eta 50%-90%
  EXPECT_DOUBLE_EQ(p.confidence_max, 0.90);
}

TEST(ParamsTest, DerivedTimeBase) {
  const Params p;
  EXPECT_EQ(p.window_slots, 6u);  // L = 1 minute of 10-second slots
  EXPECT_DOUBLE_EQ(trace::kSlotSeconds, 10.0);
  EXPECT_EQ(trace::kShortJobMaxSlots, 30u);  // 5-minute cap
}

TEST(ParamsTest, WeightsMatchPaper) {
  const Params p;
  // CPU/MEM/storage = 0.4/0.4/0.2 (storage is not the bottleneck).
  EXPECT_DOUBLE_EQ(p.weights.w[0], 0.4);
  EXPECT_DOUBLE_EQ(p.weights.w[1], 0.4);
  EXPECT_DOUBLE_EQ(p.weights.w[2], 0.2);
  EXPECT_TRUE(p.weights.valid());
}

TEST(ParamsTest, StackConfigPropagates) {
  const Params p;
  const predict::StackConfig stack = p.stack_config();
  EXPECT_DOUBLE_EQ(stack.probability_threshold, p.probability_threshold);
  EXPECT_DOUBLE_EQ(stack.error_tolerance, p.error_tolerance);
  EXPECT_EQ(stack.horizon_slots, p.window_slots);
  EXPECT_DOUBLE_EQ(stack.confidence_level, p.confidence_max);
}

TEST(ParamsTest, ContentionPenaltySuperlinear) {
  const Params p;
  EXPECT_GT(p.contention_penalty, 1.0);
}

}  // namespace
}  // namespace corp::sim
