#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace corp::sim {
namespace {

trace::Trace tiny_trace(std::size_t jobs, std::uint64_t seed) {
  trace::GoogleTraceGenerator gen(scaled_generator_config(
      cluster::EnvironmentConfig::PalmettoCluster(), jobs, 10));
  util::Rng rng(seed);
  return gen.generate(rng);
}

SimulationConfig tiny_config(Method method) {
  SimulationConfig config;
  config.method = method;
  config.seed = 5;
  return config;
}

TEST(CorpusBuildersTest, UnusedCorpusIsNormalized) {
  const trace::Trace trace = tiny_trace(30, 1);
  const predict::VectorCorpus corpus = build_unused_corpus(trace);
  for (std::size_t r = 0; r < trace::kNumResources; ++r) {
    ASSERT_FALSE(corpus.per_type[r].empty());
    for (const auto& series : corpus.per_type[r]) {
      for (double x : series) {
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 1.0);
      }
    }
  }
}

TEST(CorpusBuildersTest, UtilizationCorpusInUnitInterval) {
  const trace::Trace trace = tiny_trace(30, 2);
  const predict::SeriesCorpus corpus = build_utilization_corpus(trace);
  ASSERT_FALSE(corpus.empty());
  for (const auto& series : corpus) {
    for (double x : series) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0 + 1e-9);
    }
  }
}

TEST(ScaledGeneratorTest, RequestsFitEnvironmentVms) {
  for (const auto& env : {cluster::EnvironmentConfig::PalmettoCluster(),
                          cluster::EnvironmentConfig::AmazonEc2()}) {
    trace::GoogleTraceGenerator gen(scaled_generator_config(env, 50, 20));
    util::Rng rng(3);
    const trace::Trace trace = gen.generate(rng);
    const auto vm_capacity = env.vm_capacity();
    for (const auto& job : trace.jobs()) {
      EXPECT_TRUE(job.request.fits_within(vm_capacity))
          << env.name << " job " << job.id;
    }
  }
}

TEST(SimulationTest, RunBeforeTrainThrows) {
  Simulation sim(tiny_config(Method::kCorp));
  EXPECT_THROW(sim.run(tiny_trace(10, 4)), std::logic_error);
}

class SimulationMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(SimulationMethodTest, CompletesEveryJob) {
  Simulation sim(tiny_config(GetParam()));
  sim.train(tiny_trace(60, 11));
  const trace::Trace eval = tiny_trace(25, 12);
  const SimulationResult result = sim.run(eval);
  EXPECT_EQ(result.jobs_completed, eval.size());
  EXPECT_EQ(result.jobs_forced, 0u);
  EXPECT_GT(result.slots_simulated, 0);
}

TEST_P(SimulationMethodTest, MetricsInValidRanges) {
  Simulation sim(tiny_config(GetParam()));
  sim.train(tiny_trace(60, 11));
  const SimulationResult result = sim.run(tiny_trace(25, 13));
  EXPECT_GE(result.slo_violation_rate, 0.0);
  EXPECT_LE(result.slo_violation_rate, 1.0);
  EXPECT_GT(result.overall_utilization, 0.0);
  EXPECT_GE(result.mean_stretch, 1.0 - 1e-9);
  for (std::size_t r = 0; r < trace::kNumResources; ++r) {
    EXPECT_GT(result.mean_utilization[r], 0.0);
  }
  EXPECT_GE(result.total_latency_ms, result.compute_latency_ms);
}

TEST_P(SimulationMethodTest, DeterministicAcrossRuns) {
  const trace::Trace training = tiny_trace(60, 11);
  const trace::Trace eval = tiny_trace(25, 14);
  Simulation a(tiny_config(GetParam()));
  Simulation b(tiny_config(GetParam()));
  a.train(training);
  b.train(training);
  const SimulationResult ra = a.run(eval);
  const SimulationResult rb = b.run(eval);
  EXPECT_DOUBLE_EQ(ra.overall_utilization, rb.overall_utilization);
  EXPECT_EQ(ra.jobs_violated, rb.jobs_violated);
  EXPECT_EQ(ra.opportunistic_placements, rb.opportunistic_placements);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SimulationMethodTest,
                         ::testing::Values(Method::kCorp, Method::kRccr,
                                           Method::kCloudScale,
                                           Method::kDra));

TEST(SimulationTest, OnlyOpportunisticMethodsPlaceOpportunistically) {
  for (Method m : {Method::kCloudScale, Method::kDra}) {
    Simulation sim(tiny_config(m));
    sim.train(tiny_trace(60, 11));
    const SimulationResult result = sim.run(tiny_trace(40, 15));
    EXPECT_EQ(result.opportunistic_placements, 0u)
        << predict::method_name(m);
  }
}

TEST(SimulationTest, PackingAblationReducesOrKeepsUtilization) {
  const trace::Trace training = tiny_trace(80, 21);
  const trace::Trace eval = tiny_trace(60, 22);

  SimulationConfig with_packing = tiny_config(Method::kCorp);
  SimulationConfig without_packing = tiny_config(Method::kCorp);
  sched::CorpSchedulerConfig no_pack;
  no_pack.enable_packing = false;
  without_packing.corp_scheduler = no_pack;

  Simulation a(with_packing), b(without_packing);
  a.train(training);
  b.train(training);
  const auto ra = a.run(eval);
  const auto rb = b.run(eval);
  // Both complete the workload; the packed variant should not be worse by
  // a wide margin (usually better).
  EXPECT_EQ(ra.jobs_completed, rb.jobs_completed);
  EXPECT_GT(ra.overall_utilization, rb.overall_utilization - 0.1);
}

TEST(SimulationTest, OpportunisticAblationDropsToReservationOnly) {
  SimulationConfig config = tiny_config(Method::kCorp);
  sched::CorpSchedulerConfig no_opp;
  no_opp.enable_opportunistic = false;
  config.corp_scheduler = no_opp;
  Simulation sim(std::move(config));
  sim.train(tiny_trace(60, 11));
  const SimulationResult result = sim.run(tiny_trace(40, 23));
  EXPECT_EQ(result.opportunistic_placements, 0u);
}

TEST(SimulationTest, GraceCutoffForcesCompletion) {
  SimulationConfig config = tiny_config(Method::kCorp);
  config.grace_slots = 0;  // brutal cutoff right at the horizon
  Simulation sim(std::move(config));
  sim.train(tiny_trace(60, 11));
  const trace::Trace eval = tiny_trace(30, 24);
  const SimulationResult result = sim.run(eval);
  // Everything is accounted for: completed includes forced records.
  EXPECT_EQ(result.jobs_completed, eval.size());
}

}  // namespace
}  // namespace corp::sim
