#include "sim/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hpp"
#include "sim/simulation.hpp"

namespace corp::sim {
namespace {

TEST(TimelineTest, EmptyStats) {
  Timeline timeline;
  EXPECT_TRUE(timeline.empty());
  EXPECT_EQ(timeline.peak_running(), 0u);
  EXPECT_EQ(timeline.peak_queue(), 0u);
  EXPECT_EQ(timeline.busiest_slot(), 0);
}

TEST(TimelineTest, PeaksAndBusiestSlot) {
  Timeline timeline;
  timeline.add({.slot = 0, .running_reserved = 2, .running_opportunistic = 0,
                .queued = 1});
  timeline.add({.slot = 1, .running_reserved = 3, .running_opportunistic = 2,
                .queued = 4});
  timeline.add({.slot = 2, .running_reserved = 1, .running_opportunistic = 0,
                .queued = 0});
  EXPECT_EQ(timeline.peak_running(), 5u);
  EXPECT_EQ(timeline.peak_queue(), 4u);
  EXPECT_EQ(timeline.busiest_slot(), 1);
}

TEST(TimelineTest, CsvHasHeaderAndRows) {
  Timeline timeline;
  timeline.add({.slot = 3, .running_reserved = 1});
  std::ostringstream out;
  timeline.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("slot,running_reserved"), std::string::npos);
  EXPECT_NE(csv.find("\n3,1,"), std::string::npos);
}

TEST(TimelineTest, SimulationRecordsWhenEnabled) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  trace::GoogleTraceGenerator train_gen(
      scaled_generator_config(env, 60, 30));
  util::Rng train_rng(5);
  const trace::Trace training = train_gen.generate(train_rng);
  trace::GoogleTraceGenerator eval_gen(scaled_generator_config(env, 20, 10));
  util::Rng eval_rng(6);
  const trace::Trace eval = eval_gen.generate(eval_rng);

  SimulationConfig config;
  config.method = Method::kDra;
  config.record_timeline = true;
  Simulation sim(std::move(config));
  sim.train(training);
  const SimulationResult result = sim.run(eval);
  ASSERT_FALSE(result.timeline.empty());
  EXPECT_EQ(static_cast<std::int64_t>(result.timeline.samples().size()),
            result.slots_simulated);
  // Conservation: total completions across slots = jobs completed.
  std::size_t completions = 0;
  for (const auto& s : result.timeline.samples()) {
    completions += s.completions;
    EXPECT_GE(s.committed_fraction, 0.0);
    EXPECT_LE(s.committed_fraction, 1.0 + 1e-9);
  }
  EXPECT_EQ(completions, result.jobs_completed);
  EXPECT_GT(result.timeline.peak_running(), 0u);
}

TEST(TimelineTest, SimulationSkipsWhenDisabled) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  trace::GoogleTraceGenerator gen(scaled_generator_config(env, 20, 10));
  util::Rng rng(7);
  const trace::Trace trace = gen.generate(rng);
  SimulationConfig config;
  config.method = Method::kDra;
  Simulation sim(std::move(config));
  sim.train(trace);
  const SimulationResult result = sim.run(trace);
  EXPECT_TRUE(result.timeline.empty());
}

}  // namespace
}  // namespace corp::sim
