// Differential pin of the JobSource determinism contract: for the same
// underlying job set, Simulation::run produces bit-identical results
// whether arrivals come from a materialized trace (the legacy path, and
// its TraceJobSource adapter) or from trace::StreamReader through
// StreamingJobSource — including under sharded, multi-threaded engines.
// Mirrors tests/sim/shard_equivalence_test.cpp, one source-abstraction
// layer up.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "../common/trace_fixture.hpp"
#include "sim/job_source.hpp"
#include "sim/simulation.hpp"
#include "sim/workloads.hpp"
#include "trace/generator.hpp"
#include "trace/stream_reader.hpp"
#include "util/rng.hpp"

namespace corp::sim {
namespace {

trace::Trace tiny_training(const cluster::EnvironmentConfig& env,
                           std::uint64_t seed) {
  trace::GoogleTraceGenerator gen(scaled_generator_config(env, 60, 10));
  util::Rng rng(seed);
  return gen.generate(rng);
}

/// Every result field except the wall-clock latencies. Doubles compare
/// exactly: the contract is bit identity, not tolerance.
void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  for (std::size_t r = 0; r < trace::kNumResources; ++r) {
    EXPECT_EQ(a.mean_utilization[r], b.mean_utilization[r])
        << "resource " << r;
    EXPECT_EQ(a.mean_wastage[r], b.mean_wastage[r]) << "resource " << r;
  }
  EXPECT_EQ(a.overall_utilization, b.overall_utilization);
  EXPECT_EQ(a.overall_wastage, b.overall_wastage);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_violated, b.jobs_violated);
  EXPECT_EQ(a.jobs_forced, b.jobs_forced);
  EXPECT_EQ(a.opportunistic_placements, b.opportunistic_placements);
  EXPECT_EQ(a.reserved_placements, b.reserved_placements);
  EXPECT_EQ(a.lease_promotions, b.lease_promotions);
  EXPECT_EQ(a.lease_preemptions, b.lease_preemptions);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.job_retries, b.job_retries);
  EXPECT_EQ(a.jobs_dropped, b.jobs_dropped);
  EXPECT_EQ(a.slots_simulated, b.slots_simulated);
}

Simulation trained_simulation(const cluster::EnvironmentConfig& env,
                              std::size_t shards, std::size_t threads) {
  SimulationConfig config;
  config.environment = env;
  config.method = Method::kCorp;
  config.seed = 5;
  config.params.shards = shards;
  config.params.threads = threads;
  Simulation sim(std::move(config));
  sim.train(tiny_training(env, 11));
  return sim;
}

/// Small streamed fixture; tiny chunks force multiple ingest batches, so
/// the engine genuinely runs ahead of the unread file tail.
trace::StreamReaderConfig small_chunks() {
  trace::StreamReaderConfig config;
  config.chunk_bytes = 4096;
  config.chunks_per_batch = 2;
  return config;
}

class StreamReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/stream_replay.csv";
    testfix::write_google_fixture(path_, 4, 50, 23);
  }

  std::string path_;
};

TEST_F(StreamReplayTest, StreamedRunMatchesMaterializedRun) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace materialized =
      trace::StreamReader::read_all(path_, small_chunks());
  ASSERT_GT(materialized.size(), 0u);

  Simulation on_trace = trained_simulation(env, 1, 1);
  const SimulationResult from_trace = on_trace.run(materialized);
  EXPECT_GT(from_trace.jobs_completed, 0u);

  Simulation on_stream = trained_simulation(env, 1, 1);
  trace::StreamReader reader(path_, small_chunks());
  StreamingJobSource source(reader);
  const SimulationResult from_stream = on_stream.run(source);

  expect_identical(from_trace, from_stream);
  // Retirement freed every delivered job once the run finished.
  EXPECT_EQ(source.live_jobs(), 0u);
}

TEST_F(StreamReplayTest, TraceJobSourceMatchesDirectTraceRun) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace materialized =
      trace::StreamReader::read_all(path_, small_chunks());

  Simulation direct = trained_simulation(env, 1, 1);
  const SimulationResult from_trace = direct.run(materialized);

  Simulation adapted = trained_simulation(env, 1, 1);
  TraceJobSource source(materialized);
  const SimulationResult from_source = adapted.run(source);

  expect_identical(from_trace, from_source);
}

TEST_F(StreamReplayTest, StreamedRunIsShardAndThreadInvariant) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace materialized =
      trace::StreamReader::read_all(path_, small_chunks());

  Simulation serial = trained_simulation(env, 1, 1);
  const SimulationResult reference = serial.run(materialized);

  Simulation sharded = trained_simulation(env, 8, 4);
  trace::StreamReader reader(path_, small_chunks());
  StreamingJobSource source(reader);
  expect_identical(reference, sharded.run(source));
}

TEST_F(StreamReplayTest, StreamingSourceDeliversInSubmitOrder) {
  const trace::Trace materialized =
      trace::StreamReader::read_all(path_, small_chunks());

  trace::StreamReader reader(path_, small_chunks());
  StreamingJobSource source(reader);

  std::vector<const trace::Job*> delivered;
  std::int64_t slot = 0;
  while (!source.exhausted() && slot < 100000) {
    std::vector<const trace::Job*> batch;
    source.poll(slot, batch);
    for (const trace::Job* job : batch) {
      EXPECT_LE(job->submit_slot, slot);
      if (!delivered.empty()) {
        const trace::Job* prev = delivered.back();
        const bool ordered =
            prev->submit_slot < job->submit_slot ||
            (prev->submit_slot == job->submit_slot && prev->id < job->id);
        EXPECT_TRUE(ordered)
            << "job " << job->id << " after job " << prev->id;
      }
      delivered.push_back(job);
    }
    ++slot;
  }
  EXPECT_TRUE(source.exhausted());
  ASSERT_EQ(delivered.size(), materialized.size());
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i]->id, materialized.jobs()[i].id) << "job " << i;
    EXPECT_EQ(delivered[i]->submit_slot, materialized.jobs()[i].submit_slot)
        << "job " << i;
  }

  // Retiring every job releases the source's live storage.
  EXPECT_EQ(source.live_jobs(), delivered.size());
  for (const trace::Job* job : delivered) source.retire(*job);
  EXPECT_EQ(source.live_jobs(), 0u);
}

}  // namespace
}  // namespace corp::sim
