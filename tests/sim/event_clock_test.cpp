// Differential pin of the event-driven slot clock (sim/slot_clock.hpp):
// SlotClockMode::kEvent must reproduce the dense tick-every-slot loop
// bit for bit — for every shard/thread count, for CORP and the
// prediction-aware scheduler, under heavy fault injection, on streamed
// sources, and on the degenerate shapes where the clock earns its keep
// (multi-hundred-slot idle valleys, an empty source, a single arrival at
// the final slot, fault transitions landing inside a jumped span).
// Mirrors tests/sim/shard_equivalence_test.cpp, one time-base layer up.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "../common/trace_fixture.hpp"
#include "fault/fault.hpp"
#include "sim/job_source.hpp"
#include "sim/simulation.hpp"
#include "sim/slot_clock.hpp"
#include "trace/generator.hpp"
#include "trace/stream_reader.hpp"
#include "util/rng.hpp"

namespace corp::sim {
namespace {

trace::Trace tiny_trace(const cluster::EnvironmentConfig& env,
                        std::size_t jobs, std::uint64_t seed) {
  trace::GoogleTraceGenerator gen(scaled_generator_config(env, jobs, 10));
  util::Rng rng(seed);
  return gen.generate(rng);
}

/// `bursts` arrival waves separated by `gap`-slot idle valleys: the
/// generator spreads submissions over [0, bursts); remapping slot k to
/// k * gap keeps each wave's internal ordering while opening spans the
/// event clock can jump.
trace::Trace sparse_trace(const cluster::EnvironmentConfig& env,
                          std::size_t jobs, std::int64_t bursts,
                          std::int64_t gap, std::uint64_t seed) {
  trace::GoogleTraceGenerator gen(scaled_generator_config(env, jobs, bursts));
  util::Rng rng(seed);
  trace::Trace t = gen.generate(rng);
  for (trace::Job& job : t.jobs()) {
    job.submit_slot = (job.submit_slot % bursts) * gap;
  }
  t.sort();
  return t;
}

/// Heavy fault mix that is certain to fire on a short run.
fault::FaultConfig heavy_faults() {
  fault::FaultConfig faults;
  faults.vm_mttf_slots = 15.0;
  faults.vm_mttr_slots = 6.0;
  faults.telemetry_gap_rate = 0.10;
  faults.straggler_rate = 0.25;
  faults.predictor_fault_rate = 0.10;
  return faults;
}

/// Every result field except the wall-clock latencies and the clock
/// diagnostics (slots_ticked/slots_skipped differ between modes by
/// design — their sum is pinned instead). Doubles compare exactly: the
/// contract is bit identity, not tolerance.
void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  for (std::size_t r = 0; r < trace::kNumResources; ++r) {
    EXPECT_EQ(a.mean_utilization[r], b.mean_utilization[r])
        << "resource " << r;
    EXPECT_EQ(a.mean_wastage[r], b.mean_wastage[r]) << "resource " << r;
  }
  EXPECT_EQ(a.overall_utilization, b.overall_utilization);
  EXPECT_EQ(a.overall_wastage, b.overall_wastage);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_violated, b.jobs_violated);
  EXPECT_EQ(a.jobs_forced, b.jobs_forced);
  EXPECT_EQ(a.opportunistic_placements, b.opportunistic_placements);
  EXPECT_EQ(a.reserved_placements, b.reserved_placements);
  EXPECT_EQ(a.lease_promotions, b.lease_promotions);
  EXPECT_EQ(a.lease_preemptions, b.lease_preemptions);
  EXPECT_EQ(a.vm_crashes, b.vm_crashes);
  EXPECT_EQ(a.vm_recoveries, b.vm_recoveries);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.job_retries, b.job_retries);
  EXPECT_EQ(a.jobs_dropped, b.jobs_dropped);
  EXPECT_EQ(a.telemetry_gaps, b.telemetry_gaps);
  EXPECT_EQ(a.degradation_tier, b.degradation_tier);
  EXPECT_EQ(a.predictions_amortized, b.predictions_amortized);
  EXPECT_EQ(a.slots_simulated, b.slots_simulated);
  // The clock never invents or loses time: ticked + skipped spans the
  // whole simulated range in both modes.
  EXPECT_EQ(a.slots_ticked + a.slots_skipped, a.slots_simulated);
  EXPECT_EQ(b.slots_ticked + b.slots_skipped, b.slots_simulated);
}

struct RunSpec {
  Method method = Method::kCorp;
  fault::FaultConfig faults;
  std::size_t shards = 1;
  std::size_t threads = 1;
  SlotClockMode clock = SlotClockMode::kDense;
  PredictCadence cadence = PredictCadence::kEverySlot;
  bool record_timeline = false;
};

SimulationResult run_with(const cluster::EnvironmentConfig& env,
                          const RunSpec& spec, const trace::Trace& training,
                          const trace::Trace& eval) {
  SimulationConfig config;
  config.environment = env;
  config.method = spec.method;
  config.seed = 5;
  config.faults = spec.faults;
  config.params.shards = spec.shards;
  config.params.threads = spec.threads;
  config.params.slot_clock = spec.clock;
  config.params.predict_cadence = spec.cadence;
  config.record_timeline = spec.record_timeline;
  Simulation sim(std::move(config));
  sim.train(training);
  return sim.run(eval);
}

// ------------------------------------------------- differential suite --

TEST(EventClockTest, MatchesDenseAcrossShardsThreadsAndMethodsUnderFaults) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 11);
  const trace::Trace eval = sparse_trace(env, 30, 2, 300, 12);
  const fault::FaultConfig faults = heavy_faults();

  for (const Method method : {Method::kCorp, Method::kPredAware}) {
    RunSpec dense_spec;
    dense_spec.method = method;
    dense_spec.faults = faults;
    const SimulationResult dense = run_with(env, dense_spec, training, eval);
    EXPECT_GT(dense.vm_crashes, 0u);
    EXPECT_EQ(dense.slots_skipped, 0);
    for (const std::size_t shards : {1UL, 4UL, 16UL, 0UL}) {
      for (const std::size_t threads : {1UL, 3UL}) {
        SCOPED_TRACE("method=" + std::to_string(static_cast<int>(method)) +
                     " shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads));
        RunSpec event_spec = dense_spec;
        event_spec.shards = shards;
        event_spec.threads = threads;
        event_spec.clock = SlotClockMode::kEvent;
        const SimulationResult event =
            run_with(env, event_spec, training, eval);
        expect_identical(dense, event);
      }
    }
  }
}

TEST(EventClockTest, SkipsTheIdleValleysOfASparseTrace) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 21);
  const trace::Trace eval = sparse_trace(env, 30, 3, 400, 22);

  RunSpec dense_spec;
  const SimulationResult dense = run_with(env, dense_spec, training, eval);
  RunSpec event_spec;
  event_spec.clock = SlotClockMode::kEvent;
  const SimulationResult event = run_with(env, event_spec, training, eval);

  expect_identical(dense, event);
  // Two ~400-slot valleys: the overwhelming majority of the horizon is
  // provably inert and must be jumped, not ticked.
  EXPECT_GT(event.slots_skipped, event.slots_simulated / 2);
  EXPECT_LT(event.slots_ticked, dense.slots_ticked);
}

TEST(EventClockTest, WindowCadenceIsClockAndShardInvariant) {
  // kWindow is a documented semantic change vs kEverySlot (a coarser
  // forecast-refresh schedule), but it must itself be bit-identical
  // across clock modes and shard/thread counts, and must actually
  // amortize stack runs on a workload with long-running jobs.
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 31);
  const trace::Trace eval = sparse_trace(env, 30, 2, 250, 32);

  RunSpec dense_spec;
  dense_spec.cadence = PredictCadence::kWindow;
  const SimulationResult dense = run_with(env, dense_spec, training, eval);
  EXPECT_GT(dense.predictions_amortized, 0u);

  for (const std::size_t shards : {4UL, 16UL}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RunSpec event_spec = dense_spec;
    event_spec.shards = shards;
    event_spec.threads = 3;
    event_spec.clock = SlotClockMode::kEvent;
    expect_identical(dense, run_with(env, event_spec, training, eval));
  }
}

TEST(EventClockTest, EverySlotCadenceNeverAmortizes) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 41);
  const trace::Trace eval = tiny_trace(env, 30, 42);

  RunSpec spec;
  spec.clock = SlotClockMode::kEvent;
  const SimulationResult result = run_with(env, spec, training, eval);
  EXPECT_EQ(result.predictions_amortized, 0u);
}

TEST(EventClockTest, TimelineFastForwardMatchesDenseSampleForSample) {
  // The closed-form fast-forward must reproduce the dense loop's
  // timeline exactly: idle samples replicated across the jumped span
  // with only the slot number varying.
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 51);
  const trace::Trace eval = sparse_trace(env, 20, 2, 200, 52);

  RunSpec dense_spec;
  dense_spec.record_timeline = true;
  const SimulationResult dense = run_with(env, dense_spec, training, eval);
  RunSpec event_spec = dense_spec;
  event_spec.clock = SlotClockMode::kEvent;
  const SimulationResult event = run_with(env, event_spec, training, eval);

  expect_identical(dense, event);
  const auto& ds = dense.timeline.samples();
  const auto& es = event.timeline.samples();
  ASSERT_EQ(ds.size(), es.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    EXPECT_EQ(ds[i].slot, es[i].slot);
    EXPECT_EQ(ds[i].running_reserved, es[i].running_reserved);
    EXPECT_EQ(ds[i].running_opportunistic, es[i].running_opportunistic);
    EXPECT_EQ(ds[i].queued, es[i].queued);
    EXPECT_EQ(ds[i].overall_utilization, es[i].overall_utilization);
    EXPECT_EQ(ds[i].committed_fraction, es[i].committed_fraction);
    EXPECT_EQ(ds[i].completions, es[i].completions);
    EXPECT_EQ(ds[i].violations, es[i].violations);
  }
}

TEST(EventClockTest, StreamedSparseSourceMatchesDense) {
  // Two task waves 200 windows apart in a real-format CSV: the streamed
  // source must cap jumps at the reader's safe bound (replaying the
  // dense ingest schedule exactly) and still skip the deep valley.
  const std::string path = testing::TempDir() + "/event_clock_sparse.csv";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "#corp-trace schema=google-v2\n";
    util::Rng rng(7);
    for (const std::int64_t window : {std::int64_t{0}, std::int64_t{200}}) {
      const std::int64_t start =
          testfix::kEpochUs + window * testfix::kWindowUs;
      for (std::uint64_t i = 0; i < 40; ++i) {
        out << testfix::google_row(start, start + testfix::kWindowUs,
                                   window * 1000 + i + 1,
                                   rng.uniform(0.004, 0.02),
                                   rng.uniform(0.003, 0.012),
                                   rng.uniform(0.0002, 0.001));
      }
    }
  }
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 61);
  trace::StreamReaderConfig stream;
  stream.chunk_bytes = 4096;
  stream.chunks_per_batch = 2;

  const auto run_streamed = [&](SlotClockMode clock) {
    RunSpec spec;
    spec.clock = clock;
    SimulationConfig config;
    config.environment = env;
    config.method = Method::kCorp;
    config.seed = 5;
    config.params.slot_clock = clock;
    Simulation sim(std::move(config));
    sim.train(training);
    trace::StreamReader reader(path, stream);
    StreamingJobSource source(reader);
    return sim.run(source);
  };
  const SimulationResult dense = run_streamed(SlotClockMode::kDense);
  const SimulationResult event = run_streamed(SlotClockMode::kEvent);
  expect_identical(dense, event);
  EXPECT_GT(dense.jobs_completed, 0u);
  EXPECT_GT(event.slots_skipped, 0);
}

// ------------------------------------------------- degenerate shapes --

TEST(EventClockTest, EmptyJobSourceDrainsAtSlotOne) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 71);
  const trace::Trace empty;

  for (const SlotClockMode clock :
       {SlotClockMode::kDense, SlotClockMode::kEvent}) {
    SCOPED_TRACE(to_string(clock));
    RunSpec spec;
    spec.clock = clock;
    const SimulationResult result = run_with(env, spec, training, empty);
    EXPECT_EQ(result.slots_simulated, 1);
    EXPECT_EQ(result.slots_ticked, 1);
    EXPECT_EQ(result.slots_skipped, 0);
    EXPECT_EQ(result.jobs_completed, 0u);
  }
}

TEST(EventClockTest, SingleArrivalAtTheFinalSlot) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 81);
  trace::Trace eval = tiny_trace(env, 1, 82);
  ASSERT_GE(eval.size(), 1u);
  eval.jobs().resize(1);
  eval.jobs()[0].submit_slot = 600;
  eval.sort();

  RunSpec dense_spec;
  const SimulationResult dense = run_with(env, dense_spec, training, eval);
  RunSpec event_spec;
  event_spec.clock = SlotClockMode::kEvent;
  const SimulationResult event = run_with(env, event_spec, training, eval);

  expect_identical(dense, event);
  EXPECT_EQ(dense.jobs_completed + dense.jobs_forced, 1u);
  // Slot 0 ticks (the clock inspects the world before jumping), then one
  // jump lands exactly on the arrival — 599 slots never execute.
  EXPECT_GE(event.slots_skipped, 599);
}

TEST(EventClockTest, AllVmsCrashedSpansStayIdentical) {
  // A mean-time-to-failure shorter than the repair time keeps knocking
  // the whole 30-VM fleet down; placement failures park arrivals in the
  // retry queue, whose release slots become clock events.
  const auto env = cluster::EnvironmentConfig::AmazonEc2();
  const trace::Trace training = tiny_trace(env, 50, 91);
  const trace::Trace eval = sparse_trace(env, 10, 2, 150, 92);
  fault::FaultConfig faults;
  faults.vm_mttf_slots = 3.0;
  faults.vm_mttr_slots = 40.0;

  RunSpec dense_spec;
  dense_spec.faults = faults;
  const SimulationResult dense = run_with(env, dense_spec, training, eval);
  EXPECT_GT(dense.vm_crashes, 0u);
  RunSpec event_spec = dense_spec;
  event_spec.clock = SlotClockMode::kEvent;
  expect_identical(dense, run_with(env, event_spec, training, eval));
}

TEST(EventClockTest, FaultTransitionsInsideASkippedSpanAreLandedOn) {
  // Sparse arrivals on a small fleet with slow faults: crash/recovery
  // transitions land deep inside the idle valleys, where the dense loop
  // applies them on their exact slot. The event clock must land on every
  // one (vm_crashes/vm_recoveries are part of the identity check) while
  // still skipping the quiet stretches between them.
  const auto env = cluster::EnvironmentConfig::AmazonEc2();
  const trace::Trace training = tiny_trace(env, 50, 101);
  const trace::Trace eval = sparse_trace(env, 8, 2, 500, 102);
  fault::FaultConfig faults;
  faults.vm_mttf_slots = 150.0;
  faults.vm_mttr_slots = 40.0;

  RunSpec dense_spec;
  dense_spec.faults = faults;
  const SimulationResult dense = run_with(env, dense_spec, training, eval);
  EXPECT_GT(dense.vm_crashes, 0u);
  RunSpec event_spec = dense_spec;
  event_spec.clock = SlotClockMode::kEvent;
  const SimulationResult event = run_with(env, event_spec, training, eval);
  expect_identical(dense, event);
  EXPECT_GT(event.slots_skipped, 0);
}

// ------------------------------------------------- JobSource horizon --

TEST(EventClockTest, TraceJobSourceReportsArrivalHorizon) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  trace::Trace eval = tiny_trace(env, 3, 111);
  auto& jobs = eval.jobs();
  ASSERT_GE(jobs.size(), 3u);
  jobs.resize(3);
  jobs[0].submit_slot = 5;
  jobs[1].submit_slot = 5;
  jobs[2].submit_slot = 40;
  eval.sort();

  TraceJobSource source(eval);
  EXPECT_EQ(source.next_event_slot(0), 5);
  std::vector<const trace::Job*> batch;
  source.poll(5, batch);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(source.next_event_slot(5), 40);
  source.poll(40, batch);
  EXPECT_TRUE(source.exhausted());
  EXPECT_EQ(source.next_event_slot(40), kNoEventSlot);
}

}  // namespace
}  // namespace corp::sim
