#include "sim/workloads.hpp"

#include <gtest/gtest.h>

namespace corp::sim {
namespace {

class WorkloadKindTest : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(WorkloadKindTest, ConfigGeneratesValidTrace) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::GeneratorConfig config =
      workload_config(GetParam(), env, 30);
  trace::GoogleTraceGenerator gen(config);
  util::Rng rng(9);
  const trace::Trace trace = gen.generate(rng);
  EXPECT_GE(trace.size(), 30u);
  const auto vm = env.vm_capacity();
  for (const auto& job : trace.jobs()) {
    EXPECT_TRUE(job.valid());
    EXPECT_TRUE(job.request.fits_within(vm));
  }
}

TEST_P(WorkloadKindTest, NameRoundTrips) {
  const std::string_view name = workload_name(GetParam());
  EXPECT_FALSE(name.empty());
  EXPECT_NE(name, "?");
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WorkloadKindTest,
                         ::testing::ValuesIn(kAllWorkloads));

TEST(WorkloadTest, BurstArrivesTightly) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const auto config = workload_config(WorkloadKind::kBurst, env, 40);
  trace::GoogleTraceGenerator gen(config);
  util::Rng rng(3);
  const trace::Trace trace = gen.generate(rng);
  for (const auto& job : trace.jobs()) {
    EXPECT_LT(job.submit_slot, 3);
  }
}

TEST(WorkloadTest, MixedServicesContainsLongJobs) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const auto config =
      workload_config(WorkloadKind::kMixedServices, env, 60);
  trace::GoogleTraceGenerator gen(config);
  util::Rng rng(5);
  const trace::Trace trace = gen.generate(rng);
  std::size_t longs = 0;
  for (const auto& job : trace.jobs()) {
    if (!job.is_short_lived()) ++longs;
  }
  EXPECT_GT(longs, 0u);
}

}  // namespace
}  // namespace corp::sim
