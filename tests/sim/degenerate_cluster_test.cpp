// Degenerate-shape hardening of the simulation engine: empty clusters,
// single-VM clusters with multi-shard requests, and zero-job traces must
// run to completion — no division by zero, no empty-shard UB, no
// out-of-range VM access — and report the obvious outcomes (nothing
// places on zero VMs; nothing simulates past slot 0 with no jobs).
#include <gtest/gtest.h>

#include <utility>

#include "sim/simulation.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace corp::sim {
namespace {

trace::Trace make_trace(const cluster::EnvironmentConfig& env,
                        std::size_t jobs, std::uint64_t seed) {
  trace::GoogleTraceGenerator gen(scaled_generator_config(env, jobs, 10));
  util::Rng rng(seed);
  return gen.generate(rng);
}

cluster::EnvironmentConfig tiny_env(std::size_t num_pms,
                                    std::size_t vms_per_pm) {
  cluster::EnvironmentConfig env =
      cluster::EnvironmentConfig::PalmettoCluster();
  env.num_pms = num_pms;
  env.vms_per_pm = vms_per_pm;
  return env;
}

SimulationResult run_on(cluster::EnvironmentConfig env, Method method,
                        std::size_t shards, const trace::Trace& training,
                        const trace::Trace& eval,
                        std::int64_t grace_slots = 50) {
  SimulationConfig config;
  config.environment = std::move(env);
  config.method = method;
  config.seed = 7;
  config.params.shards = shards;
  config.grace_slots = grace_slots;
  Simulation sim(std::move(config));
  sim.train(training);
  return sim.run(eval);
}

TEST(DegenerateClusterTest, ZeroVmClusterForcesEveryJobWithoutCrashing) {
  // Nothing can ever place: the run must ride to the grace cutoff and
  // count every job as a forced violation, for every method's scheduler.
  const auto palmetto = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = make_trace(palmetto, 40, 3);
  const trace::Trace eval = make_trace(palmetto, 5, 4);
  for (const Method method : {Method::kCorp, Method::kRccr,
                              Method::kCloudScale, Method::kDra}) {
    SCOPED_TRACE(static_cast<int>(method));
    const SimulationResult result =
        run_on(tiny_env(0, 4), method, 4, training, eval);
    EXPECT_EQ(result.reserved_placements, 0u);
    EXPECT_EQ(result.opportunistic_placements, 0u);
    EXPECT_EQ(result.jobs_forced, eval.jobs().size());
    EXPECT_EQ(result.jobs_violated, eval.jobs().size());
    EXPECT_DOUBLE_EQ(result.slo_violation_rate, 1.0);
  }
}

TEST(DegenerateClusterTest, SingleVmClusterSurvivesMultiShardRequest) {
  // One VM, shards > VM count: the plan collapses to one shard and the
  // run must behave exactly like an explicit single-shard run.
  const cluster::EnvironmentConfig env = tiny_env(1, 1);
  const trace::Trace training = make_trace(env, 40, 5);
  const trace::Trace eval = make_trace(env, 6, 6);
  const SimulationResult serial =
      run_on(env, Method::kCorp, 1, training, eval, 720);
  const SimulationResult sharded =
      run_on(env, Method::kCorp, 16, training, eval, 720);
  EXPECT_EQ(serial.jobs_completed, sharded.jobs_completed);
  EXPECT_EQ(serial.overall_utilization, sharded.overall_utilization);
  EXPECT_EQ(serial.slots_simulated, sharded.slots_simulated);
  EXPECT_GT(serial.jobs_completed + serial.jobs_violated, 0u);
}

TEST(DegenerateClusterTest, ZeroJobTraceDrainsImmediately) {
  // The generator refuses to synthesize zero jobs; an explicitly empty
  // Trace is still a legal engine input (e.g. a filtered-away workload).
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = make_trace(env, 40, 7);
  const trace::Trace empty;
  const SimulationResult result =
      run_on(env, Method::kCorp, 8, training, empty);
  EXPECT_EQ(result.slots_simulated, 1);
  EXPECT_EQ(result.jobs_completed, 0u);
  EXPECT_EQ(result.jobs_forced, 0u);
  EXPECT_DOUBLE_EQ(result.slo_violation_rate, 0.0);
}

TEST(DegenerateClusterTest, ZeroJobTraceOnZeroVmClusterIsStillSafe) {
  const auto palmetto = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = make_trace(palmetto, 40, 9);
  const trace::Trace empty;
  const SimulationResult result =
      run_on(tiny_env(0, 0), Method::kCorp, 4, training, empty);
  EXPECT_EQ(result.slots_simulated, 1);
  EXPECT_EQ(result.jobs_completed, 0u);
}

}  // namespace
}  // namespace corp::sim
