// Full-simulation pins of the prediction-aware scheduler's contracts.
//
// The λ endpoints are differential: with the same simulation seed the
// λ=1 run must be bit-identical to CORP (same stacks, same decisions, no
// extra randomness drawn) and the λ=0 run bit-identical to CORP with
// opportunistic placement disabled — the demand-based worst-case
// admission rule. Interior and adaptive λ keep the engine's shard/thread
// bit-identity contract: the trust trajectory is sampled serially in the
// centralized placement step, so it cannot depend on the slot loop's
// partitioning.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace corp::sim {
namespace {

trace::Trace tiny_trace(const cluster::EnvironmentConfig& env,
                        std::size_t jobs, std::uint64_t seed,
                        std::int64_t horizon_slots = 10) {
  trace::GoogleTraceGenerator gen(
      scaled_generator_config(env, jobs, horizon_slots));
  util::Rng rng(seed);
  return gen.generate(rng);
}

/// Heavy fault mix that is certain to fire on a short run.
fault::FaultConfig heavy_faults() {
  fault::FaultConfig faults;
  faults.vm_mttf_slots = 15.0;
  faults.vm_mttr_slots = 6.0;
  faults.telemetry_gap_rate = 0.10;
  faults.straggler_rate = 0.25;
  faults.predictor_fault_rate = 0.10;
  return faults;
}

/// Every result field except the wall-clock latencies and the method tag.
void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  for (std::size_t r = 0; r < trace::kNumResources; ++r) {
    EXPECT_EQ(a.mean_utilization[r], b.mean_utilization[r]) << "resource " << r;
    EXPECT_EQ(a.mean_wastage[r], b.mean_wastage[r]) << "resource " << r;
  }
  EXPECT_EQ(a.overall_utilization, b.overall_utilization);
  EXPECT_EQ(a.overall_wastage, b.overall_wastage);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_violated, b.jobs_violated);
  EXPECT_EQ(a.jobs_forced, b.jobs_forced);
  EXPECT_EQ(a.opportunistic_placements, b.opportunistic_placements);
  EXPECT_EQ(a.reserved_placements, b.reserved_placements);
  EXPECT_EQ(a.lease_promotions, b.lease_promotions);
  EXPECT_EQ(a.lease_preemptions, b.lease_preemptions);
  EXPECT_EQ(a.vm_crashes, b.vm_crashes);
  EXPECT_EQ(a.vm_recoveries, b.vm_recoveries);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.job_retries, b.job_retries);
  EXPECT_EQ(a.jobs_dropped, b.jobs_dropped);
  EXPECT_EQ(a.telemetry_gaps, b.telemetry_gaps);
  EXPECT_EQ(a.degradation_tier, b.degradation_tier);
  EXPECT_EQ(a.slots_simulated, b.slots_simulated);
}

struct RunSpec {
  Method method = Method::kCorp;
  std::optional<sched::PredictionAwareConfig> pred_aware;
  std::optional<sched::CorpSchedulerConfig> corp_scheduler;
  std::optional<predict::StackConfig> stack;
  fault::FaultConfig faults;
  std::size_t shards = 1;
  std::size_t threads = 1;
};

/// The experiment harness's mid-aggressiveness stack: loose enough that
/// the Eq. 21 gate actually unlocks on short test traces (the Table II
/// default P_th = 0.95 keeps every pool locked on runs this small).
predict::StackConfig permissive_stack() {
  predict::StackConfig stack;
  stack.probability_threshold = 0.72;
  stack.confidence_level = 0.73;
  stack.error_tolerance = 1.0;
  return stack;
}

SimulationResult run_spec(const RunSpec& spec, const trace::Trace& training,
                          const trace::Trace& eval) {
  SimulationConfig config;
  config.environment = cluster::EnvironmentConfig::PalmettoCluster();
  config.method = spec.method;
  config.seed = 5;
  config.faults = spec.faults;
  config.pred_aware = spec.pred_aware;
  config.corp_scheduler = spec.corp_scheduler;
  config.stack = spec.stack;
  config.params.shards = spec.shards;
  config.params.threads = spec.threads;
  Simulation sim(std::move(config));
  sim.train(training);
  return sim.run(eval);
}

sched::PredictionAwareConfig fixed_trust(double lambda) {
  sched::PredictionAwareConfig config;
  config.trust = lambda;
  return config;
}

TEST(PredAwareSimTest, FullTrustIsBitIdenticalToCorp) {
  // Mirrors the experiment harness's workload shape (dense arrivals,
  // mid-aggressiveness stack) so the Eq. 21 gate unlocks while jobs are
  // still arriving and the opportunistic path really runs — a
  // fresh-reservations-only run would pass this differential vacuously.
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 120, 41, 160);
  const trace::Trace eval = tiny_trace(env, 150, 42, 20);

  RunSpec corp;
  corp.method = Method::kCorp;
  corp.stack = permissive_stack();
  const SimulationResult corp_result = run_spec(corp, training, eval);

  RunSpec pred_aware;
  pred_aware.method = Method::kPredAware;
  pred_aware.pred_aware = fixed_trust(1.0);
  pred_aware.stack = permissive_stack();
  const SimulationResult pa_result = run_spec(pred_aware, training, eval);

  EXPECT_GT(corp_result.opportunistic_placements, 0u);
  expect_identical(corp_result, pa_result);
  EXPECT_EQ(pa_result.trust_lambda, 1.0);
}

TEST(PredAwareSimTest, ZeroTrustIsBitIdenticalToDemandBasedCorp) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 41);
  const trace::Trace eval = tiny_trace(env, 40, 42);

  RunSpec corp;
  corp.method = Method::kCorp;
  sched::CorpSchedulerConfig demand_based;
  demand_based.enable_opportunistic = false;
  corp.corp_scheduler = demand_based;
  const SimulationResult corp_result = run_spec(corp, training, eval);

  RunSpec pred_aware;
  pred_aware.method = Method::kPredAware;
  pred_aware.pred_aware = fixed_trust(0.0);
  const SimulationResult pa_result = run_spec(pred_aware, training, eval);

  EXPECT_EQ(corp_result.opportunistic_placements, 0u);
  expect_identical(corp_result, pa_result);
  EXPECT_EQ(pa_result.trust_lambda, 0.0);
}

TEST(PredAwareSimTest, EndpointsHoldUnderFaults) {
  // The λ=1 ≡ CORP pin must survive active fault injection: poisoned
  // forecasts drive the trust *signals*, but a fixed λ never consumes
  // them, so the decision streams stay aligned.
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 43);
  const trace::Trace eval = tiny_trace(env, 40, 44);

  RunSpec corp;
  corp.method = Method::kCorp;
  corp.faults = heavy_faults();
  const SimulationResult corp_result = run_spec(corp, training, eval);
  EXPECT_GT(corp_result.vm_crashes, 0u);

  RunSpec pred_aware;
  pred_aware.method = Method::kPredAware;
  pred_aware.pred_aware = fixed_trust(1.0);
  pred_aware.faults = heavy_faults();
  const SimulationResult pa_result = run_spec(pred_aware, training, eval);
  expect_identical(corp_result, pa_result);
}

TEST(PredAwareSimTest, InteriorTrustIsBitIdenticalAcrossShardsAndThreads) {
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 45);
  const trace::Trace eval = tiny_trace(env, 40, 46);

  RunSpec serial;
  serial.method = Method::kPredAware;
  serial.pred_aware = fixed_trust(0.5);
  serial.faults = heavy_faults();
  const SimulationResult reference = run_spec(serial, training, eval);

  for (const std::size_t shards : {4UL, 16UL}) {
    for (const std::size_t threads : {1UL, 3UL}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      RunSpec sharded = serial;
      sharded.shards = shards;
      sharded.threads = threads;
      const SimulationResult result = run_spec(sharded, training, eval);
      expect_identical(reference, result);
      EXPECT_EQ(reference.trust_lambda, result.trust_lambda);
    }
  }
}

TEST(PredAwareSimTest, AdaptiveTrustIsBitIdenticalAcrossShardsAndThreads) {
  // The adaptive trajectory folds predictor-health signals into every
  // placement; those signals are sampled in the serial centralized
  // placement step, so the whole trajectory — and with it the run — must
  // be independent of the slot-loop partitioning.
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 47);
  const trace::Trace eval = tiny_trace(env, 40, 48);

  RunSpec serial;
  serial.method = Method::kPredAware;
  sched::PredictionAwareConfig adaptive;
  adaptive.adaptive = true;
  serial.pred_aware = adaptive;
  serial.faults = heavy_faults();
  const SimulationResult reference = run_spec(serial, training, eval);
  // Heavy faults must actually move the trust knob off its ceiling.
  EXPECT_LT(reference.trust_lambda, 1.0);

  for (const std::size_t shards : {4UL, 16UL}) {
    for (const std::size_t threads : {1UL, 3UL}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      RunSpec sharded = serial;
      sharded.shards = shards;
      sharded.threads = threads;
      const SimulationResult result = run_spec(sharded, training, eval);
      expect_identical(reference, result);
      EXPECT_EQ(reference.trust_lambda, result.trust_lambda);
    }
  }
}

TEST(PredAwareSimTest, AdaptiveBeatsFullTrustOnSloUnderPoisonedForecasts) {
  // The robustness claim at simulation scale: under a poisoned-forecast
  // fault mix (no crashes — a crash-killed job violates its SLO no
  // matter what the scheduler believed), shedding trust must not *raise*
  // the violation rate relative to trusting the forecast fully, and the
  // adaptive run must actually have shed trust.
  const auto env = cluster::EnvironmentConfig::PalmettoCluster();
  const trace::Trace training = tiny_trace(env, 60, 49);
  const trace::Trace eval = tiny_trace(env, 50, 50);

  fault::FaultConfig poison;
  poison.telemetry_gap_rate = 0.04;
  poison.straggler_rate = 0.25;
  poison.straggler_demand_factor = 2.0;
  poison.predictor_fault_rate = 0.07;

  RunSpec trusting;
  trusting.method = Method::kPredAware;
  trusting.pred_aware = fixed_trust(1.0);
  trusting.faults = poison;
  const SimulationResult full = run_spec(trusting, training, eval);

  RunSpec adapting = trusting;
  sched::PredictionAwareConfig adaptive;
  adaptive.adaptive = true;
  adapting.pred_aware = adaptive;
  const SimulationResult adapted = run_spec(adapting, training, eval);

  EXPECT_LT(adapted.trust_lambda, 1.0);
  EXPECT_LE(adapted.slo_violation_rate, full.slo_violation_rate);
}

}  // namespace
}  // namespace corp::sim
