#include "sim/replication.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace corp::sim {
namespace {

// A deliberately small experiment so each replica runs in a fraction of a
// second; the determinism properties under test do not depend on scale.
ExperimentConfig small_experiment() {
  ExperimentConfig experiment;
  experiment.training_jobs = 60;
  experiment.training_horizon_slots = 90;
  return experiment;
}

void expect_same_estimate(const MetricEstimate& a, const MetricEstimate& b) {
  // Bit-identical, not approximately equal: parallel gather order and
  // repeated runs must not perturb a single ULP.
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.half_width, b.half_width);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
}

void expect_same_point(const ReplicatedPoint& a, const ReplicatedPoint& b) {
  EXPECT_EQ(a.replications, b.replications);
  expect_same_estimate(a.overall_utilization, b.overall_utilization);
  expect_same_estimate(a.slo_violation_rate, b.slo_violation_rate);
  expect_same_estimate(a.prediction_error_rate, b.prediction_error_rate);
  expect_same_estimate(a.opportunistic_placements,
                       b.opportunistic_placements);
  // timing is intentionally excluded: wall clock is not deterministic.
}

TEST(ReplicationTest, RejectsZeroReplications) {
  ExperimentConfig experiment;
  ReplicationConfig config;
  config.replications = 0;
  EXPECT_THROW(
      run_replicated_point(experiment, Method::kDra, 20, config),
      std::invalid_argument);
}

TEST(ReplicationTest, AggregatesAcrossSeeds) {
  const ExperimentConfig experiment = small_experiment();
  ReplicationConfig config;
  config.replications = 3;
  config.threads = 1;
  const ReplicatedPoint point =
      run_replicated_point(experiment, Method::kDra, 30, config);
  EXPECT_EQ(point.replications, 3u);
  EXPECT_GT(point.overall_utilization.mean, 0.0);
  EXPECT_GE(point.overall_utilization.half_width, 0.0);
  EXPECT_LE(point.overall_utilization.min,
            point.overall_utilization.mean + 1e-12);
  EXPECT_GE(point.overall_utilization.max,
            point.overall_utilization.mean - 1e-12);
  EXPECT_LE(point.overall_utilization.lower(),
            point.overall_utilization.upper());
}

TEST(ReplicationTest, SameSeedIsBitIdentical) {
  const ExperimentConfig experiment = small_experiment();
  ReplicationConfig config;
  config.replications = 3;
  config.threads = 1;
  const ReplicatedPoint first =
      run_replicated_point(experiment, Method::kDra, 20, config);
  const ReplicatedPoint second =
      run_replicated_point(experiment, Method::kDra, 20, config);
  expect_same_point(first, second);
}

TEST(ReplicationTest, ParallelMatchesSerialBitIdentically) {
  const ExperimentConfig experiment = small_experiment();
  ReplicationConfig serial;
  serial.replications = 4;
  serial.threads = 1;
  ReplicationConfig parallel = serial;
  parallel.threads = 4;
  const ReplicatedPoint a =
      run_replicated_point(experiment, Method::kDra, 20, serial);
  const ReplicatedPoint b =
      run_replicated_point(experiment, Method::kDra, 20, parallel);
  expect_same_point(a, b);
  EXPECT_EQ(a.timing.threads, 1u);
  EXPECT_EQ(b.timing.threads, 4u);
}

TEST(ReplicationTest, RecordsTiming) {
  const ExperimentConfig experiment = small_experiment();
  ReplicationConfig config;
  config.replications = 2;
  config.threads = 2;
  const ReplicatedPoint point =
      run_replicated_point(experiment, Method::kDra, 20, config);
  EXPECT_GT(point.timing.wall_ms, 0.0);
  EXPECT_GT(point.timing.replicas_per_sec, 0.0);
  EXPECT_EQ(point.timing.threads, 2u);
}

TEST(ReplicationTest, SingleReplicationHalfWidthIsUnknown) {
  const ExperimentConfig experiment = small_experiment();
  ReplicationConfig config;
  config.replications = 1;
  config.threads = 1;
  const ReplicatedPoint point =
      run_replicated_point(experiment, Method::kDra, 20, config);
  // One sample has no measurable spread: NaN ("n/a"), not a false 0.0.
  EXPECT_TRUE(std::isnan(point.overall_utilization.half_width));
  EXPECT_TRUE(std::isnan(point.slo_violation_rate.half_width));
  EXPECT_GT(point.overall_utilization.mean, 0.0);
}

TEST(ReplicationTest, ReplicaSeedsNeverCollideAcrossSweep) {
  // 100 sweep points x 30 replicas: every derived seed distinct. The old
  // `seed + 1000*(r+1)` formula collides immediately for consecutive
  // bases (replica r of base S+1000 == replica r+1 of base S).
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 1; base <= 100; ++base) {
    for (std::size_t replica = 0; replica < 30; ++replica) {
      seen.insert(replica_seed(base, replica));
    }
  }
  EXPECT_EQ(seen.size(), 100u * 30u);
}

TEST(ReplicationTest, ReplicaSeedsDifferFromBaseAndStreams) {
  const std::uint64_t base = 7;
  EXPECT_NE(replica_seed(base, 0), base);
  // Replica seeds must not alias the other derived streams of the same
  // base seed (training/evaluation/simulation).
  EXPECT_NE(replica_seed(base, 0), training_seed(base));
  EXPECT_NE(replica_seed(base, 0), evaluation_seed(base, 0));
  EXPECT_NE(replica_seed(base, 0), simulation_seed(base, Method::kCorp));
}

}  // namespace
}  // namespace corp::sim
