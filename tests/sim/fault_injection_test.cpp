// End-to-end fault-injection behavior of the simulation engine:
//   * the zero-rate config is inert (bit-identical to a fault-free run);
//   * faults actually perturb the run and are fully accounted for;
//   * parallel replication under faults stays bit-identical to serial.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/replication.hpp"
#include "sim/simulation.hpp"

namespace corp::sim {
namespace {

trace::Trace tiny_trace(std::size_t jobs, std::uint64_t seed) {
  trace::GoogleTraceGenerator gen(scaled_generator_config(
      cluster::EnvironmentConfig::PalmettoCluster(), jobs, 10));
  util::Rng rng(seed);
  return gen.generate(rng);
}

SimulationConfig tiny_config(Method method) {
  SimulationConfig config;
  config.method = method;
  config.seed = 5;
  return config;
}

/// Heavy fault mix that is certain to fire on a short run.
fault::FaultConfig heavy_faults() {
  fault::FaultConfig faults;
  faults.vm_mttf_slots = 15.0;
  faults.vm_mttr_slots = 6.0;
  faults.telemetry_gap_rate = 0.10;
  faults.straggler_rate = 0.25;
  faults.predictor_fault_rate = 0.10;
  return faults;
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.overall_utilization, b.overall_utilization);
  EXPECT_EQ(a.overall_wastage, b.overall_wastage);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_violated, b.jobs_violated);
  EXPECT_EQ(a.opportunistic_placements, b.opportunistic_placements);
  EXPECT_EQ(a.reserved_placements, b.reserved_placements);
  EXPECT_EQ(a.lease_promotions, b.lease_promotions);
  EXPECT_EQ(a.lease_preemptions, b.lease_preemptions);
  EXPECT_EQ(a.slots_simulated, b.slots_simulated);
  EXPECT_EQ(a.vm_crashes, b.vm_crashes);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.job_retries, b.job_retries);
  EXPECT_EQ(a.jobs_dropped, b.jobs_dropped);
  EXPECT_EQ(a.telemetry_gaps, b.telemetry_gaps);
}

TEST(FaultInjectionSimTest, ZeroRatesAreBitIdenticalToDefault) {
  const trace::Trace training = tiny_trace(60, 11);
  const trace::Trace eval = tiny_trace(25, 12);

  SimulationConfig plain = tiny_config(Method::kCorp);
  SimulationConfig zeroed = tiny_config(Method::kCorp);
  zeroed.faults = fault::FaultConfig{};  // explicit all-zero config
  ASSERT_FALSE(zeroed.faults.any());

  Simulation a(std::move(plain)), b(std::move(zeroed));
  a.train(training);
  b.train(training);
  const SimulationResult ra = a.run(eval);
  const SimulationResult rb = b.run(eval);
  expect_identical(ra, rb);
  EXPECT_EQ(ra.vm_crashes, 0u);
  EXPECT_EQ(ra.telemetry_gaps, 0u);
  EXPECT_EQ(ra.jobs_dropped, 0u);
  EXPECT_EQ(ra.degradation_tier, 0);
}

TEST(FaultInjectionSimTest, FaultsAreDeterministicAcrossRuns) {
  const trace::Trace training = tiny_trace(60, 11);
  const trace::Trace eval = tiny_trace(25, 13);
  SimulationConfig config = tiny_config(Method::kCorp);
  config.faults = heavy_faults();

  Simulation a(config), b(config);
  a.train(training);
  b.train(training);
  expect_identical(a.run(eval), b.run(eval));
}

TEST(FaultInjectionSimTest, CrashesKillAndRetryJobs) {
  const trace::Trace training = tiny_trace(60, 11);
  const trace::Trace eval = tiny_trace(30, 14);
  SimulationConfig config = tiny_config(Method::kCorp);
  config.faults = heavy_faults();

  Simulation sim(std::move(config));
  sim.train(training);
  const SimulationResult result = sim.run(eval);

  EXPECT_GT(result.vm_crashes, 0u);
  EXPECT_GT(result.telemetry_gaps, 0u);
  // Every kill is either retried or dropped, never lost.
  EXPECT_EQ(result.jobs_killed, result.job_retries + result.jobs_dropped);
  // Every job is accounted for: completed (includes forced) + dropped.
  EXPECT_EQ(result.jobs_completed + result.jobs_dropped, eval.size());
}

TEST(FaultInjectionSimTest, FaultsChangeTheRun) {
  const trace::Trace training = tiny_trace(60, 11);
  const trace::Trace eval = tiny_trace(25, 15);

  Simulation plain(tiny_config(Method::kCorp));
  SimulationConfig faulty_config = tiny_config(Method::kCorp);
  faulty_config.faults = heavy_faults();
  Simulation faulty(std::move(faulty_config));

  plain.train(training);
  faulty.train(training);
  const SimulationResult ra = plain.run(eval);
  const SimulationResult rb = faulty.run(eval);
  EXPECT_EQ(ra.vm_crashes, 0u);
  EXPECT_GT(rb.vm_crashes, 0u);
  // A crashing, telemetry-starved cluster cannot behave identically.
  EXPECT_TRUE(ra.slo_violation_rate != rb.slo_violation_rate ||
              ra.overall_utilization != rb.overall_utilization ||
              ra.jobs_completed != rb.jobs_completed);
}

TEST(FaultInjectionSimTest, BaselineMethodsSurviveFaults) {
  const trace::Trace training = tiny_trace(60, 11);
  const trace::Trace eval = tiny_trace(20, 16);
  for (Method m : {Method::kRccr, Method::kCloudScale, Method::kDra}) {
    SimulationConfig config = tiny_config(m);
    config.faults = heavy_faults();
    Simulation sim(std::move(config));
    sim.train(training);
    const SimulationResult result = sim.run(eval);
    EXPECT_EQ(result.jobs_completed + result.jobs_dropped, eval.size())
        << predict::method_name(m);
  }
}

TEST(FaultInjectionSimTest, ParallelReplicationBitIdenticalUnderFaults) {
  ExperimentConfig experiment;
  experiment.seed = 9;
  experiment.training_jobs = 60;
  experiment.training_horizon_slots = 120;
  experiment.faults = fault::scaled_fault_config(0.8);
  ASSERT_TRUE(experiment.faults.any());

  ReplicationConfig serial;
  serial.replications = 3;
  serial.threads = 1;
  ReplicationConfig parallel = serial;
  parallel.threads = 3;

  const ReplicatedPoint a =
      run_replicated_point(experiment, Method::kCorp, 25, serial);
  const ReplicatedPoint b =
      run_replicated_point(experiment, Method::kCorp, 25, parallel);
  EXPECT_EQ(a.overall_utilization.mean, b.overall_utilization.mean);
  EXPECT_EQ(a.overall_utilization.half_width, b.overall_utilization.half_width);
  EXPECT_EQ(a.slo_violation_rate.mean, b.slo_violation_rate.mean);
  EXPECT_EQ(a.prediction_error_rate.mean, b.prediction_error_rate.mean);
  EXPECT_EQ(a.opportunistic_placements.mean, b.opportunistic_placements.mean);
}

TEST(FaultInjectionSimTest, PoisonedPredictorDegradesTier) {
  const trace::Trace training = tiny_trace(60, 11);
  const trace::Trace eval = tiny_trace(30, 17);
  SimulationConfig config = tiny_config(Method::kCorp);
  // Predictor faults only, at a rate that must trip the health monitor.
  config.faults.predictor_fault_rate = 0.5;
  Simulation sim(std::move(config));
  sim.train(training);
  const SimulationResult result = sim.run(eval);
  EXPECT_GT(result.degradation_tier, 0);
  EXPECT_GT(sim.predictor().health().demotions(), 0u);
  // The run still completes its workload.
  EXPECT_EQ(result.jobs_completed, eval.size());
}

}  // namespace
}  // namespace corp::sim
