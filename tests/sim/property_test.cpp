// Property tests over the (method x workload) cross product: invariants
// that must hold for ANY combination — no job lost, no capacity violated,
// metrics in range, accounting consistent.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "sim/workloads.hpp"

namespace corp::sim {
namespace {

struct Case {
  Method method;
  WorkloadKind workload;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = std::string(predict::method_name(info.param.method)) +
                     "_" + std::string(workload_name(info.param.workload));
  for (char& c : name) {
    if (c == '-') c = '_';  // gtest names must be identifiers
  }
  return name;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (Method m : predict::kAllMethods) {
    for (WorkloadKind w : kAllWorkloads) {
      cases.push_back({m, w});
    }
  }
  return cases;
}

class SimulationPropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  static constexpr std::size_t kJobs = 25;

  SimulationResult run_case(std::uint64_t seed) {
    const auto env = cluster::EnvironmentConfig::PalmettoCluster();
    trace::GoogleTraceGenerator train_gen(
        scaled_generator_config(env, 60, 60));
    util::Rng train_rng(seed);
    const trace::Trace training = train_gen.generate(train_rng);

    trace::GoogleTraceGenerator eval_gen(
        workload_config(GetParam().workload, env, kJobs));
    util::Rng eval_rng(seed + 1);
    eval_ = eval_gen.generate(eval_rng);

    SimulationConfig config;
    config.method = GetParam().method;
    config.seed = seed;
    config.grace_slots = 2000;  // long-lived services need room
    Simulation sim(std::move(config));
    sim.train(training);
    return sim.run(eval_);
  }

  trace::Trace eval_;
};

TEST_P(SimulationPropertyTest, NoJobLostOrDuplicated) {
  const SimulationResult result = run_case(101);
  // Every task is accounted exactly once (completed or force-recorded).
  EXPECT_EQ(result.jobs_completed, eval_.size());
}

TEST_P(SimulationPropertyTest, MetricsWellFormed) {
  const SimulationResult result = run_case(202);
  EXPECT_GE(result.slo_violation_rate, 0.0);
  EXPECT_LE(result.slo_violation_rate, 1.0);
  EXPECT_GE(result.jobs_violated, 0u);
  EXPECT_LE(result.jobs_violated, result.jobs_completed);
  EXPECT_GE(result.overall_utilization, 0.0);
  EXPECT_GE(result.overall_wastage, -1.0);
  EXPECT_GE(result.mean_stretch, 1.0 - 1e-9);
  EXPECT_GE(result.compute_latency_ms, 0.0);
  EXPECT_GE(result.total_latency_ms, result.compute_latency_ms);
  EXPECT_GT(result.slots_simulated, 0);
  // Placements count scheduler *decisions*; a packed CORP entity covers
  // two jobs, and a preempted lease is placed again, so decisions lie in
  // [ceil(jobs/2), jobs + preemptions].
  const std::size_t decisions =
      result.reserved_placements + result.opportunistic_placements;
  const std::size_t placed_jobs = eval_.size() - result.jobs_forced;
  EXPECT_GE(decisions, (placed_jobs + 1) / 2);
  EXPECT_LE(decisions, eval_.size() + result.lease_preemptions);
}

TEST_P(SimulationPropertyTest, OpportunisticOnlyForOpportunisticMethods) {
  const SimulationResult result = run_case(303);
  if (GetParam().method == Method::kCloudScale ||
      GetParam().method == Method::kDra) {
    EXPECT_EQ(result.opportunistic_placements, 0u);
    EXPECT_EQ(result.lease_promotions, 0u);
    EXPECT_EQ(result.lease_preemptions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(MethodsTimesWorkloads, SimulationPropertyTest,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace corp::sim
