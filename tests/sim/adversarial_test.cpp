// Failure injection / adversarial inputs: degenerate traces that stress
// the engine's corner cases. The invariant everywhere: no crash, no job
// lost, metrics well-formed.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace corp::sim {
namespace {

using trace::Job;
using trace::ResourceVector;

Job flat_job(std::uint64_t id, std::int64_t submit, std::size_t duration,
             const ResourceVector& request, double utilization) {
  Job job;
  job.id = id;
  job.submit_slot = submit;
  job.duration_slots = duration;
  job.request = request;
  job.usage.assign(duration, request * utilization);
  return job;
}

trace::Trace training_trace() {
  // Mild but non-degenerate history so every stack can train.
  trace::GoogleTraceGenerator gen(scaled_generator_config(
      cluster::EnvironmentConfig::PalmettoCluster(), 60, 60));
  util::Rng rng(31);
  return gen.generate(rng);
}

SimulationResult run_on(Method method, const trace::Trace& eval) {
  SimulationConfig config;
  config.method = method;
  config.seed = 3;
  config.grace_slots = 2000;
  Simulation sim(std::move(config));
  sim.train(training_trace());
  return sim.run(eval);
}

class AdversarialTest : public ::testing::TestWithParam<Method> {};

TEST_P(AdversarialTest, ZeroUtilizationJobs) {
  // Jobs that demand (almost) nothing: unused == request throughout.
  trace::Trace eval;
  for (int i = 0; i < 12; ++i) {
    eval.add(flat_job(static_cast<std::uint64_t>(i), i % 3, 5,
                      ResourceVector(0.5, 1.0, 5.0), 0.0));
  }
  eval.sort();
  const SimulationResult result = run_on(GetParam(), eval);
  EXPECT_EQ(result.jobs_completed, eval.size());
  EXPECT_EQ(result.jobs_violated, 0u);
}

TEST_P(AdversarialTest, FullUtilizationJobs) {
  // Demand == request every slot: zero unused resource anywhere.
  trace::Trace eval;
  for (int i = 0; i < 12; ++i) {
    eval.add(flat_job(static_cast<std::uint64_t>(i), i % 3, 5,
                      ResourceVector(0.5, 1.0, 5.0), 1.0));
  }
  eval.sort();
  const SimulationResult result = run_on(GetParam(), eval);
  EXPECT_EQ(result.jobs_completed, eval.size());
}

TEST_P(AdversarialTest, SingleSlotJobs) {
  trace::Trace eval;
  for (int i = 0; i < 20; ++i) {
    eval.add(flat_job(static_cast<std::uint64_t>(i), 0, 1,
                      ResourceVector(0.3, 0.5, 2.0), 0.6));
  }
  eval.sort();
  const SimulationResult result = run_on(GetParam(), eval);
  EXPECT_EQ(result.jobs_completed, eval.size());
}

TEST_P(AdversarialTest, SingleHugeJob) {
  // One job filling an entire VM.
  const auto vm =
      cluster::EnvironmentConfig::PalmettoCluster().vm_capacity();
  trace::Trace eval;
  eval.add(flat_job(1, 0, 10, vm * 0.95, 0.5));
  eval.sort();
  const SimulationResult result = run_on(GetParam(), eval);
  EXPECT_EQ(result.jobs_completed, 1u);
}

TEST_P(AdversarialTest, UnplaceableJobEventuallyForced) {
  // A job larger than any VM can never be placed; the grace cutoff must
  // still account for it (as a violation) instead of spinning forever.
  const auto vm =
      cluster::EnvironmentConfig::PalmettoCluster().vm_capacity();
  trace::Trace eval;
  eval.add(flat_job(1, 0, 5, vm * 2.0, 0.5));
  eval.add(flat_job(2, 0, 5, vm * 0.2, 0.5));
  eval.sort();

  SimulationConfig config;
  config.method = GetParam();
  config.seed = 3;
  config.grace_slots = 30;
  Simulation sim(std::move(config));
  sim.train(training_trace());
  const SimulationResult result = sim.run(eval);
  EXPECT_EQ(result.jobs_completed, 2u);
  EXPECT_EQ(result.jobs_forced, 1u);
  EXPECT_GE(result.jobs_violated, 1u);
}

TEST_P(AdversarialTest, IdenticalJobStampede) {
  // 60 byte-identical jobs at slot 0: placement must stay within
  // capacity (VirtualMachine::commit throws on violation) and every job
  // must finish.
  trace::Trace eval;
  for (int i = 0; i < 60; ++i) {
    eval.add(flat_job(static_cast<std::uint64_t>(i), 0, 4,
                      ResourceVector(0.4, 0.8, 4.0), 0.55));
  }
  eval.sort();
  const SimulationResult result = run_on(GetParam(), eval);
  EXPECT_EQ(result.jobs_completed, eval.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, AdversarialTest,
    ::testing::Values(Method::kCorp, Method::kRccr, Method::kCloudScale,
                      Method::kDra),
    // `param_info`, not `info`: INSTANTIATE_TEST_SUITE_P's generated code
    // declares its own `info`, which the lambda parameter would shadow.
    [](const ::testing::TestParamInfo<Method>& param_info) {
      return std::string(predict::method_name(param_info.param));
    });

TEST(AdversarialTrainingTest, ConstantHistoryTrainsEveryStack) {
  // A constant training corpus (zero variance) must not crash any stack:
  // normalizers degrade gracefully, the symbolizer's thresholds collapse,
  // ETS and Markov see a single level.
  predict::SeriesCorpus corpus{std::vector<double>(150, 0.5)};
  util::Rng rng(7);
  for (Method m : predict::kAllMethods) {
    auto stack = predict::make_stack(m, predict::StackConfig{}, rng);
    ASSERT_NO_THROW(stack->train(corpus)) << predict::method_name(m);
    const double pred = stack->predict(std::vector<double>(20, 0.5));
    EXPECT_TRUE(std::isfinite(pred)) << predict::method_name(m);
  }
}

}  // namespace
}  // namespace corp::sim
